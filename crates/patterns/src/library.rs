//! A small library of published GSN argument patterns, formalised.
//!
//! These are the workhorse patterns from Kelly's thesis and the GSN
//! community catalogue, encoded with typed parameters so the §VI-D
//! pattern-instantiation experiment has realistic material.

use crate::binding::ParamType;
use crate::pattern::Pattern;
use casekit_core::{EdgeKind, NodeKind};

/// Kelly's *hazard-directed breakdown*: argue safety by showing every
/// identified hazard mitigated.
///
/// Parameters: `system : String`, `hazards : List<String>`.
pub fn hazard_directed_breakdown() -> Pattern {
    Pattern::new("hazard-directed-breakdown")
        .param("system", ParamType::Str)
        .param("hazards", ParamType::list(ParamType::Str))
        .node(
            "g_top",
            NodeKind::Goal,
            "{system} is acceptably safe to operate",
        )
        .node(
            "c_hazlog",
            NodeKind::Context,
            "Hazards identified for {system} (hazard log)",
        )
        .node(
            "s_haz",
            NodeKind::Strategy,
            "Argument over each identified hazard",
        )
        .node(
            "a_complete",
            NodeKind::Assumption,
            "Hazard identification for {system} is sufficiently complete",
        )
        .node(
            "g_h",
            NodeKind::Goal,
            "Hazard '{h}' is acceptably mitigated",
        )
        .node(
            "e_h",
            NodeKind::Solution,
            "Mitigation evidence for hazard '{h}'",
        )
        .edge("g_top", "c_hazlog", EdgeKind::InContextOf)
        .edge("g_top", "s_haz", EdgeKind::SupportedBy)
        .edge("s_haz", "a_complete", EdgeKind::InContextOf)
        .for_each("s_haz", "g_h", EdgeKind::SupportedBy, "hazards", "h")
        .edge("g_h", "e_h", EdgeKind::SupportedBy)
}

/// Functional decomposition: argue a system property from the same
/// property of each subsystem — the shape in which the *fallacy of
/// composition* hides when subsystems interact.
///
/// Parameters: `system : String`, `property : String`,
/// `subsystems : List<String>`.
pub fn functional_decomposition() -> Pattern {
    Pattern::new("functional-decomposition")
        .param("system", ParamType::Str)
        .param("property", ParamType::Str)
        .param("subsystems", ParamType::list(ParamType::Str))
        .node("g_top", NodeKind::Goal, "{system} satisfies {property}")
        .node(
            "s_decomp",
            NodeKind::Strategy,
            "Argument by decomposition over subsystems",
        )
        .node(
            "j_noninterf",
            NodeKind::Justification,
            "Subsystem interactions cannot defeat {property}",
        )
        .node(
            "g_sub",
            NodeKind::Goal,
            "Subsystem {sub} satisfies {property}",
        )
        .node(
            "e_sub",
            NodeKind::Solution,
            "Verification evidence for {sub}",
        )
        .edge("g_top", "s_decomp", EdgeKind::SupportedBy)
        .edge("s_decomp", "j_noninterf", EdgeKind::InContextOf)
        .for_each(
            "s_decomp",
            "g_sub",
            EdgeKind::SupportedBy,
            "subsystems",
            "sub",
        )
        .edge("g_sub", "e_sub", EdgeKind::SupportedBy)
}

/// ALARP: risk reduced *as low as reasonably practicable*. The residual
/// risk parameter is typed as a percentage of the tolerability budget —
/// exercising Matsuno's range-restricted parameters.
///
/// Parameters: `system : String`, `residual_risk_pct : Percent`,
/// `standard : String` (optional context).
pub fn alarp() -> Pattern {
    Pattern::new("alarp")
        .param("system", ParamType::Str)
        .param("residual_risk_pct", ParamType::Percent)
        .param("standard", ParamType::Str)
        .node(
            "g_top",
            NodeKind::Goal,
            "Residual risk of {system} is ALARP",
        )
        .node(
            "c_std",
            NodeKind::Context,
            "Tolerability criteria of {standard}",
        )
        .node(
            "g_tol",
            NodeKind::Goal,
            "Residual risk is {residual_risk_pct}% of the tolerability budget",
        )
        .node(
            "g_practicable",
            NodeKind::Goal,
            "All reasonably practicable further reductions applied to {system}",
        )
        .node(
            "e_assess",
            NodeKind::Solution,
            "Quantitative risk assessment",
        )
        .node(
            "e_options",
            NodeKind::Solution,
            "Option study of rejected further mitigations",
        )
        .optional("g_top", "c_std", EdgeKind::InContextOf, "standard")
        .edge("g_top", "g_tol", EdgeKind::SupportedBy)
        .edge("g_top", "g_practicable", EdgeKind::SupportedBy)
        .edge("g_tol", "e_assess", EdgeKind::SupportedBy)
        .edge("g_practicable", "e_options", EdgeKind::SupportedBy)
}

/// The aircraft-element verification pattern of Denney et al.'s querying
/// paper: a per-element goal with the `element` enumeration they give
/// (`aileron | elevator | flaps`).
pub fn element_verification() -> Pattern {
    Pattern::new("element-verification")
        .param(
            "element",
            ParamType::enumeration("element", ["aileron", "elevator", "flaps"]),
        )
        .node(
            "g_elem",
            NodeKind::Goal,
            "Control element {element} behaves as specified",
        )
        .node(
            "e_elem",
            NodeKind::Solution,
            "Formal verification output for {element}",
        )
        .edge("g_elem", "e_elem", EdgeKind::SupportedBy)
}

/// All library patterns.
pub fn all() -> Vec<Pattern> {
    vec![
        hazard_directed_breakdown(),
        functional_decomposition(),
        alarp(),
        element_verification(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::{Binding, ParamValue};

    #[test]
    fn library_patterns_validate() {
        for pattern in all() {
            assert!(
                pattern.validate().is_ok(),
                "pattern {} failed validation",
                pattern.name
            );
        }
    }

    #[test]
    fn hazard_breakdown_instantiates_well_formed() {
        let binding = Binding::new().with("system", "Ground robot").with(
            "hazards",
            ParamValue::List(vec![
                "collision with person".into(),
                "battery fire".into(),
                "runaway".into(),
            ]),
        );
        let arg = hazard_directed_breakdown().instantiate(&binding).unwrap();
        // 4 fixed nodes + 3 × 2 expanded = 10.
        assert_eq!(arg.len(), 10);
        assert!(casekit_core::gsn::check(&arg).is_empty());
        assert!(arg
            .node(&"g_h_2".into())
            .unwrap()
            .text
            .contains("battery fire"));
    }

    #[test]
    fn functional_decomposition_instantiates() {
        let binding = Binding::new()
            .with("system", "Flight control")
            .with("property", "freedom from deadlock")
            .with(
                "subsystems",
                ParamValue::List(vec!["autopilot".into(), "actuation".into()]),
            );
        let arg = functional_decomposition().instantiate(&binding).unwrap();
        assert_eq!(arg.len(), 7);
        assert!(casekit_core::gsn::check(&arg).is_empty());
        // The composition caveat is recorded as a justification.
        let j = arg.node(&"j_noninterf".into()).unwrap();
        assert!(j.text.contains("freedom from deadlock"));
    }

    #[test]
    fn alarp_percent_enforced() {
        let ok = Binding::new()
            .with("system", "Plant")
            .with("residual_risk_pct", 40i64)
            .with("standard", "IEC 61508");
        assert!(alarp().instantiate(&ok).is_ok());
        let bad = Binding::new()
            .with("system", "Plant")
            .with("residual_risk_pct", 400i64)
            .with("standard", "IEC 61508");
        assert!(alarp().instantiate(&bad).is_err());
    }

    #[test]
    fn alarp_standard_is_optional() {
        let binding = Binding::new()
            .with("system", "Plant")
            .with("residual_risk_pct", 10i64);
        let arg = alarp().instantiate(&binding).unwrap();
        assert!(arg.node(&"c_std".into()).is_none());
        assert!(casekit_core::gsn::check(&arg).is_empty());
    }

    #[test]
    fn element_enum_rejects_wrong_member() {
        let err = element_verification()
            .instantiate(&Binding::new().with("element", "rudder"))
            .unwrap_err();
        assert!(err.to_string().contains("rudder"));
        let ok = element_verification()
            .instantiate(&Binding::new().with("element", "flaps"))
            .unwrap();
        assert!(ok.node(&"g_elem".into()).unwrap().text.contains("flaps"));
    }
}
