//! The argument graph: nodes, edges, construction, and traversal.
//!
//! # Architecture: arena + interner + CSR
//!
//! An [`Argument`] is a *dense arena graph*. Nodes live in a `Vec<Node>`
//! addressed by [`NodeIdx`] (a `u32` newtype); an interner maps each
//! textual [`NodeId`] to its index; and two CSR (compressed sparse row)
//! adjacency tables — outgoing and incoming — are built once at
//! construction. Every traversal primitive ([`Argument::children`],
//! [`Argument::parents`], [`Argument::reachable_from`], topological and
//! cycle checks) walks only the relevant adjacency rows, so the cost is
//! O(degree) per node or O(V+E) per whole-graph pass — never a scan of
//! the full edge list.
//!
//! Two API planes are exposed:
//!
//! * the **`NodeId` plane** (stable, string-keyed): `children`,
//!   `parents`, `descendants`, … — unchanged from the original
//!   `BTreeMap`-backed implementation, so existing callers compile
//!   as-is; and
//! * the **`NodeIdx` plane** (`*_idx` fast paths): `children_idx`,
//!   `parents_idx`, `reachable_from`, `edges_idx`, … — no hashing, no
//!   allocation per step; this is what the notation checkers, renderers,
//!   semantics/confidence propagation, and the experiment pipelines use
//!   internally.
//!
//! Arguments are immutable in shape after [`ArgumentBuilder::build`]
//! (node *payloads* stay editable through [`Argument::node_mut`]), which
//! is what lets the adjacency structure be built exactly once.

use crate::node::{EdgeKind, Node, NodeId, NodeKind};
use serde::{Deserialize, Serialize, Value};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A directed edge from a supported/contextualised node to its child.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Edge {
    /// The parent (the node being supported or put in context).
    pub from: NodeId,
    /// The child (the supporting or contextual node).
    pub to: NodeId,
    /// The relationship kind.
    pub kind: EdgeKind,
}

/// Errors from building or mutating an argument.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgumentError {
    /// A node id was empty or otherwise unusable.
    InvalidId(String),
    /// A node id was added twice.
    DuplicateId(NodeId),
    /// An edge referenced a node that does not exist.
    UnknownNode(NodeId),
    /// An edge was added twice.
    DuplicateEdge(NodeId, NodeId),
    /// An edge from a node to itself.
    SelfLoop(NodeId),
    /// More nodes or edges than the `u32` index space allows.
    TooLarge,
}

impl fmt::Display for ArgumentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgumentError::InvalidId(raw) => write!(f, "invalid node id `{raw}`"),
            ArgumentError::DuplicateId(id) => write!(f, "duplicate node id `{id}`"),
            ArgumentError::UnknownNode(id) => write!(f, "unknown node `{id}`"),
            ArgumentError::DuplicateEdge(a, b) => write!(f, "duplicate edge `{a}` -> `{b}`"),
            ArgumentError::SelfLoop(id) => write!(f, "self-loop on `{id}`"),
            ArgumentError::TooLarge => write!(f, "argument exceeds u32 node/edge index space"),
        }
    }
}

impl std::error::Error for ArgumentError {}

/// Dense index of a node in an [`Argument`] arena.
///
/// Indices are assigned in insertion order, are stable for the lifetime
/// of the argument, and are only meaningful for the argument that issued
/// them. Obtain one with [`Argument::node_idx`] and resolve it with
/// [`Argument::node_at`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeIdx(u32);

impl NodeIdx {
    #[inline]
    fn new(index: usize) -> Self {
        NodeIdx(index as u32)
    }

    /// The raw arena position, usable to index caller-side `Vec`s that
    /// are parallel to the arena.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One row entry of the CSR adjacency: the node on the other end of an
/// edge and the edge kind (denormalised so the traversal fast path never
/// touches the edge list).
#[derive(Debug, Clone, Copy)]
struct AdjEntry {
    other: NodeIdx,
    kind: EdgeKind,
}

/// Compressed sparse row adjacency: `entries[offsets[i]..offsets[i+1]]`
/// are node `i`'s neighbours, in edge-insertion order.
#[derive(Debug, Clone, Default)]
struct Csr {
    offsets: Vec<u32>,
    entries: Vec<AdjEntry>,
}

impl Csr {
    #[inline]
    fn row(&self, idx: NodeIdx) -> &[AdjEntry] {
        let start = self.offsets[idx.index()] as usize;
        let end = self.offsets[idx.index() + 1] as usize;
        &self.entries[start..end]
    }

    /// Builds a CSR table with a counting pass then a placement pass
    /// (O(V+E), no per-row allocation).
    fn build(
        node_count: usize,
        edges: &[Edge],
        endpoints: &[(NodeIdx, NodeIdx)],
        incoming: bool,
    ) -> Csr {
        let mut counts = vec![0u32; node_count + 1];
        for &(from, to) in endpoints {
            let key = if incoming { to } else { from };
            counts[key.index() + 1] += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut entries = vec![
            AdjEntry {
                other: NodeIdx(0),
                kind: EdgeKind::SupportedBy
            };
            edges.len()
        ];
        for (&(from, to), edge) in endpoints.iter().zip(edges) {
            let (key, other) = if incoming { (to, from) } else { (from, to) };
            let slot = cursor[key.index()] as usize;
            cursor[key.index()] += 1;
            entries[slot] = AdjEntry {
                other,
                kind: edge.kind,
            };
        }
        Csr { offsets, entries }
    }
}

/// An assurance argument: a named directed graph of [`Node`]s.
///
/// The graph structure is deliberately permissive — notation-specific
/// well-formedness lives in [`crate::gsn`] and [`crate::cae`], because the
/// paper's point about "formalised syntax" is precisely that the rules are
/// a layer one chooses (and different formalisations disagree; see
/// [`crate::gsn::check_denney_pai`]).
///
/// See the [module documentation](self) for the arena/interner/CSR
/// layout and the `NodeId` vs [`NodeIdx`] API split.
#[derive(Debug, Clone)]
pub struct Argument {
    name: String,
    /// Arena: nodes in insertion order, addressed by [`NodeIdx`].
    nodes: Vec<Node>,
    /// Interner: id → arena index.
    index: HashMap<NodeId, NodeIdx>,
    /// Arena indices sorted by id, for deterministic id-order iteration.
    sorted: Vec<NodeIdx>,
    /// Edges in insertion order.
    edges: Vec<Edge>,
    /// Edge endpoints resolved to arena indices, parallel to `edges`.
    endpoints: Vec<(NodeIdx, NodeIdx)>,
    /// Outgoing adjacency.
    out: Csr,
    /// Incoming adjacency.
    inc: Csr,
}

impl Argument {
    /// Starts a builder for an argument with the given name.
    pub fn builder(name: impl Into<String>) -> ArgumentBuilder {
        ArgumentBuilder {
            name: name.into(),
            nodes: Vec::new(),
            index: HashMap::new(),
            edges: Vec::new(),
            endpoints: Vec::new(),
            edge_set: HashSet::new(),
            error: None,
        }
    }

    /// Assembles an argument from parts, validating ids and edges.
    ///
    /// This is the single choke point shared by the builder,
    /// deserialization, and bulk generators: every `Argument` in
    /// existence has passed through it (or through the equivalent eager
    /// checks in [`ArgumentBuilder`]), which is what makes the
    /// index-based fast paths panic-free.
    ///
    /// # Errors
    ///
    /// Returns the first invalid id, duplicate id, unknown edge
    /// endpoint, self-loop, or duplicate edge encountered.
    pub fn from_parts(
        name: impl Into<String>,
        nodes: Vec<Node>,
        edges: Vec<Edge>,
    ) -> Result<Argument, ArgumentError> {
        if nodes.len() > u32::MAX as usize || edges.len() > u32::MAX as usize {
            return Err(ArgumentError::TooLarge);
        }
        let mut index = HashMap::with_capacity(nodes.len());
        for (i, node) in nodes.iter().enumerate() {
            if node.id.as_str().is_empty() {
                return Err(ArgumentError::InvalidId(String::new()));
            }
            if index.insert(node.id.clone(), NodeIdx::new(i)).is_some() {
                return Err(ArgumentError::DuplicateId(node.id.clone()));
            }
        }
        let mut endpoints = Vec::with_capacity(edges.len());
        let mut seen_edges = HashSet::with_capacity(edges.len());
        for edge in &edges {
            let from = *index
                .get(&edge.from)
                .ok_or_else(|| ArgumentError::UnknownNode(edge.from.clone()))?;
            let to = *index
                .get(&edge.to)
                .ok_or_else(|| ArgumentError::UnknownNode(edge.to.clone()))?;
            if from == to {
                return Err(ArgumentError::SelfLoop(edge.from.clone()));
            }
            if !seen_edges.insert((from, to, edge.kind)) {
                return Err(ArgumentError::DuplicateEdge(
                    edge.from.clone(),
                    edge.to.clone(),
                ));
            }
            endpoints.push((from, to));
        }
        Ok(Argument::assemble(
            name.into(),
            nodes,
            index,
            edges,
            endpoints,
        ))
    }

    /// Infallible final assembly once ids and endpoints are validated.
    fn assemble(
        name: String,
        nodes: Vec<Node>,
        index: HashMap<NodeId, NodeIdx>,
        edges: Vec<Edge>,
        endpoints: Vec<(NodeIdx, NodeIdx)>,
    ) -> Argument {
        let mut sorted: Vec<NodeIdx> = (0..nodes.len()).map(NodeIdx::new).collect();
        sorted.sort_by(|a, b| nodes[a.index()].id.cmp(&nodes[b.index()].id));
        let out = Csr::build(nodes.len(), &edges, &endpoints, false);
        let inc = Csr::build(nodes.len(), &edges, &endpoints, true);
        Argument {
            name,
            nodes,
            index,
            sorted,
            edges,
            endpoints,
            out,
            inc,
        }
    }

    /// The argument's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the argument has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    // -----------------------------------------------------------------
    // NodeIdx plane: index-based fast paths
    // -----------------------------------------------------------------

    /// The arena index of `id`, if present. O(1).
    #[inline]
    pub fn node_idx(&self, id: &NodeId) -> Option<NodeIdx> {
        self.index.get(id).copied()
    }

    /// The node at an arena index. O(1).
    ///
    /// # Panics
    ///
    /// Panics if `idx` did not come from this argument.
    #[inline]
    pub fn node_at(&self, idx: NodeIdx) -> &Node {
        &self.nodes[idx.index()]
    }

    /// The id of the node at an arena index. O(1).
    #[inline]
    pub fn id_at(&self, idx: NodeIdx) -> &NodeId {
        &self.nodes[idx.index()].id
    }

    /// All arena indices, in insertion order.
    pub fn node_indices(&self) -> impl ExactSizeIterator<Item = NodeIdx> + '_ {
        (0..self.nodes.len()).map(NodeIdx::new)
    }

    /// The arena itself: nodes in insertion order. The fastest way to
    /// scan every node when id order does not matter.
    pub fn arena(&self) -> &[Node] {
        &self.nodes
    }

    /// Arena indices in id order (the order [`Argument::nodes`] yields),
    /// for deterministic index-plane sweeps.
    pub fn sorted_indices(&self) -> impl ExactSizeIterator<Item = NodeIdx> + '_ {
        self.sorted.iter().copied()
    }

    /// Children of `idx` along edges of `kind`. O(degree).
    #[inline]
    pub fn children_idx(&self, idx: NodeIdx, kind: EdgeKind) -> impl Iterator<Item = NodeIdx> + '_ {
        self.out
            .row(idx)
            .iter()
            .filter(move |entry| entry.kind == kind)
            .map(|entry| entry.other)
    }

    /// All children of `idx` regardless of edge kind. O(degree).
    #[inline]
    pub fn all_children_idx(&self, idx: NodeIdx) -> impl Iterator<Item = NodeIdx> + '_ {
        self.out.row(idx).iter().map(|entry| entry.other)
    }

    /// Parents of `idx` (nodes with an edge into `idx`). O(degree).
    #[inline]
    pub fn parents_idx(&self, idx: NodeIdx) -> impl Iterator<Item = NodeIdx> + '_ {
        self.inc.row(idx).iter().map(|entry| entry.other)
    }

    /// Parents of `idx` along edges of `kind`. O(degree).
    #[inline]
    pub fn parents_by_kind_idx(
        &self,
        idx: NodeIdx,
        kind: EdgeKind,
    ) -> impl Iterator<Item = NodeIdx> + '_ {
        self.inc
            .row(idx)
            .iter()
            .filter(move |entry| entry.kind == kind)
            .map(|entry| entry.other)
    }

    /// Number of outgoing edges of `idx`. O(1).
    #[inline]
    pub fn out_degree(&self, idx: NodeIdx) -> usize {
        self.out.row(idx).len()
    }

    /// Number of incoming edges of `idx`. O(1).
    #[inline]
    pub fn in_degree(&self, idx: NodeIdx) -> usize {
        self.inc.row(idx).len()
    }

    /// Whether `idx` has an outgoing edge of `kind`. O(degree).
    #[inline]
    pub fn has_children_idx(&self, idx: NodeIdx, kind: EdgeKind) -> bool {
        self.out.row(idx).iter().any(|entry| entry.kind == kind)
    }

    /// Edges with endpoints resolved to arena indices, in insertion
    /// order: `(from, to, kind)`. O(1) per step, no hashing.
    pub fn edges_idx(&self) -> impl ExactSizeIterator<Item = (NodeIdx, NodeIdx, EdgeKind)> + '_ {
        self.endpoints
            .iter()
            .zip(&self.edges)
            .map(|(&(from, to), edge)| (from, to, edge.kind))
    }

    /// Root indices: nodes with no incoming edges, in insertion order.
    pub fn roots_idx(&self) -> impl Iterator<Item = NodeIdx> + '_ {
        self.node_indices().filter(|&idx| self.in_degree(idx) == 0)
    }

    /// Root indices in id order (the order [`Argument::roots`] yields) —
    /// what renderers and checkers iterate for deterministic output.
    pub fn sorted_roots_idx(&self) -> impl Iterator<Item = NodeIdx> + '_ {
        self.sorted_indices()
            .filter(|&idx| self.in_degree(idx) == 0)
    }

    /// All indices reachable from `start` (excluding `start` itself),
    /// breadth-first over all edge kinds. O(V+E).
    pub fn reachable_from(&self, start: NodeIdx) -> Vec<NodeIdx> {
        let mut seen = vec![false; self.nodes.len()];
        seen[start.index()] = true;
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(start);
        let mut out = Vec::new();
        while let Some(current) = queue.pop_front() {
            for entry in self.out.row(current) {
                if !seen[entry.other.index()] {
                    seen[entry.other.index()] = true;
                    out.push(entry.other);
                    queue.push_back(entry.other);
                }
            }
        }
        out
    }

    // -----------------------------------------------------------------
    // NodeId plane: stable string-keyed API (delegates to the indices)
    // -----------------------------------------------------------------

    /// The node with the given id, if present.
    pub fn node(&self, id: &NodeId) -> Option<&Node> {
        self.node_idx(id).map(|idx| self.node_at(idx))
    }

    /// All nodes in id order.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = &Node> {
        self.sorted.iter().map(|idx| &self.nodes[idx.index()])
    }

    /// All edges in insertion order.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Children of `id` along edges of `kind`.
    pub fn children(&self, id: &NodeId, kind: EdgeKind) -> Vec<&Node> {
        match self.node_idx(id) {
            Some(idx) => self
                .children_idx(idx, kind)
                .map(|c| self.node_at(c))
                .collect(),
            None => Vec::new(),
        }
    }

    /// All children of `id` regardless of edge kind.
    pub fn all_children(&self, id: &NodeId) -> Vec<&Node> {
        match self.node_idx(id) {
            Some(idx) => self
                .all_children_idx(idx)
                .map(|c| self.node_at(c))
                .collect(),
            None => Vec::new(),
        }
    }

    /// Parents of `id` (nodes with an edge into `id`).
    pub fn parents(&self, id: &NodeId) -> Vec<&Node> {
        match self.node_idx(id) {
            Some(idx) => self.parents_idx(idx).map(|p| self.node_at(p)).collect(),
            None => Vec::new(),
        }
    }

    /// Root nodes: nodes with no incoming edges, in id order.
    pub fn roots(&self) -> Vec<&Node> {
        self.sorted
            .iter()
            .filter(|idx| self.in_degree(**idx) == 0)
            .map(|idx| &self.nodes[idx.index()])
            .collect()
    }

    /// Leaf nodes: nodes with no outgoing `SupportedBy` edges, in id
    /// order.
    pub fn support_leaves(&self) -> Vec<&Node> {
        self.sorted
            .iter()
            .filter(|idx| !self.has_children_idx(**idx, EdgeKind::SupportedBy))
            .map(|idx| &self.nodes[idx.index()])
            .collect()
    }

    /// All nodes reachable from `id` (excluding `id` itself),
    /// breadth-first.
    pub fn descendants(&self, id: &NodeId) -> Vec<&Node> {
        match self.node_idx(id) {
            Some(idx) => self
                .reachable_from(idx)
                .into_iter()
                .map(|i| self.node_at(i))
                .collect(),
            None => Vec::new(),
        }
    }

    /// Whether the `SupportedBy` subgraph is acyclic. O(V+E) (Kahn's
    /// algorithm over the CSR rows).
    pub fn is_acyclic(&self) -> bool {
        let mut indegree = vec![0u32; self.nodes.len()];
        for entry in &self.out.entries {
            if entry.kind == EdgeKind::SupportedBy {
                indegree[entry.other.index()] += 1;
            }
        }
        let mut queue: std::collections::VecDeque<NodeIdx> = self
            .node_indices()
            .filter(|idx| indegree[idx.index()] == 0)
            .collect();
        let mut visited = 0usize;
        while let Some(idx) = queue.pop_front() {
            visited += 1;
            for entry in self.out.row(idx) {
                if entry.kind == EdgeKind::SupportedBy {
                    indegree[entry.other.index()] -= 1;
                    if indegree[entry.other.index()] == 0 {
                        queue.push_back(entry.other);
                    }
                }
            }
        }
        visited == self.nodes.len()
    }

    /// Depth of the support tree from `id` (a leaf has depth 1).
    ///
    /// Returns `None` when the support graph below `id` has a cycle.
    /// Memoised per call, so shared subtrees are traversed once and a
    /// single call is O(V+E) even on DAGs (the memo does not persist
    /// across calls).
    pub fn support_depth(&self, id: &NodeId) -> Option<usize> {
        let idx = self.node_idx(id)?;
        let mut memo = vec![DepthState::Unvisited; self.nodes.len()];
        self.depth_rec(idx, &mut memo)
    }

    fn depth_rec(&self, idx: NodeIdx, memo: &mut [DepthState]) -> Option<usize> {
        match memo[idx.index()] {
            DepthState::Done(depth) => return Some(depth),
            DepthState::OnPath => return None, // cycle
            DepthState::Unvisited => {}
        }
        memo[idx.index()] = DepthState::OnPath;
        let mut best = 0usize;
        let mut is_leaf = true;
        for entry in self.out.row(idx) {
            if entry.kind != EdgeKind::SupportedBy {
                continue;
            }
            is_leaf = false;
            match self.depth_rec(entry.other, memo) {
                Some(depth) => best = best.max(depth),
                None => return None,
            }
        }
        let depth = if is_leaf { 1 } else { best + 1 };
        memo[idx.index()] = DepthState::Done(depth);
        Some(depth)
    }

    /// Nodes of a given kind, in id order.
    pub fn nodes_of_kind(&self, kind: NodeKind) -> Vec<&Node> {
        self.nodes().filter(|n| n.kind == kind).collect()
    }

    /// Number of nodes carrying formal payloads.
    pub fn formalised_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_formalised()).count()
    }

    /// Mutable access to a node (for annotation-style edits). The
    /// node's *payload* may be edited freely; its id must not change
    /// (the interner and adjacency are keyed on it).
    pub fn node_mut(&mut self, id: &NodeId) -> Option<&mut Node> {
        let idx = self.node_idx(id)?;
        Some(&mut self.nodes[idx.index()])
    }

    /// Mutable access by arena index. O(1).
    pub fn node_at_mut(&mut self, idx: NodeIdx) -> &mut Node {
        &mut self.nodes[idx.index()]
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DepthState {
    Unvisited,
    OnPath,
    Done(usize),
}

/// Equality is structural and insertion-order-independent for nodes
/// (compared in id order) but order-sensitive for edges (which serialize
/// and round-trip in insertion order).
impl PartialEq for Argument {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.nodes.len() == other.nodes.len()
            && self.nodes().eq(other.nodes())
            && self.edges == other.edges
    }
}

/// Serializes in the legacy wire shape: `name`, `nodes` as an id-keyed
/// object in id order (the historical `BTreeMap` layout), `edges` as an
/// array in insertion order. The arena, interner, and CSR tables are
/// reconstructed on deserialization.
impl Serialize for Argument {
    fn serialize(&self) -> Value {
        let nodes = self
            .nodes()
            .map(|n| (n.id.as_str().to_string(), n.serialize()))
            .collect();
        Value::Object(vec![
            ("name".to_string(), Value::Str(self.name.clone())),
            ("nodes".to_string(), Value::Object(nodes)),
            ("edges".to_string(), self.edges.serialize()),
        ])
    }
}

impl Deserialize for Argument {
    fn deserialize(v: &Value) -> Result<Self, serde::Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde::Error::custom("expected object for Argument"))?;
        let name: String = serde::__private::field(obj, "name", "Argument")?;
        let node_map = obj
            .iter()
            .find(|(k, _)| k == "nodes")
            .map(|(_, v)| v)
            .ok_or_else(|| serde::Error::custom("missing field `nodes` of Argument"))?;
        let pairs = node_map
            .as_object()
            .ok_or_else(|| serde::Error::custom("expected object for Argument nodes"))?;
        let nodes: Vec<Node> = pairs
            .iter()
            .map(|(_, v)| Node::deserialize(v))
            .collect::<Result<_, _>>()?;
        let edges: Vec<Edge> = serde::__private::field(obj, "edges", "Argument")?;
        Argument::from_parts(name, nodes, edges).map_err(serde::Error::custom)
    }
}

/// Builder for [`Argument`]; errors are deferred to [`ArgumentBuilder::build`]
/// so construction chains read cleanly. Node and edge validity is checked
/// eagerly (so the *first* offending call wins), while the adjacency
/// structure is assembled once in [`ArgumentBuilder::build`].
#[derive(Debug, Clone)]
pub struct ArgumentBuilder {
    name: String,
    nodes: Vec<Node>,
    index: HashMap<NodeId, NodeIdx>,
    edges: Vec<Edge>,
    endpoints: Vec<(NodeIdx, NodeIdx)>,
    edge_set: HashSet<(NodeIdx, NodeIdx, EdgeKind)>,
    error: Option<ArgumentError>,
}

impl ArgumentBuilder {
    /// Adds a node.
    pub fn node(mut self, node: Node) -> Self {
        if self.error.is_some() {
            return self;
        }
        if node.id.as_str().is_empty() {
            self.error = Some(ArgumentError::InvalidId(String::new()));
            return self;
        }
        if self.nodes.len() >= u32::MAX as usize {
            self.error = Some(ArgumentError::TooLarge);
            return self;
        }
        let idx = NodeIdx::new(self.nodes.len());
        if self.index.insert(node.id.clone(), idx).is_some() {
            self.error = Some(ArgumentError::DuplicateId(node.id));
            return self;
        }
        self.nodes.push(node);
        self
    }

    /// Convenience: adds a node by parts. An empty `id` is rejected by
    /// [`ArgumentBuilder::node`] as [`ArgumentError::InvalidId`].
    pub fn add(self, id: &str, kind: NodeKind, text: &str) -> Self {
        if self.error.is_some() {
            return self;
        }
        self.node(Node::new(id, kind, text))
    }

    /// Adds a `SupportedBy` edge from `parent` to `child`.
    pub fn supported_by(self, parent: &str, child: &str) -> Self {
        self.edge(parent, child, EdgeKind::SupportedBy)
    }

    /// Adds an `InContextOf` edge from `node` to `context`.
    pub fn in_context_of(self, node: &str, context: &str) -> Self {
        self.edge(node, context, EdgeKind::InContextOf)
    }

    /// Adds an edge of the given kind.
    pub fn edge(mut self, from: &str, to: &str, kind: EdgeKind) -> Self {
        if self.error.is_some() {
            return self;
        }
        if from.is_empty() {
            self.error = Some(ArgumentError::InvalidId(from.to_string()));
            return self;
        }
        if to.is_empty() {
            self.error = Some(ArgumentError::InvalidId(to.to_string()));
            return self;
        }
        if self.edges.len() >= u32::MAX as usize {
            self.error = Some(ArgumentError::TooLarge);
            return self;
        }
        let from = NodeId::new(from);
        let to = NodeId::new(to);
        if from == to {
            self.error = Some(ArgumentError::SelfLoop(from));
            return self;
        }
        let from_idx = match self.index.get(&from) {
            Some(idx) => *idx,
            None => {
                self.error = Some(ArgumentError::UnknownNode(from));
                return self;
            }
        };
        let to_idx = match self.index.get(&to) {
            Some(idx) => *idx,
            None => {
                self.error = Some(ArgumentError::UnknownNode(to));
                return self;
            }
        };
        if !self.edge_set.insert((from_idx, to_idx, kind)) {
            self.error = Some(ArgumentError::DuplicateEdge(from, to));
            return self;
        }
        self.edges.push(Edge { from, to, kind });
        self.endpoints.push((from_idx, to_idx));
        self
    }

    /// Finishes construction, assembling the interner-backed arena and
    /// the CSR adjacency tables.
    ///
    /// # Errors
    ///
    /// Returns the first construction error (invalid id, duplicate id,
    /// unknown node, duplicate edge, or self-loop).
    pub fn build(self) -> Result<Argument, ArgumentError> {
        match self.error {
            Some(e) => Err(e),
            None => Ok(Argument::assemble(
                self.name,
                self.nodes,
                self.index,
                self.edges,
                self.endpoints,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn sample() -> Argument {
        Argument::builder("sample")
            .add("g1", NodeKind::Goal, "System is safe")
            .add("s1", NodeKind::Strategy, "Argue over hazards")
            .add("g2", NodeKind::Goal, "H1 mitigated")
            .add("g3", NodeKind::Goal, "H2 mitigated")
            .add("e1", NodeKind::Solution, "Test report")
            .add("e2", NodeKind::Solution, "Analysis")
            .add("c1", NodeKind::Context, "Operating role")
            .supported_by("g1", "s1")
            .supported_by("s1", "g2")
            .supported_by("s1", "g3")
            .supported_by("g2", "e1")
            .supported_by("g3", "e2")
            .in_context_of("g1", "c1")
            .build()
            .unwrap()
    }

    #[test]
    fn build_and_basic_queries() {
        let a = sample();
        assert_eq!(a.len(), 7);
        assert_eq!(a.name(), "sample");
        assert!(!a.is_empty());
        assert_eq!(a.edges().len(), 6);
        assert!(a.node(&"g1".into()).is_some());
        assert!(a.node(&"zz".into()).is_none());
    }

    #[test]
    fn children_respect_edge_kind() {
        let a = sample();
        let g1 = NodeId::new("g1");
        assert_eq!(a.children(&g1, EdgeKind::SupportedBy).len(), 1);
        assert_eq!(a.children(&g1, EdgeKind::InContextOf).len(), 1);
        assert_eq!(a.all_children(&g1).len(), 2);
    }

    #[test]
    fn roots_and_leaves() {
        let a = sample();
        let roots: Vec<_> = a
            .roots()
            .iter()
            .map(|n| n.id.as_str().to_string())
            .collect();
        assert_eq!(roots, vec!["g1"]);
        let leaves: BTreeSet<_> = a
            .support_leaves()
            .iter()
            .map(|n| n.id.as_str().to_string())
            .collect();
        // Everything without outgoing SupportedBy: solutions and context.
        assert!(leaves.contains("e1") && leaves.contains("e2") && leaves.contains("c1"));
    }

    #[test]
    fn descendants_bfs() {
        let a = sample();
        let d = a.descendants(&"g1".into());
        assert_eq!(d.len(), 6);
        let d = a.descendants(&"g2".into());
        assert_eq!(d.len(), 1);
        assert!(a.descendants(&"e1".into()).is_empty());
    }

    #[test]
    fn parents_inverse_of_children() {
        let a = sample();
        let parents = a.parents(&"g2".into());
        assert_eq!(parents.len(), 1);
        assert_eq!(parents[0].id.as_str(), "s1");
    }

    #[test]
    fn acyclicity_and_depth() {
        let a = sample();
        assert!(a.is_acyclic());
        assert_eq!(a.support_depth(&"g1".into()), Some(4));
        assert_eq!(a.support_depth(&"e1".into()), Some(1));
    }

    #[test]
    fn cycle_detected() {
        let a = Argument::builder("cyclic")
            .add("g1", NodeKind::Goal, "A")
            .add("g2", NodeKind::Goal, "B")
            .supported_by("g1", "g2")
            .supported_by("g2", "g1")
            .build()
            .unwrap();
        assert!(!a.is_acyclic());
        assert_eq!(a.support_depth(&"g1".into()), None);
    }

    #[test]
    fn duplicate_id_rejected() {
        let err = Argument::builder("x")
            .add("g1", NodeKind::Goal, "A")
            .add("g1", NodeKind::Goal, "B")
            .build()
            .unwrap_err();
        assert_eq!(err, ArgumentError::DuplicateId("g1".into()));
    }

    #[test]
    fn unknown_node_rejected() {
        let err = Argument::builder("x")
            .add("g1", NodeKind::Goal, "A")
            .supported_by("g1", "nope")
            .build()
            .unwrap_err();
        assert_eq!(err, ArgumentError::UnknownNode("nope".into()));
        let err = Argument::builder("x")
            .add("g1", NodeKind::Goal, "A")
            .supported_by("nope", "g1")
            .build()
            .unwrap_err();
        assert_eq!(err, ArgumentError::UnknownNode("nope".into()));
    }

    #[test]
    fn duplicate_edge_and_self_loop_rejected() {
        let err = Argument::builder("x")
            .add("g1", NodeKind::Goal, "A")
            .add("g2", NodeKind::Goal, "B")
            .supported_by("g1", "g2")
            .supported_by("g1", "g2")
            .build()
            .unwrap_err();
        assert_eq!(err, ArgumentError::DuplicateEdge("g1".into(), "g2".into()));
        let err = Argument::builder("x")
            .add("g1", NodeKind::Goal, "A")
            .supported_by("g1", "g1")
            .build()
            .unwrap_err();
        assert_eq!(err, ArgumentError::SelfLoop("g1".into()));
    }

    #[test]
    fn empty_id_rejected_not_panicking() {
        let err = Argument::builder("x")
            .add("", NodeKind::Goal, "A")
            .build()
            .unwrap_err();
        assert_eq!(err, ArgumentError::InvalidId(String::new()));
        let err = Argument::builder("x")
            .add("g1", NodeKind::Goal, "A")
            .edge("g1", "", EdgeKind::SupportedBy)
            .build()
            .unwrap_err();
        assert_eq!(err, ArgumentError::InvalidId(String::new()));
        let err = Argument::builder("x")
            .node(Node::new(NodeId::new(""), NodeKind::Goal, "A"))
            .build()
            .unwrap_err();
        assert_eq!(err, ArgumentError::InvalidId(String::new()));
    }

    #[test]
    fn error_display() {
        assert!(ArgumentError::DuplicateId("a".into())
            .to_string()
            .contains("duplicate"));
        assert!(ArgumentError::SelfLoop("a".into())
            .to_string()
            .contains("self-loop"));
        assert!(ArgumentError::InvalidId(String::new())
            .to_string()
            .contains("invalid"));
    }

    #[test]
    fn builder_keeps_first_error() {
        let err = Argument::builder("x")
            .add("g1", NodeKind::Goal, "A")
            .add("g1", NodeKind::Goal, "B") // first error
            .supported_by("g1", "missing") // would be second
            .build()
            .unwrap_err();
        assert_eq!(err, ArgumentError::DuplicateId("g1".into()));
    }

    #[test]
    fn nodes_of_kind_and_formalised_count() {
        let a = sample();
        assert_eq!(a.nodes_of_kind(NodeKind::Goal).len(), 3);
        assert_eq!(a.nodes_of_kind(NodeKind::Solution).len(), 2);
        assert_eq!(a.formalised_count(), 0);
    }

    #[test]
    fn node_mut_allows_enrichment() {
        use casekit_logic::prop::parse;
        let mut a = sample();
        a.node_mut(&"g2".into()).unwrap().formal = Some(crate::node::FormalPayload::Prop(
            parse("h1_mitigated").unwrap(),
        ));
        assert_eq!(a.formalised_count(), 1);
    }

    // -- arena / index plane ------------------------------------------

    #[test]
    fn interner_is_a_bijection() {
        let a = sample();
        for idx in a.node_indices() {
            assert_eq!(a.node_idx(a.id_at(idx)), Some(idx));
        }
        assert_eq!(a.node_indices().len(), a.len());
    }

    #[test]
    fn csr_matches_edge_list() {
        let a = sample();
        for (from, to, kind) in a.edges_idx() {
            assert!(a.children_idx(from, kind).any(|c| c == to));
            assert!(a.parents_idx(to).any(|p| p == from));
        }
        let total_out: usize = a.node_indices().map(|i| a.out_degree(i)).sum();
        let total_in: usize = a.node_indices().map(|i| a.in_degree(i)).sum();
        assert_eq!(total_out, a.edges().len());
        assert_eq!(total_in, a.edges().len());
    }

    #[test]
    fn idx_and_id_planes_agree() {
        let a = sample();
        for node in a.nodes() {
            let idx = a.node_idx(&node.id).unwrap();
            let by_id: BTreeSet<_> = a
                .all_children(&node.id)
                .iter()
                .map(|n| n.id.clone())
                .collect();
            let by_idx: BTreeSet<_> = a
                .all_children_idx(idx)
                .map(|i| a.id_at(i).clone())
                .collect();
            assert_eq!(by_id, by_idx);
            let parents_by_id: BTreeSet<_> =
                a.parents(&node.id).iter().map(|n| n.id.clone()).collect();
            let parents_by_idx: BTreeSet<_> =
                a.parents_idx(idx).map(|i| a.id_at(i).clone()).collect();
            assert_eq!(parents_by_id, parents_by_idx);
        }
    }

    #[test]
    fn reachable_from_matches_descendants() {
        let a = sample();
        let idx = a.node_idx(&"g1".into()).unwrap();
        let via_idx: BTreeSet<_> = a
            .reachable_from(idx)
            .into_iter()
            .map(|i| a.id_at(i).clone())
            .collect();
        let via_id: BTreeSet<_> = a
            .descendants(&"g1".into())
            .iter()
            .map(|n| n.id.clone())
            .collect();
        assert_eq!(via_idx, via_id);
    }

    #[test]
    fn from_parts_validates_like_builder() {
        let nodes = vec![
            Node::new("a", NodeKind::Goal, "A"),
            Node::new("b", NodeKind::Goal, "B"),
        ];
        let ok = Argument::from_parts(
            "p",
            nodes.clone(),
            vec![Edge {
                from: "a".into(),
                to: "b".into(),
                kind: EdgeKind::SupportedBy,
            }],
        )
        .unwrap();
        assert_eq!(ok.len(), 2);
        assert_eq!(ok.children(&"a".into(), EdgeKind::SupportedBy).len(), 1);

        let dup = Argument::from_parts("p", vec![nodes[0].clone(), nodes[0].clone()], vec![]);
        assert_eq!(dup.unwrap_err(), ArgumentError::DuplicateId("a".into()));

        let unknown = Argument::from_parts(
            "p",
            nodes.clone(),
            vec![Edge {
                from: "a".into(),
                to: "zz".into(),
                kind: EdgeKind::SupportedBy,
            }],
        );
        assert_eq!(
            unknown.unwrap_err(),
            ArgumentError::UnknownNode("zz".into())
        );

        let self_loop = Argument::from_parts(
            "p",
            nodes,
            vec![Edge {
                from: "a".into(),
                to: "a".into(),
                kind: EdgeKind::SupportedBy,
            }],
        );
        assert_eq!(self_loop.unwrap_err(), ArgumentError::SelfLoop("a".into()));
    }

    #[test]
    fn equality_ignores_insertion_order() {
        let a = Argument::builder("x")
            .add("g1", NodeKind::Goal, "A")
            .add("g2", NodeKind::Goal, "B")
            .supported_by("g1", "g2")
            .build()
            .unwrap();
        let b = Argument::builder("x")
            .add("g2", NodeKind::Goal, "B")
            .add("g1", NodeKind::Goal, "A")
            .supported_by("g1", "g2")
            .build()
            .unwrap();
        assert_eq!(a, b);
    }
}
