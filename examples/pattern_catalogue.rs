//! Formalised pattern instantiation (Graydon §III-I/§III-L): instantiate
//! library patterns with typed parameters, watch the type checker reject
//! Matsuno's "Railway hazards" misuse, annotate the instance, and run the
//! Denney–Naylor–Pai query from the paper.
//!
//! Run with: `cargo run --example pattern_catalogue`

use casekit::patterns::notation::parse_annotation;
use casekit::patterns::{library, Binding, ParamValue};
use casekit::query::{parse_query, traceability_view, AnnotationStore, FieldType, Ontology};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Instantiate the hazard-directed breakdown for a ground robot.
    let pattern = library::hazard_directed_breakdown();
    let binding = Binding::new().with("system", "Warehouse AGV").with(
        "hazards",
        ParamValue::List(vec![
            "collision with person".into(),
            "battery thermal runaway".into(),
            "unintended motion".into(),
        ]),
    );
    let argument = pattern.instantiate(&binding)?;
    println!(
        "instantiated `{}`: {} nodes, GSN-well-formed: {}",
        pattern.name,
        argument.len(),
        casekit::core::gsn::check(&argument).is_empty()
    );

    // 2. Matsuno's misuse example: a type error, caught.
    let typed = library::element_verification();
    match typed.instantiate(&Binding::new().with("element", "Railway hazards")) {
        Ok(_) => println!("misuse accepted (unexpected!)"),
        Err(e) => println!("misuse rejected by the type checker: {e}"),
    }

    // 3. Matsuno's bracket notation round-trips.
    let annotation = parse_annotation(r#"[85/util, /deadline, "AGV"/system]"#)?;
    println!(
        "parsed annotation: {} bound, {} uninstantiated",
        annotation.binding.len(),
        annotation.uninstantiated.len()
    );

    // 4. Annotate the instance and query it (the paper's own example).
    let mut ontology = Ontology::new();
    ontology.declare_enum("severity", ["catastrophic", "major", "minor"]);
    ontology.declare_enum("likelihood", ["frequent", "probable", "remote"]);
    ontology.declare_attribute(
        "hazard",
        [
            ("severity", FieldType::Enum("severity".into())),
            ("likelihood", FieldType::Enum("likelihood".into())),
        ],
    );
    let mut store = AnnotationStore::new(ontology);
    store.annotate(
        &argument,
        "g_h_1",
        "hazard",
        [("severity", "catastrophic"), ("likelihood", "remote")],
    )?;
    store.annotate(
        &argument,
        "g_h_2",
        "hazard",
        [("severity", "major"), ("likelihood", "probable")],
    )?;
    store.annotate(
        &argument,
        "g_h_3",
        "hazard",
        [("severity", "catastrophic"), ("likelihood", "frequent")],
    )?;

    let query = parse_query(
        "select goals where hazard.severity = catastrophic and hazard.likelihood = remote",
    )?;
    let matches = query.run(&argument, &store);
    println!("query `{query}` matches: {matches:?}");

    // 5. Extract the traceability view a reviewer would read.
    let view = traceability_view(&argument, &matches)?;
    println!(
        "\n--- traceability view ---\n{}",
        casekit::core::render::ascii_tree(&view)
    );
    Ok(())
}
