//! Property tests for the lint engine.
//!
//! Two invariants ride on randomly generated assurance cases:
//!
//! 1. **Determinism.** The diagnostic stream for a corpus is identical
//!    across repeated runs and across every runtime worker count — the
//!    `diagnostics_agree` gate of `BENCH_lint.json`, exercised over
//!    arbitrary formal content rather than the bench's fixed corpus.
//! 2. **Redundant-premise differential.** CK104 agrees with a naive
//!    oracle that enumerates premise subsets with the formula-level
//!    truth-table/DPLL check, gated exactly as the pass documents:
//!    only consistent, entailed steps are examined for idle premises.

use casekit_analysis::{lint_source, lint_sources, LintCode, LintConfig};
use casekit_logic::prop::Formula;
use casekit_runtime::Runtime;
use proptest::prelude::*;

/// Arbitrary propositional formulas over a small atom alphabet, kept
/// shallow so each lint run stays microseconds-scale.
fn formula_strategy() -> impl Strategy<Value = Formula> {
    let leaf = prop_oneof![
        Just(Formula::True),
        Just(Formula::False),
        prop_oneof![Just("p"), Just("q"), Just("r"), Just("s")].prop_map(Formula::atom),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(Formula::not),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            (inner.clone(), inner).prop_map(|(a, b)| a.implies(b)),
        ]
    })
}

/// A random single-step case: `conclusion` at the root, one strategy,
/// one formal premise goal per formula, each closed with a solution.
fn case_strategy() -> impl Strategy<Value = (Vec<Formula>, Formula)> {
    (
        collection::vec(formula_strategy(), 1..4),
        formula_strategy(),
    )
}

/// Renders the generated step as DSL source — the same shape the bench
/// corpus uses, so the engine's premise/conclusion literals line up
/// with `premises`/`conclusion` by construction.
fn render_case(premises: &[Formula], conclusion: &Formula) -> String {
    use std::fmt::Write as _;
    let mut src = String::new();
    let _ = writeln!(src, "argument \"prop\" {{");
    let _ = writeln!(src, "  goal g0 \"top claim\" formal \"{conclusion}\" {{");
    let _ = writeln!(src, "    strategy s0 \"decompose\" {{");
    for (i, premise) in premises.iter().enumerate() {
        let _ = writeln!(
            src,
            "      goal pr{i} \"premise {i}\" formal \"{premise}\" {{ solution ev{i} \"evidence record {i}\" }}"
        );
    }
    let _ = writeln!(src, "    }}");
    let _ = writeln!(src, "  }}");
    let _ = writeln!(src, "}}");
    src
}

fn conjunction<'f>(formulas: impl Iterator<Item = &'f Formula>) -> Formula {
    formulas.fold(Formula::True, |acc, f| acc.and(f.clone()))
}

/// `premises ⊨ conclusion`, decided at the [`Formula`] level — an
/// implementation wholly independent of the lint engine's shared CDCL
/// session and witness pool.
fn entails(premises: &[&Formula], conclusion: &Formula) -> bool {
    !conjunction(premises.iter().copied())
        .and(conclusion.clone().not())
        .is_satisfiable()
}

/// The naive CK104 oracle: enumerate the drop-one premise subsets and
/// report every index whose removal leaves the conclusion entailed,
/// under the pass's gates (consistent premises, entailed conclusion).
fn naive_redundant(premises: &[Formula], conclusion: &Formula) -> Vec<usize> {
    let all: Vec<&Formula> = premises.iter().collect();
    if !conjunction(all.iter().copied()).is_satisfiable() {
        return Vec::new(); // CK101 territory, no redundancy verdicts.
    }
    if !entails(&all, conclusion) {
        return Vec::new(); // CK107 territory.
    }
    (0..premises.len())
        .filter(|&i| {
            let rest: Vec<&Formula> = premises
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, f)| f)
                .collect();
            entails(&rest, conclusion)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The engine's CK104 verdicts equal the subset-enumeration oracle's.
    #[test]
    fn redundant_premise_lint_matches_naive_oracle(case in case_strategy()) {
        let (premises, conclusion) = case;
        let src = render_case(&premises, &conclusion);
        let diagnostics = lint_source(&src, &LintConfig::new()).expect("rendered case parses");
        let mut flagged: Vec<usize> = diagnostics
            .iter()
            .filter(|d| d.code == LintCode::RedundantPremise)
            .map(|d| {
                let id = d.primary.as_ref().expect("CK104 anchors to the premise");
                id.as_str()
                    .strip_prefix("pr")
                    .and_then(|n| n.parse().ok())
                    .expect("CK104 primary is a premise goal")
            })
            .collect();
        flagged.sort_unstable();
        prop_assert_eq!(flagged, naive_redundant(&premises, &conclusion));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// One corpus, many runtimes: the diagnostic stream is byte-identical
    /// across repeated runs and across every worker count.
    #[test]
    fn diagnostics_deterministic_across_worker_counts(
        cases in collection::vec(case_strategy(), 1..4)
    ) {
        let sources: Vec<String> = cases
            .iter()
            .map(|(premises, conclusion)| render_case(premises, conclusion))
            .collect();
        let config = LintConfig::new();
        let reference = lint_sources(&sources, &config, &Runtime::serial())
            .expect("rendered corpus parses");
        // Repeated serial run: pure determinism.
        let again = lint_sources(&sources, &config, &Runtime::serial())
            .expect("rendered corpus parses");
        prop_assert_eq!(&reference, &again);
        // Any worker count: scheduling must not reorder or change anything.
        for workers in [2, 3, 5] {
            let parallel = lint_sources(&sources, &config, &Runtime::with_workers(workers))
                .expect("rendered corpus parses");
            prop_assert_eq!(&reference, &parallel, "workers = {}", workers);
        }
    }
}
