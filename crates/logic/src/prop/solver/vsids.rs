//! VSIDS decision ordering and phase saving — the branching heuristic
//! of the CDCL core.
//!
//! **VSIDS** (Variable State Independent Decaying Sum) keeps one
//! floating-point *activity* per variable. Every conflict bumps the
//! activity of each variable that participated in conflict analysis,
//! and the bump increment grows geometrically after each conflict —
//! which is equivalent to exponentially decaying every other variable's
//! activity without ever touching it. Decisions always pick the
//! unassigned variable with the highest activity, so the search keeps
//! circling the variables implicated in recent conflicts instead of
//! sweeping a static order.
//!
//! The order lives in an *indexed binary max-heap* ([`Vsids`]): `pop`
//! and `insert` are `O(log n)`, and a position table makes `bump` of an
//! enqueued variable an in-place sift. Ties break on the lower variable
//! index, which keeps runs deterministic.
//!
//! **Phase saving** rides along: whenever the trail unwinds past an
//! assignment, the variable's last polarity is remembered, and the next
//! decision on that variable re-applies it. After a restart or a long
//! backjump the solver re-enters the part of the search space it was
//! making progress in, instead of recomputing it from the default
//! polarity.

use crate::prop::intern::Var;

/// Sentinel for "not currently enqueued" in the position table.
const ABSENT: u32 = u32::MAX;

/// When any activity exceeds this bound, every activity and the bump
/// increment are rescaled to keep the `f64`s finite. Uniform scaling
/// preserves the heap order.
const RESCALE_LIMIT: f64 = 1e100;
const RESCALE_FACTOR: f64 = 1e-100;

/// Activity-ordered decision queue with saved phases.
#[derive(Debug, Clone)]
pub struct Vsids {
    /// Per variable: conflict-participation activity.
    activity: Vec<f64>,
    /// Per variable: last assigned polarity (decision default).
    saved_phase: Vec<bool>,
    /// Max-heap of variable indices, ordered by activity (ties: lower
    /// index wins).
    heap: Vec<u32>,
    /// Per variable: its slot in `heap`, or [`ABSENT`].
    position: Vec<u32>,
    /// Current bump increment (grows by `1 / decay` per conflict).
    inc: f64,
    /// Per-conflict decay factor in `(0, 1)`.
    decay: f64,
}

impl Default for Vsids {
    fn default() -> Self {
        Self::new()
    }
}

impl Vsids {
    /// An empty ordering with the standard decay (0.95).
    pub fn new() -> Self {
        Vsids {
            activity: Vec::new(),
            saved_phase: Vec::new(),
            heap: Vec::new(),
            position: Vec::new(),
            inc: 1.0,
            decay: 0.95,
        }
    }

    /// Number of tracked variables.
    pub fn len(&self) -> usize {
        self.activity.len()
    }

    /// Whether no variables are tracked.
    pub fn is_empty(&self) -> bool {
        self.activity.is_empty()
    }

    /// Registers one more variable (activity 0, default phase
    /// positive, enqueued for decisions).
    pub fn grow(&mut self) {
        let v = Var(u32::try_from(self.activity.len()).expect("variable count fits in u32"));
        self.activity.push(0.0);
        self.saved_phase.push(true);
        self.position.push(ABSENT);
        self.insert(v);
    }

    /// The variable's current activity.
    pub fn activity(&self, v: Var) -> f64 {
        self.activity[v.index()]
    }

    /// The saved polarity for `v` (the decision default).
    pub fn phase(&self, v: Var) -> bool {
        self.saved_phase[v.index()]
    }

    /// Records the polarity `v` held when the trail unwound past it.
    pub fn save_phase(&mut self, v: Var, positive: bool) {
        self.saved_phase[v.index()] = positive;
    }

    /// Bumps `v`'s activity by the current increment, restoring the
    /// heap order if `v` is enqueued.
    pub fn bump(&mut self, v: Var) {
        self.activity[v.index()] += self.inc;
        if self.activity[v.index()] > RESCALE_LIMIT {
            for a in &mut self.activity {
                *a *= RESCALE_FACTOR;
            }
            self.inc *= RESCALE_FACTOR;
        }
        let pos = self.position[v.index()];
        if pos != ABSENT {
            self.sift_up(pos as usize);
        }
    }

    /// Ends a conflict: future bumps weigh more, which decays every
    /// existing activity relative to them.
    pub fn decay(&mut self) {
        self.inc /= self.decay;
    }

    /// Enqueues `v` for decisions (no-op if already enqueued).
    pub fn insert(&mut self, v: Var) {
        if self.position[v.index()] != ABSENT {
            return;
        }
        let slot = self.heap.len();
        self.heap.push(v.0);
        self.position[v.index()] = slot as u32;
        self.sift_up(slot);
    }

    /// Removes and returns the highest-activity enqueued variable.
    pub fn pop(&mut self) -> Option<Var> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("heap is non-empty");
        self.position[top as usize] = ABSENT;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.position[last as usize] = 0;
            self.sift_down(0);
        }
        Some(Var(top))
    }

    /// Whether `v` is currently enqueued.
    pub fn contains(&self, v: Var) -> bool {
        self.position[v.index()] != ABSENT
    }

    /// `a` orders strictly before `b` (higher activity; ties to the
    /// lower index).
    fn precedes(&self, a: u32, b: u32) -> bool {
        let (aa, ab) = (self.activity[a as usize], self.activity[b as usize]);
        aa > ab || (aa == ab && a < b)
    }

    fn sift_up(&mut self, mut slot: usize) {
        while slot > 0 {
            let parent = (slot - 1) / 2;
            if !self.precedes(self.heap[slot], self.heap[parent]) {
                break;
            }
            self.swap_slots(slot, parent);
            slot = parent;
        }
    }

    fn sift_down(&mut self, mut slot: usize) {
        loop {
            let (l, r) = (2 * slot + 1, 2 * slot + 2);
            let mut best = slot;
            if l < self.heap.len() && self.precedes(self.heap[l], self.heap[best]) {
                best = l;
            }
            if r < self.heap.len() && self.precedes(self.heap[r], self.heap[best]) {
                best = r;
            }
            if best == slot {
                return;
            }
            self.swap_slots(slot, best);
            slot = best;
        }
    }

    fn swap_slots(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.position[self.heap[a] as usize] = a as u32;
        self.position[self.heap[b] as usize] = b as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vsids_with(n: usize) -> Vsids {
        let mut v = Vsids::new();
        for _ in 0..n {
            v.grow();
        }
        v
    }

    #[test]
    fn pops_in_activity_order_with_index_ties() {
        let mut v = vsids_with(5);
        v.bump(Var(3));
        v.bump(Var(3));
        v.bump(Var(1));
        // 3 (2 bumps) > 1 (1 bump) > 0, 2, 4 (ties by index).
        let order: Vec<u32> = std::iter::from_fn(|| v.pop()).map(|x| x.0).collect();
        assert_eq!(order, vec![3, 1, 0, 2, 4]);
        assert!(v.pop().is_none());
    }

    #[test]
    fn bump_of_enqueued_variable_reorders_in_place() {
        let mut v = vsids_with(4);
        v.bump(Var(0));
        assert_eq!(v.pop(), Some(Var(0)));
        // 0 is popped (dequeued); bumping it must not re-enqueue.
        v.bump(Var(0));
        assert!(!v.contains(Var(0)));
        v.bump(Var(2));
        v.bump(Var(2));
        v.bump(Var(2));
        assert_eq!(v.pop(), Some(Var(2)));
        v.insert(Var(0));
        assert_eq!(v.pop(), Some(Var(0)), "re-inserted var keeps its activity");
    }

    #[test]
    fn decay_makes_recent_bumps_outweigh_old_ones() {
        let mut v = vsids_with(2);
        for _ in 0..10 {
            v.bump(Var(0));
            v.decay();
        }
        // One fresh bump of 1 now outweighs ten old bumps of 0.
        v.bump(Var(1));
        assert!(v.activity(Var(1)) < v.activity(Var(0)) * 2.0);
        for _ in 0..60 {
            v.decay();
        }
        v.bump(Var(1));
        assert!(v.activity(Var(1)) > v.activity(Var(0)));
        assert_eq!(v.pop(), Some(Var(1)));
    }

    #[test]
    fn rescaling_keeps_activities_finite_and_ordered() {
        let mut v = vsids_with(3);
        v.bump(Var(1));
        for _ in 0..4000 {
            v.bump(Var(2));
            v.decay();
        }
        assert!(v.activity(Var(2)).is_finite());
        assert!(v.activity(Var(2)) > v.activity(Var(1)));
        assert_eq!(v.pop(), Some(Var(2)));
    }

    #[test]
    fn phase_saving_round_trips() {
        let mut v = vsids_with(2);
        assert!(v.phase(Var(0)), "default phase is positive");
        v.save_phase(Var(0), false);
        assert!(!v.phase(Var(0)));
        assert!(v.phase(Var(1)));
    }

    #[test]
    fn insert_is_idempotent() {
        let mut v = vsids_with(2);
        v.insert(Var(0));
        v.insert(Var(0));
        assert_eq!(v.pop(), Some(Var(0)));
        assert_eq!(v.pop(), Some(Var(1)));
        assert_eq!(v.pop(), None);
        assert!(!v.is_empty());
        assert_eq!(v.len(), 2);
    }
}
