//! # casekit-patterns
//!
//! Formalised GSN argument patterns with typed parameters and checked
//! instantiation, implementing the proposals of Matsuno & Taguchi and
//! Denney & Pai as surveyed in Graydon §III-I/§III-L.
//!
//! A [`Pattern`] is an argument template whose node texts contain
//! `{placeholder}`s. Parameters are *typed* ([`ParamType`]): integers with
//! ranges (Matsuno's CPU-utilisation 0–100 % example), naturals, strings,
//! user-defined enumerations (Denney et al.'s
//! `element ::= aileron | elevator | flaps`), and lists for multiplicity
//! expansion. [`Pattern::instantiate`] type-checks a [`Binding`] set and
//! produces a concrete [`casekit_core::Argument`]; the misuse Matsuno's
//! 2014 paper worries about — instantiating a *system name* slot with
//! "Railway hazards" — is rejected by the enum type, exactly the "type
//! checking prevents such a misplacement" claim, made executable (and
//! testable for its limits: a *plausible but wrong* value of the right
//! type still passes, which is the paper's §V-A caveat).
//!
//! [`notation`] parses Matsuno's bracket notation `[2/x, /y, "hello"/z]`.

#![forbid(unsafe_code)]

pub mod library;
pub mod notation;

mod binding;
mod pattern;

pub use binding::{Binding, ParamType, ParamValue, TypeError};
pub use pattern::{InstantiationError, Multiplicity, Pattern, PatternEdge, PatternNode};
