//! Satisfiability at the [`Formula`] level.
//!
//! [`dpll`] and [`dpll_clauses`] keep their historical signatures but
//! are now thin wrappers over the interned solver core
//! ([`super::solver`]): formulas are Tseitin-compiled straight to
//! packed integer literals and decided by the iterative
//! two-watched-literal solver — no `BTreeSet` clauses, no recursion, no
//! per-branch cloning. The original recursive implementation survives
//! unchanged in [`legacy`] as a differential-testing oracle and the
//! measured baseline for `repro logic`.

use super::ast::Formula;
use super::cnf::ClauseSet;
use super::eval::Valuation;
use super::solver::Theory;
use crate::error::LogicError;

/// Result of a satisfiability check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatResult {
    /// Satisfiable, with a witnessing valuation over the formula's atoms.
    Sat(Valuation),
    /// Unsatisfiable.
    Unsat,
}

impl SatResult {
    /// The witnessing model, if satisfiable.
    pub fn model(&self) -> Option<&Valuation> {
        match self {
            SatResult::Sat(v) => Some(v),
            SatResult::Unsat => None,
        }
    }

    /// Whether the result is `Sat`.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }
}

/// Decides satisfiability of `formula` via the interned solver core.
///
/// The returned model is restricted to the formula's own atoms (Tseitin
/// definition variables are internal to the solver).
pub fn dpll(formula: &Formula) -> SatResult {
    let mut theory = Theory::new();
    theory.assert_formula(formula);
    if theory.check() {
        SatResult::Sat(theory.model(formula.atoms().iter()))
    } else {
        SatResult::Unsat
    }
}

/// Decides satisfiability of a clause set directly (no Tseitin step —
/// the set is already CNF).
pub fn dpll_clauses(cs: &ClauseSet) -> SatResult {
    let mut theory = Theory::new();
    theory.assert_clauses(cs);
    if theory.check() {
        SatResult::Sat(theory.model(cs.atoms().iter()))
    } else {
        SatResult::Unsat
    }
}

/// Enumerates all models of `formula` over its own atoms.
///
/// Exponential in the number of atoms; intended for small formulas (e.g.
/// explaining an argument's admissible evidence states). Returns
/// [`LogicError::TooManyAtoms`] above 24 atoms rather than attempting
/// 2^24+ rows.
pub fn all_models(formula: &Formula) -> Result<Vec<Valuation>, LogicError> {
    let atoms: Vec<_> = formula.atoms().into_iter().collect();
    let n = atoms.len();
    if n > 24 {
        return Err(LogicError::TooManyAtoms {
            atoms: n,
            limit: 24,
        });
    }
    let mut out = Vec::new();
    for bits in 0..(1u64 << n) {
        let v: Valuation = atoms
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, a)| (a, bits >> (n - 1 - i) & 1 == 1))
            .collect();
        if formula.eval(&v) {
            out.push(v);
        }
    }
    Ok(out)
}

/// The seed's recursive DPLL over `BTreeSet` clauses and `BTreeMap`
/// valuations, kept verbatim as a differential-testing oracle (the
/// solver-agreement property tests check every engine against it) and
/// as the measured "before" in the `repro logic` benchmark artifact.
///
/// New code should use [`dpll`]/[`dpll_clauses`] or a
/// [`Theory`](super::solver::Theory) session.
pub mod legacy {
    use super::super::ast::Formula;
    use super::super::cnf::{Clause, ClauseSet, Literal};
    use super::{SatResult, Valuation};
    use std::collections::BTreeMap;

    /// Decides satisfiability of `formula` via Tseitin + recursive DPLL
    /// (the pre-interned-core implementation).
    pub fn dpll(formula: &Formula) -> SatResult {
        let cs = formula.to_cnf_tseitin();
        match dpll_clauses(&cs) {
            SatResult::Unsat => SatResult::Unsat,
            SatResult::Sat(v) => {
                let own = formula.atoms();
                let filtered: Valuation = own
                    .into_iter()
                    .map(|a| {
                        let val = v.get(&a).unwrap_or(false);
                        (a, val)
                    })
                    .collect();
                SatResult::Sat(filtered)
            }
        }
    }

    /// Decides satisfiability of a clause set with the recursive solver.
    pub fn dpll_clauses(cs: &ClauseSet) -> SatResult {
        let clauses: Vec<Clause> = cs.clauses().cloned().collect();
        let mut assignment = BTreeMap::new();
        if solve(&clauses, &mut assignment) {
            SatResult::Sat(assignment.into_iter().collect())
        } else {
            SatResult::Unsat
        }
    }

    fn solve(clauses: &[Clause], assignment: &mut BTreeMap<super::super::ast::Atom, bool>) -> bool {
        // Unit propagation + pure literal elimination to a fixed point.
        let mut trail: Vec<super::super::ast::Atom> = Vec::new();
        loop {
            match propagate_once(clauses, assignment) {
                Propagation::Conflict => {
                    for a in trail {
                        assignment.remove(&a);
                    }
                    return false;
                }
                Propagation::Assigned(atom) => {
                    trail.push(atom);
                }
                Propagation::Fixpoint => break,
            }
        }

        // Check status and pick a branching atom.
        let mut branch_atom = None;
        for clause in clauses {
            let mut satisfied = false;
            let mut unassigned = None;
            for lit in clause.literals() {
                match assignment.get(&lit.atom) {
                    Some(&v) if v == lit.positive => {
                        satisfied = true;
                        break;
                    }
                    Some(_) => {}
                    None => unassigned = Some(lit.atom.clone()),
                }
            }
            if !satisfied {
                match unassigned {
                    None => {
                        // All literals false: conflict.
                        for a in trail {
                            assignment.remove(&a);
                        }
                        return false;
                    }
                    Some(a) => {
                        if branch_atom.is_none() {
                            branch_atom = Some(a);
                        }
                    }
                }
            }
        }

        let atom = match branch_atom {
            None => return true, // every clause satisfied
            Some(a) => a,
        };

        for value in [true, false] {
            assignment.insert(atom.clone(), value);
            if solve(clauses, assignment) {
                return true;
            }
            assignment.remove(&atom);
        }
        for a in trail {
            assignment.remove(&a);
        }
        false
    }

    enum Propagation {
        /// A unit or pure assignment was made (atom recorded for
        /// backtracking).
        Assigned(super::super::ast::Atom),
        /// Some clause has all literals false.
        Conflict,
        /// Nothing more to propagate.
        Fixpoint,
    }

    fn propagate_once(
        clauses: &[Clause],
        assignment: &mut BTreeMap<super::super::ast::Atom, bool>,
    ) -> Propagation {
        // Unit clauses.
        for clause in clauses {
            let mut satisfied = false;
            let mut unassigned: Vec<&Literal> = Vec::new();
            for lit in clause.literals() {
                match assignment.get(&lit.atom) {
                    Some(&v) if v == lit.positive => {
                        satisfied = true;
                        break;
                    }
                    Some(_) => {}
                    None => unassigned.push(lit),
                }
            }
            if satisfied {
                continue;
            }
            match unassigned.len() {
                0 => return Propagation::Conflict,
                1 => {
                    let lit = unassigned[0];
                    assignment.insert(lit.atom.clone(), lit.positive);
                    return Propagation::Assigned(lit.atom.clone());
                }
                _ => {}
            }
        }

        // Pure literals: atoms appearing with a single polarity among
        // not-yet-satisfied clauses.
        let mut polarity: BTreeMap<super::super::ast::Atom, (bool, bool)> = BTreeMap::new();
        for clause in clauses {
            let satisfied = clause.literals().any(|lit| {
                assignment
                    .get(&lit.atom)
                    .is_some_and(|&v| v == lit.positive)
            });
            if satisfied {
                continue;
            }
            for lit in clause.literals() {
                if assignment.contains_key(&lit.atom) {
                    continue;
                }
                let entry = polarity.entry(lit.atom.clone()).or_insert((false, false));
                if lit.positive {
                    entry.0 = true;
                } else {
                    entry.1 = true;
                }
            }
        }
        for (atom, (pos, neg)) in polarity {
            if pos != neg {
                assignment.insert(atom.clone(), pos);
                return Propagation::Assigned(atom);
            }
        }
        Propagation::Fixpoint
    }
}

#[cfg(test)]
mod tests {
    use super::super::parse;
    use super::*;

    #[test]
    fn sat_simple() {
        let f = parse("p & q").unwrap();
        let r = dpll(&f);
        let m = r.model().expect("should be sat");
        assert!(f.eval(m));
    }

    #[test]
    fn unsat_simple() {
        assert_eq!(dpll(&parse("p & ~p").unwrap()), SatResult::Unsat);
        assert!(!dpll(&parse("p & ~p").unwrap()).is_sat());
    }

    #[test]
    fn model_satisfies_formula() {
        for src in [
            "(p | q) & (~p | r) & (~q | r)",
            "(a -> b) & (b -> c) & a",
            "(p <-> q) & (q <-> r)",
            "~(p -> q) | (q & r)",
        ] {
            let f = parse(src).unwrap();
            match dpll(&f) {
                SatResult::Sat(m) => assert!(f.eval(&m), "model doesn't satisfy {src}"),
                SatResult::Unsat => panic!("{src} should be satisfiable"),
            }
        }
    }

    #[test]
    fn unsat_pigeonhole_2_into_1() {
        // Two pigeons, one hole: p1h1 & p2h1 & ~(p1h1 & p2h1) is unsat.
        let f = parse("p1h1 & p2h1 & ~(p1h1 & p2h1)").unwrap();
        assert_eq!(dpll(&f), SatResult::Unsat);
    }

    #[test]
    fn dpll_agrees_with_truth_table_exhaustively() {
        // All 3-atom formulas from a small template set.
        let templates = [
            "p & (q | ~r)",
            "(p -> q) -> (q -> r)",
            "~(p <-> (q & r))",
            "(p | q | r) & (~p | ~q) & (~q | ~r) & (~p | ~r)",
            "p & ~p & q",
        ];
        for src in templates {
            let f = parse(src).unwrap();
            let tt = super::super::eval::truth_table(&f).expect("3 atoms");
            let brute_sat = tt.models() > 0;
            assert_eq!(dpll(&f).is_sat(), brute_sat, "disagreement on {src}");
        }
    }

    #[test]
    fn interned_solver_agrees_with_legacy_oracle() {
        for src in [
            "p & (q | ~r)",
            "(p -> q) & p & ~q",
            "(a <-> b) & (b <-> c) & a & ~c",
            "(p | q | r) & (~p | ~q) & (~q | ~r) & (~p | ~r)",
            "T -> (p | F)",
            "~(p <-> (q & r)) | (p & ~q)",
        ] {
            let f = parse(src).unwrap();
            assert_eq!(
                dpll(&f).is_sat(),
                legacy::dpll(&f).is_sat(),
                "oracle disagreement on {src}"
            );
        }
    }

    #[test]
    fn all_models_counts() {
        let f = parse("p | q").unwrap();
        assert_eq!(all_models(&f).unwrap().len(), 3);
        let f = parse("p & ~p").unwrap();
        assert!(all_models(&f).unwrap().is_empty());
        let f = parse("p <-> q").unwrap();
        assert_eq!(all_models(&f).unwrap().len(), 2);
    }

    #[test]
    fn all_models_rejects_wide_formulas() {
        let wide = Formula::conj((0..25).map(|i| Formula::atom(format!("a{i}"))));
        match all_models(&wide) {
            Err(LogicError::TooManyAtoms {
                atoms: 25,
                limit: 24,
            }) => {}
            other => panic!("expected TooManyAtoms, got {other:?}"),
        }
    }

    #[test]
    fn dpll_clauses_empty_set_is_sat() {
        assert!(dpll_clauses(&ClauseSet::new()).is_sat());
        assert!(legacy::dpll_clauses(&ClauseSet::new()).is_sat());
    }

    #[test]
    fn dpll_clauses_with_empty_clause_is_unsat() {
        use super::super::cnf::Clause;
        let mut cs = ClauseSet::new();
        cs.insert(Clause::empty());
        assert_eq!(dpll_clauses(&cs), SatResult::Unsat);
        assert_eq!(legacy::dpll_clauses(&cs), SatResult::Unsat);
    }

    #[test]
    fn larger_chain_implication() {
        // a0 & (a0->a1) & ... & (a29->a30) & ~a30 is unsat.
        let mut src = String::from("a0");
        for i in 0..30 {
            src.push_str(&format!(" & (a{} -> a{})", i, i + 1));
        }
        src.push_str(" & ~a30");
        assert_eq!(dpll(&parse(&src).unwrap()), SatResult::Unsat);
        // Dropping the final negation makes it satisfiable.
        let mut src2 = String::from("a0");
        for i in 0..30 {
            src2.push_str(&format!(" & (a{} -> a{})", i, i + 1));
        }
        assert!(dpll(&parse(&src2).unwrap()).is_sat());
    }
}
