//! A Brunel & Cazin-style UAV safety argument (Graydon §III-G): the
//! Detect-and-Avoid claim is formalised in LTL and validated against a
//! Kripke model of the encounter logic; the argument carries the claim as
//! a temporal payload; confidence is propagated over the evidence.
//!
//! Run with: `cargo run --example uav_safety_case`

use casekit::core::{confidence, dsl, gsn, hicase, NodeId};
use casekit::logic::ltl::{parse_ltl, Kripke};
use std::collections::BTreeMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The argument, with the DAA claim as an LTL payload.
    let argument = dsl::parse_argument(
        r#"
        argument "UAV operations" {
          goal g1 "UAV operations are acceptably safe" {
            context c1 "Operations in segregated airspace"
            strategy s1 "Argue over the identified hazard classes" {
              goal g2 "Mid-air collision risk is acceptably mitigated"
                temporal "G (below_min -> (nonzero U above_min))" {
                solution e1 "Model checking of the encounter automaton"
                solution e2 "Flight-test campaign records"
              }
              goal g3 "Loss-of-link is handled safely" {
                solution e3 "Lost-link procedure validation"
              }
              goal g4 "Ground impact energy is within limits" {
                solution e4 "Parachute descent analysis"
              }
            }
          }
        }
        "#,
    )?;
    assert!(gsn::check(&argument).is_empty());

    // 2. The system model backing e1: cruise / conflict / avoiding states.
    let mut model = Kripke::new();
    let cruise = model.add_state(vec!["above_min", "nonzero"]);
    let conflict = model.add_state(vec!["below_min", "nonzero"]);
    let avoiding = model.add_state(vec!["nonzero"]);
    model.add_transition(cruise, cruise).unwrap();
    model.add_transition(cruise, conflict).unwrap();
    model.add_transition(conflict, avoiding).unwrap();
    model.add_transition(avoiding, cruise).unwrap();
    model.add_initial(cruise).unwrap();

    let claim = parse_ltl("G (below_min -> (nonzero U above_min))")?;
    let result = model.check_bounded(&claim, 16)?;
    println!("DAA claim `{claim}` holds within bound: {}", result.holds());

    // 3. Propagate confidence from the evidence leaves.
    let mut leaves = BTreeMap::new();
    leaves.insert(NodeId::new("e1"), 0.95); // model checking
    leaves.insert(NodeId::new("e2"), 0.80); // flight test
    leaves.insert(NodeId::new("e3"), 0.85);
    leaves.insert(NodeId::new("e4"), 0.90);
    let assessment = confidence::propagate(
        &argument,
        &leaves,
        0.5,
        0.97,
        confidence::Aggregation::NoisyAnd,
    )?;
    println!(
        "root confidence (noisy-AND): {:.3}",
        assessment.confidence(&NodeId::new("g1")).unwrap()
    );

    // 4. A hicase view for the review meeting: collapse everything but the
    //    collision branch.
    let mut view = hicase::View::new(&argument);
    view.collapse(&NodeId::new("g3"));
    view.collapse(&NodeId::new("g4"));
    println!("\n--- review view ---\n{}", view.render());
    Ok(())
}
