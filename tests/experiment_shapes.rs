//! Robustness of the §VI experiment *shapes* across seeds: the
//! directional findings must not be artefacts of one RNG stream.

use casekit::experiments::{exp_a, exp_b, exp_c, exp_d, exp_e};

const SEEDS: [u64; 3] = [1, 0xBEEF, 982_451_653];

#[test]
fn exp_a_shape_robust_across_seeds() {
    for seed in SEEDS {
        let r = exp_a::run(&exp_a::Config {
            seed,
            ..exp_a::Config::default()
        })
        .unwrap();
        assert_eq!(r.formal_catch_machine, 1.0, "seed {seed}");
        assert!(r.formal_catch_human < 1.0, "seed {seed}");
        assert!(
            r.minutes_treatment.mean < r.minutes_control.mean,
            "seed {seed}"
        );
    }
}

#[test]
fn exp_b_shape_robust_across_seeds() {
    for seed in SEEDS {
        let r = exp_b::run(&exp_b::Config {
            seed,
            ..exp_b::Config::default()
        })
        .unwrap();
        for pair in r.cells.windows(2) {
            assert!(pair[1].minutes.mean > pair[0].minutes.mean, "seed {seed}");
        }
        for cell in &r.cells {
            assert!(
                cell.minutes_skilled.mean < cell.minutes_unskilled.mean,
                "seed {seed}, size {}",
                cell.size
            );
        }
    }
}

#[test]
fn exp_c_shape_robust_across_seeds() {
    use casekit::experiments::population::Background;
    for seed in SEEDS {
        let r = exp_c::run(&exp_c::Config {
            seed,
            ..exp_c::Config::default()
        })
        .unwrap();
        let manager_sym = r
            .cell(Background::Manager, exp_c::Notation::Symbolic)
            .comprehension
            .mean;
        let manager_prose = r
            .cell(Background::Manager, exp_c::Notation::Informal)
            .comprehension
            .mean;
        let engineer_sym = r
            .cell(Background::SoftwareEngineer, exp_c::Notation::Symbolic)
            .comprehension
            .mean;
        assert!(manager_sym < manager_prose - 0.2, "seed {seed}");
        assert!(engineer_sym > manager_sym + 0.2, "seed {seed}");
    }
}

#[test]
fn exp_d_shape_robust_across_seeds() {
    for seed in SEEDS {
        let r = exp_d::run(&exp_d::Config {
            seed,
            ..exp_d::Config::default()
        })
        .unwrap();
        assert_eq!(r.type_defects_tool, 0.0, "seed {seed}");
        assert!(r.type_defects_manual > 0.0, "seed {seed}");
        assert!(r.semantic_defects.1 > 0.0, "seed {seed}");
    }
}

#[test]
fn exp_e_shape_robust_across_seeds() {
    for seed in SEEDS {
        let r = exp_e::run(&exp_e::Config {
            seed,
            ..exp_e::Config::default()
        })
        .unwrap();
        assert!(
            r.minutes_tracing.mean < r.minutes_probing.mean,
            "seed {seed}"
        );
        assert!(
            r.agreement_tracing > r.agreement_probing,
            "seed {seed}: {} vs {}",
            r.agreement_tracing,
            r.agreement_probing
        );
    }
}

#[test]
fn experiments_scale_with_config() {
    // Doubling the per-arm count must not change the directional results
    // and must tighten confidence intervals.
    let small = exp_a::run(&exp_a::Config {
        per_arm: 15,
        ..exp_a::Config::default()
    })
    .unwrap();
    let large = exp_a::run(&exp_a::Config {
        per_arm: 60,
        ..exp_a::Config::default()
    })
    .unwrap();
    assert!(large.minutes_control.ci95 < small.minutes_control.ci95);
    assert!(large.minutes_treatment.mean < large.minutes_control.mean);
}
