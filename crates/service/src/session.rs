//! One live case: the argument, its persistent compiled state, and the
//! dirty-tracking that makes edits cheap.

use crate::ops::{CaseAnswers, EditError, EditOp, ProbeAnswer};
use casekit_analysis::{lint_argument, lint_compiled_with_pool, LintConfig, WitnessPool};
use casekit_core::semantics::{
    affected_step_parents, formal_conclusion, formal_premises, probe_argument, ArgumentTheory,
    PayloadCache,
};
use casekit_core::{Argument, Edge, EdgeKind, FormalPayload, Node, NodeId};
use casekit_fallacies::checker::{check_argument, MachineFinding, MachineReport};
use casekit_fallacies::formal;
use casekit_logic::prop::{Formula, Theory};
use std::collections::HashMap;

/// Below this many live payload variables, garbage never triggers a
/// whole-theory rebuild — tiny cases churn freely without compaction.
const COMPACTION_FLOOR: usize = 256;

/// Counters describing what a session's lifetime actually cost — the
/// observability the bench and tests use to prove the incremental path
/// is taken (not just that answers agree).
#[derive(Debug, Clone, Copy, Default)]
pub struct SessionStats {
    /// Edits applied (including text-only edits).
    pub edits: u64,
    /// Queries answered (cached or computed).
    pub queries: u64,
    /// Incremental recompiles performed (one per edited-then-queried
    /// burst, not one per edit).
    pub recompiles: u64,
    /// Whole-theory invalidations (garbage compaction fallback).
    pub full_rebuilds: u64,
    /// Support-step verdicts answered by the solver.
    pub steps_checked: u64,
    /// Support-step verdicts reused from the dirty-tracked cache.
    pub steps_reused: u64,
    /// Queries answered entirely from the cached answer bundle.
    pub cached_answers: u64,
}

/// A long-lived session over one case.
///
/// Owns the current [`Argument`] revision plus the compiled state that
/// persists across edits: the CDCL session (learned clauses included),
/// the payload-literal cache, the analysis witness pool, and the
/// per-step verdict cache. See the crate docs for the soundness
/// argument behind each retention.
#[derive(Debug)]
pub struct CaseSession {
    argument: Argument,
    config: LintConfig,
    /// The live compiled session; `None` until the first query after
    /// open or whole-theory invalidation.
    theory: Option<ArgumentTheory>,
    cache: PayloadCache,
    pool: WitnessPool,
    /// Cached per-step verdicts keyed by the step's parent node id
    /// (ids survive the arena reindexing of structural edits).
    step_verdicts: HashMap<NodeId, bool>,
    /// Answer bundle for the current revision, valid until the next
    /// edit.
    answers: Option<CaseAnswers>,
    /// A formula or structural edit happened since the last flush.
    logic_dirty: bool,
    stats: SessionStats,
}

impl CaseSession {
    /// Opens a session over `argument`, deferring compilation to the
    /// first query.
    pub fn open(argument: Argument, config: LintConfig) -> Self {
        CaseSession {
            argument,
            config,
            theory: None,
            cache: PayloadCache::default(),
            pool: WitnessPool::new(),
            step_verdicts: HashMap::new(),
            answers: None,
            logic_dirty: true,
            stats: SessionStats::default(),
        }
    }

    /// The current revision of the case.
    pub fn argument(&self) -> &Argument {
        &self.argument
    }

    /// Lifetime counters for this session.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Applies one edit.
    pub fn apply(&mut self, op: &EditOp) -> Result<(), EditError> {
        match op {
            EditOp::ReplaceFormula { node, formula } => self.replace_formula(node, formula.clone()),
            EditOp::SetText { node, text } => self.set_text(node, text.clone()),
            EditOp::AddSupport { parent, node } => self.add_support(parent, node.clone()),
            EditOp::RemoveNode { node } => self.remove_node(node),
        }
    }

    /// Replaces (or installs) the propositional payload of `node`.
    /// Dirties only the support steps the payload participates in.
    pub fn replace_formula(&mut self, node: &NodeId, formula: Formula) -> Result<(), EditError> {
        let idx = self
            .argument
            .node_idx(node)
            .ok_or_else(|| EditError::UnknownNode(node.clone()))?;
        self.dirty_steps_from(idx);
        self.argument
            .node_mut(node)
            .expect("node_idx proved the node exists")
            .formal = Some(FormalPayload::Prop(formula));
        self.invalidate_logic();
        Ok(())
    }

    /// [`replace_formula`](Self::replace_formula) on a formal premise
    /// leaf — same machinery, named for the analyst's common case.
    pub fn set_premise(&mut self, node: &NodeId, formula: Formula) -> Result<(), EditError> {
        self.replace_formula(node, formula)
    }

    /// Replaces the natural-language statement of `node`. Text is
    /// invisible to the solver, so only the lint stream (quantifier
    /// cues, duplicate evidence, …) is invalidated.
    pub fn set_text(&mut self, node: &NodeId, text: String) -> Result<(), EditError> {
        let target = self
            .argument
            .node_mut(node)
            .ok_or_else(|| EditError::UnknownNode(node.clone()))?;
        target.text = text;
        // The solver state is untouched (`logic_dirty` stays false);
        // the next query re-runs only the lint passes, against warm
        // step-verdict and witness caches.
        self.answers = None;
        self.stats.edits += 1;
        Ok(())
    }

    /// Adds `node` supporting `parent`. Structural: the argument is
    /// rebuilt (revalidated) and the new step chain is dirtied.
    pub fn add_support(&mut self, parent: &NodeId, node: Node) -> Result<(), EditError> {
        if self.argument.node_idx(parent).is_none() {
            return Err(EditError::UnknownNode(parent.clone()));
        }
        let node_id = node.id.clone();
        let mut nodes = self.argument.arena().to_vec();
        nodes.push(node);
        let mut edges = self.argument.edges().to_vec();
        edges.push(Edge {
            from: parent.clone(),
            to: node_id.clone(),
            kind: EdgeKind::SupportedBy,
        });
        self.argument = Argument::from_parts(self.argument.name(), nodes, edges)?;
        let idx = self
            .argument
            .node_idx(&node_id)
            .expect("the node was just added");
        self.dirty_steps_from(idx);
        self.invalidate_logic();
        Ok(())
    }

    /// Removes `node` and every edge incident to it.
    pub fn remove_node(&mut self, node: &NodeId) -> Result<(), EditError> {
        let idx = self
            .argument
            .node_idx(node)
            .ok_or_else(|| EditError::UnknownNode(node.clone()))?;
        // Dirty the steps that lose a child — computed on the old
        // structure, recorded as ids, which survive the rebuild.
        self.dirty_steps_from(idx);
        let nodes: Vec<Node> = self
            .argument
            .arena()
            .iter()
            .filter(|n| n.id != *node)
            .cloned()
            .collect();
        let edges: Vec<Edge> = self
            .argument
            .edges()
            .iter()
            .filter(|e| e.from != *node && e.to != *node)
            .cloned()
            .collect();
        self.argument = Argument::from_parts(self.argument.name(), nodes, edges)?;
        self.step_verdicts.remove(node);
        self.invalidate_logic();
        Ok(())
    }

    /// The batched answers for the current revision: machine check,
    /// lint stream, probe classification. Cached until the next edit.
    pub fn answers(&mut self) -> CaseAnswers {
        self.stats.queries += 1;
        if let Some(answers) = &self.answers {
            self.stats.cached_answers += 1;
            return answers.clone();
        }
        self.flush();
        let machine = self.compute_machine();
        let theory = self
            .theory
            .as_mut()
            .expect("flush leaves a live compilation");
        let lint = lint_compiled_with_pool(&self.argument, theory, &mut self.pool, &self.config);
        let probe = theory.probe().map(|report| ProbeAnswer::from(&report));
        let answers = CaseAnswers {
            machine,
            lint,
            probe,
        };
        self.answers = Some(answers.clone());
        answers
    }

    /// Forces whole-theory invalidation: the next query compiles fresh,
    /// with an empty payload cache and witness pool. Step verdicts are
    /// kept — they are facts about formulas, not encodings.
    pub fn compact(&mut self) {
        self.theory = None;
        self.cache = PayloadCache::default();
        self.pool.clear();
        self.logic_dirty = true;
        self.stats.full_rebuilds += 1;
    }

    /// Drops the verdicts of every step an edit at `idx` can affect.
    fn dirty_steps_from(&mut self, idx: casekit_core::NodeIdx) {
        for parent in affected_step_parents(&self.argument, [idx]) {
            self.step_verdicts.remove(self.argument.id_at(parent));
        }
    }

    fn invalidate_logic(&mut self) {
        self.answers = None;
        self.logic_dirty = true;
        self.stats.edits += 1;
    }

    /// Brings the compiled session up to date with the current
    /// revision: an incremental recompile against the live clause
    /// database, falling back to whole-theory invalidation when the
    /// stranded definitional clauses outweigh the live ones.
    fn flush(&mut self) {
        if !self.logic_dirty && self.theory.is_some() {
            return;
        }
        let theory = self
            .theory
            .take()
            .map_or_else(Theory::new, ArgumentTheory::into_theory);
        let (compiled, stats) = ArgumentTheory::recompile(&self.argument, theory, &mut self.cache);
        self.stats.recompiles += 1;
        if stats.garbage_cost > stats.live_cost.max(COMPACTION_FLOOR) {
            // More dead weight than live payload: compact. Always
            // sound (everything derives from scratch); the retained
            // step verdicts are formula-level facts and stay.
            self.cache = PayloadCache::default();
            self.pool.clear();
            let (fresh, _) =
                ArgumentTheory::recompile(&self.argument, Theory::new(), &mut self.cache);
            self.theory = Some(fresh);
            self.stats.full_rebuilds += 1;
        } else {
            self.theory = Some(compiled);
        }
        self.logic_dirty = false;
    }

    /// The machine report over the live session, finding-for-finding
    /// identical to [`check_argument`] on the current revision: step
    /// verdicts come from the dirty-tracked cache (only dirtied steps
    /// pay a solver call), root entailment runs on the warm solver, and
    /// the fallacy detectors answer through the witness pool.
    fn compute_machine(&mut self) -> MachineReport {
        let theory = self
            .theory
            .as_mut()
            .expect("flush leaves a live compilation");
        let premises = formal_premises(&self.argument);
        let conclusion = formal_conclusion(&self.argument);
        let formal_nodes = self.argument.formalised_count();
        let mut findings = Vec::new();
        for idx in theory.step_indices() {
            let id = self.argument.id_at(idx);
            let deductive = if let Some(&verdict) = self.step_verdicts.get(id) {
                self.stats.steps_reused += 1;
                verdict
            } else {
                let verdict = theory
                    .step_is_deductive(idx)
                    .expect("step_indices yields only checkable steps");
                self.stats.steps_checked += 1;
                self.step_verdicts.insert(id.clone(), verdict);
                verdict
            };
            if !deductive {
                findings.push(MachineFinding::NonDeductiveStep { node: id.clone() });
            }
        }
        let checkable = match (&conclusion, premises.is_empty()) {
            (Some(_), false) => true,
            _ => formal_nodes > 0,
        };
        if let Some(conclusion) = conclusion {
            if !premises.is_empty() {
                if theory.root_entailed() == Some(false) {
                    findings.push(MachineFinding::ConclusionNotEntailed);
                }
                let premise_lits = theory.premise_lits();
                if let Some(conclusion_lit) = theory.conclusion_lit() {
                    for finding in formal::detect_all_compiled_with(
                        theory.theory_mut(),
                        &mut self.pool,
                        premise_lits,
                        conclusion_lit,
                        &premises,
                        conclusion,
                    ) {
                        findings.push(MachineFinding::Fallacy {
                            fallacy: finding.fallacy,
                            detail: finding.detail,
                        });
                    }
                }
            }
        }
        MachineReport {
            findings,
            formal_nodes,
            checkable,
        }
    }
}

/// The honest from-scratch answer bundle: parse nothing, reuse nothing
/// — compile the argument fresh for the machine check, fresh for the
/// lint run, fresh for the probe, exactly as a batch caller would. The
/// agreement oracle for every incremental answer (and the baseline arm
/// of `BENCH_service.json`).
pub fn batch_answers(argument: &Argument, config: &LintConfig) -> CaseAnswers {
    CaseAnswers {
        machine: check_argument(argument),
        lint: lint_argument(argument, config),
        probe: probe_argument(argument).as_ref().map(ProbeAnswer::from),
    }
}

/// Replays a traffic stream statelessly: edits apply through a session
/// (the service's deterministic edit semantics) but every query is
/// answered by [`batch_answers`] — a from-scratch recompilation sharing
/// nothing with the incremental path. The agreement oracle for
/// [`crate::CaseService::drive`] transcripts, and the honest baseline
/// arm of `BENCH_service.json`.
pub fn batch_transcript(
    argument: &Argument,
    ops: &[crate::CaseOp],
    config: &LintConfig,
) -> Vec<CaseAnswers> {
    let mut shadow = CaseSession::open(argument.clone(), config.clone());
    ops.iter()
        .filter_map(|op| match op {
            crate::CaseOp::Edit(edit) => {
                let _ = shadow.apply(edit);
                None
            }
            crate::CaseOp::Query => Some(batch_answers(shadow.argument(), config)),
        })
        .collect()
}
