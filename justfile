# Developer entry points. `just check` is the full local gate;
# `just ci` mirrors the GitHub workflow jobs exactly.

# Format, lint, test, bench, and regenerate BENCH_graph.json.
check:
    ./scripts/check.sh

# Mirror the CI pipeline locally, in job order: fmt, clippy, rustdoc
# with warnings denied, release build + tests, the deny-level example
# lint, then the smoke bench-regression gate.
ci:
    cargo fmt --all --check
    cargo clippy --workspace --all-targets -- -D warnings
    RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps
    cargo build --release
    cargo test -q
    cargo run --release -q -p casekit-analysis --bin caselint -- --deny examples/cases/*.case
    ./scripts/bench_gate.sh

# The smoke bench-regression gate alone (BENCH_*.smoke.json + floors).
bench-gate:
    ./scripts/bench_gate.sh

# Format the workspace in place.
fmt:
    cargo fmt --all

# Clippy with warnings denied, all targets.
clippy:
    cargo clippy --workspace --all-targets -- -D warnings

# CaseLint over the bundled example corpus, every lint at deny level.
# The malformed fixtures under examples/cases/malformed/ are exercised
# by their own gate in scripts/check.sh (they must *fail* caselint).
lint:
    cargo run --release -q -p casekit-analysis --bin caselint -- --deny examples/cases/*.case

# The test suite (workspace defaults: every product crate).
test:
    cargo test -q

# Criterion benches with a short measurement budget.
bench:
    CASEKIT_BENCH_MS=25 cargo bench -q -p casekit-bench

# Graph-core speedup artifact (BENCH_graph.json).
graph-bench:
    cargo run --release -q -p casekit-bench --bin repro graph

# Logic-core speedup artifact (BENCH_logic.json).
bench-logic:
    cargo run --release -q -p casekit-bench --bin repro logic

# Argumentation-framework engine artifact (BENCH_af.json).
bench-af:
    cargo run --release -q -p casekit-bench --bin repro af

# FOL resolution-engine artifact (BENCH_fol.json).
bench-fol:
    cargo run --release -q -p casekit-bench --bin repro fol

# LTL bounded-checking artifact (BENCH_ltl.json).
bench-ltl:
    cargo run --release -q -p casekit-bench --bin repro ltl

# Experiment-runtime speedup artifact (BENCH_experiments.json).
bench-experiments:
    cargo run --release -q -p casekit-bench --bin repro experiments

# CaseLint engine-vs-standalone-tools artifact (BENCH_lint.json).
bench-lint:
    cargo run --release -q -p casekit-bench --bin repro lint

# CaseService incremental-vs-batch artifact (BENCH_service.json).
bench-service:
    cargo run --release -q -p casekit-bench --bin repro service

# DSL-frontend corpus-ingestion artifact (BENCH_dsl.json).
bench-dsl:
    cargo run --release -q -p casekit-bench --bin repro dsl

# Rustdoc for the workspace with warnings denied (the CI docs job).
docs:
    RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

# Regenerate every paper artifact.
repro:
    cargo run --release -q -p casekit-bench --bin repro
