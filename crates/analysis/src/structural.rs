//! Structural lint passes: pure graph-shape checks on the arena/CSR
//! index plane. Every pass is O(V+E) over the argument (context
//! shadowing is O(V+E) per *duplicated* context text, of which a
//! well-formed case has none), allocates no per-node strings except in
//! emitted diagnostics, and never touches the solver.

use crate::diagnostic::{LintCode, Sink};
use casekit_core::{Argument, EdgeKind, NodeIdx, NodeKind};
use std::collections::{BTreeMap, BTreeSet};

/// Runs every structural pass.
pub(crate) fn run(argument: &Argument, sink: &mut Sink<'_>) {
    unreachable_nodes(argument, sink);
    support_cycles(argument, sink);
    undeveloped(argument, sink);
    duplicate_evidence(argument, sink);
    context_shadowing(argument, sink);
}

/// Whitespace-collapsed, lowercased text for duplicate detection.
fn normalized(text: &str) -> String {
    text.split_whitespace()
        .collect::<Vec<_>>()
        .join(" ")
        .to_lowercase()
}

/// First ~40 characters of `text`, for diagnostic messages.
fn snippet(text: &str) -> String {
    const LIMIT: usize = 40;
    if text.chars().count() <= LIMIT {
        return text.to_string();
    }
    let cut: String = text.chars().take(LIMIT).collect();
    format!("{cut}…")
}

/// CK001: nodes not reachable from any root (in-degree-0 node). A node
/// only ever unreachable through a cycle detached from every root.
fn unreachable_nodes(argument: &Argument, sink: &mut Sink<'_>) {
    let mut seen = vec![false; argument.len()];
    for root in argument.roots_idx() {
        if !seen[root.index()] {
            seen[root.index()] = true;
            for idx in argument.reachable_from(root) {
                seen[idx.index()] = true;
            }
        }
    }
    for idx in argument.sorted_indices() {
        if !seen[idx.index()] {
            sink.emit(
                LintCode::UnreachableNode,
                Some(argument.id_at(idx).clone()),
                Vec::new(),
                format!(
                    "`{}` is not reachable from any root of the argument",
                    argument.id_at(idx)
                ),
                Some("connect it into the argument or remove it".into()),
            );
        }
    }
}

/// CK002: strongly connected components of size ≥ 2 in the SupportedBy
/// subgraph (self-loops are rejected at build time). One diagnostic per
/// component, anchored at its smallest node id. Iterative Tarjan —
/// O(V+E), no recursion.
fn support_cycles(argument: &Argument, sink: &mut Sink<'_>) {
    const UNVISITED: usize = usize::MAX;
    let n = argument.len();
    let mut index = vec![UNVISITED; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<NodeIdx> = Vec::new();
    let mut next_index = 0usize;
    let mut components: Vec<Vec<NodeIdx>> = Vec::new();

    // DFS frames: (node, support children, position of next child).
    let mut frames: Vec<(NodeIdx, Vec<NodeIdx>, usize)> = Vec::new();
    for start in argument.node_indices() {
        if index[start.index()] != UNVISITED {
            continue;
        }
        index[start.index()] = next_index;
        low[start.index()] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start.index()] = true;
        let children: Vec<NodeIdx> = argument
            .children_idx(start, EdgeKind::SupportedBy)
            .collect();
        frames.push((start, children, 0));
        while let Some(frame) = frames.last_mut() {
            let (v, children, pos) = (frame.0, &frame.1, frame.2);
            if pos < children.len() {
                let w = children[pos];
                frame.2 += 1;
                if index[w.index()] == UNVISITED {
                    index[w.index()] = next_index;
                    low[w.index()] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w.index()] = true;
                    let grandchildren: Vec<NodeIdx> =
                        argument.children_idx(w, EdgeKind::SupportedBy).collect();
                    frames.push((w, grandchildren, 0));
                } else if on_stack[w.index()] {
                    low[v.index()] = low[v.index()].min(index[w.index()]);
                }
            } else {
                frames.pop();
                if let Some(parent) = frames.last() {
                    let p = parent.0;
                    low[p.index()] = low[p.index()].min(low[v.index()]);
                }
                if low[v.index()] == index[v.index()] {
                    let mut component = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w.index()] = false;
                        component.push(w);
                        if w == v {
                            break;
                        }
                    }
                    if component.len() > 1 {
                        components.push(component);
                    }
                }
            }
        }
    }

    for component in &mut components {
        component.sort_by(|a, b| argument.id_at(*a).cmp(argument.id_at(*b)));
    }
    components.sort_by(|a, b| argument.id_at(a[0]).cmp(argument.id_at(b[0])));
    for component in components {
        let ids: Vec<_> = component
            .iter()
            .map(|idx| argument.id_at(*idx).clone())
            .collect();
        sink.emit(
            LintCode::SupportCycle,
            Some(ids[0].clone()),
            ids[1..].to_vec(),
            format!(
                "support cycle through {} nodes starting at `{}`",
                ids.len(),
                ids[0]
            ),
            Some("break the cycle: support relations must be acyclic".into()),
        );
    }
}

/// CK003/CK004: claims that should carry support. A goal, strategy,
/// claim, or argument node with neither support nor an `undeveloped`
/// mark is an implicit gap (CK003); one marked undeveloped *and*
/// supported contradicts its own mark (CK004).
fn undeveloped(argument: &Argument, sink: &mut Sink<'_>) {
    for idx in argument.sorted_indices() {
        let node = argument.node_at(idx);
        if !matches!(
            node.kind,
            NodeKind::Goal | NodeKind::Strategy | NodeKind::Claim | NodeKind::ArgumentNode
        ) {
            continue;
        }
        let has_support = argument
            .children_idx(idx, EdgeKind::SupportedBy)
            .next()
            .is_some();
        if node.undeveloped && has_support {
            sink.emit(
                LintCode::UndevelopedWithSupport,
                Some(node.id.clone()),
                Vec::new(),
                format!("`{}` is marked undeveloped but has support", node.id),
                Some("remove the undeveloped mark or detach the support".into()),
            );
        } else if !node.undeveloped && !has_support {
            sink.emit(
                LintCode::UndevelopedGoal,
                Some(node.id.clone()),
                Vec::new(),
                format!(
                    "`{}` has no supporting evidence and is not marked undeveloped",
                    node.id
                ),
                Some("add supporting evidence or mark it undeveloped".into()),
            );
        }
    }
}

/// CK005: solution/evidence nodes with identical normalized text. One
/// diagnostic per duplicate group, anchored at the smallest node id.
fn duplicate_evidence(argument: &Argument, sink: &mut Sink<'_>) {
    let mut groups: BTreeMap<String, Vec<NodeIdx>> = BTreeMap::new();
    for idx in argument.sorted_indices() {
        let node = argument.node_at(idx);
        if matches!(node.kind, NodeKind::Solution | NodeKind::Evidence) {
            groups.entry(normalized(&node.text)).or_default().push(idx);
        }
    }
    for (_, members) in groups {
        if members.len() < 2 {
            continue;
        }
        let ids: Vec<_> = members
            .iter()
            .map(|idx| argument.id_at(*idx).clone())
            .collect();
        sink.emit(
            LintCode::DuplicateEvidence,
            Some(ids[0].clone()),
            ids[1..].to_vec(),
            format!(
                "{} evidence nodes carry the same text: \"{}\"",
                ids.len(),
                snippet(&argument.node_at(members[0]).text)
            ),
            Some("cite one evidence node from both places instead of duplicating it".into()),
        );
    }
}

/// CK006: a context whose text is already in force at a support
/// ancestor (including a second same-text context on the very same
/// node). Detected per duplicated-text group: for each pair of
/// attachment points, the lower one shadows when it is a strict support
/// descendant of (or equal to) the upper one.
fn context_shadowing(argument: &Argument, sink: &mut Sink<'_>) {
    // text -> (attachment node, context node), one entry per InContextOf edge.
    let mut groups: BTreeMap<String, Vec<(NodeIdx, NodeIdx)>> = BTreeMap::new();
    for (from, to, kind) in argument.edges_idx() {
        if kind == EdgeKind::InContextOf {
            groups
                .entry(normalized(&argument.node_at(to).text))
                .or_default()
                .push((from, to));
        }
    }
    let mut emitted: BTreeSet<(usize, usize)> = BTreeSet::new();
    for (_, mut attachments) in groups {
        if attachments.len() < 2 {
            continue;
        }
        attachments.sort_by(|a, b| {
            (argument.id_at(a.0), argument.id_at(a.1))
                .cmp(&(argument.id_at(b.0), argument.id_at(b.1)))
        });
        // Support-descendant sets, computed once per distinct attachment.
        let mut descendants: BTreeMap<usize, Vec<bool>> = BTreeMap::new();
        for &(attach, _) in &attachments {
            descendants
                .entry(attach.index())
                .or_insert_with(|| support_descendants(argument, attach));
        }
        for (i, &(upper, upper_ctx)) in attachments.iter().enumerate() {
            for (j, &(lower, lower_ctx)) in attachments.iter().enumerate() {
                if i == j {
                    continue;
                }
                let same_node = upper == lower && upper_ctx != lower_ctx && i < j;
                let below = descendants[&upper.index()][lower.index()];
                if !(same_node || below) {
                    continue;
                }
                if !emitted.insert((lower_ctx.index(), lower.index())) {
                    continue;
                }
                sink.emit(
                    LintCode::ContextShadowing,
                    Some(argument.id_at(lower_ctx).clone()),
                    vec![
                        argument.id_at(upper_ctx).clone(),
                        argument.id_at(lower).clone(),
                    ],
                    format!(
                        "context \"{}\" at `{}` is already in force from `{}`",
                        snippet(&argument.node_at(lower_ctx).text),
                        argument.id_at(lower),
                        argument.id_at(upper),
                    ),
                    Some("remove the repeated context; it is inherited from the ancestor".into()),
                );
            }
        }
    }
}

/// Membership vector of the strict support descendants of `start`.
fn support_descendants(argument: &Argument, start: NodeIdx) -> Vec<bool> {
    let mut seen = vec![false; argument.len()];
    let mut queue = std::collections::VecDeque::from([start]);
    while let Some(current) = queue.pop_front() {
        for child in argument.children_idx(current, EdgeKind::SupportedBy) {
            if !seen[child.index()] {
                seen[child.index()] = true;
                queue.push_back(child);
            }
        }
    }
    seen[start.index()] = false;
    seen
}
