//! Typed pattern parameters and bindings.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// The type of a pattern parameter.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ParamType {
    /// An integer, optionally range-restricted (inclusive).
    Int {
        /// Lower bound, if any.
        min: Option<i64>,
        /// Upper bound, if any.
        max: Option<i64>,
    },
    /// A natural number (≥ 0).
    Nat,
    /// A percentage: an integer in 0..=100 (Matsuno's CPU example).
    Percent,
    /// Free-form text.
    Str,
    /// One of an enumerated set of allowed strings (Denney et al.'s
    /// `userDefinedEnum`).
    Enum {
        /// The enumeration's name (for messages).
        name: String,
        /// The allowed values.
        values: Vec<String>,
    },
    /// A list whose elements all have the given type; used for
    /// multiplicity expansion.
    List(Box<ParamType>),
}

impl ParamType {
    /// Convenience: unrestricted integer.
    pub fn int() -> Self {
        ParamType::Int {
            min: None,
            max: None,
        }
    }

    /// Convenience: integer in `min..=max`.
    pub fn int_range(min: i64, max: i64) -> Self {
        ParamType::Int {
            min: Some(min),
            max: Some(max),
        }
    }

    /// Convenience: enumeration.
    pub fn enumeration(
        name: impl Into<String>,
        values: impl IntoIterator<Item = impl Into<String>>,
    ) -> Self {
        ParamType::Enum {
            name: name.into(),
            values: values.into_iter().map(Into::into).collect(),
        }
    }

    /// Convenience: list of `elem`.
    pub fn list(elem: ParamType) -> Self {
        ParamType::List(Box::new(elem))
    }
}

impl fmt::Display for ParamType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamType::Int {
                min: None,
                max: None,
            } => write!(f, "Int"),
            ParamType::Int { min, max } => {
                let lo = min.map_or(String::from("-inf"), |v| v.to_string());
                let hi = max.map_or(String::from("+inf"), |v| v.to_string());
                write!(f, "Int[{lo}..{hi}]")
            }
            ParamType::Nat => write!(f, "Nat"),
            ParamType::Percent => write!(f, "Percent"),
            ParamType::Str => write!(f, "String"),
            ParamType::Enum { name, .. } => write!(f, "{name}"),
            ParamType::List(t) => write!(f, "List<{t}>"),
        }
    }
}

/// A parameter value.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ParamValue {
    /// An integer.
    Int(i64),
    /// A string (also used for enum values).
    Str(String),
    /// A list of values.
    List(Vec<ParamValue>),
}

impl ParamValue {
    /// Renders the value as text for placeholder substitution.
    pub fn render(&self) -> String {
        match self {
            ParamValue::Int(v) => v.to_string(),
            ParamValue::Str(s) => s.clone(),
            ParamValue::List(items) => items
                .iter()
                .map(ParamValue::render)
                .collect::<Vec<_>>()
                .join(", "),
        }
    }
}

impl fmt::Display for ParamValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl From<i64> for ParamValue {
    fn from(v: i64) -> Self {
        ParamValue::Int(v)
    }
}

impl From<&str> for ParamValue {
    fn from(s: &str) -> Self {
        ParamValue::Str(s.to_string())
    }
}

impl From<String> for ParamValue {
    fn from(s: String) -> Self {
        ParamValue::Str(s)
    }
}

/// A type-checking failure.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TypeError {
    /// The parameter at fault.
    pub param: String,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parameter `{}`: {}", self.param, self.message)
    }
}

impl std::error::Error for TypeError {}

/// Checks a value against a type.
pub(crate) fn type_check(param: &str, value: &ParamValue, ty: &ParamType) -> Result<(), TypeError> {
    let err = |message: String| {
        Err(TypeError {
            param: param.to_string(),
            message,
        })
    };
    match (ty, value) {
        (ParamType::Int { min, max }, ParamValue::Int(v)) => {
            if let Some(lo) = min {
                if v < lo {
                    return err(format!("{v} is below the minimum {lo}"));
                }
            }
            if let Some(hi) = max {
                if v > hi {
                    return err(format!("{v} is above the maximum {hi}"));
                }
            }
            Ok(())
        }
        (ParamType::Nat, ParamValue::Int(v)) => {
            if *v < 0 {
                err(format!("{v} is not a natural number"))
            } else {
                Ok(())
            }
        }
        (ParamType::Percent, ParamValue::Int(v)) => {
            if (0..=100).contains(v) {
                Ok(())
            } else {
                err(format!("{v} is not a percentage (0..=100)"))
            }
        }
        (ParamType::Str, ParamValue::Str(_)) => Ok(()),
        (ParamType::Enum { name, values }, ParamValue::Str(s)) => {
            if values.iter().any(|v| v == s) {
                Ok(())
            } else {
                err(format!(
                    "`{s}` is not a member of {name} (allowed: {})",
                    values.join(" | ")
                ))
            }
        }
        (ParamType::List(elem), ParamValue::List(items)) => {
            for (i, item) in items.iter().enumerate() {
                type_check(&format!("{param}[{i}]"), item, elem)?;
            }
            Ok(())
        }
        (ty, value) => err(format!("value `{value}` does not have type {ty}")),
    }
}

/// A set of parameter bindings.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Binding {
    values: BTreeMap<String, ParamValue>,
}

impl Binding {
    /// An empty binding set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds `param` to `value`, chaining.
    pub fn with(mut self, param: impl Into<String>, value: impl Into<ParamValue>) -> Self {
        self.values.insert(param.into(), value.into());
        self
    }

    /// Binds `param` to `value`.
    pub fn set(&mut self, param: impl Into<String>, value: impl Into<ParamValue>) {
        self.values.insert(param.into(), value.into());
    }

    /// The value bound to `param`, if any.
    pub fn get(&self, param: &str) -> Option<&ParamValue> {
        self.values.get(param)
    }

    /// The bound parameter names.
    pub fn params(&self) -> impl Iterator<Item = &str> {
        self.values.keys().map(String::as_str)
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no parameters are bound.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl FromIterator<(String, ParamValue)> for Binding {
    fn from_iter<I: IntoIterator<Item = (String, ParamValue)>>(iter: I) -> Self {
        Binding {
            values: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_range_checks() {
        let ty = ParamType::int_range(0, 100);
        assert!(type_check("u", &ParamValue::Int(50), &ty).is_ok());
        assert!(type_check("u", &ParamValue::Int(0), &ty).is_ok());
        assert!(type_check("u", &ParamValue::Int(100), &ty).is_ok());
        let e = type_check("u", &ParamValue::Int(101), &ty).unwrap_err();
        assert!(e.message.contains("above"));
        let e = type_check("u", &ParamValue::Int(-1), &ty).unwrap_err();
        assert!(e.message.contains("below"));
    }

    #[test]
    fn percent_is_matsunos_cpu_example() {
        // "restricting a claimed CPU utilisation to the range 0–100%".
        assert!(type_check("cpu", &ParamValue::Int(73), &ParamType::Percent).is_ok());
        assert!(type_check("cpu", &ParamValue::Int(130), &ParamType::Percent).is_err());
    }

    #[test]
    fn nat_rejects_negative() {
        assert!(type_check("n", &ParamValue::Int(0), &ParamType::Nat).is_ok());
        assert!(type_check("n", &ParamValue::Int(-3), &ParamType::Nat).is_err());
    }

    #[test]
    fn enum_is_denneys_element_example() {
        // "element ::= aileron | elevator | flaps".
        let ty = ParamType::enumeration("element", ["aileron", "elevator", "flaps"]);
        assert!(type_check("e", &"aileron".into(), &ty).is_ok());
        let err = type_check("e", &"Railway hazards".into(), &ty).unwrap_err();
        assert!(err.message.contains("not a member"));
        assert!(err.message.contains("aileron | elevator | flaps"));
    }

    #[test]
    fn kind_mismatch_rejected() {
        let e = type_check("s", &ParamValue::Int(3), &ParamType::Str).unwrap_err();
        assert!(e.message.contains("does not have type"));
        assert!(type_check("i", &"three".into(), &ParamType::int()).is_err());
    }

    #[test]
    fn list_elements_checked_with_index() {
        let ty = ParamType::list(ParamType::Percent);
        let ok = ParamValue::List(vec![ParamValue::Int(10), ParamValue::Int(90)]);
        assert!(type_check("xs", &ok, &ty).is_ok());
        let bad = ParamValue::List(vec![ParamValue::Int(10), ParamValue::Int(900)]);
        let err = type_check("xs", &bad, &ty).unwrap_err();
        assert_eq!(err.param, "xs[1]");
    }

    #[test]
    fn binding_builder_and_lookup() {
        let b = Binding::new().with("x", 2i64).with("z", "hello");
        assert_eq!(b.get("x"), Some(&ParamValue::Int(2)));
        assert_eq!(b.get("z"), Some(&ParamValue::Str("hello".into())));
        assert!(b.get("y").is_none());
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
        let names: Vec<_> = b.params().collect();
        assert_eq!(names, vec!["x", "z"]);
    }

    #[test]
    fn value_rendering() {
        assert_eq!(ParamValue::Int(5).render(), "5");
        assert_eq!(ParamValue::Str("hi".into()).render(), "hi");
        assert_eq!(
            ParamValue::List(vec![1i64.into(), 2i64.into()]).render(),
            "1, 2"
        );
    }

    #[test]
    fn type_display() {
        assert_eq!(ParamType::int().to_string(), "Int");
        assert_eq!(ParamType::int_range(0, 9).to_string(), "Int[0..9]");
        assert_eq!(ParamType::Percent.to_string(), "Percent");
        assert_eq!(
            ParamType::enumeration("element", ["a"]).to_string(),
            "element"
        );
        assert_eq!(ParamType::list(ParamType::Nat).to_string(), "List<Nat>");
    }

    #[test]
    fn type_error_display() {
        let e = TypeError {
            param: "x".into(),
            message: "boom".into(),
        };
        assert_eq!(e.to_string(), "parameter `x`: boom");
    }
}
