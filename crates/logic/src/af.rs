//! Abstract argumentation frameworks with non-monotonic semantics, after
//! Tolchinsky et al.'s deliberation dialogues (Graydon §III-O).
//!
//! Their on-line decision aid stores claims as symbolic predicates and
//! uses dialogue games over a non-monotonic logic to decide whether a
//! proposed safety-critical action (e.g. transplanting a given organ) is
//! acceptable. The substrate for such systems is Dung's abstract
//! argumentation: arguments and an *attacks* relation, with acceptability
//! computed as a fixed point rather than by classical entailment — adding
//! an argument can *retract* previously-accepted conclusions, which
//! classical deduction cannot model.
//!
//! # Architecture: the SAT path
//!
//! Deciding complete/stable/preferred semantics is NP-hard in general,
//! and the seed implementation enumerated all `2^n` subsets behind an
//! `assert!(n <= 16)`. This module now mirrors the workspace's two-plane
//! discipline instead:
//!
//! * **Name plane** — [`Framework`] stores labels and the attack
//!   relation; [`Deliberation`] runs the dialogue game on top.
//! * **Index plane** — [`Framework::adjacency`] builds a CSR
//!   attacker/attacked adjacency once (the `casekit-core` arena
//!   discipline), which powers an O(V+E) [grounded
//!   fixpoint](Framework::grounded_extension); [`encode::AfSat`]
//!   compiles the framework into packed-literal clauses for the CDCL
//!   [`Solver`](crate::prop::Solver) — the in/out/undec *labelling*
//!   encoding — and answers every extension and acceptance question as
//!   an incremental SAT session.
//!
//! Extensions are enumerated with *blocking clauses* guarded by
//! per-enumeration selector literals, so one persistent solver session
//! serves extension listing, the preferred-semantics maximality loop,
//! and credulous/sceptical acceptance queries — and everything the
//! solver learns answering one question speeds up the next. The seed's
//! exponential enumerator survives as [`naive`] (oracle and measured
//! baseline, capped at [`naive::ENUMERATION_LIMIT`] arguments); the
//! public [`Framework`] API has no argument-count ceiling.
//!
//! # Scale: the SCC-decomposed path
//!
//! Above [`scc::DECOMPOSITION_THRESHOLD`] arguments the semantics
//! methods route through [`scc::Decomposed`]: the attack graph is
//! condensed into strongly connected components (iterative Tarjan),
//! the condensation is walked in topological order, singleton
//! components are resolved by direct label propagation with no SAT
//! call, and only non-trivial components are compiled into small
//! per-component SAT encodings with upstream labels baked in as unit
//! clauses. Independent components at the same topological depth are
//! farmed across the `casekit-runtime` work farm. This is what carries
//! grounded/preferred/stable to 10^5-argument frameworks; the
//! monolithic encoding stays on below the threshold and doubles as the
//! differential cross-check.
//!
//! `repro af` measures the engines against each other and writes
//! `BENCH_af.json`; proptests in `tests/properties.rs` cross-check them
//! extension set for extension set.

pub mod encode;
pub mod naive;
pub mod scc;

use crate::error::LogicError;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Identifier of an argument within a framework.
pub type ArgId = usize;

/// The three-valued status of one argument in a labelling: accepted,
/// defeated, or undecided. Complete labellings biject with complete
/// extensions (the extension is the `In` set), so the engines pass
/// whole labellings around and project to sets at the API boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Label {
    /// Accepted: every attacker is `Out`.
    In,
    /// Defeated: some attacker is `In`.
    Out,
    /// Neither: the argument hangs in an unresolved cycle.
    Undec,
}

/// A Dung argumentation framework: abstract arguments plus attacks.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Framework {
    labels: Vec<String>,
    attacks: BTreeSet<(ArgId, ArgId)>,
}

impl Framework {
    /// An empty framework.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an argument with a human-readable label; returns its id.
    pub fn add_argument(&mut self, label: impl Into<String>) -> ArgId {
        self.labels.push(label.into());
        self.labels.len() - 1
    }

    /// `Ok(())` when `id` names an allocated argument.
    fn check_id(&self, id: ArgId) -> Result<(), LogicError> {
        if id < self.labels.len() {
            Ok(())
        } else {
            Err(LogicError::UnknownArgument {
                id,
                arguments: self.labels.len(),
            })
        }
    }

    /// Records that `attacker` attacks `target`.
    ///
    /// Returns [`LogicError::UnknownArgument`] if either id is out of
    /// range.
    ///
    /// ```
    /// use casekit_logic::af::Framework;
    /// let mut af = Framework::new();
    /// let a = af.add_argument("a");
    /// assert!(af.add_attack(a, a + 9).is_err());
    /// assert!(af.add_attack(a, a).is_ok());
    /// ```
    pub fn add_attack(&mut self, attacker: ArgId, target: ArgId) -> Result<(), LogicError> {
        self.check_id(attacker)?;
        self.check_id(target)?;
        self.attacks.insert((attacker, target));
        Ok(())
    }

    /// Number of arguments.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the framework is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of recorded attacks.
    pub fn attack_count(&self) -> usize {
        self.attacks.len()
    }

    /// The label of an argument, or [`LogicError::UnknownArgument`] if
    /// the id is out of range.
    pub fn label(&self, id: ArgId) -> Result<&str, LogicError> {
        self.check_id(id)?;
        Ok(&self.labels[id])
    }

    /// The attackers of `target`, by linear scan of the attack relation.
    ///
    /// One-shot convenience; whole-framework computations build a CSR
    /// [`Adjacency`] once instead of calling this per argument.
    pub fn attackers(&self, target: ArgId) -> Vec<ArgId> {
        self.attacks
            .iter()
            .filter(|(_, t)| *t == target)
            .map(|(a, _)| *a)
            .collect()
    }

    /// Builds the CSR attacker/attacked adjacency: both directions of
    /// the attack relation in flat arrays, indexable in O(1) per
    /// argument. Build once per computation, O(V+E).
    pub fn adjacency(&self) -> Adjacency {
        let n = self.labels.len();
        let mut att_start = vec![0usize; n + 1];
        let mut tgt_start = vec![0usize; n + 1];
        for &(a, t) in &self.attacks {
            att_start[t + 1] += 1;
            tgt_start[a + 1] += 1;
        }
        for i in 0..n {
            att_start[i + 1] += att_start[i];
            tgt_start[i + 1] += tgt_start[i];
        }
        let mut att_flat = vec![0 as ArgId; self.attacks.len()];
        let mut tgt_flat = vec![0 as ArgId; self.attacks.len()];
        let mut att_cursor = att_start.clone();
        let mut tgt_cursor = tgt_start.clone();
        // The set iterates sorted by (attacker, target), so both flat
        // arrays come out sorted within each argument's slice.
        for &(a, t) in &self.attacks {
            att_flat[att_cursor[t]] = a;
            att_cursor[t] += 1;
            tgt_flat[tgt_cursor[a]] = t;
            tgt_cursor[a] += 1;
        }
        Adjacency {
            att_start,
            att_flat,
            tgt_start,
            tgt_flat,
        }
    }

    /// Whether `set` attacks `id`.
    fn set_attacks(&self, set: &BTreeSet<ArgId>, id: ArgId) -> bool {
        self.attackers(id).iter().any(|a| set.contains(a))
    }

    /// Whether `set` *defends* `id`: every attacker of `id` is attacked by
    /// `set`.
    pub fn defends(&self, set: &BTreeSet<ArgId>, id: ArgId) -> bool {
        self.attackers(id)
            .iter()
            .all(|&attacker| self.set_attacks(set, attacker))
    }

    /// Whether `set` is conflict-free.
    pub fn conflict_free(&self, set: &BTreeSet<ArgId>) -> bool {
        !self
            .attacks
            .iter()
            .any(|(a, t)| set.contains(a) && set.contains(t))
    }

    /// Whether `set` is *admissible*: conflict-free and self-defending.
    pub fn admissible(&self, set: &BTreeSet<ArgId>) -> bool {
        self.conflict_free(set) && set.iter().all(|&id| self.defends(set, id))
    }

    /// The grounded extension: the least fixed point of the characteristic
    /// function — the sceptical core every reasonable semantics accepts.
    ///
    /// Computed over the CSR [`Adjacency`] in O(V+E): unattacked
    /// arguments are accepted, everything they attack is defeated, and
    /// each defeat retires one attacker of the defeated argument's
    /// targets — an argument whose last live attacker retires is
    /// accepted in turn. (The seed's quadratic fixpoint survives as
    /// [`naive::grounded_extension`] for differential testing.)
    pub fn grounded_extension(&self) -> BTreeSet<ArgId> {
        self.adjacency().grounded()
    }

    /// All complete extensions (conflict-free fixpoints of the
    /// characteristic function), via the SAT labelling encoding — no
    /// argument-count ceiling. At or above
    /// [`scc::DECOMPOSITION_THRESHOLD`] arguments the query routes
    /// through the SCC-decomposed engine ([`scc::Decomposed`]); below
    /// it the monolithic encoding is used directly (and survives as
    /// the differential cross-check for the decomposed path).
    ///
    /// The number of extensions itself can be exponential in pathological
    /// frameworks; use [`encode::AfSat::extensions`] with a limit to
    /// enumerate incrementally.
    pub fn complete_extensions(&self) -> Vec<BTreeSet<ArgId>> {
        if self.len() >= scc::DECOMPOSITION_THRESHOLD {
            scc::Decomposed::new(self).complete_extensions()
        } else {
            encode::AfSat::complete(self).extensions(None)
        }
    }

    /// The stable extensions: conflict-free sets attacking every
    /// argument outside them (complete labellings with no undecided
    /// argument). May be empty — odd attack cycles admit no stable
    /// extension. Routes through [`scc::Decomposed`] at or above
    /// [`scc::DECOMPOSITION_THRESHOLD`] arguments.
    pub fn stable_extensions(&self) -> Vec<BTreeSet<ArgId>> {
        if self.len() >= scc::DECOMPOSITION_THRESHOLD {
            scc::Decomposed::new(self).stable_extensions()
        } else {
            encode::AfSat::stable(self).extensions(None)
        }
    }

    /// The preferred extensions: maximal (by inclusion) complete
    /// extensions, computed by the SAT maximality loop — iteratively
    /// forcing proper supersets until UNSAT — with subset-blocking
    /// clauses between extensions. Routes through [`scc::Decomposed`]
    /// at or above [`scc::DECOMPOSITION_THRESHOLD`] arguments.
    pub fn preferred_extensions(&self) -> Vec<BTreeSet<ArgId>> {
        if self.len() >= scc::DECOMPOSITION_THRESHOLD {
            scc::Decomposed::new(self).preferred_extensions()
        } else {
            encode::AfSat::complete(self).preferred()
        }
    }

    /// Whether `id` is credulously accepted: a member of at least one
    /// complete extension (equivalently, of at least one preferred
    /// extension).
    ///
    /// Convenience wrapper that compiles a fresh encoding per call;
    /// when probing many arguments of the same framework, build one
    /// [`encode::AfSat`] and reuse its session, so each answer is a
    /// single incremental probe and learned clauses carry over.
    pub fn credulously_accepted(&self, id: ArgId) -> Result<bool, LogicError> {
        self.check_id(id)?;
        if self.len() >= scc::DECOMPOSITION_THRESHOLD {
            Ok(scc::Decomposed::new(self).credulous(id))
        } else {
            Ok(encode::AfSat::complete(self).credulous(id))
        }
    }

    /// Whether `id` is sceptically accepted (in the grounded extension).
    pub fn sceptically_accepted(&self, id: ArgId) -> Result<bool, LogicError> {
        self.check_id(id)?;
        Ok(self.grounded_extension().contains(&id))
    }

    /// Whether `id` belongs to *every* preferred extension — sceptical
    /// acceptance under preferred semantics, a strictly weaker demand
    /// than grounded membership.
    ///
    /// Convenience wrapper that compiles a fresh encoding per call
    /// (see [`Framework::credulously_accepted`]); batch callers should
    /// hold an [`encode::AfSat`] session instead.
    pub fn sceptically_accepted_preferred(&self, id: ArgId) -> Result<bool, LogicError> {
        self.check_id(id)?;
        if self.len() >= scc::DECOMPOSITION_THRESHOLD {
            Ok(scc::Decomposed::new(self).sceptical_preferred(id))
        } else {
            Ok(encode::AfSat::complete(self).sceptical_preferred(id))
        }
    }
}

/// CSR adjacency over a [`Framework`]'s attack relation: attackers and
/// targets of every argument as contiguous slices, built once in O(V+E)
/// by [`Framework::adjacency`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Adjacency {
    /// `att_flat[att_start[t]..att_start[t + 1]]` attack `t`.
    att_start: Vec<usize>,
    att_flat: Vec<ArgId>,
    /// `tgt_flat[tgt_start[a]..tgt_start[a + 1]]` are attacked by `a`.
    tgt_start: Vec<usize>,
    tgt_flat: Vec<ArgId>,
}

impl Adjacency {
    /// Number of arguments.
    pub fn num_args(&self) -> usize {
        self.att_start.len() - 1
    }

    /// Number of attacks.
    pub fn num_attacks(&self) -> usize {
        self.att_flat.len()
    }

    /// The attackers of `target`, sorted ascending.
    pub fn attackers(&self, target: ArgId) -> &[ArgId] {
        &self.att_flat[self.att_start[target]..self.att_start[target + 1]]
    }

    /// The arguments `attacker` attacks, sorted ascending.
    pub fn targets(&self, attacker: ArgId) -> &[ArgId] {
        &self.tgt_flat[self.tgt_start[attacker]..self.tgt_start[attacker + 1]]
    }

    /// The grounded labelling in O(V+E): a worklist of accepted
    /// arguments, defeat marking, and live-attacker counting. Arguments
    /// the fixpoint never reaches stay [`Label::Undec`].
    pub fn grounded_labels(&self) -> Vec<Label> {
        let n = self.num_args();
        let mut live_attackers: Vec<usize> = (0..n).map(|t| self.attackers(t).len()).collect();
        let mut labels = vec![Label::Undec; n];
        let mut work: Vec<ArgId> = (0..n).filter(|&a| live_attackers[a] == 0).collect();
        while let Some(accepted) = work.pop() {
            if labels[accepted] != Label::Undec {
                continue;
            }
            labels[accepted] = Label::In;
            for &defeated in self.targets(accepted) {
                // An accepted argument cannot be attacked by another
                // accepted one (its attackers are all OUT), so the
                // target is UNDEC or already OUT.
                if labels[defeated] != Label::Undec {
                    continue;
                }
                labels[defeated] = Label::Out;
                for &t in self.targets(defeated) {
                    live_attackers[t] -= 1;
                    if live_attackers[t] == 0 && labels[t] == Label::Undec {
                        work.push(t);
                    }
                }
            }
        }
        labels
    }

    /// The grounded extension: the `In` set of [`Adjacency::grounded_labels`].
    pub fn grounded(&self) -> BTreeSet<ArgId> {
        self.grounded_labels()
            .iter()
            .enumerate()
            .filter(|(_, l)| **l == Label::In)
            .map(|(a, _)| a)
            .collect()
    }
}

/// The status of a deliberated action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// The proposal is sceptically accepted: perform the action.
    Accepted,
    /// The proposal is attacked and undefended: do not perform it.
    Rejected,
}

/// A deliberation dialogue over one proposed safety-critical action,
/// mirroring Tolchinsky et al.'s usage: participants submit arguments for
/// or against, each possibly attacking earlier arguments, and the verdict
/// is recomputed non-monotonically after every move.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Deliberation {
    framework: Framework,
    proposal: ArgId,
    history: Vec<(ArgId, Verdict)>,
}

impl Deliberation {
    /// Opens a deliberation over `proposal` (e.g.
    /// `treat(r, penicillin)` — the paper's symbolic-claim example).
    pub fn open(proposal: impl Into<String>) -> Self {
        let mut framework = Framework::new();
        let proposal = framework.add_argument(proposal);
        let mut d = Deliberation {
            framework,
            proposal,
            history: Vec::new(),
        };
        d.history.push((proposal, d.verdict()));
        d
    }

    /// Submits an argument attacking an earlier one; returns its id.
    ///
    /// Returns [`LogicError::UnknownArgument`] if `target` is unknown;
    /// a rejected move leaves the dialogue untouched.
    ///
    /// ```
    /// use casekit_logic::af::Deliberation;
    /// let mut d = Deliberation::open("act");
    /// assert!(d.object("premature", 7).is_err());
    /// assert_eq!(d.framework().len(), 1);
    /// assert!(d.object("objection", 0).is_ok());
    /// ```
    pub fn object(&mut self, label: impl Into<String>, target: ArgId) -> Result<ArgId, LogicError> {
        // Validate before allocating, so a rejected move leaves no trace.
        self.framework.check_id(target)?;
        let id = self.framework.add_argument(label);
        self.framework
            .add_attack(id, target)
            .expect("both ids were just validated");
        self.history.push((id, self.verdict()));
        Ok(id)
    }

    /// The current verdict on the proposal.
    pub fn verdict(&self) -> Verdict {
        // The proposal id is allocated in `open` and never removed.
        if self.framework.grounded_extension().contains(&self.proposal) {
            Verdict::Accepted
        } else {
            Verdict::Rejected
        }
    }

    /// The framework built so far.
    pub fn framework(&self) -> &Framework {
        &self.framework
    }

    /// The verdict after each move — the dialogue's non-monotone history.
    pub fn verdict_history(&self) -> Vec<Verdict> {
        self.history.iter().map(|(_, v)| *v).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[ArgId]) -> BTreeSet<ArgId> {
        ids.iter().copied().collect()
    }

    #[test]
    fn unattacked_argument_is_grounded() {
        let mut af = Framework::new();
        let a = af.add_argument("a");
        assert_eq!(af.grounded_extension(), set(&[a]));
        assert!(af.sceptically_accepted(a).unwrap());
        assert_eq!(af.label(a).unwrap(), "a");
    }

    #[test]
    fn simple_attack_defeats() {
        let mut af = Framework::new();
        let a = af.add_argument("do it");
        let b = af.add_argument("objection");
        af.add_attack(b, a).unwrap();
        assert_eq!(af.grounded_extension(), set(&[b]));
        assert!(!af.sceptically_accepted(a).unwrap());
    }

    #[test]
    fn reinstatement_chain() {
        // c attacks b attacks a: a is reinstated (defended by c).
        let mut af = Framework::new();
        let a = af.add_argument("a");
        let b = af.add_argument("b");
        let c = af.add_argument("c");
        af.add_attack(b, a).unwrap();
        af.add_attack(c, b).unwrap();
        assert_eq!(af.grounded_extension(), set(&[a, c]));
    }

    #[test]
    fn mutual_attack_grounds_to_empty() {
        let mut af = Framework::new();
        let a = af.add_argument("a");
        let b = af.add_argument("b");
        af.add_attack(a, b).unwrap();
        af.add_attack(b, a).unwrap();
        assert!(af.grounded_extension().is_empty());
        // But there are two preferred extensions: {a} and {b}.
        let preferred = af.preferred_extensions();
        assert_eq!(preferred.len(), 2);
        assert!(preferred.contains(&set(&[a])));
        assert!(preferred.contains(&set(&[b])));
        // Both are stable: each attacks everything outside itself.
        let stable = af.stable_extensions();
        assert_eq!(stable.len(), 2);
        // Credulous but not sceptical acceptance, under every engine.
        assert!(af.credulously_accepted(a).unwrap());
        assert!(!af.sceptically_accepted_preferred(a).unwrap());
        assert!(!af.sceptically_accepted(a).unwrap());
    }

    #[test]
    fn self_attacking_argument_never_accepted() {
        let mut af = Framework::new();
        let a = af.add_argument("liar");
        af.add_attack(a, a).unwrap();
        assert!(af.grounded_extension().is_empty());
        assert_eq!(af.preferred_extensions(), vec![BTreeSet::new()]);
        assert!(af.stable_extensions().is_empty());
        assert!(!af.credulously_accepted(a).unwrap());
    }

    #[test]
    fn admissibility_and_conflict_freedom() {
        let mut af = Framework::new();
        let a = af.add_argument("a");
        let b = af.add_argument("b");
        let c = af.add_argument("c");
        af.add_attack(b, a).unwrap();
        af.add_attack(c, b).unwrap();
        assert!(af.conflict_free(&set(&[a, c])));
        assert!(!af.conflict_free(&set(&[a, b])));
        assert!(af.admissible(&set(&[a, c])));
        assert!(!af.admissible(&set(&[a]))); // a cannot defend itself
        assert!(af.admissible(&set(&[])));
    }

    #[test]
    fn grounded_is_subset_of_every_preferred() {
        let mut af = Framework::new();
        let a = af.add_argument("a");
        let b = af.add_argument("b");
        let c = af.add_argument("c");
        let d = af.add_argument("d");
        af.add_attack(a, b).unwrap();
        af.add_attack(b, a).unwrap();
        af.add_attack(a, c).unwrap();
        af.add_attack(b, c).unwrap();
        af.add_attack(c, d).unwrap();
        let grounded = af.grounded_extension();
        for preferred in af.preferred_extensions() {
            assert!(grounded.is_subset(&preferred));
        }
    }

    #[test]
    fn transplant_deliberation_is_non_monotonic() {
        // The paper's scenario: deliberate a transplant action. The
        // verdict flips as the dialogue adds information — the
        // non-monotonicity classical deduction cannot model.
        let mut d = Deliberation::open("transplant(organ1, recipient_r)");
        assert_eq!(d.verdict(), Verdict::Accepted);

        let objection = d
            .object("donor history indicates hepatitis risk", 0)
            .unwrap();
        assert_eq!(d.verdict(), Verdict::Rejected);

        let rebuttal = d
            .object("serology panel rules the risk out", objection)
            .unwrap();
        assert_eq!(d.verdict(), Verdict::Accepted);

        d.object("panel used an expired reagent batch", rebuttal)
            .unwrap();
        assert_eq!(d.verdict(), Verdict::Rejected);

        assert_eq!(
            d.verdict_history(),
            vec![
                Verdict::Accepted,
                Verdict::Rejected,
                Verdict::Accepted,
                Verdict::Rejected
            ]
        );
        assert_eq!(d.framework().len(), 4);
    }

    #[test]
    fn attackers_listed() {
        let mut af = Framework::new();
        let a = af.add_argument("a");
        let b = af.add_argument("b");
        let c = af.add_argument("c");
        af.add_attack(b, a).unwrap();
        af.add_attack(c, a).unwrap();
        assert_eq!(af.attackers(a), vec![b, c]);
        assert!(af.attackers(b).is_empty());
        assert_eq!(af.attack_count(), 2);
    }

    #[test]
    fn out_of_range_ids_are_typed_errors_not_panics() {
        let mut af = Framework::new();
        let a = af.add_argument("a");
        assert!(matches!(
            af.add_attack(9, a),
            Err(LogicError::UnknownArgument {
                id: 9,
                arguments: 1
            })
        ));
        assert!(matches!(
            af.add_attack(a, 9),
            Err(LogicError::UnknownArgument {
                id: 9,
                arguments: 1
            })
        ));
        assert!(af.label(3).is_err());
        assert!(af.credulously_accepted(3).is_err());
        assert!(af.sceptically_accepted(3).is_err());
        assert!(af.sceptically_accepted_preferred(3).is_err());
        assert_eq!(af.attack_count(), 0, "failed attacks leave no trace");

        let mut d = Deliberation::open("act");
        assert!(matches!(
            d.object("late", 5),
            Err(LogicError::UnknownArgument {
                id: 5,
                arguments: 1
            })
        ));
        assert_eq!(d.framework().len(), 1, "failed moves leave no trace");
        assert_eq!(d.verdict_history().len(), 1);
    }

    #[test]
    fn complete_extensions_of_classic_example() {
        // a <-> b, both attack c: complete extensions are {}, {a}, {b}.
        let mut af = Framework::new();
        let a = af.add_argument("a");
        let b = af.add_argument("b");
        let c = af.add_argument("c");
        af.add_attack(a, b).unwrap();
        af.add_attack(b, a).unwrap();
        af.add_attack(a, c).unwrap();
        af.add_attack(b, c).unwrap();
        let complete = af.complete_extensions();
        assert_eq!(complete.len(), 3);
        assert!(complete.contains(&BTreeSet::new()));
        assert!(complete.contains(&set(&[a])));
        assert!(complete.contains(&set(&[b])));
    }

    #[test]
    fn csr_adjacency_mirrors_the_attack_relation() {
        let mut af = Framework::new();
        let a = af.add_argument("a");
        let b = af.add_argument("b");
        let c = af.add_argument("c");
        af.add_attack(b, a).unwrap();
        af.add_attack(c, a).unwrap();
        af.add_attack(a, c).unwrap();
        let adj = af.adjacency();
        assert_eq!(adj.num_args(), 3);
        assert_eq!(adj.num_attacks(), 3);
        assert_eq!(adj.attackers(a), &[b, c]);
        assert_eq!(adj.attackers(b), &[] as &[ArgId]);
        assert_eq!(adj.attackers(c), &[a]);
        assert_eq!(adj.targets(a), &[c]);
        assert_eq!(adj.targets(b), &[a]);
        assert_eq!(adj.targets(c), &[a]);
        for id in 0..af.len() {
            assert_eq!(adj.attackers(id), af.attackers(id).as_slice());
        }
    }

    #[test]
    fn extensions_beyond_the_old_sixteen_argument_ceiling() {
        // A 3-cycle of mutual-attack pairs plus a 40-argument
        // reinstatement chain: 46 arguments, which the seed's
        // `assert!(n <= 16)` enumerator could never touch.
        let mut af = Framework::new();
        let pairs: Vec<(ArgId, ArgId)> = (0..3)
            .map(|i| {
                let x = af.add_argument(format!("x{i}"));
                let y = af.add_argument(format!("y{i}"));
                af.add_attack(x, y).unwrap();
                af.add_attack(y, x).unwrap();
                (x, y)
            })
            .collect();
        let mut prev = None;
        let mut chain = Vec::new();
        for i in 0..40 {
            let c = af.add_argument(format!("c{i}"));
            if let Some(p) = prev {
                af.add_attack(c, p).unwrap();
            }
            prev = Some(c);
            chain.push(c);
        }
        assert_eq!(af.len(), 46);
        let preferred = af.preferred_extensions();
        // 2 choices per mutual pair: 8 preferred extensions, each
        // containing the alternating half of the chain.
        assert_eq!(preferred.len(), 8);
        let grounded = af.grounded_extension();
        let chain_in: BTreeSet<ArgId> = chain.iter().copied().skip(1).step_by(2).collect();
        assert!(chain_in.is_subset(&grounded));
        for p in &preferred {
            assert!(af.admissible(p));
            assert!(grounded.is_subset(p));
            for (x, y) in &pairs {
                assert!(p.contains(x) ^ p.contains(y));
            }
        }
        // Stable extensions coincide here (no odd cycles, no undec).
        assert_eq!(af.stable_extensions().len(), 8);
    }

    #[test]
    fn grounded_matches_naive_fixpoint_on_assorted_shapes() {
        let shapes: Vec<Vec<(ArgId, ArgId)>> = vec![
            vec![],
            vec![(0, 0)],
            vec![(0, 1), (1, 0)],
            vec![(1, 0), (2, 1), (3, 2), (4, 3)],
            vec![(0, 1), (1, 2), (2, 0)],
            vec![(1, 0), (2, 0), (3, 1), (3, 2), (4, 4)],
        ];
        for attacks in shapes {
            let n = attacks
                .iter()
                .flat_map(|&(a, t)| [a, t])
                .max()
                .map_or(1, |m| m + 1);
            let mut af = Framework::new();
            for i in 0..n {
                af.add_argument(format!("a{i}"));
            }
            for (a, t) in attacks {
                af.add_attack(a, t).unwrap();
            }
            assert_eq!(
                af.grounded_extension(),
                naive::grounded_extension(&af),
                "grounded engines disagree on {af:?}"
            );
        }
    }
}
