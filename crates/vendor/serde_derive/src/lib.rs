//! Vendored, dependency-free stand-in for `serde_derive`.
//!
//! The build environment has no network access and no crates.io cache, so
//! the real serde stack is unavailable. This proc-macro derives the
//! simplified `Serialize`/`Deserialize` traits exposed by the vendored
//! `serde` crate (tree-structured `serde::Value` data model, externally
//! tagged enums — the same wire shape serde_json would produce for the
//! derive defaults used in this workspace).
//!
//! Supported item shapes (everything this workspace uses):
//! unit/newtype/tuple/named-field structs and enums whose variants are
//! unit, newtype, tuple, or struct-like. `#[serde(...)]` attributes are
//! not supported and not used anywhere in the workspace.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    shape: Shape,
}

enum Shape {
    UnitStruct,
    /// Tuple struct; `usize` is the field count (1 = newtype).
    TupleStruct(usize),
    Struct(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

// ---------------------------------------------------------------------------
// Parsing (raw token trees; no syn available)
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 1; // '#'
                if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '!') {
                    i += 1;
                }
                i += 1; // bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
                return parse_struct(&tokens, i + 1);
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                return parse_enum(&tokens, i + 1);
            }
            Some(_) => i += 1,
            None => panic!("derive input contained no struct or enum"),
        }
    }
}

fn ident_at(tokens: &[TokenTree], i: usize) -> String {
    match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected identifier, found {other:?}"),
    }
}

/// Skips a `<...>` generics list starting at `i` (pointing at `<`).
/// Returns the index one past the matching `>`. The workspace derives no
/// generic types, but being tolerant here costs nothing.
fn skip_generics(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut depth = 0usize;
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
            Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            Some(_) => {}
            None => panic!("unterminated generics list"),
        }
        i += 1;
    }
}

fn parse_struct(tokens: &[TokenTree], mut i: usize) -> Item {
    let name = ident_at(tokens, i);
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        i = skip_generics(tokens, i);
    }
    // Skip a `where` clause if one ever shows up.
    while let Some(tt) = tokens.get(i) {
        match tt {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                return Item {
                    name,
                    shape: Shape::Struct(fields),
                };
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                return Item {
                    name,
                    shape: Shape::TupleStruct(arity),
                };
            }
            TokenTree::Punct(p) if p.as_char() == ';' => {
                return Item {
                    name,
                    shape: Shape::UnitStruct,
                };
            }
            _ => i += 1,
        }
    }
    panic!("malformed struct `{name}`");
}

fn parse_enum(tokens: &[TokenTree], mut i: usize) -> Item {
    let name = ident_at(tokens, i);
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        i = skip_generics(tokens, i);
    }
    while let Some(tt) = tokens.get(i) {
        if let TokenTree::Group(g) = tt {
            if g.delimiter() == Delimiter::Brace {
                return Item {
                    name,
                    shape: Shape::Enum(parse_variants(g.stream())),
                };
            }
        }
        i += 1;
    }
    panic!("malformed enum `{name}`");
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        // Skip attributes (doc comments included).
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        if i >= tokens.len() {
            break;
        }
        let name = ident_at(&tokens, i);
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantShape::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        while i < tokens.len() && !matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
            i += 1;
        }
        i += 1; // comma (or past end)
        variants.push(Variant { name, shape });
    }
    variants
}

/// Field count of a tuple struct/variant body: top-level commas + 1,
/// tracking `<...>` nesting so `BTreeMap<K, V>` counts as one field.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut fields = 1usize;
    let mut angle = 0usize;
    let mut trailing_comma = true;
    for tt in &tokens {
        trailing_comma = false;
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle = angle.saturating_sub(1),
                ',' if angle == 0 => {
                    fields += 1;
                    trailing_comma = true;
                }
                _ => {}
            }
        }
    }
    if trailing_comma {
        fields -= 1;
    }
    fields
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        if i >= tokens.len() {
            break;
        }
        if matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "pub") {
            i += 1;
            if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        let name = ident_at(&tokens, i);
        i += 1;
        assert!(
            matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':'),
            "expected `:` after field `{name}`"
        );
        i += 1;
        // Skip the type: consume until a top-level comma.
        let mut angle = 0usize;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle = angle.saturating_sub(1),
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                _ => {}
            }
            i += 1;
        }
        i += 1; // comma
        fields.push(name);
    }
    fields
}

// ---------------------------------------------------------------------------
// Code generation (rendered as strings, then reparsed)
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::UnitStruct => "serde::Value::Null".to_string(),
        Shape::TupleStruct(1) => "serde::Serialize::serialize(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!("serde::Value::Array(vec![{}])", elems.join(", "))
        }
        Shape::Struct(fields) => serialize_fields_expr(fields, "self."),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "{name}::{vname} => serde::Value::Str(String::from(\"{vname}\")),"
                        ),
                        VariantShape::Tuple(1) => format!(
                            "{name}::{vname}(__f0) => serde::Value::Object(vec![(String::from(\"{vname}\"), serde::Serialize::serialize(__f0))]),"
                        ),
                        VariantShape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("serde::Serialize::serialize(__f{i})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => serde::Value::Object(vec![(String::from(\"{vname}\"), serde::Value::Array(vec![{}]))]),",
                                binds.join(", "),
                                elems.join(", ")
                            )
                        }
                        VariantShape::Struct(fields) => {
                            let binds: Vec<String> = fields.clone();
                            let inner = serialize_fields_expr(fields, "");
                            format!(
                                "{name}::{vname} {{ {} }} => serde::Value::Object(vec![(String::from(\"{vname}\"), {inner})]),",
                                binds.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived] impl serde::Serialize for {name} {{ \
             fn serialize(&self) -> serde::Value {{ {body} }} \
         }}"
    )
}

/// `(field access prefix)` is `self.` for structs and empty for
/// struct-variant bindings.
fn serialize_fields_expr(fields: &[String], prefix: &str) -> String {
    let pairs: Vec<String> = fields
        .iter()
        .map(|f| format!("(String::from(\"{f}\"), serde::Serialize::serialize(&{prefix}{f}))"))
        .collect();
    format!("serde::Value::Object(vec![{}])", pairs.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::UnitStruct => format!(
            "match __v {{ serde::Value::Null => Ok({name}), _ => Err(serde::Error::custom(\"expected null for unit struct {name}\")) }}"
        ),
        Shape::TupleStruct(1) => {
            format!("Ok({name}(serde::Deserialize::deserialize(__v)?))")
        }
        Shape::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("serde::Deserialize::deserialize(&__arr[{i}])?"))
                .collect();
            format!(
                "{{ let __arr = __v.as_array().ok_or_else(|| serde::Error::custom(\"expected array for {name}\"))?; \
                   if __arr.len() != {n} {{ return Err(serde::Error::custom(\"wrong tuple arity for {name}\")); }} \
                   Ok({name}({})) }}",
                elems.join(", ")
            )
        }
        Shape::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: serde::__private::field(__obj, \"{f}\", \"{name}\")?"))
                .collect();
            format!(
                "{{ let __obj = __v.as_object().ok_or_else(|| serde::Error::custom(\"expected object for {name}\"))?; \
                   Ok({name} {{ {} }}) }}",
                inits.join(", ")
            )
        }
        Shape::Enum(variants) => gen_deserialize_enum(name, variants),
    };
    format!(
        "#[automatically_derived] impl serde::Deserialize for {name} {{ \
             fn deserialize(__v: &serde::Value) -> Result<Self, serde::Error> {{ {body} }} \
         }}"
    )
}

fn gen_deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = Vec::new();
    let mut tagged_arms = Vec::new();
    for v in variants {
        let vname = &v.name;
        match &v.shape {
            VariantShape::Unit => {
                unit_arms.push(format!("\"{vname}\" => Ok({name}::{vname}),"));
            }
            VariantShape::Tuple(1) => tagged_arms.push(format!(
                "\"{vname}\" => Ok({name}::{vname}(serde::Deserialize::deserialize(__inner)?)),"
            )),
            VariantShape::Tuple(n) => {
                let elems: Vec<String> = (0..*n)
                    .map(|i| format!("serde::Deserialize::deserialize(&__arr[{i}])?"))
                    .collect();
                tagged_arms.push(format!(
                    "\"{vname}\" => {{ let __arr = __inner.as_array().ok_or_else(|| serde::Error::custom(\"expected array for {name}::{vname}\"))?; \
                       if __arr.len() != {n} {{ return Err(serde::Error::custom(\"wrong arity for {name}::{vname}\")); }} \
                       Ok({name}::{vname}({})) }}",
                    elems.join(", ")
                ));
            }
            VariantShape::Struct(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "{f}: serde::__private::field(__obj, \"{f}\", \"{name}::{vname}\")?"
                        )
                    })
                    .collect();
                tagged_arms.push(format!(
                    "\"{vname}\" => {{ let __obj = __inner.as_object().ok_or_else(|| serde::Error::custom(\"expected object for {name}::{vname}\"))?; \
                       Ok({name}::{vname} {{ {} }}) }}",
                    inits.join(", ")
                ));
            }
        }
    }
    format!(
        "match __v {{ \
             serde::Value::Str(__s) => match __s.as_str() {{ \
                 {} \
                 __other => Err(serde::Error::custom(format!(\"unknown variant `{{__other}}` of {name}\"))), \
             }}, \
             serde::Value::Object(__pairs) if __pairs.len() == 1 => {{ \
                 let (__tag, __inner) = &__pairs[0]; \
                 match __tag.as_str() {{ \
                     {} \
                     __other => Err(serde::Error::custom(format!(\"unknown variant `{{__other}}` of {name}\"))), \
                 }} \
             }}, \
             _ => Err(serde::Error::custom(\"expected string or single-key object for enum {name}\")), \
         }}",
        unit_arms.join(" "),
        tagged_arms.join(" ")
    )
}
