//! The original abort-on-first-error DSL parser, retained verbatim.
//!
//! This is the pre-recovery frontend: it lexes the whole file up front
//! (materializing a `Vec<char>` and a byte-offset table — the allocation
//! pattern the tolerant lexer in [`super::lexer`] was built to avoid) and
//! returns at the first problem it meets. It is kept for two jobs:
//!
//! - **Differential oracle**: on valid input the recovering parser must
//!   produce a node-for-node identical [`Argument`]; on invalid input the
//!   seed's single error must appear in the recovering parser's
//!   diagnostic stream (the `diagnostics_roundtrip` flag in `repro dsl`).
//! - **Bench baseline**: `BENCH_dsl.json` measures corpus ingestion
//!   against this parser's per-file abort-and-rescan behavior.

use crate::argument::{Argument, ArgumentBuilder};
use crate::node::{FormalPayload, Node};
use casekit_logic::{ltl::parse_ltl, prop, ParseError, Span};

use super::{edge_kind_for, kind_of};
use crate::node::EdgeKind;

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Word(String),
    Str(String),
    LBrace,
    RBrace,
}

#[derive(Debug, Clone)]
struct Lexed {
    tok: Tok,
    span: Span,
}

fn lex(input: &str) -> Result<Vec<Lexed>, ParseError> {
    let mut out = Vec::new();
    let bytes: Vec<char> = input.chars().collect();
    let mut offsets: Vec<usize> = input.char_indices().map(|(i, _)| i).collect();
    offsets.push(input.len());
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        if c.is_whitespace() {
            i += 1;
        } else if c == '/' && bytes.get(i + 1) == Some(&'/') || c == '#' {
            while i < bytes.len() && bytes[i] != '\n' {
                i += 1;
            }
        } else if c == '{' {
            out.push(Lexed {
                tok: Tok::LBrace,
                span: Span::new(offsets[i], offsets[i + 1]),
            });
            i += 1;
        } else if c == '}' {
            out.push(Lexed {
                tok: Tok::RBrace,
                span: Span::new(offsets[i], offsets[i + 1]),
            });
            i += 1;
        } else if c == '"' {
            let start = i;
            i += 1;
            let mut s = String::new();
            let mut closed = false;
            while i < bytes.len() {
                match bytes[i] {
                    '"' => {
                        closed = true;
                        i += 1;
                        break;
                    }
                    '\\' if matches!(bytes.get(i + 1), Some('"') | Some('\\')) => {
                        s.push(bytes[i + 1]);
                        i += 2;
                    }
                    other => {
                        s.push(other);
                        i += 1;
                    }
                }
            }
            if !closed {
                return Err(ParseError::new(
                    "unterminated string literal",
                    Span::new(offsets[start], input.len()),
                ));
            }
            out.push(Lexed {
                tok: Tok::Str(s),
                span: Span::new(offsets[start], offsets[i]),
            });
        } else if c.is_alphanumeric() || c == '_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                i += 1;
            }
            let word: String = bytes[start..i].iter().collect();
            out.push(Lexed {
                tok: Tok::Word(word),
                span: Span::new(offsets[start], offsets[i]),
            });
        } else {
            return Err(ParseError::new(
                format!("unexpected character `{c}`"),
                Span::new(offsets[i], offsets[i + 1]),
            ));
        }
    }
    Ok(out)
}

struct Parser {
    toks: Vec<Lexed>,
    pos: usize,
    end: usize,
}

impl Parser {
    fn here(&self) -> Span {
        self.toks
            .get(self.pos)
            .map(|l| l.span)
            .unwrap_or(Span::point(self.end))
    }

    fn next(&mut self) -> Option<Lexed> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|l| &l.tok)
    }

    fn expect_word(&mut self, expected: &str) -> Result<(), ParseError> {
        let span = self.here();
        match self.next().map(|l| l.tok) {
            Some(Tok::Word(w)) if w == expected => Ok(()),
            _ => Err(ParseError::new(format!("expected `{expected}`"), span)),
        }
    }

    fn expect_string(&mut self, what: &str) -> Result<String, ParseError> {
        let span = self.here();
        match self.next().map(|l| l.tok) {
            Some(Tok::Str(s)) => Ok(s),
            _ => Err(ParseError::new(format!("expected {what} string"), span)),
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        let span = self.here();
        match self.next().map(|l| l.tok) {
            Some(Tok::Word(w)) if kind_of(&w).is_none() && w != "ref" => Ok(w),
            _ => Err(ParseError::new("expected a node identifier", span)),
        }
    }

    fn expect_lbrace(&mut self) -> Result<(), ParseError> {
        let span = self.here();
        match self.next().map(|l| l.tok) {
            Some(Tok::LBrace) => Ok(()),
            _ => Err(ParseError::new("expected `{`", span)),
        }
    }

    /// Parses one node (and its nested children) into the builder, adding
    /// an edge from `parent` if there is one. Returns the updated builder.
    fn node(
        &mut self,
        mut builder: ArgumentBuilder,
        parent: Option<(&str, crate::node::NodeKind)>,
    ) -> Result<ArgumentBuilder, ParseError> {
        let span = self.here();
        let kind_word = match self.next().map(|l| l.tok) {
            Some(Tok::Word(w)) => w,
            _ => return Err(ParseError::new("expected a node kind", span)),
        };

        if kind_word == "ref" {
            let target = self.expect_ident()?;
            let (parent_id, _) = parent
                .ok_or_else(|| ParseError::new("`ref` is only allowed inside a node body", span))?;
            // Edge kind depends on the *referenced* node's kind, which the
            // builder may not know yet; we default to SupportedBy — a ref
            // to a context node should use nesting instead.
            builder = builder.edge(parent_id, &target, EdgeKind::SupportedBy);
            return Ok(builder);
        }

        let kind = kind_of(&kind_word)
            .ok_or_else(|| ParseError::new(format!("unknown node kind `{kind_word}`"), span))?;
        let id = self.expect_ident()?;
        let text = self.expect_string("node text")?;

        let mut node = Node::new(id.as_str(), kind, text);

        // Modifiers.
        loop {
            match self.peek() {
                Some(Tok::Word(w)) if w == "formal" => {
                    self.next();
                    let span = self.here();
                    let src = self.expect_string("formula")?;
                    let formula = prop::parse(&src).map_err(|e| {
                        ParseError::new(format!("in formal payload of `{id}`: {}", e.message), span)
                    })?;
                    node.formal = Some(FormalPayload::Prop(formula));
                }
                Some(Tok::Word(w)) if w == "temporal" => {
                    self.next();
                    let span = self.here();
                    let src = self.expect_string("LTL formula")?;
                    let formula = parse_ltl(&src).map_err(|e| {
                        ParseError::new(
                            format!("in temporal payload of `{id}`: {}", e.message),
                            span,
                        )
                    })?;
                    node.formal = Some(FormalPayload::Temporal(formula));
                }
                Some(Tok::Word(w)) if w == "undeveloped" => {
                    self.next();
                    node.undeveloped = true;
                }
                _ => break,
            }
        }

        builder = builder.node(node);
        if let Some((parent_id, _)) = parent {
            builder = builder.edge(parent_id, &id, edge_kind_for(kind));
        }

        // Optional body.
        if matches!(self.peek(), Some(Tok::LBrace)) {
            self.next();
            while !matches!(self.peek(), Some(Tok::RBrace)) {
                if self.peek().is_none() {
                    return Err(ParseError::new("expected `}`", self.here()));
                }
                builder = self.node(builder, Some((&id, kind)))?;
            }
            self.next(); // consume `}`
        }
        Ok(builder)
    }
}

/// Parses an argument with the retained seed parser, stopping at the
/// first error.
///
/// # Errors
///
/// Returns a [`ParseError`] for syntax errors (with a span into `input`)
/// or for structural errors surfaced by the builder (duplicate ids,
/// dangling `ref`s), reported at the end of input.
pub fn parse_argument_seed(input: &str) -> Result<Argument, ParseError> {
    let toks = lex(input)?;
    let mut p = Parser {
        toks,
        pos: 0,
        end: input.len(),
    };
    p.expect_word("argument")?;
    let name = p.expect_string("argument name")?;
    p.expect_lbrace()?;
    let mut builder = Argument::builder(name);
    while !matches!(p.peek(), Some(Tok::RBrace)) {
        if p.peek().is_none() {
            return Err(ParseError::new("expected `}`", p.here()));
        }
        builder = p.node(builder, None)?;
    }
    p.next(); // final `}`
    if let Some(extra) = p.toks.get(p.pos) {
        return Err(ParseError::new("unexpected trailing input", extra.span));
    }
    builder
        .build()
        .map_err(|e| ParseError::new(e.to_string(), Span::point(input.len())))
}
