//! Ontologies: declared attribute schemas and enumerations.
//!
//! Denney et al.'s grammar: `attribute ::= attributeName param*` with
//! `param ::= String | Int | Nat | … userDefinedEnum`. We give params
//! names so queries can say `hazard.severity`.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The type of one attribute field.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FieldType {
    /// Free text.
    Str,
    /// Any integer.
    Int,
    /// A natural number.
    Nat,
    /// A member of the named user-defined enumeration.
    Enum(String),
}

/// An ontology: enumerations plus attribute schemas.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ontology {
    enums: BTreeMap<String, Vec<String>>,
    attributes: BTreeMap<String, Vec<(String, FieldType)>>,
}

impl Ontology {
    /// An empty ontology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares (or replaces) an enumeration.
    pub fn declare_enum(
        &mut self,
        name: impl Into<String>,
        values: impl IntoIterator<Item = impl Into<String>>,
    ) {
        self.enums
            .insert(name.into(), values.into_iter().map(Into::into).collect());
    }

    /// Declares (or replaces) an attribute schema with named, typed fields.
    pub fn declare_attribute(
        &mut self,
        name: impl Into<String>,
        fields: impl IntoIterator<Item = (impl Into<String>, FieldType)>,
    ) {
        self.attributes.insert(
            name.into(),
            fields.into_iter().map(|(n, t)| (n.into(), t)).collect(),
        );
    }

    /// The values of an enumeration, if declared.
    pub fn enum_values(&self, name: &str) -> Option<&[String]> {
        self.enums.get(name).map(Vec::as_slice)
    }

    /// The schema of an attribute, if declared.
    pub fn attribute_schema(&self, name: &str) -> Option<&[(String, FieldType)]> {
        self.attributes.get(name).map(Vec::as_slice)
    }

    /// The declared attribute names.
    pub fn attribute_names(&self) -> impl Iterator<Item = &str> {
        self.attributes.keys().map(String::as_str)
    }

    /// Whether `value` is valid for `ty`.
    pub fn field_ok(&self, ty: &FieldType, value: &crate::annotation::FieldValue) -> bool {
        use crate::annotation::FieldValue;
        match (ty, value) {
            (FieldType::Str, FieldValue::Str(_)) => true,
            (FieldType::Int, FieldValue::Int(_)) => true,
            (FieldType::Nat, FieldValue::Int(v)) => *v >= 0,
            (FieldType::Enum(name), FieldValue::Str(s)) => self
                .enums
                .get(name)
                .is_some_and(|vals| vals.iter().any(|v| v == s)),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotation::FieldValue;

    #[test]
    fn declarations_and_lookup() {
        let mut o = Ontology::new();
        o.declare_enum("element", ["aileron", "elevator", "flaps"]);
        o.declare_attribute("verifies", [("element", FieldType::Enum("element".into()))]);
        assert_eq!(o.enum_values("element").unwrap().len(), 3);
        assert!(o.enum_values("missing").is_none());
        assert_eq!(o.attribute_schema("verifies").unwrap().len(), 1);
        assert!(o.attribute_schema("missing").is_none());
        let names: Vec<_> = o.attribute_names().collect();
        assert_eq!(names, vec!["verifies"]);
    }

    #[test]
    fn field_validation() {
        let mut o = Ontology::new();
        o.declare_enum("severity", ["catastrophic", "major"]);
        assert!(o.field_ok(&FieldType::Str, &FieldValue::Str("x".into())));
        assert!(o.field_ok(&FieldType::Int, &FieldValue::Int(-5)));
        assert!(o.field_ok(&FieldType::Nat, &FieldValue::Int(5)));
        assert!(!o.field_ok(&FieldType::Nat, &FieldValue::Int(-5)));
        assert!(o.field_ok(
            &FieldType::Enum("severity".into()),
            &FieldValue::Str("major".into())
        ));
        assert!(!o.field_ok(
            &FieldType::Enum("severity".into()),
            &FieldValue::Str("negligible".into())
        ));
        assert!(!o.field_ok(
            &FieldType::Enum("undeclared".into()),
            &FieldValue::Str("major".into())
        ));
        assert!(!o.field_ok(&FieldType::Int, &FieldValue::Str("5".into())));
    }

    #[test]
    fn redeclaration_replaces() {
        let mut o = Ontology::new();
        o.declare_enum("e", ["a"]);
        o.declare_enum("e", ["b", "c"]);
        assert_eq!(o.enum_values("e").unwrap(), ["b", "c"]);
    }
}
