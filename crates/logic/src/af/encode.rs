//! The SAT path: compiles a [`Framework`] into packed-literal clauses
//! for the CDCL [`Solver`] and answers extension and acceptance
//! questions as one incremental session.
//!
//! # The labelling encoding
//!
//! Each argument `a` gets two solver variables, `in_a` and `out_a`
//! (`undec` is their joint absence). The complete-semantics clauses say
//! a labelling is a fixpoint of the characteristic function:
//!
//! * `¬in_a ∨ ¬out_a` — a label, not two;
//! * `in_a ↔ ⋀_{b attacks a} out_b` — accepted iff every attacker is
//!   defeated (unit `in_a` for unattacked arguments);
//! * `out_a ↔ ⋁_{b attacks a} in_b` — defeated iff some attacker is
//!   accepted (unit `¬out_a` for unattacked arguments).
//!
//! Models are exactly the complete labellings, and because the `out`
//! variables are functionally determined by the `in` variables, models
//! biject with complete *extensions*. Stable semantics adds
//! `in_a ∨ out_a` (no undecided argument).
//!
//! # Sessions, selectors, and enumeration
//!
//! One [`AfSat`] owns one persistent [`Solver`]; queries differ only in
//! their assumptions, so clauses learned answering one question remain
//! valid for the next (assumptions enter the CDCL search as decisions —
//! see [`crate::prop::solver`]). Enumeration needs clauses that *block*
//! already-reported extensions, and the clause database is permanent,
//! so every blocking clause is guarded by a fresh per-enumeration
//! *selector* literal `s` (`¬s ∨ blocking-lits`): while `s` is assumed
//! the clause bites, and once the enumeration retracts `s` the clause
//! is vacuously satisfiable and later queries are unaffected.
//!
//! Preferred extensions use the same trick twice ([`AfSat::preferred`]):
//! an inner *maximality loop* assumes the current extension's `in`
//! literals plus a one-shot guarded "grow" clause demanding one more
//! `in` outside it, iterating until UNSAT proves ⊆-maximality; and an
//! outer loop adds a guarded *subset-blocking* clause per maximal
//! extension found, so the next round lands on a complete extension
//! that is not below any reported one.

use super::{ArgId, Framework};
use crate::prop::intern::Lit;
use crate::prop::solver::Solver;
use std::collections::BTreeSet;

/// An incremental SAT session over one framework's labelling encoding.
///
/// Build once per framework ([`AfSat::complete`] / [`AfSat::stable`]),
/// then ask as many questions as needed — extensions, credulous and
/// sceptical acceptance — against the same learned clause database.
#[derive(Debug, Clone)]
pub struct AfSat {
    solver: Solver,
    /// Positive `in_a` literal per argument.
    in_lits: Vec<Lit>,
    n: usize,
}

impl AfSat {
    /// Compiles the complete-semantics encoding of `af`.
    pub fn complete(af: &Framework) -> Self {
        Self::build(af, false)
    }

    /// Compiles the stable-semantics encoding of `af` (complete plus
    /// totality: no undecided argument).
    pub fn stable(af: &Framework) -> Self {
        Self::build(af, true)
    }

    fn build(af: &Framework, total: bool) -> Self {
        let n = af.len();
        let adj = af.adjacency();
        let mut solver = Solver::new();
        let in_lits: Vec<Lit> = (0..n).map(|_| solver.new_var().positive()).collect();
        let out_lits: Vec<Lit> = (0..n).map(|_| solver.new_var().positive()).collect();
        let mut clause: Vec<Lit> = Vec::new();
        for a in 0..n {
            let attackers = adj.attackers(a);
            solver.add_clause(&[!in_lits[a], !out_lits[a]]);
            // in_a ↔ every attacker out.
            clause.clear();
            clause.push(in_lits[a]);
            for &b in attackers {
                solver.add_clause(&[!in_lits[a], out_lits[b]]);
                clause.push(!out_lits[b]);
            }
            solver.add_clause(&clause);
            // out_a ↔ some attacker in.
            clause.clear();
            clause.push(!out_lits[a]);
            for &b in attackers {
                solver.add_clause(&[!in_lits[b], out_lits[a]]);
                clause.push(in_lits[b]);
            }
            solver.add_clause(&clause);
            if total {
                solver.add_clause(&[in_lits[a], out_lits[a]]);
            }
        }
        AfSat { solver, in_lits, n }
    }

    /// Number of arguments in the encoded framework.
    pub fn num_args(&self) -> usize {
        self.n
    }

    /// The `in`-set of the model found by the last satisfiable check.
    fn read_extension(&self) -> BTreeSet<ArgId> {
        (0..self.n)
            .filter(|&a| self.solver.value(self.in_lits[a]) == Some(true))
            .collect()
    }

    /// Whether `id` is in some extension of the encoded semantics: one
    /// assume/check/retract probe against the persistent session.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an argument of the encoded framework.
    /// This session type mirrors the solver's low-level contract;
    /// [`Framework::credulously_accepted`] is the `Result`-returning
    /// wrapper.
    pub fn credulous(&mut self, id: ArgId) -> bool {
        assert!(
            id < self.n,
            "argument id {id} is out of range for an encoding of {} argument(s)",
            self.n
        );
        self.solver.assume(self.in_lits[id]);
        let sat = self.solver.check();
        self.solver.retract();
        sat
    }

    /// Enumerates extensions of the encoded semantics via guarded
    /// blocking clauses, up to `limit` if given.
    ///
    /// Each model's exact `in`-set is blocked before the next check, so
    /// every round yields a new extension; the session stays usable for
    /// later queries because the blocks die with this enumeration's
    /// selector.
    pub fn extensions(&mut self, limit: Option<usize>) -> Vec<BTreeSet<ArgId>> {
        let selector = self.solver.new_var().positive();
        let mut found = Vec::new();
        while limit.is_none_or(|cap| found.len() < cap) {
            self.solver.assume(selector);
            let sat = self.solver.check();
            let extension = if sat {
                Some(self.read_extension())
            } else {
                None
            };
            self.solver.retract();
            let Some(extension) = extension else { break };
            let mut block = vec![!selector];
            for a in 0..self.n {
                block.push(if extension.contains(&a) {
                    !self.in_lits[a]
                } else {
                    self.in_lits[a]
                });
            }
            self.solver.add_clause(&block);
            found.push(extension);
        }
        found
    }

    /// Enumerates the preferred extensions (⊆-maximal complete
    /// extensions) by the maximality loop. Only meaningful on a
    /// complete-semantics session ([`AfSat::complete`]); on a stable
    /// session it returns the stable extensions (which are already
    /// maximal).
    pub fn preferred(&mut self) -> Vec<BTreeSet<ArgId>> {
        let mut found: Vec<BTreeSet<ArgId>> = Vec::new();
        self.for_each_preferred(|extension| {
            found.push(extension.clone());
            true
        });
        found
    }

    /// Runs the preferred-extension enumeration, handing each maximal
    /// extension to `visit` as it is proven maximal; a `false` return
    /// stops the enumeration early (the session stays usable).
    fn for_each_preferred(&mut self, mut visit: impl FnMut(&BTreeSet<ArgId>) -> bool) {
        let selector = self.solver.new_var().positive();
        loop {
            self.solver.retract_all();
            self.solver.assume(selector);
            if !self.solver.check() {
                self.solver.retract_all();
                break;
            }
            let mut extension = self.read_extension();
            // Maximality loop: force a proper superset until UNSAT.
            loop {
                let grow = self.solver.new_var().positive();
                let mut clause = vec![!grow];
                clause.extend(
                    (0..self.n)
                        .filter(|a| !extension.contains(a))
                        .map(|a| self.in_lits[a]),
                );
                self.solver.add_clause(&clause);
                self.solver.retract_all();
                self.solver.assume(selector);
                for &a in &extension {
                    self.solver.assume(self.in_lits[a]);
                }
                self.solver.assume(grow);
                if self.solver.check() {
                    extension = self.read_extension();
                    // `grow` is never assumed again: its clause is
                    // vacuously satisfiable from here on.
                } else {
                    break;
                }
            }
            // Block every subset of the maximal extension: any later
            // model must accept some argument outside it.
            let mut block = vec![!selector];
            block.extend(
                (0..self.n)
                    .filter(|a| !extension.contains(a))
                    .map(|a| self.in_lits[a]),
            );
            self.solver.retract_all();
            self.solver.add_clause(&block);
            if !visit(&extension) {
                break;
            }
        }
    }

    /// Whether `id` is in *every* preferred extension (sceptical
    /// acceptance under preferred semantics). Runs the maximality loop
    /// on the session, stopping at the first counterexample extension;
    /// call on a complete-semantics encoding.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an argument of the encoded framework (see
    /// [`AfSat::credulous`]).
    pub fn sceptical_preferred(&mut self, id: ArgId) -> bool {
        assert!(
            id < self.n,
            "argument id {id} is out of range for an encoding of {} argument(s)",
            self.n
        );
        let mut in_all = true;
        self.for_each_preferred(|extension| {
            in_all = extension.contains(&id);
            in_all
        });
        in_all
    }
}

#[cfg(test)]
mod tests {
    use super::super::naive;
    use super::*;

    fn framework(n: usize, attacks: &[(ArgId, ArgId)]) -> Framework {
        let mut af = Framework::new();
        for i in 0..n {
            af.add_argument(format!("a{i}"));
        }
        for &(a, t) in attacks {
            af.add_attack(a, t).unwrap();
        }
        af
    }

    fn as_set(extensions: Vec<BTreeSet<ArgId>>) -> BTreeSet<BTreeSet<ArgId>> {
        extensions.into_iter().collect()
    }

    #[test]
    fn empty_framework_has_the_empty_extension() {
        let af = framework(0, &[]);
        assert_eq!(AfSat::complete(&af).extensions(None), vec![BTreeSet::new()]);
        assert_eq!(AfSat::complete(&af).preferred(), vec![BTreeSet::new()]);
        assert_eq!(AfSat::stable(&af).extensions(None), vec![BTreeSet::new()]);
    }

    #[test]
    fn agrees_with_the_enumerator_on_hand_picked_shapes() {
        let shapes: Vec<(usize, Vec<(ArgId, ArgId)>)> = vec![
            (1, vec![]),
            (1, vec![(0, 0)]),
            (2, vec![(0, 1), (1, 0)]),
            (3, vec![(0, 1), (1, 0), (0, 2), (1, 2)]),
            (3, vec![(0, 1), (1, 2), (2, 0)]),
            (4, vec![(0, 1), (1, 0), (2, 3), (3, 2)]),
            (5, vec![(1, 0), (2, 1), (3, 2), (4, 3), (0, 4)]),
            (
                6,
                vec![(0, 1), (1, 0), (1, 2), (2, 3), (3, 4), (4, 5), (5, 3)],
            ),
        ];
        for (n, attacks) in shapes {
            let af = framework(n, &attacks);
            let mut sat = AfSat::complete(&af);
            assert_eq!(
                as_set(sat.extensions(None)),
                as_set(naive::complete_extensions(&af).unwrap()),
                "complete disagrees on {attacks:?}"
            );
            assert_eq!(
                as_set(sat.preferred()),
                as_set(naive::preferred_extensions(&af).unwrap()),
                "preferred disagrees on {attacks:?}"
            );
            assert_eq!(
                as_set(AfSat::stable(&af).extensions(None)),
                as_set(naive::stable_extensions(&af).unwrap()),
                "stable disagrees on {attacks:?}"
            );
            for id in 0..n {
                assert_eq!(
                    sat.credulous(id),
                    naive::credulously_accepted(&af, id).unwrap(),
                    "credulous disagrees on {attacks:?} id {id}"
                );
            }
        }
    }

    #[test]
    fn one_session_answers_every_kind_of_query() {
        // Enumerations must not poison later queries: the guarded
        // blocking clauses die with their selectors.
        let af = framework(3, &[(0, 1), (1, 0), (0, 2), (1, 2)]);
        let mut sat = AfSat::complete(&af);
        assert!(sat.credulous(0));
        assert_eq!(sat.extensions(None).len(), 3);
        assert!(sat.credulous(1), "query after an enumeration");
        assert_eq!(sat.extensions(None).len(), 3, "enumeration is repeatable");
        assert_eq!(sat.preferred().len(), 2);
        assert!(!sat.credulous(2), "query after the maximality loop");
        assert_eq!(sat.preferred().len(), 2, "preferred is repeatable");
        // The sceptical probe early-exits at the first extension
        // excluding the argument; the session must survive that too.
        assert!(!sat.sceptical_preferred(0));
        assert_eq!(
            sat.preferred().len(),
            2,
            "session survives an early-exit sceptical probe"
        );
        assert!(sat.credulous(0));
    }

    #[test]
    fn extension_limit_truncates_enumeration() {
        let af = framework(4, &[(0, 1), (1, 0), (2, 3), (3, 2)]);
        let mut sat = AfSat::complete(&af);
        assert_eq!(sat.extensions(Some(2)).len(), 2);
        assert_eq!(sat.extensions(None).len(), 9, "3 x 3 labellings");
    }

    #[test]
    fn preferred_on_a_singleton_chain_is_the_grounded_extension() {
        let af = framework(4, &[(1, 0), (2, 1), (3, 2)]);
        let mut sat = AfSat::complete(&af);
        let preferred = sat.preferred();
        assert_eq!(preferred, vec![af.grounded_extension()]);
    }
}
