//! # casekit-logic
//!
//! Symbolic and deductive logic substrates for assurance arguments.
//!
//! This crate implements every formalism used by the proposals surveyed in
//! Graydon, *Formal Assurance Arguments: A Solution In Search of a
//! Problem?* (DSN 2015):
//!
//! * [`prop`] — propositional logic: formulas, a parser, truth-table
//!   evaluation, CNF conversion, a DPLL SAT solver, and a resolution prover.
//! * [`nd`] — a Fitch-style natural-deduction proof checker using the rule
//!   vocabulary of Haley et al. (`Premise`, `Detach`, `Split`, …); it
//!   verifies the eleven-line `D → H` example reproduced in the paper.
//! * [`fol`] — first-order terms, unification, Horn knowledge bases, and an
//!   SLD-resolution engine: a mini-Prolog sufficient to reproduce the
//!   paper's Figure 1 (the fallacious *desert bank* argument).
//! * [`ltl`] — linear temporal logic with finite- and lasso-trace semantics
//!   and explicit-state checking over Kripke structures, after Brunel &
//!   Cazin's formalised UAV safety argumentation.
//! * [`ec`] — a simplified discrete-time event calculus
//!   (`Initiates`/`Terminates`/`Happens`/`HoldsAt` with inertia), after
//!   Tun et al.'s privacy arguments.
//! * [`sorts`] — a sort (type) system for predicate symbols; declaring
//!   sorts is the mechanism that catches the desert-bank equivocation that
//!   pure formal validation misses.
//! * [`af`] — Dung-style abstract argumentation with
//!   grounded/complete/stable/preferred semantics and a
//!   deliberation-dialogue layer, after Tolchinsky et al.'s
//!   safety-critical decision support. Extensions are decided by the
//!   CDCL solver over a labelling encoding ([`af::encode`]); the seed's
//!   exponential enumerator survives as [`af::naive`] (≤ 16 arguments)
//!   for differential testing.
//! * [`probe`] — Rushby's "what-if" premise probing over propositional
//!   theories.
//!
//! ## Example
//!
//! ```
//! use casekit_logic::prop::parse;
//! let f = parse("~on_grnd -> ~threv_en").unwrap();
//! assert!(f.is_satisfiable());
//! assert!(!f.is_tautology());
//! ```
//!
//! ## Architecture: the interned solver core
//!
//! Mirroring the `NodeId`/`NodeIdx` two-plane design of `casekit-core`,
//! the propositional substrate separates a *name plane* from an *index
//! plane*:
//!
//! * **Name plane** — [`prop::Formula`], [`prop::Atom`] (interned
//!   `Arc<str>`), [`prop::Clause`]/[`prop::ClauseSet`]. This is what
//!   arguments store, parsers produce, and humans read.
//! * **Index plane** — [`prop::intern::AtomTable`] maps atom names to
//!   dense `u32` variables; [`prop::intern::Lit`] packs a variable and
//!   its sign into one word (negation is an XOR); [`prop::Solver`]
//!   keeps all clauses in one flat literal arena and decides them with
//!   an **iterative two-watched-literal DPLL** — explicit trail,
//!   chronological backtracking, activity-ordered decisions, no
//!   recursion and no per-branch cloning.
//!
//! The planes meet in [`prop::Theory`], which Tseitin-compiles formulas
//! straight into packed literals with full biconditional definitions,
//! so every compiled literal (and its negation) is usable as an
//! assumption. Batch callers — `casekit-core::semantics`, the fallacy
//! checker, [`probe`], the experiments — compile one `Theory` per
//! argument and answer every entailment question through
//! `assume`/`check`/`retract` rounds against the same clause database.
//! The historical entry points ([`prop::dpll`],
//! `Formula::{entails, is_satisfiable, …}`) remain as thin wrappers,
//! and the seed's recursive solver is preserved in [`prop::legacy`] as
//! a differential-testing oracle and benchmark baseline (`repro
//! logic` emits the measured comparison as `BENCH_logic.json`).
//!
//! The same split now covers every decidable substrate. [`af`] compiles
//! attack graphs to CSR adjacency and decides semantics through the
//! solver (monolithic labelling encoding, SCC-decomposed above it).
//! [`fol`] interns terms into a hash-consed arena and resolves through
//! a first-argument-indexed, explicitly-stacked SLD machine
//! ([`fol::InternedKb`]); the seed recursive engine survives as
//! `KnowledgeBase::solve_seed_with`, the differential oracle (`repro
//! fol` → `BENCH_fol.json`). [`ltl`] compiles Kripke structures to CSR
//! out-edges with bitset labels and formulas to a hash-consed node
//! arena, evaluating candidate lassos by closure table
//! ([`ltl::CsrKripke`]); the seed trace checker survives as
//! `Kripke::check_bounded_naive`, the differential oracle (`repro ltl`
//! → `BENCH_ltl.json`). In every substrate the name-plane API stays the
//! single entry point and routes to the index plane internally, and the
//! fallible operations return [`LogicError`] instead of panicking.

#![forbid(unsafe_code)]

pub mod af;
pub mod ec;
pub mod fol;
pub mod ltl;
pub mod nd;
pub mod probe;
pub mod prop;
pub mod sorts;

mod error;
pub use error::{LineIndex, Located, LogicError, ParseError, Span, SyntaxError, SyntaxErrorKind};
