//! # casekit-bench
//!
//! The reproduction harness: renderers for every table and figure of
//! Graydon (DSN 2015), shared by the `repro` binary and the Criterion
//! benches. See EXPERIMENTS.md for the paper-vs-measured record.

#![forbid(unsafe_code)]

use casekit_experiments::runtime::Runtime;
use casekit_experiments::{exp_a, exp_b, exp_c, exp_d, exp_e};
use casekit_fallacies::checker::check_argument;
use casekit_fallacies::taxonomy::InformalFallacy;
use casekit_logic::fol::{desert_bank_kb, parse_query};
use casekit_logic::nd::Proof;
use casekit_logic::sorts::SortRegistry;
use std::fmt::Write as _;

pub mod af;
pub mod dsl;
pub mod experiments;
pub mod fol;
pub mod graph;
pub mod lint;
pub mod logic;
pub mod ltl;
pub mod service;

/// Runs `f` `runs` times and returns the fastest wall-clock time in
/// milliseconds together with the last result (benchmark arms are
/// deterministic, so every run's result is identical). One measurement
/// policy for every arm keeps the published ratios comparable.
pub(crate) fn best_of_ms<R>(runs: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    assert!(runs > 0, "at least one run");
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..runs {
        let start = std::time::Instant::now();
        result = Some(f());
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    (best, result.expect("runs > 0"))
}

/// Reproduces Table I (survey phase-1 selection counts).
pub fn table_i() -> String {
    let pool = casekit_survey::corpus::raw_pool();
    let phase1 = casekit_survey::selection::phase1(&pool);
    casekit_survey::tables::table_i(&phase1).render()
}

/// Reproduces the §IV/§V/§VI in-text aggregate claims.
pub fn claims_summary() -> String {
    casekit_survey::tables::render_claims_summary()
}

/// Reproduces Figure 1: the desert-bank argument passes formal validation
/// yet equivocates; the sort lints show what can and cannot be caught.
pub fn figure_1() -> String {
    let kb = desert_bank_kb();
    let goal = parse_query("adjacent(desert_bank, river)").expect("static query");
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 1: a flawed argument that passes formal validation"
    );
    let _ = writeln!(out, "From these premises:");
    for clause in kb.clauses() {
        let _ = writeln!(out, "  {clause}");
    }
    let proved = kb.proves(&goal);
    let _ = writeln!(
        out,
        "We can 'prove' that:\n  {goal}.   [derivable: {proved}]"
    );
    let strict = SortRegistry::infer_conflicts(&kb);
    let linked = SortRegistry::infer_conflicts_linked(&kb);
    let _ = writeln!(
        out,
        "Strict per-position sort lint flags: {:?} (true positive, but unsound in general)",
        strict.keys().collect::<Vec<_>>()
    );
    let _ = writeln!(
        out,
        "Variable-linked sort inference flags: {:?} (the licensing rule dissolves the distinction)",
        linked.keys().collect::<Vec<_>>()
    );
    out
}

/// Reproduces the Haley et al. eleven-line natural-deduction proof
/// (§III-K) and its mechanical check.
pub fn haley_proof() -> String {
    let proof = Proof::haley_example();
    let checked = proof.check().is_ok();
    let mut out = String::new();
    let _ = writeln!(out, "Haley et al. outer argument (Graydon §III-K):");
    out.push_str(&proof.render());
    let _ = writeln!(
        out,
        "mechanical check: {}",
        if checked { "PASS" } else { "FAIL" }
    );
    out
}

/// Reproduces the Greenwell fallacy counts (§V-B): seeded ground truth vs
/// what the machine checker finds.
pub fn greenwell_table() -> String {
    let cases = casekit_experiments::generator::greenwell_case_studies();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Greenwell et al. fallacy counts across three safety arguments (§V-B):"
    );
    let _ = writeln!(
        out,
        "  {:<34} {:>6} {:>6} {:>6} {:>6} {:>15}",
        "fallacy kind", "arg1", "arg2", "arg3", "total", "machine-found"
    );
    let mut grand = 0usize;
    for kind in InformalFallacy::GREENWELL_KINDS {
        let per: Vec<usize> = cases
            .iter()
            .map(|c| c.counts().get(&kind).copied().unwrap_or(0))
            .collect();
        let total: usize = per.iter().sum();
        grand += total;
        // The machine checker cannot, by construction, report informal
        // fallacies; the column is computed, not asserted.
        let machine_found = cases
            .iter()
            .map(|c| check_argument(&c.argument).findings.len())
            .sum::<usize>();
        let _ = writeln!(
            out,
            "  {:<34} {:>6} {:>6} {:>6} {:>6} {:>15}",
            kind.to_string(),
            per[0],
            per[1],
            per[2],
            total,
            machine_found
        );
    }
    let _ = writeln!(out, "  {:<34} {:>27} {:>15}", "all kinds", grand, 0);
    let _ = writeln!(
        out,
        "  (none of the seven kinds is strictly formal; the checker returns 0 findings)"
    );
    out
}

/// Runs and renders experiment A.
pub fn experiment_a() -> String {
    exp_a::run_with(&exp_a::Config::default(), &Runtime::from_env())
        .expect("default config is valid")
        .render()
}

/// Runs and renders experiment B.
pub fn experiment_b() -> String {
    exp_b::run_with(&exp_b::Config::default(), &Runtime::from_env())
        .expect("default config is valid")
        .render()
}

/// Runs and renders experiment C.
pub fn experiment_c() -> String {
    exp_c::run_with(&exp_c::Config::default(), &Runtime::from_env())
        .expect("default config is valid")
        .render()
}

/// Runs and renders experiment D.
pub fn experiment_d() -> String {
    exp_d::run_with(&exp_d::Config::default(), &Runtime::from_env())
        .expect("default config is valid")
        .render()
}

/// Runs and renders experiment E.
pub fn experiment_e() -> String {
    exp_e::run_with(&exp_e::Config::default(), &Runtime::from_env())
        .expect("default config is valid")
        .render()
}

/// Runs the graph-core sweep comparison (10k-node synthetic argument)
/// and renders the summary. The JSON artifact is written by `repro
/// graph`.
pub fn graph_bench() -> String {
    let report = graph::run_graph_bench(10_000);
    graph::render_report(&report)
}

/// Runs the logic-core batch entailment comparison (120-theory seeded
/// population plus the full hard-instance population) and renders the
/// summary. The JSON artifact is written by `repro logic`.
pub fn logic_bench() -> String {
    let report = logic::run_logic_bench(120, &logic::hard_population_full());
    logic::render_report(&report)
}

/// Runs the argumentation-framework engine comparison (subset
/// enumeration vs SAT labelling vs SCC decomposition, plus the
/// grounded chain, the SAT-path sizes, and a cross-checked decomposed
/// scenario) and renders the summary. The JSON artifact — including
/// the 10^4/10^5 decomposed-only scenarios — is written by `repro af`.
pub fn af_bench() -> String {
    let report = af::run_af_bench(12, 6, 300, &[12, 50, 200, 1000], &[2_000], 2_000);
    af::render_report(&report)
}

/// Runs the FOL resolution comparison (seed clause-scan engine vs the
/// interned first-argument-indexed engine on seeded reachability
/// programs, cross-checked answer-for-answer, plus the interned-only
/// deep chain) and renders the summary. The JSON artifact is written by
/// `repro fol`.
pub fn fol_bench() -> String {
    let report = fol::run_fol_bench(&[200, 400, 800], 30_000);
    fol::render_report(&report)
}

/// Runs the LTL bounded-checking comparison (seed trace checker vs the
/// CSR closure-table checker on seeded ring-with-chords structures,
/// cross-checked result-for-result, plus the CSR-only deep point) and
/// renders the summary. The JSON artifact is written by `repro ltl`.
pub fn ltl_bench() -> String {
    let report = ltl::run_ltl_bench(&[(10, 30, 10), (12, 36, 11)], (14, 42, 12));
    ltl::render_report(&report)
}

/// Runs the CaseLint comparison (full lint-pass set over the synthetic
/// defect corpus, recompile-per-lint vs compile-once sweep) and renders
/// the summary. The JSON artifact is written by `repro lint`.
pub fn lint_bench() -> String {
    let report = lint::run_lint_bench(experiments_bench_workers());
    lint::render_report(&report)
}

/// Runs the CaseService comparison (a fleet of live cases under mixed
/// edit/query traffic, recompile-per-query vs incremental sessions)
/// and renders the summary. The JSON artifact is written by `repro
/// service`.
pub fn service_bench() -> String {
    let report = service::run_service_bench(experiments_bench_workers());
    service::render_report(&report)
}

/// Runs the DSL-frontend comparison (sharded recover-and-continue
/// corpus ingestion vs the serial abort-on-first-error seed parser on a
/// defect-striped 10k-file corpus) and renders the summary. The JSON
/// artifact is written by `repro dsl`.
pub fn dsl_bench() -> String {
    let report = dsl::run_dsl_bench(experiments_bench_workers());
    dsl::render_report(&report)
}

/// Runs the experiment-runtime comparison (scaled §VI-A population,
/// legacy vs cached-serial vs parallel) and renders the summary. The
/// JSON artifact is written by `repro experiments`.
pub fn experiments_bench() -> String {
    let report = experiments::run_experiments_bench(experiments_bench_workers());
    experiments::render_report(&report)
}

/// Worker count for the parallel arm: an explicit `RUNTIME_WORKERS`
/// pin is honored exactly (so a 1- or 2-worker measurement answers the
/// question that was asked); otherwise every available core — and
/// *only* the available cores. The old `.max(4)` floor here was the
/// `thread_speedup: 0.855` regression: four threads time-slicing one
/// core is pure spawn/join overhead, and a speedup above 1 is only
/// honest when the host actually has idle cores to farm to.
pub fn experiments_bench_workers() -> usize {
    Runtime::pinned_from_env().unwrap_or_else(Runtime::host_parallelism)
}

/// Every artefact, concatenated (the `repro all` output).
pub fn all() -> String {
    let mut out = String::new();
    for section in [
        table_i(),
        claims_summary(),
        figure_1(),
        haley_proof(),
        greenwell_table(),
        experiment_a(),
        experiment_b(),
        experiment_c(),
        experiment_d(),
        experiment_e(),
        graph_bench(),
        logic_bench(),
        af_bench(),
        fol_bench(),
        ltl_bench(),
        experiments_bench(),
        lint_bench(),
        service_bench(),
        dsl_bench(),
    ] {
        out.push_str(&section);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_renders_published_numbers() {
        let t = table_i();
        assert!(t.contains("Unique results (72 total)"));
        assert!(t.contains("12"));
        assert!(t.contains("24"));
    }

    #[test]
    fn figure_1_proves_and_flags() {
        let f = figure_1();
        assert!(f.contains("derivable: true"));
        assert!(f.contains("\"bank\""));
    }

    #[test]
    fn haley_renders_pass() {
        let h = haley_proof();
        assert!(h.contains("mechanical check: PASS"));
        assert!(h.contains("Conclusion, 5"));
    }

    #[test]
    fn greenwell_table_totals() {
        let g = greenwell_table();
        assert!(g.contains("16"), "{g}");
        assert!(g.contains("45"), "{g}");
    }

    #[test]
    fn experiment_sections_render() {
        assert!(experiment_b().contains("Experiment B"));
        assert!(experiment_d().contains("Experiment D"));
    }
}
