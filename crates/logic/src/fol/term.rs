//! First-order terms and Horn clauses.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// A first-order term.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Term {
    /// A logic variable, e.g. `X`. Names beginning with an uppercase letter
    /// or `_` parse as variables.
    Var(Arc<str>),
    /// A constant (0-ary functor), e.g. `desert_bank` or `42`.
    Const(Arc<str>),
    /// A compound term `f(t1, …, tn)`, n ≥ 1. Predicates and functions use
    /// the same representation, as in Prolog.
    Compound(Arc<str>, Vec<Term>),
}

impl Term {
    /// A variable term.
    pub fn var(name: impl AsRef<str>) -> Term {
        Term::Var(Arc::from(name.as_ref()))
    }

    /// A constant term.
    pub fn constant(name: impl AsRef<str>) -> Term {
        Term::Const(Arc::from(name.as_ref()))
    }

    /// A compound term.
    ///
    /// # Panics
    ///
    /// Panics if `args` is empty: a 0-ary application is a [`Term::Const`].
    pub fn compound(functor: impl AsRef<str>, args: Vec<Term>) -> Term {
        assert!(
            !args.is_empty(),
            "0-ary compound terms are constants; use Term::constant"
        );
        Term::Compound(Arc::from(functor.as_ref()), args)
    }

    /// The functor name (variable name for variables).
    pub fn functor(&self) -> &str {
        match self {
            Term::Var(n) | Term::Const(n) => n,
            Term::Compound(f, _) => f,
        }
    }

    /// The arity: 0 for variables and constants.
    pub fn arity(&self) -> usize {
        match self {
            Term::Var(_) | Term::Const(_) => 0,
            Term::Compound(_, args) => args.len(),
        }
    }

    /// All variable names in the term.
    pub fn variables(&self) -> BTreeSet<Arc<str>> {
        let mut out = BTreeSet::new();
        self.collect_variables(&mut out);
        out
    }

    fn collect_variables(&self, out: &mut BTreeSet<Arc<str>>) {
        match self {
            Term::Var(n) => {
                out.insert(n.clone());
            }
            Term::Const(_) => {}
            Term::Compound(_, args) => {
                for a in args {
                    a.collect_variables(out);
                }
            }
        }
    }

    /// True when the term contains no variables.
    pub fn is_ground(&self) -> bool {
        match self {
            Term::Var(_) => false,
            Term::Const(_) => true,
            Term::Compound(_, args) => args.iter().all(Term::is_ground),
        }
    }

    /// True if the variable `name` occurs in the term.
    pub fn occurs(&self, name: &str) -> bool {
        match self {
            Term::Var(n) => n.as_ref() == name,
            Term::Const(_) => false,
            Term::Compound(_, args) => args.iter().any(|a| a.occurs(name)),
        }
    }

    /// Renames every variable `V` to `V_<suffix>`; used to freshen clause
    /// variables before resolution.
    pub fn rename_variables(&self, suffix: usize) -> Term {
        match self {
            Term::Var(n) => Term::var(format!("{n}_{suffix}")),
            Term::Const(_) => self.clone(),
            Term::Compound(f, args) => Term::Compound(
                f.clone(),
                args.iter().map(|a| a.rename_variables(suffix)).collect(),
            ),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(n) | Term::Const(n) => f.write_str(n),
            Term::Compound(functor, args) => {
                write!(f, "{functor}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str(")")
            }
        }
    }
}

/// A Horn clause: `head :- body`. A fact is a clause with an empty body.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Clause {
    /// The clause head (the consequent).
    pub head: Term,
    /// The body goals (the antecedents), conjunctive.
    pub body: Vec<Term>,
}

impl Clause {
    /// A fact (empty body).
    pub fn fact(head: Term) -> Clause {
        Clause {
            head,
            body: Vec::new(),
        }
    }

    /// A rule `head :- body`.
    pub fn rule(head: Term, body: Vec<Term>) -> Clause {
        Clause { head, body }
    }

    /// True when the clause has no body.
    pub fn is_fact(&self) -> bool {
        self.body.is_empty()
    }

    /// Renames all variables with a freshness suffix.
    pub fn rename_variables(&self, suffix: usize) -> Clause {
        Clause {
            head: self.head.rename_variables(suffix),
            body: self
                .body
                .iter()
                .map(|t| t.rename_variables(suffix))
                .collect(),
        }
    }

    /// All variable names in head and body.
    pub fn variables(&self) -> BTreeSet<Arc<str>> {
        let mut vars = self.head.variables();
        for goal in &self.body {
            vars.extend(goal.variables());
        }
        vars
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.head)?;
        if !self.body.is_empty() {
            f.write_str(" :- ")?;
            for (i, g) in self.body.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{g}")?;
            }
        }
        f.write_str(".")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_terms() {
        assert_eq!(Term::var("X").to_string(), "X");
        assert_eq!(Term::constant("river").to_string(), "river");
        let t = Term::compound("adjacent", vec![Term::constant("bank"), Term::var("Y")]);
        assert_eq!(t.to_string(), "adjacent(bank, Y)");
    }

    #[test]
    #[should_panic(expected = "0-ary")]
    fn zero_ary_compound_panics() {
        let _ = Term::compound("f", vec![]);
    }

    #[test]
    fn variables_and_groundness() {
        let t = Term::compound(
            "f",
            vec![
                Term::var("X"),
                Term::compound("g", vec![Term::var("Y"), Term::constant("c")]),
            ],
        );
        let vars: Vec<_> = t.variables().into_iter().map(|v| v.to_string()).collect();
        assert_eq!(vars, vec!["X", "Y"]);
        assert!(!t.is_ground());
        assert!(Term::constant("c").is_ground());
        assert!(t.occurs("X"));
        assert!(!t.occurs("Z"));
    }

    #[test]
    fn renaming_freshens_all_occurrences() {
        let t = Term::compound("f", vec![Term::var("X"), Term::var("X")]);
        let r = t.rename_variables(3);
        assert_eq!(r.to_string(), "f(X_3, X_3)");
    }

    #[test]
    fn clause_display() {
        let fact = Clause::fact(Term::compound(
            "adjacent",
            vec![Term::constant("bank"), Term::constant("river")],
        ));
        assert_eq!(fact.to_string(), "adjacent(bank, river).");
        assert!(fact.is_fact());

        let rule = Clause::rule(
            Term::compound("adjacent", vec![Term::var("X"), Term::var("Y")]),
            vec![
                Term::compound("is_a", vec![Term::var("X"), Term::var("Z")]),
                Term::compound("adjacent", vec![Term::var("Z"), Term::var("Y")]),
            ],
        );
        assert_eq!(
            rule.to_string(),
            "adjacent(X, Y) :- is_a(X, Z), adjacent(Z, Y)."
        );
        assert!(!rule.is_fact());
        assert_eq!(rule.variables().len(), 3);
    }

    #[test]
    fn functor_and_arity() {
        assert_eq!(Term::var("X").arity(), 0);
        assert_eq!(Term::constant("a").functor(), "a");
        let t = Term::compound("p", vec![Term::constant("a"), Term::constant("b")]);
        assert_eq!(t.functor(), "p");
        assert_eq!(t.arity(), 2);
    }
}
