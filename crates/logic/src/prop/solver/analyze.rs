//! First-UIP conflict analysis: from a falsified clause to a learned
//! clause and a backjump level.
//!
//! # The implication graph
//!
//! During search every assignment is either a *decision* (no reason) or
//! an *implication* (forced by unit propagation through exactly one
//! clause, its *reason*). Reasons induce a DAG over the assigned
//! literals: an edge runs from each falsified literal of the reason to
//! the literal it forced. A conflict is a clause with every literal
//! false — a sink reachable from decisions on several levels.
//!
//! # First UIP
//!
//! A *unique implication point* (UIP) at the conflicting decision level
//! is a literal through which every path from the level's decision to
//! the conflict passes. The decision itself is always a UIP; the *first*
//! UIP is the one closest to the conflict. [`Analyzer::analyze`] finds
//! it by resolution: starting from the conflict clause, repeatedly
//! resolve with the reason of the most recently assigned contributing
//! literal of the current level, until exactly one current-level literal
//! remains. That literal is the first UIP; the derived clause
//!
//! * is a logical consequence of the clause database alone (assumptions
//!   enter as decisions, so they are never resolved away — they appear
//!   negated *inside* the learned clause, keeping it valid after
//!   `retract`), and
//! * is *asserting*: after backjumping to the second-highest decision
//!   level in the clause, every literal but the negated UIP is false, so
//!   propagation immediately forces the UIP the other way.
//!
//! # Interface
//!
//! The algorithm only needs per-variable decision levels and reasons,
//! abstracted as [`ImplicationGraph`] — the solver implements it over
//! its trail arrays, and the unit tests implement it over hand-built
//! graphs to pin down the learned clause, the backjump level, and the
//! LBD on known examples.

use crate::prop::intern::{Lit, Var};

/// Read access to the solver state conflict analysis consumes.
///
/// Invariants the implementation relies on:
///
/// * `level_of(v)` is the decision level `v` was assigned at (root
///   facts are level 0 and never enter learned clauses);
/// * `reason_of(v)` is the full reason clause *including* the implied
///   literal itself, or `None` when `v` is a decision or assumption;
/// * every literal of a reason except the implied one was false when
///   the implication fired, i.e. was assigned strictly earlier on the
///   trail.
pub trait ImplicationGraph {
    /// Decision level of an assigned variable.
    fn level_of(&self, v: Var) -> u32;
    /// Reason clause that propagated `v`, if `v` was implied.
    fn reason_of(&self, v: Var) -> Option<&[Lit]>;
}

/// The outcome of one conflict analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Analysis {
    /// The learned clause. Slot 0 is the *asserting literal* (the
    /// negated first UIP); slot 1, when present, is a literal of the
    /// backjump level (so the solver can watch slots 0 and 1 and keep
    /// the watched-literal invariant immediately after backjumping).
    pub learned: Vec<Lit>,
    /// Decision level to backjump to: the second-highest level in the
    /// learned clause, or 0 for a unit.
    pub backjump: u32,
    /// The literal-block distance: number of distinct decision levels
    /// among the learned literals (small LBD ≈ likely to propagate
    /// again; used by the learned-clause garbage collector).
    pub lbd: u32,
    /// Every variable that participated in the resolution, for VSIDS
    /// bumping (includes the UIP and the learned literals).
    pub touched: Vec<Var>,
}

/// Reusable first-UIP analyzer. Owns the `seen`/`levels` scratch so
/// those are allocated once per solver; each call still returns fresh
/// `learned`/`touched` vectors (they outlive the call as part of
/// [`Analysis`]).
#[derive(Debug, Clone, Default)]
pub struct Analyzer {
    /// Per variable: already counted into the pending resolution.
    seen: Vec<bool>,
    /// Scratch for the LBD computation.
    levels: Vec<u32>,
}

impl Analyzer {
    /// A fresh analyzer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensures the scratch covers `n` variables.
    pub fn ensure_vars(&mut self, n: usize) {
        if self.seen.len() < n {
            self.seen.resize(n, false);
        }
    }

    /// Derives the first-UIP learned clause from `conflict` (a clause
    /// with every literal false).
    ///
    /// `trail` is the assignment stack, oldest first; `current_level`
    /// is the decision level the conflict occurred at (must be ≥ 1 —
    /// a conflict at level 0 refutes the database and has nothing to
    /// learn).
    ///
    /// # Panics
    ///
    /// Panics if the invariants of [`ImplicationGraph`] are violated —
    /// in particular if `conflict` has no literal at `current_level`.
    pub fn analyze<G: ImplicationGraph>(
        &mut self,
        graph: &G,
        trail: &[Lit],
        current_level: u32,
        conflict: &[Lit],
    ) -> Analysis {
        debug_assert!(current_level > 0, "level-0 conflicts refute the database");
        // Every literal of the conflict and of every reason is assigned,
        // so sizing the scratch by the trail's variables covers them all.
        let needed = trail.iter().map(|l| l.var().index() + 1).max().unwrap_or(0);
        self.ensure_vars(needed);
        let mut learned: Vec<Lit> = vec![Lit(0)]; // slot 0: asserting literal
        let mut touched: Vec<Var> = Vec::new();
        // Literals of the current level still awaiting resolution.
        let mut pending: u32 = 0;
        // The literal whose reason is being resolved in (None = start
        // from the conflict clause itself).
        let mut resolving: Option<Lit> = None;
        let mut index = trail.len();

        loop {
            let reason: &[Lit] = match resolving {
                None => conflict,
                Some(lit) => graph
                    .reason_of(lit.var())
                    .expect("resolution only visits implied literals"),
            };
            for &q in reason {
                // Skip the implied literal of the reason being resolved.
                if resolving.is_some_and(|p| p.var() == q.var()) {
                    continue;
                }
                let v = q.var();
                if self.seen[v.index()] || graph.level_of(v) == 0 {
                    continue;
                }
                self.seen[v.index()] = true;
                touched.push(v);
                if graph.level_of(v) >= current_level {
                    pending += 1;
                } else {
                    learned.push(q);
                }
            }
            // Walk the trail backwards to the most recent contributing
            // literal of the current level.
            loop {
                index -= 1;
                if self.seen[trail[index].var().index()] {
                    break;
                }
            }
            let uip_candidate = trail[index];
            self.seen[uip_candidate.var().index()] = false;
            pending -= 1;
            if pending == 0 {
                learned[0] = !uip_candidate;
                break;
            }
            resolving = Some(uip_candidate);
        }

        for v in &touched {
            self.seen[v.index()] = false;
        }

        // Backjump level: hoist the highest-level remaining literal into
        // slot 1 so it can be watched.
        let backjump = if learned.len() == 1 {
            0
        } else {
            let mut best = 1;
            for i in 2..learned.len() {
                if graph.level_of(learned[i].var()) > graph.level_of(learned[best].var()) {
                    best = i;
                }
            }
            learned.swap(1, best);
            graph.level_of(learned[1].var())
        };

        // LBD: distinct decision levels across the learned clause (the
        // asserting literal contributes the conflict level).
        self.levels.clear();
        self.levels.push(current_level);
        self.levels
            .extend(learned[1..].iter().map(|l| graph.level_of(l.var())));
        self.levels.sort_unstable();
        self.levels.dedup();
        let lbd = self.levels.len() as u32;

        Analysis {
            learned,
            backjump,
            lbd,
            touched,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-built implication graph: explicit levels and reasons per
    /// variable.
    struct ToyGraph {
        level: Vec<u32>,
        reason: Vec<Option<Vec<Lit>>>,
    }

    impl ImplicationGraph for ToyGraph {
        fn level_of(&self, v: Var) -> u32 {
            self.level[v.index()]
        }
        fn reason_of(&self, v: Var) -> Option<&[Lit]> {
            self.reason[v.index()].as_deref()
        }
    }

    fn pos(i: u32) -> Lit {
        Var(i).positive()
    }
    fn neg(i: u32) -> Lit {
        Var(i).negative()
    }

    /// The classic three-level example:
    ///
    /// * level 1 decides `a` (v0), level 2 decides `b` (v1),
    /// * level 3 decides `c` (v2), then `(~c | e)` forces `e` (v3),
    ///   then `(~e | ~a | f)` forces `f` (v4),
    /// * conflict: `(~f | ~b | ~e)` is falsified.
    ///
    /// Every path from the level-3 decision `c` to the conflict runs
    /// through `e`, and `e` is closer to the conflict than `c` — so the
    /// first UIP is `e`, the learned clause is `(~e | ~b | ~a)`, and the
    /// backjump level is 2 (the second-highest among {3, 2, 1}).
    fn classic() -> (ToyGraph, Vec<Lit>, Vec<Lit>) {
        let graph = ToyGraph {
            level: vec![1, 2, 3, 3, 3],
            reason: vec![
                None,                               // a: decision @1
                None,                               // b: decision @2
                None,                               // c: decision @3
                Some(vec![neg(2), pos(3)]),         // e <- (~c | e)
                Some(vec![neg(3), neg(0), pos(4)]), // f <- (~e | ~a | f)
            ],
        };
        let trail = vec![pos(0), pos(1), pos(2), pos(3), pos(4)];
        let conflict = vec![neg(4), neg(1), neg(3)];
        (graph, trail, conflict)
    }

    #[test]
    fn first_uip_is_found_on_the_classic_example() {
        let (graph, trail, conflict) = classic();
        let analysis = Analyzer::new().analyze(&graph, &trail, 3, &conflict);
        // Asserting literal: the negated first UIP ~e.
        assert_eq!(analysis.learned[0], neg(3));
        // Remaining literals: {~b, ~a} in some order.
        let mut rest = analysis.learned[1..].to_vec();
        rest.sort_unstable_by_key(|l| l.code());
        assert_eq!(rest, vec![neg(0), neg(1)]);
        // Not the decision c: the first UIP cuts closer to the conflict.
        assert!(!analysis.learned.iter().any(|l| l.var() == Var(2)));
    }

    #[test]
    fn backjump_is_the_second_highest_level_and_slot_1_carries_it() {
        let (graph, trail, conflict) = classic();
        let analysis = Analyzer::new().analyze(&graph, &trail, 3, &conflict);
        assert_eq!(analysis.backjump, 2);
        // Slot 1 must hold a literal *of* the backjump level, so the
        // solver can watch slots 0 and 1 directly.
        assert_eq!(graph.level_of(analysis.learned[1].var()), 2);
        // Three distinct levels (3, 2, 1) in the clause.
        assert_eq!(analysis.lbd, 3);
    }

    #[test]
    fn touched_covers_every_resolution_participant() {
        let (graph, trail, conflict) = classic();
        let analysis = Analyzer::new().analyze(&graph, &trail, 3, &conflict);
        let mut touched: Vec<u32> = analysis.touched.iter().map(|v| v.0).collect();
        touched.sort_unstable();
        // a, b, e, f took part; the decision c never entered a reason.
        assert_eq!(touched, vec![0, 1, 3, 4]);
    }

    #[test]
    fn decision_is_the_uip_when_no_intermediate_cut_exists() {
        // Level 1: decide p (v0); (~p | q) forces q (v1); conflict
        // (~p | ~q). Every path runs through the decision itself.
        let graph = ToyGraph {
            level: vec![1, 1],
            reason: vec![None, Some(vec![neg(0), pos(1)])],
        };
        let trail = vec![pos(0), pos(1)];
        let analysis = Analyzer::new().analyze(&graph, &trail, 1, &[neg(0), neg(1)]);
        assert_eq!(analysis.learned, vec![neg(0)]);
        assert_eq!(analysis.backjump, 0, "unit learned clauses jump to root");
        assert_eq!(analysis.lbd, 1);
    }

    #[test]
    fn root_level_facts_never_enter_the_learned_clause() {
        // v0 is a root fact (level 0); level 1 decides p (v1), which
        // forces q (v2) via (~p | ~v0 | q); conflict (~q | ~v0 | ~p).
        let graph = ToyGraph {
            level: vec![0, 1, 1],
            reason: vec![None, None, Some(vec![neg(1), neg(0), pos(2)])],
        };
        let trail = vec![pos(0), pos(1), pos(2)];
        let analysis = Analyzer::new().analyze(&graph, &trail, 1, &[neg(2), neg(0), neg(1)]);
        assert!(
            !analysis.learned.iter().any(|l| l.var() == Var(0)),
            "level-0 literals are unconditionally false and must be dropped"
        );
        assert_eq!(analysis.learned, vec![neg(1)]);
        assert_eq!(analysis.backjump, 0);
    }

    #[test]
    fn assumptions_survive_as_ordinary_literals() {
        // Assumption-style decision at level 1 (v0), decision at level
        // 2 (v1) forcing v2 via (~v1 | ~v0 | v2); conflict (~v2 | ~v0).
        // The learned clause must mention ~v0 — the analysis never
        // resolves decisions away, which is what keeps learned clauses
        // valid after the assumption is retracted.
        let graph = ToyGraph {
            level: vec![1, 2, 2],
            reason: vec![None, None, Some(vec![neg(1), neg(0), pos(2)])],
        };
        let trail = vec![pos(0), pos(1), pos(2)];
        let analysis = Analyzer::new().analyze(&graph, &trail, 2, &[neg(2), neg(0)]);
        // v2 is the only current-level literal in the conflict, so it
        // is itself the first UIP — no resolution towards the decision.
        assert_eq!(
            analysis.learned[0],
            neg(2),
            "first UIP at the conflict level"
        );
        assert_eq!(analysis.learned[1..], [neg(0)]);
        assert_eq!(analysis.backjump, 1);
        assert_eq!(analysis.lbd, 2);
    }

    #[test]
    fn analyzer_scratch_is_reusable_across_conflicts() {
        let (graph, trail, conflict) = classic();
        let mut analyzer = Analyzer::new();
        let first = analyzer.analyze(&graph, &trail, 3, &conflict);
        let second = analyzer.analyze(&graph, &trail, 3, &conflict);
        assert_eq!(first, second, "scratch state must fully reset");
    }
}
