//! Byte-span records for everything the DSL parser builds.
//!
//! A [`SourceMap`] is produced beside the [`Argument`](crate::argument::Argument)
//! by [`parse_argument_recovering`](super::parse_argument_recovering). It maps
//! each parsed construct back to the byte range of source text that declared
//! it, so downstream tooling (CaseLint, editors) can anchor diagnostics about
//! a *node* at the node's declaration site instead of reporting them
//! span-less.

use casekit_logic::Span;
use std::collections::BTreeMap;

use crate::node::NodeId;

/// The source spans recorded for one node declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NodeSpans {
    /// The kind keyword (`goal`, `strategy`, …).
    pub keyword: Span,
    /// The node identifier.
    pub id: Span,
    /// The quoted text string (including quotes).
    pub text: Span,
    /// The quoted `formal`/`temporal` payload string, if any.
    pub payload: Option<Span>,
    /// The whole header: keyword through the last modifier (body excluded).
    pub header: Span,
}

/// Source spans for an entire parsed `.case` file: the argument name and
/// one [`NodeSpans`] per declared node (first declaration wins when the
/// source erroneously re-declares an id).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SourceMap {
    /// Span of the quoted argument name, when the header parsed.
    pub name: Option<Span>,
    nodes: BTreeMap<NodeId, NodeSpans>,
}

impl SourceMap {
    /// An empty map (no header, no nodes).
    pub fn new() -> Self {
        SourceMap::default()
    }

    /// The spans recorded for `id`, if the source declared it.
    pub fn node(&self, id: &NodeId) -> Option<&NodeSpans> {
        self.nodes.get(id)
    }

    /// Records spans for a node declaration. The first declaration of an
    /// id wins; re-insertions (duplicate ids in the source) are ignored so
    /// diagnostics keep pointing at the node that actually exists.
    pub(crate) fn record(&mut self, id: NodeId, spans: NodeSpans) {
        self.nodes.entry(id).or_insert(spans);
    }

    /// Number of nodes with recorded spans.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether no node spans were recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterates `(id, spans)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (&NodeId, &NodeSpans)> {
        self.nodes.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_declaration_wins() {
        let mut map = SourceMap::new();
        let first = NodeSpans {
            keyword: Span::new(0, 4),
            ..NodeSpans::default()
        };
        let second = NodeSpans {
            keyword: Span::new(50, 54),
            ..NodeSpans::default()
        };
        map.record(NodeId::new("g1"), first);
        map.record(NodeId::new("g1"), second);
        assert_eq!(map.len(), 1);
        assert_eq!(map.node(&NodeId::new("g1")), Some(&first));
    }

    #[test]
    fn lookup_and_iteration() {
        let mut map = SourceMap::new();
        assert!(map.is_empty());
        map.record(NodeId::new("b"), NodeSpans::default());
        map.record(NodeId::new("a"), NodeSpans::default());
        assert_eq!(map.len(), 2);
        assert!(map.node(&NodeId::new("a")).is_some());
        assert!(map.node(&NodeId::new("zzz")).is_none());
        let ids: Vec<&str> = map.iter().map(|(id, _)| id.as_str()).collect();
        assert_eq!(ids, ["a", "b"]);
    }
}
