//! The fallacy taxonomy: formal kinds (Damer) and informal kinds
//! (Greenwell et al., plus the classical ones the paper discusses).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A formal fallacy: a flaw in the *form* of an argument, identifiable
/// after replacing all identifiers with meaningless symbols (Graydon
/// §IV-A, citing Damer's list of eight).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FormalFallacy {
    /// The conclusion appears among the premises.
    BeggingTheQuestion,
    /// The premises cannot all be true together.
    IncompatiblePremises,
    /// A premise contradicts the conclusion.
    PremiseConclusionContradiction,
    /// From `p → q` and `¬p`, concluding `¬q`.
    DenyingTheAntecedent,
    /// From `p → q` and `q`, concluding `p`.
    AffirmingTheConsequent,
    /// From `p → q`, concluding `q → p` (or "All A are B" ⇒ "All B are A").
    FalseConversion,
    /// A categorical syllogism whose middle term is never distributed.
    UndistributedMiddle,
    /// A term distributed in the conclusion but not in its premise
    /// (illicit major/minor).
    IllicitDistribution,
}

impl FormalFallacy {
    /// All eight, in Damer's order.
    pub const ALL: [FormalFallacy; 8] = [
        FormalFallacy::BeggingTheQuestion,
        FormalFallacy::IncompatiblePremises,
        FormalFallacy::PremiseConclusionContradiction,
        FormalFallacy::DenyingTheAntecedent,
        FormalFallacy::AffirmingTheConsequent,
        FormalFallacy::FalseConversion,
        FormalFallacy::UndistributedMiddle,
        FormalFallacy::IllicitDistribution,
    ];
}

impl fmt::Display for FormalFallacy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            FormalFallacy::BeggingTheQuestion => "begging the question",
            FormalFallacy::IncompatiblePremises => "incompatible premises",
            FormalFallacy::PremiseConclusionContradiction => {
                "contradiction between premise and conclusion"
            }
            FormalFallacy::DenyingTheAntecedent => "denying the antecedent",
            FormalFallacy::AffirmingTheConsequent => "affirming the consequent",
            FormalFallacy::FalseConversion => "false conversion",
            FormalFallacy::UndistributedMiddle => "undistributed middle term",
            FormalFallacy::IllicitDistribution => "illicit distribution of an end term",
        };
        f.write_str(name)
    }
}

/// An informal fallacy: not detectable from form alone.
///
/// The first seven are exactly the kinds Greenwell et al. found in three
/// real safety arguments (Graydon §V-B); the rest are classical kinds the
/// paper discusses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum InformalFallacy {
    /// Drawing the wrong conclusion from the premises offered.
    DrawingWrongConclusion,
    /// Fallacious use of language (ambiguity).
    FallaciousUseOfLanguage,
    /// Concluding a whole has a property because its parts do.
    FallacyOfComposition,
    /// Generalising from some members of a set to all.
    HastyInductiveGeneralisation,
    /// Omitting evidence key to the claim.
    OmissionOfKeyEvidence,
    /// Supporting a claim with irrelevant material.
    RedHerring,
    /// Premises not appropriate to the claim.
    UsingWrongReasons,
    /// One identifier carrying different meanings in different places
    /// (Aristotle's example; the desert-bank `bank`).
    Equivocation,
    /// Claiming truth (or falsity) because of absence of contrary evidence,
    /// without establishing the adequacy of the search.
    ArgumentFromIgnorance,
}

impl InformalFallacy {
    /// The seven kinds Greenwell et al. found, in the order (and with the
    /// counts) the paper reports: 3, 10, 2, 4, 5, 5, 16.
    pub const GREENWELL_KINDS: [InformalFallacy; 7] = [
        InformalFallacy::DrawingWrongConclusion,
        InformalFallacy::FallaciousUseOfLanguage,
        InformalFallacy::FallacyOfComposition,
        InformalFallacy::HastyInductiveGeneralisation,
        InformalFallacy::OmissionOfKeyEvidence,
        InformalFallacy::RedHerring,
        InformalFallacy::UsingWrongReasons,
    ];

    /// The counts Greenwell et al. report for [`Self::GREENWELL_KINDS`].
    pub const GREENWELL_COUNTS: [usize; 7] = [3, 10, 2, 4, 5, 5, 16];
}

impl fmt::Display for InformalFallacy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            InformalFallacy::DrawingWrongConclusion => "drawing the wrong conclusion",
            InformalFallacy::FallaciousUseOfLanguage => "fallacious use of language",
            InformalFallacy::FallacyOfComposition => "fallacy of composition",
            InformalFallacy::HastyInductiveGeneralisation => "hasty inductive generalisation",
            InformalFallacy::OmissionOfKeyEvidence => "omission of key evidence",
            InformalFallacy::RedHerring => "red herring",
            InformalFallacy::UsingWrongReasons => "using the wrong reasons",
            InformalFallacy::Equivocation => "equivocation",
            InformalFallacy::ArgumentFromIgnorance => "argument from ignorance",
        };
        f.write_str(name)
    }
}

/// Either kind of fallacy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FallacyKind {
    /// A flaw of form.
    Formal(FormalFallacy),
    /// A flaw of meaning.
    Informal(InformalFallacy),
}

impl FallacyKind {
    /// Whether this fallacy is detectable by form-only (mechanical)
    /// analysis.
    pub fn is_formal(&self) -> bool {
        matches!(self, FallacyKind::Formal(_))
    }
}

impl fmt::Display for FallacyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FallacyKind::Formal(k) => write!(f, "{k} (formal)"),
            FallacyKind::Informal(k) => write!(f, "{k} (informal)"),
        }
    }
}

impl From<FormalFallacy> for FallacyKind {
    fn from(k: FormalFallacy) -> Self {
        FallacyKind::Formal(k)
    }
}

impl From<InformalFallacy> for FallacyKind {
    fn from(k: InformalFallacy) -> Self {
        FallacyKind::Informal(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_formal_fallacies() {
        assert_eq!(FormalFallacy::ALL.len(), 8);
        let mut names: Vec<String> = FormalFallacy::ALL.iter().map(|f| f.to_string()).collect();
        names.dedup();
        assert_eq!(names.len(), 8, "names must be distinct");
    }

    #[test]
    fn greenwell_counts_sum_to_45() {
        // 3 + 10 + 2 + 4 + 5 + 5 + 16 = 45 findings across three arguments.
        assert_eq!(InformalFallacy::GREENWELL_COUNTS.iter().sum::<usize>(), 45);
        assert_eq!(
            InformalFallacy::GREENWELL_KINDS.len(),
            InformalFallacy::GREENWELL_COUNTS.len()
        );
    }

    #[test]
    fn none_of_greenwells_kinds_is_formal() {
        // The paper's §V-B: "none of seven kinds of fallacies found is
        // strictly formal".
        for kind in InformalFallacy::GREENWELL_KINDS {
            let k: FallacyKind = kind.into();
            assert!(!k.is_formal());
        }
    }

    #[test]
    fn kind_wrapping_and_display() {
        let k: FallacyKind = FormalFallacy::BeggingTheQuestion.into();
        assert!(k.is_formal());
        assert!(k.to_string().contains("(formal)"));
        let k: FallacyKind = InformalFallacy::Equivocation.into();
        assert!(!k.is_formal());
        assert!(k.to_string().contains("equivocation"));
    }
}
