//! Claims-Argument-Evidence (CAE) well-formedness, after Bishop &
//! Bloomfield's methodology (Graydon §II-B).
//!
//! CAE alternates claims and argument nodes: a *claim* is supported by an
//! *argument* (the warrant describing how support works), which is in turn
//! supported by sub-claims and/or *evidence*.

use crate::argument::Argument;
use crate::node::{EdgeKind, NodeId, NodeKind};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A CAE well-formedness finding.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CaeIssue {
    /// The rule violated.
    pub rule: CaeRule,
    /// Where.
    pub at: NodeId,
    /// Human-readable detail.
    pub detail: String,
}

impl fmt::Display for CaeIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] at `{}`: {}", self.rule, self.at, self.detail)
    }
}

/// The CAE rules checked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CaeRule {
    /// Only CAE node kinds may appear.
    CaeVocabulary,
    /// Claims are supported only by argument nodes (or directly by
    /// evidence, in the common shorthand).
    ClaimSupport,
    /// Argument nodes are supported by claims or evidence.
    ArgumentSupport,
    /// Evidence is a leaf.
    EvidenceIsLeaf,
    /// The graph is acyclic with at least one root claim.
    Shape,
}

impl fmt::Display for CaeRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            CaeRule::CaeVocabulary => "cae-vocabulary",
            CaeRule::ClaimSupport => "claim-support",
            CaeRule::ArgumentSupport => "argument-support",
            CaeRule::EvidenceIsLeaf => "evidence-is-leaf",
            CaeRule::Shape => "shape",
        };
        f.write_str(name)
    }
}

/// Checks `argument` against the CAE rules; empty result = well-formed.
pub fn check(argument: &Argument) -> Vec<CaeIssue> {
    let mut issues = Vec::new();

    for node in argument.nodes() {
        if !node.kind.is_cae() {
            issues.push(CaeIssue {
                rule: CaeRule::CaeVocabulary,
                at: node.id.clone(),
                detail: format!("`{}` is not a CAE node kind", node.kind),
            });
        }
    }

    for (from_idx, to_idx, kind) in argument.edges_idx() {
        if kind != EdgeKind::SupportedBy {
            continue; // CAE has no context edges; GSN vocabulary check
                      // will already have fired for non-CAE nodes.
        }
        let from = argument.node_at(from_idx);
        let to = argument.node_at(to_idx);
        match from.kind {
            NodeKind::Claim if !matches!(to.kind, NodeKind::ArgumentNode | NodeKind::Evidence) => {
                issues.push(CaeIssue {
                    rule: CaeRule::ClaimSupport,
                    at: from.id.clone(),
                    detail: format!(
                        "claim `{}` supported by {} `{}`; expected argument or evidence",
                        from.id, to.kind, to.id
                    ),
                });
            }
            NodeKind::ArgumentNode if !matches!(to.kind, NodeKind::Claim | NodeKind::Evidence) => {
                issues.push(CaeIssue {
                    rule: CaeRule::ArgumentSupport,
                    at: from.id.clone(),
                    detail: format!(
                        "argument `{}` supported by {} `{}`; expected claim or evidence",
                        from.id, to.kind, to.id
                    ),
                });
            }
            NodeKind::Evidence => {
                issues.push(CaeIssue {
                    rule: CaeRule::EvidenceIsLeaf,
                    at: from.id.clone(),
                    detail: "evidence must not be supported by anything".into(),
                });
            }
            _ => {} // non-CAE kinds already flagged
        }
    }

    let has_root_claim = argument
        .roots_idx()
        .any(|idx| argument.node_at(idx).kind == NodeKind::Claim);
    if !argument.is_empty() && (!argument.is_acyclic() || !has_root_claim) {
        let at = argument
            .nodes()
            .next()
            .map(|n| n.id.clone())
            .unwrap_or_else(|| NodeId::new("?"));
        issues.push(CaeIssue {
            rule: CaeRule::Shape,
            at,
            detail: "CAE arguments need an acyclic graph rooted in a claim".into(),
        });
    }

    issues
}

#[cfg(test)]
mod tests {
    use super::*;

    fn well_formed() -> Argument {
        Argument::builder("cae")
            .add("c1", NodeKind::Claim, "System is secure")
            .add("a1", NodeKind::ArgumentNode, "Argument over attack surface")
            .add("c2", NodeKind::Claim, "Network surface hardened")
            .add("ev1", NodeKind::Evidence, "Pen-test report")
            .add("ev2", NodeKind::Evidence, "Code review minutes")
            .supported_by("c1", "a1")
            .supported_by("a1", "c2")
            .supported_by("a1", "ev2")
            .supported_by("c2", "ev1")
            .build()
            .unwrap()
    }

    #[test]
    fn well_formed_cae_passes() {
        assert!(check(&well_formed()).is_empty());
    }

    #[test]
    fn claim_supported_directly_by_claim_flagged() {
        let a = Argument::builder("bad")
            .add("c1", NodeKind::Claim, "Top")
            .add("c2", NodeKind::Claim, "Sub")
            .add("ev", NodeKind::Evidence, "E")
            .supported_by("c1", "c2")
            .supported_by("c2", "ev")
            .build()
            .unwrap();
        let issues = check(&a);
        assert!(issues.iter().any(|i| i.rule == CaeRule::ClaimSupport));
    }

    #[test]
    fn claim_directly_on_evidence_is_accepted_shorthand() {
        let a = Argument::builder("short")
            .add("c1", NodeKind::Claim, "Top")
            .add("ev", NodeKind::Evidence, "E")
            .supported_by("c1", "ev")
            .build()
            .unwrap();
        assert!(check(&a).is_empty());
    }

    #[test]
    fn argument_supported_by_argument_flagged() {
        let a = Argument::builder("bad")
            .add("c1", NodeKind::Claim, "Top")
            .add("a1", NodeKind::ArgumentNode, "Arg1")
            .add("a2", NodeKind::ArgumentNode, "Arg2")
            .add("ev", NodeKind::Evidence, "E")
            .supported_by("c1", "a1")
            .supported_by("a1", "a2")
            .supported_by("a2", "ev")
            .build()
            .unwrap();
        let issues = check(&a);
        assert!(issues.iter().any(|i| i.rule == CaeRule::ArgumentSupport));
    }

    #[test]
    fn evidence_with_children_flagged() {
        let a = Argument::builder("bad")
            .add("c1", NodeKind::Claim, "Top")
            .add("ev", NodeKind::Evidence, "E")
            .add("c2", NodeKind::Claim, "Sub")
            .add("ev2", NodeKind::Evidence, "E2")
            .supported_by("c1", "ev")
            .supported_by("ev", "c2")
            .supported_by("c2", "ev2")
            .build()
            .unwrap();
        let issues = check(&a);
        assert!(issues.iter().any(|i| i.rule == CaeRule::EvidenceIsLeaf));
    }

    #[test]
    fn gsn_nodes_flagged_in_cae_check() {
        let a = Argument::builder("mixed")
            .add("c1", NodeKind::Claim, "Top")
            .add("g1", NodeKind::Goal, "A GSN goal")
            .add("ev", NodeKind::Evidence, "E")
            .supported_by("c1", "ev")
            .build()
            .unwrap();
        let issues = check(&a);
        assert!(issues.iter().any(|i| i.rule == CaeRule::CaeVocabulary));
    }

    #[test]
    fn rootless_or_cyclic_shape_flagged() {
        let a = Argument::builder("cyc")
            .add("c1", NodeKind::Claim, "A")
            .add("a1", NodeKind::ArgumentNode, "B")
            .supported_by("c1", "a1")
            .supported_by("a1", "c1")
            .build()
            .unwrap();
        let issues = check(&a);
        assert!(issues.iter().any(|i| i.rule == CaeRule::Shape));
    }

    #[test]
    fn issue_display() {
        let a = Argument::builder("cyc")
            .add("ev", NodeKind::Evidence, "floating evidence")
            .build()
            .unwrap();
        let issues = check(&a);
        assert!(issues.iter().any(|i| i.rule == CaeRule::Shape));
        assert!(issues[0].to_string().contains("at `"));
    }
}
