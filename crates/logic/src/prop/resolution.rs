//! Propositional resolution refutation.
//!
//! Bishop & Bloomfield's "deterministic argument" sketch asks for a safety
//! argument that *is* a proof in predicate logic; resolution is the classic
//! machine-oriented proof procedure. We provide a saturation prover with a
//! work budget and a recoverable refutation trace.

use super::ast::Formula;
use super::cnf::{Clause, ClauseSet};
use std::collections::BTreeSet;

/// Outcome of a resolution run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolutionOutcome {
    /// The empty clause was derived: the input set is unsatisfiable.
    /// Contains the derivation trace: each step is (left, right, resolvent).
    Refuted(Vec<(Clause, Clause, Clause)>),
    /// Saturation reached without deriving the empty clause: satisfiable.
    Saturated,
    /// The work budget was exhausted before either outcome.
    BudgetExhausted,
}

impl ResolutionOutcome {
    /// Whether a refutation was found.
    pub fn is_refuted(&self) -> bool {
        matches!(self, ResolutionOutcome::Refuted(_))
    }
}

/// Attempts to refute `cs` by saturation, generating at most `budget`
/// resolvents.
pub fn resolution_refute(cs: &ClauseSet, budget: usize) -> ResolutionOutcome {
    let mut known: BTreeSet<Clause> = cs
        .clauses()
        .filter(|c| !c.is_tautologous())
        .cloned()
        .collect();
    if known.iter().any(|c| c.is_empty()) {
        return ResolutionOutcome::Refuted(Vec::new());
    }
    let mut trace = Vec::new();
    let mut generated = 0usize;
    loop {
        let snapshot: Vec<Clause> = known.iter().cloned().collect();
        let mut new_clauses: Vec<(Clause, Clause, Clause)> = Vec::new();
        for (i, left) in snapshot.iter().enumerate() {
            for right in snapshot.iter().skip(i + 1) {
                for resolvent in resolvents(left, right) {
                    generated += 1;
                    if generated > budget {
                        return ResolutionOutcome::BudgetExhausted;
                    }
                    if resolvent.is_tautologous() || known.contains(&resolvent) {
                        continue;
                    }
                    let is_empty = resolvent.is_empty();
                    new_clauses.push((left.clone(), right.clone(), resolvent.clone()));
                    if is_empty {
                        trace.extend(new_clauses);
                        return ResolutionOutcome::Refuted(trace);
                    }
                }
            }
        }
        if new_clauses.is_empty() {
            return ResolutionOutcome::Saturated;
        }
        for (l, r, res) in new_clauses {
            known.insert(res.clone());
            trace.push((l, r, res));
        }
    }
}

/// All resolvents of two clauses (one per complementary literal pair).
fn resolvents(left: &Clause, right: &Clause) -> Vec<Clause> {
    let mut out = Vec::new();
    for lit in left.literals() {
        let comp = lit.negated();
        if right.contains(&comp) {
            let resolvent = left.without(lit).union(&right.without(&comp));
            out.push(resolvent);
        }
    }
    out
}

/// Checks `premises ⊢ conclusion` by refuting `premises ∧ ¬conclusion`.
///
/// Returns `None` if the budget was exhausted before a verdict.
pub fn resolution_entails(
    premises: &[Formula],
    conclusion: &Formula,
    budget: usize,
) -> Option<bool> {
    let combined = Formula::conj(premises.iter().cloned()).and(conclusion.clone().not());
    let cs = combined.to_cnf();
    match resolution_refute(&cs, budget) {
        ResolutionOutcome::Refuted(_) => Some(true),
        ResolutionOutcome::Saturated => Some(false),
        ResolutionOutcome::BudgetExhausted => None,
    }
}

#[cfg(test)]
mod tests {
    use super::super::parse;
    use super::*;

    #[test]
    fn refutes_direct_contradiction() {
        let cs = parse("p & ~p").unwrap().to_cnf();
        assert!(resolution_refute(&cs, 1000).is_refuted());
    }

    #[test]
    fn saturates_on_satisfiable() {
        let cs = parse("p | q").unwrap().to_cnf();
        assert_eq!(resolution_refute(&cs, 1000), ResolutionOutcome::Saturated);
    }

    #[test]
    fn modus_ponens_entailment() {
        let premises = vec![parse("p -> q").unwrap(), parse("p").unwrap()];
        assert_eq!(
            resolution_entails(&premises, &parse("q").unwrap(), 10_000),
            Some(true)
        );
        assert_eq!(
            resolution_entails(&premises, &parse("~q").unwrap(), 10_000),
            Some(false)
        );
    }

    #[test]
    fn hypothetical_syllogism() {
        let premises = vec![parse("a -> b").unwrap(), parse("b -> c").unwrap()];
        assert_eq!(
            resolution_entails(&premises, &parse("a -> c").unwrap(), 10_000),
            Some(true)
        );
    }

    #[test]
    fn refutation_trace_ends_with_empty_clause() {
        let cs = parse("(p | q) & ~p & ~q").unwrap().to_cnf();
        match resolution_refute(&cs, 10_000) {
            ResolutionOutcome::Refuted(trace) => {
                assert!(!trace.is_empty());
                assert!(trace.last().unwrap().2.is_empty());
            }
            other => panic!("expected refutation, got {other:?}"),
        }
    }

    #[test]
    fn budget_exhaustion_reported() {
        // A satisfiable but resolvable-rich set with budget 1.
        let cs = parse("(p | q) & (~p | r) & (~q | r) & (~r | s)")
            .unwrap()
            .to_cnf();
        assert_eq!(
            resolution_refute(&cs, 1),
            ResolutionOutcome::BudgetExhausted
        );
    }

    #[test]
    fn agrees_with_dpll_on_templates() {
        for src in [
            "(p -> q) & p & ~q",
            "(p | q) & (~p | q) & (p | ~q) & (~p | ~q)",
            "(a <-> b) & (b <-> c) & a & ~c",
            "(a | b | c) & ~a",
            "p -> p",
        ] {
            let f = parse(src).unwrap();
            let cs = f.to_cnf();
            let res = resolution_refute(&cs, 100_000);
            let dpll_sat = super::super::sat::dpll(&f).is_sat();
            match res {
                ResolutionOutcome::Refuted(_) => assert!(!dpll_sat, "on {src}"),
                ResolutionOutcome::Saturated => assert!(dpll_sat, "on {src}"),
                ResolutionOutcome::BudgetExhausted => panic!("budget too small for {src}"),
            }
        }
    }

    #[test]
    fn empty_premises_entail_only_tautologies() {
        assert_eq!(
            resolution_entails(&[], &parse("p | ~p").unwrap(), 10_000),
            Some(true)
        );
        assert_eq!(
            resolution_entails(&[], &parse("p").unwrap(), 10_000),
            Some(false)
        );
    }
}
