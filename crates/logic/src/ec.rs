//! A simplified discrete-time event calculus, after Tun et al.'s privacy
//! arguments (Graydon §III-P).
//!
//! The dialect implements the core commonsense-law-of-inertia fragment:
//!
//! * `Happens(e, t)` — event `e` occurs at time `t` (given as a narrative);
//! * `Initiates(e, f)` / `Terminates(e, f)` — domain axioms;
//! * `InitiallyTrue(f)` — initial state;
//! * `HoldsAt(f, t)` — derived: a fluent holds at `t` iff it was initiated
//!   at some `t' < t` (or initially) and not terminated in between.
//!
//! Fluents and events are ground first-order terms (from [`crate::fol`]),
//! so domain axioms can be written with structure, e.g.
//! `Initiates(tap(user, subject), query_pending(subject))`.
//!
//! ```
//! use casekit_logic::ec::Narrative;
//! use casekit_logic::fol::parse_term;
//!
//! let mut n = Narrative::new();
//! n.initiates(parse_term("grant(alice)").unwrap(), parse_term("access(alice)").unwrap()).unwrap();
//! n.terminates(parse_term("revoke(alice)").unwrap(), parse_term("access(alice)").unwrap()).unwrap();
//! n.happens(parse_term("grant(alice)").unwrap(), 1).unwrap();
//! n.happens(parse_term("revoke(alice)").unwrap(), 5).unwrap();
//! assert!(!n.holds_at(&parse_term("access(alice)").unwrap(), 1)); // effects take one tick
//! assert!(n.holds_at(&parse_term("access(alice)").unwrap(), 2));
//! assert!(!n.holds_at(&parse_term("access(alice)").unwrap(), 6));
//! ```

use crate::error::LogicError;
use crate::fol::Term;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Discrete time point.
pub type Time = u64;

/// A domain axiom: the event (possibly with variables, matched by
/// unification) initiates or terminates the fluent.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct EffectAxiom {
    event: Term,
    fluent: Term,
}

/// An event-calculus narrative: domain axioms plus a timeline of events.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Narrative {
    initiates: Vec<EffectAxiom>,
    terminates: Vec<EffectAxiom>,
    initially: Vec<Term>,
    happens: Vec<(Term, Time)>,
}

impl Narrative {
    /// An empty narrative.
    pub fn new() -> Self {
        Self::default()
    }

    /// Validates a domain axiom: every variable of the fluent must be
    /// bound by the event pattern, so applying the axiom to a ground
    /// event can only produce ground fluent instances.
    fn check_axiom(event: &Term, fluent: &Term, kind: &str) -> Result<(), LogicError> {
        let bound = event.variables();
        if let Some(unguarded) = fluent.variables().into_iter().find(|v| !bound.contains(v)) {
            return Err(LogicError::UnguardedVariable {
                variable: unguarded.to_string(),
                axiom: format!("{event} {kind} {fluent}"),
            });
        }
        Ok(())
    }

    /// Declares that `event` initiates `fluent`.
    ///
    /// Both may contain variables; an occurring event initiates the fluent
    /// instance obtained by unifying against the axiom's event pattern.
    /// Errors when the fluent mentions a variable the event does not
    /// bind (such an axiom could derive non-ground fluents).
    pub fn initiates(&mut self, event: Term, fluent: Term) -> Result<(), LogicError> {
        Self::check_axiom(&event, &fluent, "initiates")?;
        self.initiates.push(EffectAxiom { event, fluent });
        Ok(())
    }

    /// Declares that `event` terminates `fluent`. Errors like
    /// [`Narrative::initiates`] when the fluent has an unguarded variable.
    pub fn terminates(&mut self, event: Term, fluent: Term) -> Result<(), LogicError> {
        Self::check_axiom(&event, &fluent, "terminates")?;
        self.terminates.push(EffectAxiom { event, fluent });
        Ok(())
    }

    /// Declares that `fluent` holds at time 0. Errors when the fluent is
    /// not ground: the initial state is a set of facts, not patterns.
    pub fn initially_true(&mut self, fluent: Term) -> Result<(), LogicError> {
        if !fluent.is_ground() {
            return Err(LogicError::NonGroundTerm {
                term: fluent.to_string(),
            });
        }
        self.initially.push(fluent);
        Ok(())
    }

    /// Records that `event` happens at `time`. Errors when the event is
    /// not ground: the narrative is a concrete timeline, not a pattern.
    pub fn happens(&mut self, event: Term, time: Time) -> Result<(), LogicError> {
        if !event.is_ground() {
            return Err(LogicError::NonGroundTerm {
                term: event.to_string(),
            });
        }
        self.happens.push((event, time));
        Ok(())
    }

    /// The events that happen at `time`.
    pub fn events_at(&self, time: Time) -> impl Iterator<Item = &Term> {
        self.happens
            .iter()
            .filter(move |(_, t)| *t == time)
            .map(|(e, _)| e)
    }

    /// The latest time at which any event happens (0 if none).
    pub fn horizon(&self) -> Time {
        self.happens.iter().map(|(_, t)| *t).max().unwrap_or(0)
    }

    /// Ground fluent instances affected (initiated or terminated) by
    /// `event` under the given axiom set.
    fn effects(axioms: &[EffectAxiom], event: &Term) -> Vec<Term> {
        use crate::fol::{unify, Substitution};
        let mut out = Vec::new();
        for axiom in axioms {
            // Freshen axiom variables so narrative constants never clash.
            let ev = axiom.event.rename_variables(usize::MAX);
            let fl = axiom.fluent.rename_variables(usize::MAX);
            if let Some(s) = unify(&ev, event, &Substitution::new()) {
                out.push(s.apply(&fl));
            }
        }
        out
    }

    /// Whether `fluent` (a ground term) holds at `time`.
    ///
    /// Semantics: `HoldsAt(f, 0)` iff `InitiallyTrue(f)`; for `t > 0`,
    /// effects of events at time `t-1` apply at `t`, with termination
    /// taking precedence over initiation at the same instant, and inertia
    /// otherwise.
    pub fn holds_at(&self, fluent: &Term, time: Time) -> bool {
        let mut holds = self.initially.contains(fluent);
        for t in 0..time {
            let mut initiated = false;
            let mut terminated = false;
            for event in self.events_at(t) {
                if Self::effects(&self.initiates, event).contains(fluent) {
                    initiated = true;
                }
                if Self::effects(&self.terminates, event).contains(fluent) {
                    terminated = true;
                }
            }
            if terminated {
                holds = false;
            } else if initiated {
                holds = true;
            }
            // Otherwise inertia: `holds` is unchanged.
        }
        holds
    }

    /// All ground fluents that hold at `time` (restricted to fluents that
    /// are mentioned initially or derivable from a happened event).
    pub fn state_at(&self, time: Time) -> BTreeSet<Term> {
        let mut candidates: BTreeSet<Term> = self.initially.iter().cloned().collect();
        for (event, _) in &self.happens {
            candidates.extend(Self::effects(&self.initiates, event));
            candidates.extend(Self::effects(&self.terminates, event));
        }
        candidates
            .into_iter()
            .filter(|f| self.holds_at(f, time))
            .collect()
    }

    /// Checks a *policy invariant*: `fluent` never holds at any time in
    /// `0..=horizon+1`. Returns the first violating time if any.
    ///
    /// This is the "denial" check of Tun et al.: e.g. location information
    /// must never be available to a non-friend.
    pub fn never_holds(&self, fluent: &Term) -> Result<(), Time> {
        for t in 0..=self.horizon() + 1 {
            if self.holds_at(fluent, t) {
                return Err(t);
            }
        }
        Ok(())
    }

    /// Checks an *availability* property: `fluent` holds at some time in
    /// `0..=horizon+1`. Returns the first such time.
    pub fn eventually_holds(&self, fluent: &Term) -> Option<Time> {
        (0..=self.horizon() + 1).find(|&t| self.holds_at(fluent, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fol::parse_term;

    fn t(src: &str) -> Term {
        parse_term(src).unwrap()
    }

    fn tap_narrative() -> Narrative {
        // Tun et al.'s example (propositional skeleton): tapping a friend's
        // icon makes their location available one step later; untap revokes.
        let mut n = Narrative::new();
        n.initiates(t("tap(User, Subject)"), t("loc_avail(User, Subject)"))
            .unwrap();
        n.terminates(t("untap(User, Subject)"), t("loc_avail(User, Subject)"))
            .unwrap();
        n
    }

    #[test]
    fn initially_true_holds_at_zero() {
        let mut n = Narrative::new();
        n.initially_true(t("friends(alice, bob)")).unwrap();
        assert!(n.holds_at(&t("friends(alice, bob)"), 0));
        assert!(n.holds_at(&t("friends(alice, bob)"), 100)); // inertia
        assert!(!n.holds_at(&t("friends(bob, carol)"), 0));
    }

    #[test]
    fn initiation_takes_effect_next_tick() {
        let mut n = tap_narrative();
        n.happens(t("tap(alice, bob)"), 3).unwrap();
        let fl = t("loc_avail(alice, bob)");
        assert!(!n.holds_at(&fl, 3));
        assert!(n.holds_at(&fl, 4));
        assert!(n.holds_at(&fl, 10));
    }

    #[test]
    fn termination_removes_fluent() {
        let mut n = tap_narrative();
        n.happens(t("tap(alice, bob)"), 1).unwrap();
        n.happens(t("untap(alice, bob)"), 5).unwrap();
        let fl = t("loc_avail(alice, bob)");
        assert!(n.holds_at(&fl, 2));
        assert!(n.holds_at(&fl, 5));
        assert!(!n.holds_at(&fl, 6));
    }

    #[test]
    fn termination_wins_simultaneous_conflict() {
        let mut n = tap_narrative();
        n.happens(t("tap(alice, bob)"), 2).unwrap();
        n.happens(t("untap(alice, bob)"), 2).unwrap();
        assert!(!n.holds_at(&t("loc_avail(alice, bob)"), 3));
    }

    #[test]
    fn axiom_variables_bind_per_event() {
        let mut n = tap_narrative();
        n.happens(t("tap(alice, bob)"), 0).unwrap();
        n.happens(t("tap(carol, dave)"), 0).unwrap();
        assert!(n.holds_at(&t("loc_avail(alice, bob)"), 1));
        assert!(n.holds_at(&t("loc_avail(carol, dave)"), 1));
        assert!(!n.holds_at(&t("loc_avail(alice, dave)"), 1));
    }

    #[test]
    fn state_at_collects_holding_fluents() {
        let mut n = tap_narrative();
        n.initially_true(t("friends(alice, bob)")).unwrap();
        n.happens(t("tap(alice, bob)"), 0).unwrap();
        let state = n.state_at(1);
        assert!(state.contains(&t("friends(alice, bob)")));
        assert!(state.contains(&t("loc_avail(alice, bob)")));
        assert_eq!(state.len(), 2);
    }

    #[test]
    fn never_holds_policy_check() {
        let mut n = tap_narrative();
        n.happens(t("tap(eve, bob)"), 2).unwrap();
        // Policy: eve (not a friend) must never see bob's location.
        // The naive narrative violates it at t=3.
        assert_eq!(n.never_holds(&t("loc_avail(eve, bob)")), Err(3));
        // alice never tapped, so the policy holds for her.
        assert_eq!(n.never_holds(&t("loc_avail(alice, bob)")), Ok(()));
    }

    #[test]
    fn eventually_holds_availability_check() {
        let mut n = tap_narrative();
        n.happens(t("tap(alice, bob)"), 7).unwrap();
        assert_eq!(n.eventually_holds(&t("loc_avail(alice, bob)")), Some(8));
        assert_eq!(n.eventually_holds(&t("loc_avail(bob, alice)")), None);
    }

    #[test]
    fn horizon_and_events_at() {
        let mut n = Narrative::new();
        assert_eq!(n.horizon(), 0);
        n.happens(t("e1"), 4).unwrap();
        n.happens(t("e2"), 9).unwrap();
        n.happens(t("e3"), 4).unwrap();
        assert_eq!(n.horizon(), 9);
        assert_eq!(n.events_at(4).count(), 2);
        assert_eq!(n.events_at(5).count(), 0);
    }

    #[test]
    fn unguarded_axiom_variable_rejected() {
        let mut n = Narrative::new();
        let err = n
            .initiates(t("tap(U)"), t("seen(W)"))
            .expect_err("W is not bound by the trigger");
        assert_eq!(
            err,
            LogicError::UnguardedVariable {
                variable: "W".into(),
                axiom: "tap(U) initiates seen(W)".into(),
            }
        );
        let err = n
            .terminates(t("untap(U, V)"), t("loc_avail(U, Other)"))
            .expect_err("Other is not bound by the trigger");
        assert!(matches!(err, LogicError::UnguardedVariable { .. }));
        // Guarded axioms (fluent vars ⊆ event vars) are accepted, as are
        // fluents with no variables at all.
        n.initiates(t("tap(U, V)"), t("loc_avail(U, V)")).unwrap();
        n.initiates(t("reset(U)"), t("clean")).unwrap();
    }

    #[test]
    fn non_ground_narrative_entries_rejected() {
        let mut n = Narrative::new();
        let err = n.happens(t("tap(X, bob)"), 1).expect_err("X is unbound");
        assert_eq!(
            err,
            LogicError::NonGroundTerm {
                term: "tap(X, bob)".into(),
            }
        );
        let err = n
            .initially_true(t("friends(alice, Who)"))
            .expect_err("Who is unbound");
        assert!(matches!(err, LogicError::NonGroundTerm { .. }));
        assert_eq!(n.horizon(), 0);
        assert!(n.state_at(5).is_empty());
    }

    #[test]
    fn re_initiation_after_termination() {
        let mut n = tap_narrative();
        n.happens(t("tap(alice, bob)"), 0).unwrap();
        n.happens(t("untap(alice, bob)"), 2).unwrap();
        n.happens(t("tap(alice, bob)"), 4).unwrap();
        let fl = t("loc_avail(alice, bob)");
        assert!(n.holds_at(&fl, 1));
        assert!(!n.holds_at(&fl, 3));
        assert!(n.holds_at(&fl, 5));
    }
}
