//! Node annotations validated against an ontology.

use crate::ontology::{FieldType, Ontology};
use casekit_core::{Argument, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A field value.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FieldValue {
    /// Text (also enum members).
    Str(String),
    /// Integer.
    Int(i64),
}

impl FieldValue {
    /// Renders for display and query comparison.
    pub fn render(&self) -> String {
        match self {
            FieldValue::Str(s) => s.clone(),
            FieldValue::Int(v) => v.to_string(),
        }
    }
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl From<&str> for FieldValue {
    fn from(s: &str) -> Self {
        FieldValue::Str(s.to_string())
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::Int(v)
    }
}

/// Errors from annotating.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AnnotationError {
    /// The node does not exist in the argument.
    UnknownNode(String),
    /// The attribute is not declared in the ontology.
    UnknownAttribute(String),
    /// A field name is not part of the attribute's schema.
    UnknownField {
        /// The attribute.
        attribute: String,
        /// The offending field.
        field: String,
    },
    /// A schema field was not supplied.
    MissingField {
        /// The attribute.
        attribute: String,
        /// The missing field.
        field: String,
    },
    /// A value failed type checking.
    BadValue {
        /// The attribute.
        attribute: String,
        /// The field.
        field: String,
        /// The rejected value.
        value: String,
    },
}

impl fmt::Display for AnnotationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnnotationError::UnknownNode(n) => write!(f, "unknown node `{n}`"),
            AnnotationError::UnknownAttribute(a) => write!(f, "undeclared attribute `{a}`"),
            AnnotationError::UnknownField { attribute, field } => {
                write!(f, "attribute `{attribute}` has no field `{field}`")
            }
            AnnotationError::MissingField { attribute, field } => {
                write!(f, "attribute `{attribute}` requires field `{field}`")
            }
            AnnotationError::BadValue {
                attribute,
                field,
                value,
            } => write!(f, "value `{value}` is invalid for `{attribute}.{field}`"),
        }
    }
}

impl std::error::Error for AnnotationError {}

/// One attribute instance attached to a node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Annotation {
    /// The attribute name.
    pub attribute: String,
    /// Field values by field name.
    pub fields: BTreeMap<String, FieldValue>,
}

/// A store of annotations keyed by node, validated against an [`Ontology`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnnotationStore {
    ontology: Ontology,
    annotations: BTreeMap<NodeId, Vec<Annotation>>,
}

impl AnnotationStore {
    /// Creates a store over the given ontology.
    pub fn new(ontology: Ontology) -> Self {
        AnnotationStore {
            ontology,
            annotations: BTreeMap::new(),
        }
    }

    /// The ontology.
    pub fn ontology(&self) -> &Ontology {
        &self.ontology
    }

    /// Annotates `node` in `argument` with an attribute instance.
    ///
    /// # Errors
    ///
    /// Rejects unknown nodes, undeclared attributes, unknown or missing
    /// fields, and ill-typed values.
    pub fn annotate(
        &mut self,
        argument: &Argument,
        node: &str,
        attribute: &str,
        fields: impl IntoIterator<Item = (impl Into<String>, impl Into<FieldValue>)>,
    ) -> Result<(), AnnotationError> {
        let node_id = NodeId::new(node);
        if argument.node(&node_id).is_none() {
            return Err(AnnotationError::UnknownNode(node.to_string()));
        }
        let schema: Vec<(String, FieldType)> = self
            .ontology
            .attribute_schema(attribute)
            .ok_or_else(|| AnnotationError::UnknownAttribute(attribute.to_string()))?
            .to_vec();
        let supplied: BTreeMap<String, FieldValue> = fields
            .into_iter()
            .map(|(k, v)| (k.into(), v.into()))
            .collect();
        for name in supplied.keys() {
            if !schema.iter().any(|(n, _)| n == name) {
                return Err(AnnotationError::UnknownField {
                    attribute: attribute.to_string(),
                    field: name.clone(),
                });
            }
        }
        for (name, ty) in &schema {
            match supplied.get(name) {
                None => {
                    return Err(AnnotationError::MissingField {
                        attribute: attribute.to_string(),
                        field: name.clone(),
                    })
                }
                Some(value) => {
                    if !self.ontology.field_ok(ty, value) {
                        return Err(AnnotationError::BadValue {
                            attribute: attribute.to_string(),
                            field: name.clone(),
                            value: value.render(),
                        });
                    }
                }
            }
        }
        self.annotations
            .entry(node_id)
            .or_default()
            .push(Annotation {
                attribute: attribute.to_string(),
                fields: supplied,
            });
        Ok(())
    }

    /// The annotations on `node`.
    pub fn annotations(&self, node: &NodeId) -> &[Annotation] {
        self.annotations.get(node).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All annotated nodes.
    pub fn annotated_nodes(&self) -> impl Iterator<Item = &NodeId> {
        self.annotations.keys()
    }

    /// Total number of annotation instances.
    pub fn len(&self) -> usize {
        self.annotations.values().map(Vec::len).sum()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.annotations.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use casekit_core::dsl::parse_argument;

    fn setup() -> (Argument, AnnotationStore) {
        let arg = parse_argument(
            r#"argument "a" {
                goal g1 "top" {
                  goal g2 "fire hazard handled" { solution e1 "test" }
                }
            }"#,
        )
        .unwrap();
        let mut ontology = Ontology::new();
        ontology.declare_enum("severity", ["catastrophic", "major", "minor"]);
        ontology.declare_enum("likelihood", ["frequent", "probable", "remote"]);
        ontology.declare_attribute(
            "hazard",
            [
                ("severity", FieldType::Enum("severity".into())),
                ("likelihood", FieldType::Enum("likelihood".into())),
            ],
        );
        ontology.declare_attribute("wcet_ms", [("value", FieldType::Nat)]);
        (arg, AnnotationStore::new(ontology))
    }

    #[test]
    fn annotate_and_read_back() {
        let (arg, mut store) = setup();
        store
            .annotate(
                &arg,
                "g2",
                "hazard",
                [("severity", "catastrophic"), ("likelihood", "remote")],
            )
            .unwrap();
        let anns = store.annotations(&NodeId::new("g2"));
        assert_eq!(anns.len(), 1);
        assert_eq!(anns[0].attribute, "hazard");
        assert_eq!(
            anns[0].fields["severity"],
            FieldValue::Str("catastrophic".into())
        );
        assert_eq!(store.len(), 1);
        assert!(!store.is_empty());
        assert_eq!(store.annotated_nodes().count(), 1);
    }

    #[test]
    fn unknown_node_rejected() {
        let (arg, mut store) = setup();
        let err = store
            .annotate(
                &arg,
                "zzz",
                "hazard",
                [("severity", "major"), ("likelihood", "remote")],
            )
            .unwrap_err();
        assert_eq!(err, AnnotationError::UnknownNode("zzz".into()));
    }

    #[test]
    fn undeclared_attribute_rejected() {
        let (arg, mut store) = setup();
        let err = store
            .annotate(&arg, "g2", "mystery", [("x", "y")])
            .unwrap_err();
        assert_eq!(err, AnnotationError::UnknownAttribute("mystery".into()));
    }

    #[test]
    fn unknown_and_missing_fields_rejected() {
        let (arg, mut store) = setup();
        let err = store
            .annotate(
                &arg,
                "g2",
                "hazard",
                [
                    ("severity", "major"),
                    ("likelihood", "remote"),
                    ("colour", "red"),
                ],
            )
            .unwrap_err();
        assert!(matches!(err, AnnotationError::UnknownField { .. }));
        let err = store
            .annotate(&arg, "g2", "hazard", [("severity", "major")])
            .unwrap_err();
        assert!(matches!(
            err,
            AnnotationError::MissingField { ref field, .. } if field == "likelihood"
        ));
    }

    #[test]
    fn enum_membership_enforced() {
        let (arg, mut store) = setup();
        let err = store
            .annotate(
                &arg,
                "g2",
                "hazard",
                [("severity", "apocalyptic"), ("likelihood", "remote")],
            )
            .unwrap_err();
        assert!(matches!(err, AnnotationError::BadValue { .. }));
        assert!(err.to_string().contains("apocalyptic"));
    }

    #[test]
    fn nat_field_enforced() {
        let (arg, mut store) = setup();
        assert!(store
            .annotate(&arg, "e1", "wcet_ms", [("value", 250i64)])
            .is_ok());
        let err = store
            .annotate(&arg, "e1", "wcet_ms", [("value", -1i64)])
            .unwrap_err();
        assert!(matches!(err, AnnotationError::BadValue { .. }));
    }

    #[test]
    fn multiple_annotations_per_node() {
        let (arg, mut store) = setup();
        store
            .annotate(
                &arg,
                "g2",
                "hazard",
                [("severity", "major"), ("likelihood", "remote")],
            )
            .unwrap();
        store
            .annotate(
                &arg,
                "g2",
                "hazard",
                [("severity", "minor"), ("likelihood", "frequent")],
            )
            .unwrap();
        assert_eq!(store.annotations(&NodeId::new("g2")).len(), 2);
    }

    #[test]
    fn error_displays() {
        assert!(AnnotationError::UnknownNode("n".into())
            .to_string()
            .contains("`n`"));
        assert!(AnnotationError::MissingField {
            attribute: "a".into(),
            field: "f".into()
        }
        .to_string()
        .contains("requires"));
    }
}
