//! The encoded corpus.
//!
//! 72 unique phase-1 papers whose (library × domain) attributions
//! reproduce Table I's marginals exactly:
//!
//! * safety query: IEEE 12, ACM 17, Springer 24, Google Scholar 8
//!   (61 attributions over 54 unique papers — 7 papers surfaced in two
//!   libraries);
//! * security query: IEEE 13, ACM 7, Springer 2, Google Scholar 1
//!   (23 attributions over 23 unique papers);
//! * 5 papers surfaced under both queries, so 54 + 23 − 5 = 72 unique.
//!
//! The 21 real papers (Graydon's refs 6–25 and 39) carry their actual
//! titles and years; the remaining 51 are synthesised (titles marked
//! "(synthetic)"). A pool of synthetic phase-1 *rejects* is added so the
//! phase-1 filter does real work.

use crate::paper::{AbstractSignals, Attribution, Domain, FullTextSignals, Library, Paper};

/// The real papers: (ref, year, title, security-domain?, phase-2 selected?).
///
/// Ref 39 (Sokolsky et al.) is characterised by Graydon alongside the
/// twenty selected papers but is not among refs 6–25; we encode it as
/// surfacing in phase 1 and *not* phase-2 selected, matching "phase two
/// yielded twenty selected papers \[6\]–\[25\]".
const REAL_PAPERS: &[(u8, u16, &str, bool, bool)] = &[
    (
        6,
        2009,
        "Deriving safety cases from automatically constructed proofs",
        false,
        true,
    ),
    (
        7,
        2010,
        "Deriving safety cases for hierarchical structure in model-based development",
        false,
        true,
    ),
    (8, 1995, "The SHIP safety case approach", false, true),
    (
        9,
        2012,
        "Formal verification of a safety argumentation and application to a complex UAV system",
        false,
        true,
    ),
    (
        10,
        2012,
        "Heterogeneous aviation safety cases: Integrating the formal and the non-formal",
        false,
        true,
    ),
    (
        11,
        2013,
        "A formal basis for safety case patterns",
        false,
        true,
    ),
    (12, 2013, "Hierarchical safety cases", false, true),
    (13, 2014, "Querying safety cases", false, true),
    (14, 1992, "A safety argument manager", false, true),
    (
        15,
        2006,
        "A framework for security requirements engineering",
        true,
        true,
    ),
    (
        16,
        2008,
        "Security requirements engineering: A framework for representation and analysis",
        true,
        true,
    ),
    (
        17,
        2011,
        "Parameterised argument structure in GSN patterns",
        false,
        true,
    ),
    (
        18,
        2014,
        "A design and implementation of an assurance case language",
        false,
        true,
    ),
    (19, 2010, "Formalism in safety cases", false, true),
    (
        20,
        2013,
        "Logic and epistemology in safety cases",
        false,
        true,
    ),
    (
        21,
        2013,
        "Mechanized support for assurance case argumentation",
        false,
        true,
    ),
    (
        22,
        2012,
        "Privacy arguments: Analysing selective disclosure requirements for mobile applications",
        true,
        true,
    ),
    (
        23,
        2012,
        "Deliberation dialogues for reasoning about safety critical actions",
        false,
        true,
    ),
    (
        24,
        2010,
        "Model-based argument analysis for evolving security requirements",
        true,
        true,
    ),
    (
        25,
        2011,
        "OpenArgue: Supporting argumentation to evolve secure software systems",
        true,
        true,
    ),
    (
        39,
        2011,
        "Challenges in the regulatory approval of medical cyber-physical systems",
        false,
        false,
    ),
];

fn relevant_abstract() -> AbstractSignals {
    AbstractSignals {
        hints_assurance_argument: true,
        evidence_item_only: false,
        formal_other_sense: false,
    }
}

/// Builds the 72 unique phase-1 papers.
pub fn phase1_papers() -> Vec<Paper> {
    let mut papers = Vec::with_capacity(72);

    // ---- The safety-unique set: 54 papers (ids p01..p54). ----
    // Real safety papers first (16 of them), then synthetic fill.
    let real_safety: Vec<&(u8, u16, &str, bool, bool)> =
        REAL_PAPERS.iter().filter(|r| !r.3).collect();
    let real_security: Vec<&(u8, u16, &str, bool, bool)> =
        REAL_PAPERS.iter().filter(|r| r.3).collect();

    for i in 0..54usize {
        let (ref_num, year, title, selected) = match real_safety.get(i) {
            Some((r, y, t, _, sel)) => (Some(*r), *y, (*t).to_string(), *sel),
            None => (
                None,
                2000 + (i as u16 % 15),
                format!("Assurance argument notes #{:02} (synthetic)", i + 1),
                false,
            ),
        };
        papers.push(Paper {
            id: format!("p{:02}", i + 1),
            ref_num,
            title,
            year,
            attributions: safety_attributions(i),
            abstract_signals: relevant_abstract(),
            fulltext_signals: FullTextSignals {
                documents_claim_support: selected,
                discusses_formal_linkage: selected,
            },
        });
    }

    // ---- Security attributions. ----
    // The security query surfaced 23 unique papers: the first 5 are the
    // *overlap* papers p50..p54 (also found by the safety query); the
    // remaining 18 are security-only (ids p55..p72).
    let security_libs = security_library_sequence();
    for (slot, lib) in security_libs.iter().enumerate().take(5) {
        let paper = &mut papers[49 + slot]; // p50..p54
        paper.attributions.push(Attribution {
            library: *lib,
            domain: Domain::Security,
        });
    }
    for (slot, lib) in security_libs.iter().enumerate().skip(5) {
        let idx = slot - 5; // 0..17
        let (ref_num, year, title, selected) = match real_security.get(idx) {
            Some((r, y, t, _, sel)) => (Some(*r), *y, (*t).to_string(), *sel),
            None => (
                None,
                2004 + (idx as u16 % 10),
                format!("Security argumentation notes #{:02} (synthetic)", idx + 1),
                false,
            ),
        };
        papers.push(Paper {
            id: format!("p{:02}", 55 + idx),
            ref_num,
            title,
            year,
            attributions: vec![Attribution {
                library: *lib,
                domain: Domain::Security,
            }],
            abstract_signals: relevant_abstract(),
            fulltext_signals: FullTextSignals {
                documents_claim_support: selected,
                discusses_formal_linkage: selected,
            },
        });
    }
    papers
}

/// Safety attributions for paper index `i` (0-based within p01..p54):
/// single libraries 12/17/18/7 for IEEE/ACM/Springer/GS, plus second
/// attributions (Springer for p01..p06, Google Scholar for p07) to reach
/// the published 12/17/24/8 column.
fn safety_attributions(i: usize) -> Vec<Attribution> {
    let primary = if i < 12 {
        Library::IeeeXplore
    } else if i < 29 {
        Library::AcmDl
    } else if i < 47 {
        Library::SpringerLink
    } else {
        Library::GoogleScholar
    };
    let mut out = vec![Attribution {
        library: primary,
        domain: Domain::Safety,
    }];
    if i < 6 {
        out.push(Attribution {
            library: Library::SpringerLink,
            domain: Domain::Safety,
        });
    } else if i == 6 {
        out.push(Attribution {
            library: Library::GoogleScholar,
            domain: Domain::Safety,
        });
    }
    out
}

/// Security library per slot: 13 IEEE, 7 ACM, 2 Springer, 1 GS.
fn security_library_sequence() -> Vec<Library> {
    let mut out = Vec::with_capacity(23);
    out.extend(std::iter::repeat_n(Library::IeeeXplore, 13));
    out.extend(std::iter::repeat_n(Library::AcmDl, 7));
    out.extend(std::iter::repeat_n(Library::SpringerLink, 2));
    out.push(Library::GoogleScholar);
    out
}

/// Synthetic phase-1 rejects: papers the title/abstract screen removes,
/// exercising each exclusion criterion.
pub fn phase1_rejects() -> Vec<Paper> {
    let mut out = Vec::new();
    let reasons = [
        // (hints, evidence-only, formal-other-sense)
        (false, false, false), // no hint of assurance arguments
        (true, true, false),   // evidence item (e.g. algorithm proof)
        (true, false, true),   // 'formal' in another sense
    ];
    let libraries = Library::ALL;
    let mut counter = 0usize;
    for (hint, evidence, other_sense) in reasons {
        for (li, lib) in libraries.iter().enumerate() {
            for k in 0..3usize {
                counter += 1;
                out.push(Paper {
                    id: format!("r{counter:02}"),
                    ref_num: None,
                    title: format!("Rejected result #{counter:02} (synthetic)"),
                    year: 1998 + ((li * 3 + k) as u16),
                    attributions: vec![Attribution {
                        library: *lib,
                        domain: if counter.is_multiple_of(3) {
                            Domain::Security
                        } else {
                            Domain::Safety
                        },
                    }],
                    abstract_signals: AbstractSignals {
                        hints_assurance_argument: hint,
                        evidence_item_only: evidence,
                        formal_other_sense: other_sense,
                    },
                    fulltext_signals: FullTextSignals {
                        documents_claim_support: false,
                        discusses_formal_linkage: false,
                    },
                });
            }
        }
    }
    out
}

/// The full raw pool the phase-1 screen runs over: the 72 relevant papers
/// plus the rejects, shuffled deterministically by id.
pub fn raw_pool() -> Vec<Paper> {
    let mut pool = phase1_papers();
    pool.extend(phase1_rejects());
    pool.sort_by(|a, b| a.id.cmp(&b.id));
    pool
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seventy_two_unique_phase1_papers() {
        let papers = phase1_papers();
        assert_eq!(papers.len(), 72);
        let mut ids: Vec<_> = papers.iter().map(|p| p.id.clone()).collect();
        ids.dedup();
        assert_eq!(ids.len(), 72);
    }

    #[test]
    fn domain_unique_counts_match_table_i() {
        let papers = phase1_papers();
        let safety = papers
            .iter()
            .filter(|p| p.in_domain(Domain::Safety))
            .count();
        let security = papers
            .iter()
            .filter(|p| p.in_domain(Domain::Security))
            .count();
        assert_eq!(safety, 54);
        assert_eq!(security, 23);
        let both = papers
            .iter()
            .filter(|p| p.in_domain(Domain::Safety) && p.in_domain(Domain::Security))
            .count();
        assert_eq!(both, 5);
    }

    #[test]
    fn per_library_counts_match_table_i() {
        let papers = phase1_papers();
        let count = |lib, dom| papers.iter().filter(|p| p.attributed(lib, dom)).count();
        assert_eq!(count(Library::IeeeXplore, Domain::Safety), 12);
        assert_eq!(count(Library::AcmDl, Domain::Safety), 17);
        assert_eq!(count(Library::SpringerLink, Domain::Safety), 24);
        assert_eq!(count(Library::GoogleScholar, Domain::Safety), 8);
        assert_eq!(count(Library::IeeeXplore, Domain::Security), 13);
        assert_eq!(count(Library::AcmDl, Domain::Security), 7);
        assert_eq!(count(Library::SpringerLink, Domain::Security), 2);
        assert_eq!(count(Library::GoogleScholar, Domain::Security), 1);
    }

    #[test]
    fn twenty_one_real_papers_present() {
        let papers = phase1_papers();
        let refs: Vec<u8> = papers.iter().filter_map(|p| p.ref_num).collect();
        assert_eq!(refs.len(), 21);
        for r in 6..=25u8 {
            assert!(refs.contains(&r), "missing ref {r}");
        }
        assert!(refs.contains(&39));
    }

    #[test]
    fn exactly_twenty_phase2_selected() {
        let papers = phase1_papers();
        let selected: Vec<&Paper> = papers
            .iter()
            .filter(|p| {
                p.fulltext_signals.documents_claim_support
                    && p.fulltext_signals.discusses_formal_linkage
            })
            .collect();
        assert_eq!(selected.len(), 20);
        // Sokolsky (ref 39) surfaced but was not among the twenty.
        assert!(selected.iter().all(|p| p.ref_num != Some(39)));
    }

    #[test]
    fn rejects_violate_phase1_criteria() {
        for r in phase1_rejects() {
            let s = r.abstract_signals;
            assert!(
                !s.hints_assurance_argument || s.evidence_item_only || s.formal_other_sense,
                "reject {} would pass phase 1",
                r.id
            );
        }
    }

    #[test]
    fn raw_pool_contains_everything_sorted() {
        let pool = raw_pool();
        assert_eq!(pool.len(), 72 + phase1_rejects().len());
        let ids: Vec<_> = pool.iter().map(|p| p.id.clone()).collect();
        let mut sorted = ids.clone();
        sorted.sort();
        assert_eq!(ids, sorted);
    }
}
