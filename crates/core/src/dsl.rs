//! A text DSL for writing assurance arguments.
//!
//! The grammar (comments run `//` or `#` to end of line):
//!
//! ```text
//! argument ::= "argument" STRING "{" node* "}"
//! node     ::= KIND IDENT STRING modifier* ( "{" child* "}" )?
//! child    ::= node | "ref" IDENT
//! modifier ::= "formal" STRING          -- propositional payload
//!            | "temporal" STRING        -- LTL payload
//!            | "undeveloped"
//! KIND     ::= "goal" | "strategy" | "solution" | "context"
//!            | "assumption" | "justification"
//!            | "claim" | "argnode" | "evidence"
//! ```
//!
//! Nesting encodes edges: contexts, assumptions, and justifications attach
//! to their parent with `InContextOf`; all other kinds with `SupportedBy`.
//! `ref` adds an edge to an already-declared node, allowing DAGs.
//!
//! ```
//! use casekit_core::dsl::parse_argument;
//! let arg = parse_argument(r#"
//!   argument "demo" {
//!     goal g1 "Top" {
//!       solution e1 "Evidence"
//!     }
//!   }
//! "#).unwrap();
//! assert_eq!(arg.len(), 2);
//! ```

use crate::argument::{Argument, ArgumentBuilder};
use crate::node::{EdgeKind, FormalPayload, Node, NodeKind};
use casekit_logic::{ltl::parse_ltl, prop, ParseError, Span};

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Word(String),
    Str(String),
    LBrace,
    RBrace,
}

#[derive(Debug, Clone)]
struct Lexed {
    tok: Tok,
    span: Span,
}

fn lex(input: &str) -> Result<Vec<Lexed>, ParseError> {
    let mut out = Vec::new();
    let bytes: Vec<char> = input.chars().collect();
    let mut offsets: Vec<usize> = input.char_indices().map(|(i, _)| i).collect();
    offsets.push(input.len());
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        if c.is_whitespace() {
            i += 1;
        } else if c == '/' && bytes.get(i + 1) == Some(&'/') || c == '#' {
            while i < bytes.len() && bytes[i] != '\n' {
                i += 1;
            }
        } else if c == '{' {
            out.push(Lexed {
                tok: Tok::LBrace,
                span: Span::new(offsets[i], offsets[i + 1]),
            });
            i += 1;
        } else if c == '}' {
            out.push(Lexed {
                tok: Tok::RBrace,
                span: Span::new(offsets[i], offsets[i + 1]),
            });
            i += 1;
        } else if c == '"' {
            let start = i;
            i += 1;
            let mut s = String::new();
            let mut closed = false;
            while i < bytes.len() {
                match bytes[i] {
                    '"' => {
                        closed = true;
                        i += 1;
                        break;
                    }
                    '\\' if matches!(bytes.get(i + 1), Some('"') | Some('\\')) => {
                        s.push(bytes[i + 1]);
                        i += 2;
                    }
                    other => {
                        s.push(other);
                        i += 1;
                    }
                }
            }
            if !closed {
                return Err(ParseError::new(
                    "unterminated string literal",
                    Span::new(offsets[start], input.len()),
                ));
            }
            out.push(Lexed {
                tok: Tok::Str(s),
                span: Span::new(offsets[start], offsets[i]),
            });
        } else if c.is_alphanumeric() || c == '_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                i += 1;
            }
            let word: String = bytes[start..i].iter().collect();
            out.push(Lexed {
                tok: Tok::Word(word),
                span: Span::new(offsets[start], offsets[i]),
            });
        } else {
            return Err(ParseError::new(
                format!("unexpected character `{c}`"),
                Span::new(offsets[i], offsets[i + 1]),
            ));
        }
    }
    Ok(out)
}

fn kind_of(word: &str) -> Option<NodeKind> {
    match word {
        "goal" => Some(NodeKind::Goal),
        "strategy" => Some(NodeKind::Strategy),
        "solution" => Some(NodeKind::Solution),
        "context" => Some(NodeKind::Context),
        "assumption" => Some(NodeKind::Assumption),
        "justification" => Some(NodeKind::Justification),
        "claim" => Some(NodeKind::Claim),
        "argnode" => Some(NodeKind::ArgumentNode),
        "evidence" => Some(NodeKind::Evidence),
        _ => None,
    }
}

fn edge_kind_for(kind: NodeKind) -> EdgeKind {
    match kind {
        NodeKind::Context | NodeKind::Assumption | NodeKind::Justification => EdgeKind::InContextOf,
        _ => EdgeKind::SupportedBy,
    }
}

struct Parser {
    toks: Vec<Lexed>,
    pos: usize,
    end: usize,
}

impl Parser {
    fn here(&self) -> Span {
        self.toks
            .get(self.pos)
            .map(|l| l.span)
            .unwrap_or(Span::point(self.end))
    }

    fn next(&mut self) -> Option<Lexed> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|l| &l.tok)
    }

    fn expect_word(&mut self, expected: &str) -> Result<(), ParseError> {
        let span = self.here();
        match self.next().map(|l| l.tok) {
            Some(Tok::Word(w)) if w == expected => Ok(()),
            _ => Err(ParseError::new(format!("expected `{expected}`"), span)),
        }
    }

    fn expect_string(&mut self, what: &str) -> Result<String, ParseError> {
        let span = self.here();
        match self.next().map(|l| l.tok) {
            Some(Tok::Str(s)) => Ok(s),
            _ => Err(ParseError::new(format!("expected {what} string"), span)),
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        let span = self.here();
        match self.next().map(|l| l.tok) {
            Some(Tok::Word(w)) if kind_of(&w).is_none() && w != "ref" => Ok(w),
            _ => Err(ParseError::new("expected a node identifier", span)),
        }
    }

    fn expect_lbrace(&mut self) -> Result<(), ParseError> {
        let span = self.here();
        match self.next().map(|l| l.tok) {
            Some(Tok::LBrace) => Ok(()),
            _ => Err(ParseError::new("expected `{`", span)),
        }
    }

    /// Parses one node (and its nested children) into the builder, adding
    /// an edge from `parent` if there is one. Returns the updated builder.
    fn node(
        &mut self,
        mut builder: ArgumentBuilder,
        parent: Option<(&str, NodeKind)>,
    ) -> Result<ArgumentBuilder, ParseError> {
        let span = self.here();
        let kind_word = match self.next().map(|l| l.tok) {
            Some(Tok::Word(w)) => w,
            _ => return Err(ParseError::new("expected a node kind", span)),
        };

        if kind_word == "ref" {
            let target = self.expect_ident()?;
            let (parent_id, _) = parent
                .ok_or_else(|| ParseError::new("`ref` is only allowed inside a node body", span))?;
            // Edge kind depends on the *referenced* node's kind, which the
            // builder may not know yet; we default to SupportedBy — a ref
            // to a context node should use nesting instead.
            builder = builder.edge(parent_id, &target, EdgeKind::SupportedBy);
            return Ok(builder);
        }

        let kind = kind_of(&kind_word)
            .ok_or_else(|| ParseError::new(format!("unknown node kind `{kind_word}`"), span))?;
        let id = self.expect_ident()?;
        let text = self.expect_string("node text")?;

        let mut node = Node::new(id.as_str(), kind, text);

        // Modifiers.
        loop {
            match self.peek() {
                Some(Tok::Word(w)) if w == "formal" => {
                    self.next();
                    let span = self.here();
                    let src = self.expect_string("formula")?;
                    let formula = prop::parse(&src).map_err(|e| {
                        ParseError::new(format!("in formal payload of `{id}`: {}", e.message), span)
                    })?;
                    node.formal = Some(FormalPayload::Prop(formula));
                }
                Some(Tok::Word(w)) if w == "temporal" => {
                    self.next();
                    let span = self.here();
                    let src = self.expect_string("LTL formula")?;
                    let formula = parse_ltl(&src).map_err(|e| {
                        ParseError::new(
                            format!("in temporal payload of `{id}`: {}", e.message),
                            span,
                        )
                    })?;
                    node.formal = Some(FormalPayload::Temporal(formula));
                }
                Some(Tok::Word(w)) if w == "undeveloped" => {
                    self.next();
                    node.undeveloped = true;
                }
                _ => break,
            }
        }

        builder = builder.node(node);
        if let Some((parent_id, _)) = parent {
            builder = builder.edge(parent_id, &id, edge_kind_for(kind));
        }

        // Optional body.
        if matches!(self.peek(), Some(Tok::LBrace)) {
            self.next();
            while !matches!(self.peek(), Some(Tok::RBrace)) {
                if self.peek().is_none() {
                    return Err(ParseError::new("expected `}`", self.here()));
                }
                builder = self.node(builder, Some((&id, kind)))?;
            }
            self.next(); // consume `}`
        }
        Ok(builder)
    }
}

/// Parses an argument from the DSL.
///
/// # Errors
///
/// Returns a [`ParseError`] for syntax errors (with a span into `input`)
/// or for structural errors surfaced by the builder (duplicate ids,
/// dangling `ref`s), reported at the end of input.
pub fn parse_argument(input: &str) -> Result<Argument, ParseError> {
    let toks = lex(input)?;
    let mut p = Parser {
        toks,
        pos: 0,
        end: input.len(),
    };
    p.expect_word("argument")?;
    let name = p.expect_string("argument name")?;
    p.expect_lbrace()?;
    let mut builder = Argument::builder(name);
    while !matches!(p.peek(), Some(Tok::RBrace)) {
        if p.peek().is_none() {
            return Err(ParseError::new("expected `}`", p.here()));
        }
        builder = p.node(builder, None)?;
    }
    p.next(); // final `}`
    if let Some(extra) = p.toks.get(p.pos) {
        return Err(ParseError::new("unexpected trailing input", extra.span));
    }
    builder
        .build()
        .map_err(|e| ParseError::new(e.to_string(), Span::point(input.len())))
}

/// Renders an argument back into DSL text (single-parent tree shape only:
/// extra edges are emitted as `ref` children).
pub fn render_dsl(argument: &Argument) -> String {
    let mut out = format!("argument \"{}\" {{\n", escape(argument.name()));
    let mut emitted = vec![false; argument.len()];
    let roots: Vec<crate::argument::NodeIdx> = argument.sorted_roots_idx().collect();
    for root in roots {
        render_node(argument, root, 1, &mut out, &mut emitted);
    }
    out.push_str("}\n");
    out
}

fn keyword(kind: NodeKind) -> &'static str {
    match kind {
        NodeKind::Goal => "goal",
        NodeKind::Strategy => "strategy",
        NodeKind::Solution => "solution",
        NodeKind::Context => "context",
        NodeKind::Assumption => "assumption",
        NodeKind::Justification => "justification",
        NodeKind::Claim => "claim",
        NodeKind::ArgumentNode => "argnode",
        NodeKind::Evidence => "evidence",
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn render_node(
    argument: &Argument,
    idx: crate::argument::NodeIdx,
    indent: usize,
    out: &mut String,
    emitted: &mut [bool],
) {
    let node = argument.node_at(idx);
    let pad = "  ".repeat(indent);
    if emitted[idx.index()] {
        out.push_str(&format!("{pad}ref {}\n", node.id));
        return;
    }
    emitted[idx.index()] = true;
    out.push_str(&format!(
        "{pad}{} {} \"{}\"",
        keyword(node.kind),
        node.id,
        escape(&node.text)
    ));
    match &node.formal {
        Some(FormalPayload::Prop(f)) => out.push_str(&format!(" formal \"{f}\"")),
        Some(FormalPayload::Temporal(f)) => out.push_str(&format!(" temporal \"{f}\"")),
        None => {}
    }
    if node.undeveloped {
        out.push_str(" undeveloped");
    }
    let children: Vec<crate::argument::NodeIdx> = argument.all_children_idx(idx).collect();
    if children.is_empty() {
        out.push('\n');
        return;
    }
    out.push_str(" {\n");
    for child in children {
        render_node(argument, child, indent + 1, out, emitted);
    }
    out.push_str(&format!("{pad}}}\n"));
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
        // A small UAV argument.
        argument "uav" {
          goal g1 "UAV operations are acceptably safe" {
            context c1 "Segregated airspace ops"
            assumption a1 "Ground crew follows procedures"
            strategy s1 "Argue over identified hazards" {
              justification j1 "Hazard log reviewed by panel"
              goal g2 "Mid-air collision risk mitigated"
                formal "below_min -> avoiding" {
                solution e1 "Detect-and-avoid test campaign"
              }
              goal g3 "Loss-of-link handled" undeveloped
            }
          }
        }
    "#;

    #[test]
    fn parses_sample() {
        let a = parse_argument(SAMPLE).unwrap();
        assert_eq!(a.name(), "uav");
        assert_eq!(a.len(), 8);
        assert_eq!(a.edges().len(), 7);
        assert!(crate::gsn::check(&a).is_empty());
        let g2 = a.node(&"g2".into()).unwrap();
        assert!(g2.is_formalised());
        let g3 = a.node(&"g3".into()).unwrap();
        assert!(g3.undeveloped);
    }

    #[test]
    fn nesting_chooses_edge_kinds() {
        use crate::node::EdgeKind;
        let a = parse_argument(SAMPLE).unwrap();
        let g1 = crate::node::NodeId::new("g1");
        assert_eq!(a.children(&g1, EdgeKind::InContextOf).len(), 2);
        assert_eq!(a.children(&g1, EdgeKind::SupportedBy).len(), 1);
    }

    #[test]
    fn temporal_payload() {
        let a = parse_argument(
            r#"argument "t" {
                goal g1 "always ok" temporal "G (req -> F grant)" {
                  solution e1 "model checking log"
                }
            }"#,
        )
        .unwrap();
        let g1 = a.node(&"g1".into()).unwrap();
        assert!(matches!(g1.formal, Some(FormalPayload::Temporal(_))));
    }

    #[test]
    fn ref_creates_dag() {
        let a = parse_argument(
            r#"argument "dag" {
                goal g1 "top" {
                  goal g2 "shared" {
                    solution e1 "shared evidence"
                  }
                  strategy s1 "also uses shared" {
                    ref g2
                  }
                }
            }"#,
        )
        .unwrap();
        assert_eq!(a.parents(&"g2".into()).len(), 2);
    }

    #[test]
    fn bad_formula_error_carries_node_id() {
        let err =
            parse_argument(r#"argument "x" { goal g1 "t" formal "p ->" { solution e "s" } }"#)
                .unwrap_err();
        assert!(err.message.contains("g1"));
    }

    #[test]
    fn syntax_errors_located() {
        assert!(parse_argument("").is_err());
        assert!(parse_argument(r#"argument "x" {"#).is_err());
        assert!(parse_argument(r#"argument "x" { widget w "t" }"#)
            .unwrap_err()
            .message
            .contains("widget"));
        assert!(parse_argument(r#"argument "x" { goal "missing id" }"#).is_err());
        let err = parse_argument(r#"argument "x" { goal g1 }"#).unwrap_err();
        assert!(err.message.contains("text"));
    }

    #[test]
    fn unterminated_string_reported() {
        let err = parse_argument(r#"argument "x" { goal g1 "unterminated }"#).unwrap_err();
        assert!(err.message.contains("unterminated") || err.message.contains("expected"));
    }

    #[test]
    fn duplicate_id_surfaces_as_parse_error() {
        let err = parse_argument(
            r#"argument "x" {
                goal g1 "a" { solution e1 "s" }
                goal g1 "b" { solution e2 "s" }
            }"#,
        )
        .unwrap_err();
        assert!(err.message.contains("duplicate"));
    }

    #[test]
    fn ref_at_top_level_rejected() {
        let err = parse_argument(r#"argument "x" { ref g9 }"#).unwrap_err();
        assert!(err.message.contains("ref"));
    }

    #[test]
    fn escaped_quotes_in_strings() {
        let a =
            parse_argument(r#"argument "q" { goal g1 "the \"safe\" state" { solution e1 "s" } }"#)
                .unwrap();
        assert_eq!(a.node(&"g1".into()).unwrap().text, "the \"safe\" state");
    }

    #[test]
    fn round_trip_through_render() {
        let a = parse_argument(SAMPLE).unwrap();
        let rendered = render_dsl(&a);
        let b = parse_argument(&rendered).unwrap();
        assert_eq!(a.len(), b.len());
        assert_eq!(a.edges().len(), b.edges().len());
        for node in a.nodes() {
            let other = b.node(&node.id).expect("node survives round trip");
            assert_eq!(node.text, other.text);
            assert_eq!(node.kind, other.kind);
            assert_eq!(node.undeveloped, other.undeveloped);
        }
    }

    #[test]
    fn comments_and_hash_comments_skipped() {
        let a = parse_argument(
            "argument \"c\" {\n# hash comment\ngoal g1 \"t\" { // slash comment\n solution e1 \"s\" }\n}",
        )
        .unwrap();
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn trailing_garbage_rejected() {
        let err = parse_argument(r#"argument "x" { goal g1 "t" undeveloped } extra"#).unwrap_err();
        assert!(err.message.contains("trailing"));
    }
}
