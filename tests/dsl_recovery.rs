//! Fuzz-shaped properties for the recovering DSL frontend.
//!
//! The recovering parser must (1) never panic on any input, (2) emit a
//! deterministic, span-sorted diagnostic stream, and (3) agree with the
//! retained seed parser: node-for-node equal output on valid files, and
//! the seed's single abort-error always present in the recovered stream
//! on invalid ones. Inputs are valid generated corpora plus truncations,
//! point mutations, and keyword-soup concatenations of them.

use casekit::core::dsl::{parse_argument_recovering, parse_argument_seed, ParseOutcome};
use proptest::prelude::*;

const KINDS: [&str; 9] = [
    "goal",
    "strategy",
    "solution",
    "context",
    "assumption",
    "justification",
    "claim",
    "argnode",
    "evidence",
];

/// One generated node: (parent selector, kind, payload selector,
/// undeveloped selector).
type Spec = (usize, usize, usize, usize);

fn corpus() -> impl Strategy<Value = Vec<Spec>> {
    collection::vec((0..1000usize, 0..KINDS.len(), 0..6usize, 0..2usize), 1..15)
}

/// Renders a spec list as valid DSL source: node `i`'s parent is drawn
/// from the nodes before it, so the result is a tree rooted at node 0.
fn render(specs: &[Spec]) -> String {
    let n = specs.len();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, spec) in specs.iter().enumerate().skip(1) {
        children[spec.0 % i].push(i);
    }
    let mut out = String::from("argument \"generated\" {\n");
    render_node(specs, &children, 0, 1, &mut out);
    out.push_str("}\n");
    out
}

fn render_node(specs: &[Spec], children: &[Vec<usize>], i: usize, depth: usize, out: &mut String) {
    let (_, kind, payload, undev) = specs[i];
    let pad = "  ".repeat(depth);
    out.push_str(&pad);
    out.push_str(KINDS[kind]);
    if i.is_multiple_of(4) {
        out.push_str(&format!(" n{i} \"claim {i} \\\"quoted\\\"\""));
    } else {
        out.push_str(&format!(" n{i} \"claim {i}\""));
    }
    out.push_str(match payload {
        1 => " formal \"p -> q\"",
        2 => " formal \"~a & b\"",
        3 => " temporal \"G (a -> F b)\"",
        4 => " temporal \"p U q\"",
        _ => "",
    });
    if undev == 1 {
        out.push_str(" undeveloped");
    }
    if children[i].is_empty() {
        out.push('\n');
        return;
    }
    out.push_str(" {\n");
    for &child in &children[i] {
        render_node(specs, children, child, depth + 1, out);
    }
    out.push_str(&pad);
    out.push_str("}\n");
}

fn floor_boundary(src: &str, mut pos: usize) -> usize {
    pos = pos.min(src.len());
    while !src.is_char_boundary(pos) {
        pos -= 1;
    }
    pos
}

/// The three invariants every parse must satisfy, regardless of input.
fn check_invariants(src: &str) -> ParseOutcome {
    let out = parse_argument_recovering(src);
    // Deterministic: a second run produces the identical stream.
    let again = parse_argument_recovering(src);
    assert_eq!(out.errors, again.errors, "nondeterministic diagnostics");
    // Canonically sorted by span.
    for pair in out.errors.windows(2) {
        let a = (pair[0].error.span.start, pair[0].error.span.end);
        let b = (pair[1].error.span.start, pair[1].error.span.end);
        assert!(a <= b, "diagnostics out of span order on {src:?}");
    }
    // Every diagnostic's span lies within the source.
    for d in &out.errors {
        assert!(d.error.span.start <= d.error.span.end);
        assert!(d.error.span.end <= src.len());
    }
    // Seed agreement: valid files match node-for-node; the seed's abort
    // error always appears in the recovered stream.
    match parse_argument_seed(src) {
        Ok(seed) => {
            assert!(
                out.is_clean(),
                "clean seed parse but diagnostics: {:?}",
                out.errors
            );
            assert_eq!(out.argument.as_ref(), Some(&seed));
        }
        Err(seed_err) => {
            assert!(
                !out.errors.is_empty(),
                "seed rejected {src:?} but recovery was clean"
            );
            assert!(
                out.errors
                    .iter()
                    .any(|d| d.error.message.contains(&seed_err.message)),
                "seed error {:?} missing from recovered stream {:?} on {src:?}",
                seed_err.message,
                out.errors,
            );
        }
    }
    out
}

fn fragment() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("argument"),
        Just("goal"),
        Just("widget"),
        Just("ref"),
        Just("formal"),
        Just("temporal"),
        Just("undeveloped"),
        Just("n1"),
        Just("{"),
        Just("}"),
        Just("\"text\""),
        Just("\"p ->\""),
        Just("\"unterminated"),
        Just("$"),
        Just("# comment"),
        Just("//"),
        Just("\\"),
        Just(""),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn valid_corpora_parse_clean_and_match_seed(specs in corpus()) {
        let src = render(&specs);
        let out = check_invariants(&src);
        prop_assert!(out.is_clean());
        // Every surviving node is locatable through the source map.
        let argument = out.argument.expect("valid file yields an argument");
        for node in argument.nodes() {
            prop_assert!(out.source_map.node(&node.id).is_some());
        }
    }

    #[test]
    fn truncations_recover_deterministically(specs in corpus(), cut in 0..10_000usize) {
        let src = render(&specs);
        let cut = floor_boundary(&src, cut % (src.len() + 1));
        check_invariants(&src[..cut]);
    }

    #[test]
    fn point_mutations_recover(
        specs in corpus(),
        pos in 0..10_000usize,
        op in 0..3usize,
        ch in prop_oneof![
            Just('"'), Just('{'), Just('}'), Just('#'), Just('\\'),
            Just('$'), Just('q'), Just('9'), Just(' '),
        ],
    ) {
        let src = render(&specs);
        let at = floor_boundary(&src, pos % (src.len() + 1));
        let mutated = match op {
            // Insert, delete, or replace one character.
            0 => format!("{}{}{}", &src[..at], ch, &src[at..]),
            1 if at < src.len() => {
                let next = floor_boundary(&src, at + 1).max(at + 1);
                format!("{}{}", &src[..at], &src[next.min(src.len())..])
            }
            _ if at < src.len() => {
                let next = floor_boundary(&src, at + 1).max(at + 1);
                format!("{}{}{}", &src[..at], ch, &src[next.min(src.len())..])
            }
            _ => format!("{src}{ch}"),
        };
        check_invariants(&mutated);
    }

    #[test]
    fn keyword_soup_never_panics(frags in collection::vec(fragment(), 0..40)) {
        let src = frags.join(" ");
        check_invariants(&src);
    }
}
