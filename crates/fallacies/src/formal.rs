//! Mechanical detectors for the propositional formal fallacies.
//!
//! Each detector works on a list of premises and a conclusion. Detectors
//! for the two syllogistic fallacies live in [`crate::syllogism`] because
//! they need term structure.
//!
//! Pattern-based fallacies (denying the antecedent, affirming the
//! consequent, false conversion) are reported only when the conclusion is
//! *not* independently entailed by the premises: citing `p → q, ¬p ∴ ¬q`
//! is harmless if some other premise legitimately yields `¬q` (the step is
//! redundant, not fallacious).

use crate::taxonomy::FormalFallacy;
use casekit_logic::prop::Formula;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A formal-fallacy finding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Finding {
    /// Which fallacy.
    pub fallacy: FormalFallacy,
    /// Premise indices involved (empty when the finding is global).
    pub premises: Vec<usize>,
    /// Human-readable explanation.
    pub detail: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.fallacy, self.detail)
    }
}

/// Runs every propositional detector.
pub fn detect_all(premises: &[Formula], conclusion: &Formula) -> Vec<Finding> {
    let mut findings = Vec::new();
    findings.extend(begging_the_question(premises, conclusion));
    findings.extend(incompatible_premises(premises));
    findings.extend(premise_conclusion_contradiction(premises, conclusion));
    findings.extend(denying_the_antecedent(premises, conclusion));
    findings.extend(affirming_the_consequent(premises, conclusion));
    findings.extend(false_conversion(premises, conclusion));
    findings
}

/// The conclusion appears among the premises (syntactically, or as a
/// logical equivalent — asserting `~~C` to prove `C` still begs).
pub fn begging_the_question(premises: &[Formula], conclusion: &Formula) -> Vec<Finding> {
    premises
        .iter()
        .enumerate()
        .filter(|(_, p)| *p == conclusion || p.equivalent(conclusion))
        .map(|(i, p)| Finding {
            fallacy: FormalFallacy::BeggingTheQuestion,
            premises: vec![i],
            detail: format!("premise {} (`{p}`) restates the conclusion", i + 1),
        })
        .collect()
}

/// The premises are jointly unsatisfiable.
pub fn incompatible_premises(premises: &[Formula]) -> Vec<Finding> {
    if premises.is_empty() {
        return Vec::new();
    }
    let all = Formula::conj(premises.iter().cloned());
    if all.is_contradiction() {
        // Localise: find a minimal prefix set that is already contradictory
        // to help the reader (not necessarily minimal overall).
        let mut involved = Vec::new();
        let mut acc: Option<Formula> = None;
        for (i, p) in premises.iter().enumerate() {
            let next = match &acc {
                None => p.clone(),
                Some(a) => a.clone().and(p.clone()),
            };
            involved.push(i);
            if next.is_contradiction() {
                return vec![Finding {
                    fallacy: FormalFallacy::IncompatiblePremises,
                    premises: involved,
                    detail: "the premises cannot all be true together".into(),
                }];
            }
            acc = Some(next);
        }
        unreachable!("conjunction of all premises was contradictory");
    }
    Vec::new()
}

/// Some premise contradicts the conclusion (while the premises themselves
/// are consistent — otherwise `incompatible_premises` already fires).
pub fn premise_conclusion_contradiction(
    premises: &[Formula],
    conclusion: &Formula,
) -> Vec<Finding> {
    if premises.is_empty() {
        return Vec::new();
    }
    let all = Formula::conj(premises.iter().cloned());
    if all.is_contradiction() {
        return Vec::new();
    }
    premises
        .iter()
        .enumerate()
        .filter(|(_, p)| (*p).clone().and(conclusion.clone()).is_contradiction())
        .map(|(i, p)| Finding {
            fallacy: FormalFallacy::PremiseConclusionContradiction,
            premises: vec![i],
            detail: format!(
                "premise {} (`{p}`) cannot be true together with the conclusion",
                i + 1
            ),
        })
        .collect()
}

/// From `p → q` and `¬p`, concluding `¬q`.
pub fn denying_the_antecedent(premises: &[Formula], conclusion: &Formula) -> Vec<Finding> {
    pattern_fallacy(
        premises,
        conclusion,
        FormalFallacy::DenyingTheAntecedent,
        |antecedent, consequent, other, conclusion| {
            other.is_negation_of(antecedent) && conclusion.is_negation_of(consequent)
        },
    )
}

/// From `p → q` and `q`, concluding `p`.
pub fn affirming_the_consequent(premises: &[Formula], conclusion: &Formula) -> Vec<Finding> {
    pattern_fallacy(
        premises,
        conclusion,
        FormalFallacy::AffirmingTheConsequent,
        |antecedent, consequent, other, conclusion| other == consequent && conclusion == antecedent,
    )
}

/// Shared scaffolding: find an implication premise `a → c` and a second
/// premise `other` such that `matcher(a, c, other, conclusion)` holds, and
/// the conclusion is not independently entailed.
fn pattern_fallacy(
    premises: &[Formula],
    conclusion: &Formula,
    fallacy: FormalFallacy,
    matcher: impl Fn(&Formula, &Formula, &Formula, &Formula) -> bool,
) -> Vec<Finding> {
    let mut out = Vec::new();
    let entailed = Formula::conj(premises.iter().cloned()).entails(conclusion);
    if entailed {
        return out;
    }
    for (i, p) in premises.iter().enumerate() {
        let (a, c) = match p {
            Formula::Implies(a, c) => (a.as_ref(), c.as_ref()),
            _ => continue,
        };
        for (j, other) in premises.iter().enumerate() {
            if i == j {
                continue;
            }
            if matcher(a, c, other, conclusion) {
                out.push(Finding {
                    fallacy,
                    premises: vec![i, j],
                    detail: format!(
                        "premises {} (`{p}`) and {} (`{other}`) do not license `{conclusion}`",
                        i + 1,
                        j + 1
                    ),
                });
            }
        }
    }
    out
}

/// From `p → q`, concluding `q → p`.
pub fn false_conversion(premises: &[Formula], conclusion: &Formula) -> Vec<Finding> {
    let entailed = Formula::conj(premises.iter().cloned()).entails(conclusion);
    if entailed {
        return Vec::new();
    }
    let (ca, cc) = match conclusion {
        Formula::Implies(a, c) => (a.as_ref(), c.as_ref()),
        _ => return Vec::new(),
    };
    premises
        .iter()
        .enumerate()
        .filter(|(_, p)| match p {
            Formula::Implies(a, c) => a.as_ref() == cc && c.as_ref() == ca,
            _ => false,
        })
        .map(|(i, p)| Finding {
            fallacy: FormalFallacy::FalseConversion,
            premises: vec![i],
            detail: format!("`{conclusion}` merely converts premise {} (`{p}`)", i + 1),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use casekit_logic::prop::parse;

    fn f(s: &str) -> Formula {
        parse(s).unwrap()
    }

    #[test]
    fn begging_detected_syntactic_and_equivalent() {
        let premises = vec![f("safe"), f("tests_pass")];
        let found = begging_the_question(&premises, &f("safe"));
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].premises, vec![0]);
        // Equivalent form also begs.
        let premises = vec![f("~~safe")];
        assert_eq!(begging_the_question(&premises, &f("safe")).len(), 1);
        // Unrelated premises don't.
        assert!(begging_the_question(&[f("p")], &f("q")).is_empty());
    }

    #[test]
    fn incompatible_premises_detected_and_localised() {
        let premises = vec![f("p"), f("q"), f("~p")];
        let found = incompatible_premises(&premises);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].premises, vec![0, 1, 2]);
        assert!(incompatible_premises(&[f("p"), f("q")]).is_empty());
        assert!(incompatible_premises(&[]).is_empty());
    }

    #[test]
    fn premise_conclusion_contradiction_detected() {
        let premises = vec![f("task_runs_forever"), f("cpu_ok")];
        let found = premise_conclusion_contradiction(&premises, &f("~task_runs_forever"));
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].premises, vec![0]);
        // Not reported when premises are already jointly inconsistent.
        let premises = vec![f("p"), f("~p")];
        assert!(premise_conclusion_contradiction(&premises, &f("q")).is_empty());
    }

    #[test]
    fn denying_the_antecedent_detected() {
        let premises = vec![f("on_grnd -> threv_ok"), f("~on_grnd")];
        let found = denying_the_antecedent(&premises, &f("~threv_ok"));
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].premises, vec![0, 1]);
    }

    #[test]
    fn denying_the_antecedent_not_reported_when_entailed() {
        // Extra premise legitimately yields the conclusion: no fallacy.
        let premises = vec![f("p -> q"), f("~p"), f("~q")];
        assert!(denying_the_antecedent(&premises, &f("~q")).is_empty());
    }

    #[test]
    fn affirming_the_consequent_detected() {
        let premises = vec![f("fault -> alarm"), f("alarm")];
        let found = affirming_the_consequent(&premises, &f("fault"));
        assert_eq!(found.len(), 1);
        // Valid modus ponens is not flagged.
        let premises = vec![f("fault -> alarm"), f("fault")];
        assert!(affirming_the_consequent(&premises, &f("alarm")).is_empty());
    }

    #[test]
    fn false_conversion_detected() {
        let premises = vec![f("verified -> safe")];
        let found = false_conversion(&premises, &f("safe -> verified"));
        assert_eq!(found.len(), 1);
        // A biconditional premise legitimises the conversion.
        let premises = vec![f("verified -> safe"), f("verified <-> safe")];
        assert!(false_conversion(&premises, &f("safe -> verified")).is_empty());
    }

    #[test]
    fn detect_all_aggregates() {
        let premises = vec![f("p -> q"), f("~p"), f("r"), f("~r")];
        let findings = detect_all(&premises, &f("~q"));
        let kinds: Vec<_> = findings.iter().map(|x| x.fallacy).collect();
        assert!(kinds.contains(&FormalFallacy::IncompatiblePremises));
        // Denying-the-antecedent is masked here: inconsistent premises
        // entail everything, so the conclusion is "entailed".
        assert!(!kinds.contains(&FormalFallacy::DenyingTheAntecedent));
    }

    #[test]
    fn clean_deduction_yields_no_findings() {
        let premises = vec![f("p -> q"), f("p")];
        assert!(detect_all(&premises, &f("q")).is_empty());
        // The Haley proof premises against its conclusion.
        let premises = vec![f("I -> V"), f("C -> H"), f("Y -> V & C"), f("D -> Y")];
        assert!(detect_all(&premises, &f("D -> H")).is_empty());
    }

    #[test]
    fn finding_display() {
        let premises = vec![f("p")];
        let found = begging_the_question(&premises, &f("p"));
        assert!(found[0].to_string().contains("begging the question"));
    }
}
