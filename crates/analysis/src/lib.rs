//! # casekit-analysis — CaseLint
//!
//! A multi-pass static analyzer for assurance arguments: every check
//! the toolkit can run over a built [`Argument`] — graph shape, solver
//! questions, fallacy detection — behind one entry point, emitting one
//! uniform [`Diagnostic`] stream with stable codes.
//!
//! # Architecture
//!
//! Linting runs in two planes over a compiled case:
//!
//! * **Structural passes** ([`diagnostic::PassKind::Structural`],
//!   `CK0xx`) work on the arena/CSR index plane of [`Argument`] —
//!   unreachable nodes, support cycles, undeveloped claims, duplicate
//!   evidence, context shadowing. Pure graph sweeps, O(V+E), no
//!   solver.
//! * **Logical passes** ([`diagnostic::PassKind::Logical`] and
//!   [`diagnostic::PassKind::Fallacy`], `CK1xx`) run against one
//!   [`ArgumentTheory`] session: the argument's propositional payloads
//!   are Tseitin-compiled **once**, then premise consistency, vacuous
//!   or unsatisfiable conclusions, entailment, redundant-premise
//!   drop-probes, circular steps, and the formal fallacy detectors are
//!   all `assume`/`check`/`retract` rounds on the same clause database
//!   (with CDCL learned clauses shared between questions). The
//!   informal quantifier cue rides along as `CK120`.
//!
//! * **Syntax passes** ([`diagnostic::PassKind::Syntax`], `CK2xx`)
//!   come from the error-recovering DSL frontend: [`check_source`]
//!   turns every recovered parse error into a span-carrying diagnostic
//!   and anchors the graph/solver findings to their node's declaration
//!   span through the parser's source map.
//!
//! Each lint has a stable code, a default [`Level`], and a per-run
//! override in [`LintConfig`] (allow/warn/deny). Output order is
//! canonical — sorted by code, then primary node — so diagnostics are
//! byte-comparable across runs, worker counts, and engines.
//!
//! # Corpus scale
//!
//! [`lint_source`] parses a `.case` text once and lints the built
//! argument; [`lint_sources`] farms a whole corpus of source texts
//! across `casekit-runtime` worker threads. [`lint_sweep`] does the
//! same for already-built arguments, and [`lint_sweep_cached`] reuses
//! compilations from a [`TheoryCache`]. All are worker-count
//! invariant: the per-argument lint is a pure function, and
//! [`Runtime::map`] is order-preserving. The one-tool-per-lint cost
//! model — fifteen standalone checkers, each re-parsing the source and
//! recompiling its own solver session — lives in [`baseline`] and is
//! measured against the engine in `BENCH_lint.json` (`repro lint`).
//!
//! ```
//! use casekit_analysis::{lint_argument, LintCode, LintConfig};
//! use casekit_core::dsl::parse_argument;
//!
//! let argument = parse_argument(r#"
//!     argument "gap" {
//!       goal g1 "deadlines met" formal "meets_deadlines" {
//!         goal g2 "quality" formal "code_reviewed" { solution e1 "review minutes" }
//!       }
//!     }"#).unwrap();
//! let diagnostics = lint_argument(&argument, &LintConfig::new());
//! assert!(diagnostics.iter().any(|d| d.code == LintCode::ConclusionNotEntailed));
//! ```

#![forbid(unsafe_code)]

pub mod baseline;
mod diagnostic;
mod logical;
mod source;
mod structural;
mod witness;

pub use diagnostic::{Diagnostic, Level, LintCode, LintConfig, LintDescriptor, PassKind, Severity};
pub use source::{check_source, check_sources, check_syntax, excerpt, SourceAnalysis};
pub use witness::WitnessPool;

use casekit_core::dsl::parse_argument;
use casekit_core::semantics::{ArgumentTheory, TheoryCache};
use casekit_core::Argument;
use casekit_logic::ParseError;
use casekit_runtime::Runtime;

/// Lints one argument: compiles its propositional payloads once, then
/// runs every structural, logical, and fallacy pass. Diagnostics come
/// back in canonical order (code, then primary node id, then message).
pub fn lint_argument(argument: &Argument, config: &LintConfig) -> Vec<Diagnostic> {
    let mut theory = ArgumentTheory::compile(argument);
    lint_compiled(argument, &mut theory, config)
}

/// Lints case text end to end: one parse, one compilation, every pass —
/// the whole front of the `caselint` pipeline as a library call.
///
/// # Errors
///
/// Returns the [`ParseError`] if `src` is not a well-formed case.
pub fn lint_source(src: &str, config: &LintConfig) -> Result<Vec<Diagnostic>, ParseError> {
    let argument = parse_argument(src)?;
    Ok(lint_argument(&argument, config))
}

/// [`lint_source`] over a corpus, sharded across the runtime's workers
/// (each source parsed and compiled exactly once). Output is
/// index-aligned with `sources`; the first parse error, if any, wins.
///
/// # Errors
///
/// Returns the [`ParseError`] of the lowest-index malformed source.
pub fn lint_sources(
    sources: &[String],
    config: &LintConfig,
    runtime: &Runtime,
) -> Result<Vec<Vec<Diagnostic>>, ParseError> {
    runtime
        .map(sources, |_, src| lint_source(src, config))
        .into_iter()
        .collect()
}

/// [`lint_argument`] against an already-compiled session (fresh from
/// [`ArgumentTheory::compile`] or cloned out of a [`TheoryCache`]).
/// Passes retract every assumption they push, so one session serves
/// any number of lint runs.
pub fn lint_compiled(
    argument: &Argument,
    theory: &mut ArgumentTheory,
    config: &LintConfig,
) -> Vec<Diagnostic> {
    let mut sink = diagnostic::Sink::new(config);
    structural::run(argument, &mut sink);
    logical::run_all(argument, theory, &mut sink);
    sink.finish()
}

/// [`lint_compiled`] against a caller-owned [`WitnessPool`]. Long-lived
/// sessions — the incremental `CaseService` — keep one pool per case so
/// models found answering one revision's questions keep answering the
/// next revision's (sound whenever the session's clause database only
/// grows between calls). The pool is answer-invariant: warm or cold,
/// diagnostics are byte-identical to [`lint_compiled`].
pub fn lint_compiled_with_pool(
    argument: &Argument,
    theory: &mut ArgumentTheory,
    pool: &mut WitnessPool,
    config: &LintConfig,
) -> Vec<Diagnostic> {
    let mut sink = diagnostic::Sink::new(config);
    structural::run(argument, &mut sink);
    logical::run_all_with(argument, theory, pool, &mut sink);
    sink.finish()
}

/// Lints a corpus, one compilation per argument, sharded across the
/// runtime's workers. Output is index-aligned with `arguments` and
/// byte-identical at any worker count (the per-item lint is pure and
/// [`Runtime::map`] preserves order).
pub fn lint_sweep(
    arguments: &[Argument],
    config: &LintConfig,
    runtime: &Runtime,
) -> Vec<Vec<Diagnostic>> {
    runtime.map(arguments, |_, argument| lint_argument(argument, config))
}

/// [`lint_sweep`] against compilations already paid for: each worker
/// clones a private session from the cache instead of recompiling.
///
/// # Panics
///
/// Panics if `cache` was not built over exactly this `arguments` slice
/// (same length, same order).
pub fn lint_sweep_cached(
    arguments: &[Argument],
    cache: &TheoryCache,
    config: &LintConfig,
    runtime: &Runtime,
) -> Vec<Vec<Diagnostic>> {
    assert_eq!(
        arguments.len(),
        cache.len(),
        "theory cache must cover the argument corpus"
    );
    runtime.map(arguments, |i, argument| {
        let mut session = cache.session(i);
        lint_compiled(argument, &mut session, config)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use casekit_core::dsl::parse_argument;
    use casekit_core::{Node, NodeKind};

    fn case(src: &str) -> Argument {
        parse_argument(src).unwrap()
    }

    /// A clean, fully-formal modus-ponens case: no diagnostics at any
    /// level.
    fn clean_case() -> Argument {
        case(
            r#"argument "mp" {
                goal g1 "q holds" formal "q" {
                  goal g2 "the rule" formal "p -> q" { solution e1 "rule review" }
                  goal g3 "the fact" formal "p" { solution e2 "measurement" }
                }
            }"#,
        )
    }

    #[test]
    fn clean_case_is_clean_at_deny_level() {
        let diagnostics = lint_argument(&clean_case(), &LintConfig::deny_all());
        assert!(diagnostics.is_empty(), "got: {diagnostics:?}");
    }

    #[test]
    fn unreachable_node_flagged() {
        // A detached two-node support cycle is unreachable from the root.
        let a = Argument::builder("orphan")
            .add("g1", NodeKind::Goal, "root claim")
            .add("e1", NodeKind::Solution, "evidence")
            .add("x1", NodeKind::Goal, "orbit a")
            .add("x2", NodeKind::Goal, "orbit b")
            .supported_by("g1", "e1")
            .supported_by("x1", "x2")
            .supported_by("x2", "x1")
            .build()
            .unwrap();
        let diagnostics = lint_argument(&a, &LintConfig::new());
        let unreachable: Vec<_> = diagnostics
            .iter()
            .filter(|d| d.code == LintCode::UnreachableNode)
            .collect();
        assert_eq!(unreachable.len(), 2);
        assert!(diagnostics.iter().any(|d| d.code == LintCode::SupportCycle));
    }

    #[test]
    fn support_cycle_reported_once_with_members() {
        let a = Argument::builder("cycle")
            .add("g1", NodeKind::Goal, "claim a")
            .add("g2", NodeKind::Goal, "claim b")
            .add("g3", NodeKind::Goal, "claim c")
            .supported_by("g1", "g2")
            .supported_by("g2", "g3")
            .supported_by("g3", "g1")
            .build()
            .unwrap();
        let diagnostics = lint_argument(&a, &LintConfig::new());
        let cycles: Vec<_> = diagnostics
            .iter()
            .filter(|d| d.code == LintCode::SupportCycle)
            .collect();
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].primary.as_ref().unwrap().as_str(), "g1");
        assert_eq!(cycles[0].related.len(), 2);
    }

    #[test]
    fn undeveloped_markers_checked_both_ways() {
        let a = Argument::builder("dev")
            .add("g1", NodeKind::Goal, "developed claim")
            .node(Node::new("g2", NodeKind::Goal, "honest gap").undeveloped())
            .add("g3", NodeKind::Goal, "implicit gap")
            .node(Node::new("g4", NodeKind::Goal, "contradictory mark").undeveloped())
            .add("e1", NodeKind::Solution, "evidence a")
            .add("e2", NodeKind::Solution, "evidence b")
            .supported_by("g1", "g2")
            .supported_by("g1", "g3")
            .supported_by("g1", "g4")
            .supported_by("g1", "e1")
            .supported_by("g4", "e2")
            .build()
            .unwrap();
        let diagnostics = lint_argument(&a, &LintConfig::new());
        assert!(diagnostics
            .iter()
            .any(|d| d.code == LintCode::UndevelopedGoal
                && d.primary.as_ref().unwrap().as_str() == "g3"));
        assert!(diagnostics
            .iter()
            .any(|d| d.code == LintCode::UndevelopedWithSupport
                && d.primary.as_ref().unwrap().as_str() == "g4"));
        // g2's gap is declared: no diagnostic for it.
        assert!(!diagnostics
            .iter()
            .any(|d| d.primary.as_ref().is_some_and(|id| id.as_str() == "g2")));
    }

    #[test]
    fn duplicate_evidence_grouped() {
        let a = case(
            r#"argument "dup" {
                goal g1 "claim" {
                  goal g2 "sub a" { solution e1 "Stress test log" }
                  goal g3 "sub b" { solution e2 "stress  test log" }
                }
            }"#,
        );
        let diagnostics = lint_argument(&a, &LintConfig::new());
        let dup: Vec<_> = diagnostics
            .iter()
            .filter(|d| d.code == LintCode::DuplicateEvidence)
            .collect();
        assert_eq!(dup.len(), 1);
        assert_eq!(dup[0].primary.as_ref().unwrap().as_str(), "e1");
        assert_eq!(dup[0].related.len(), 1);
    }

    #[test]
    fn context_shadowing_across_levels_and_on_same_node() {
        let a = case(
            r#"argument "ctx" {
                goal g1 "top" {
                  context c1 "Operating envelope"
                  goal g2 "mid" {
                    context c2 "operating envelope"
                    solution e1 "evidence"
                  }
                }
            }"#,
        );
        let diagnostics = lint_argument(&a, &LintConfig::new());
        let shadow: Vec<_> = diagnostics
            .iter()
            .filter(|d| d.code == LintCode::ContextShadowing)
            .collect();
        assert_eq!(shadow.len(), 1);
        assert_eq!(shadow[0].primary.as_ref().unwrap().as_str(), "c2");
    }

    #[test]
    fn inconsistent_premises_and_fallacy_stream_coexist() {
        let a = case(
            r#"argument "clash" {
                goal g1 "conclusion" formal "c" {
                  goal g2 "claims p" formal "p" { solution e1 "a" }
                  goal g3 "claims not p" formal "~p" { solution e2 "b" }
                }
            }"#,
        );
        let diagnostics = lint_argument(&a, &LintConfig::new());
        assert!(diagnostics
            .iter()
            .any(|d| d.code == LintCode::InconsistentPremises));
        assert!(diagnostics
            .iter()
            .any(|d| d.code == LintCode::IncompatiblePremises));
        // Inconsistent premises entail everything; the redundancy lint
        // must stay silent rather than flag every premise.
        assert!(!diagnostics
            .iter()
            .any(|d| d.code == LintCode::RedundantPremise));
    }

    #[test]
    fn redundant_premise_found_by_drop_probe() {
        let a = case(
            r#"argument "probe" {
                goal g1 "q" formal "q" {
                  goal g2 "p" formal "p" { solution e1 "a" }
                  goal g3 "rule" formal "p -> q" { solution e2 "b" }
                  goal g4 "red herring" formal "r" { solution e3 "c" }
                }
            }"#,
        );
        let diagnostics = lint_argument(&a, &LintConfig::new());
        let redundant: Vec<_> = diagnostics
            .iter()
            .filter(|d| d.code == LintCode::RedundantPremise)
            .collect();
        assert_eq!(redundant.len(), 1);
        assert_eq!(redundant[0].primary.as_ref().unwrap().as_str(), "g4");
    }

    #[test]
    fn tautological_and_unsatisfiable_conclusions() {
        let taut = case(
            r#"argument "taut" {
                goal g1 "vacuous" formal "p | ~p" {
                  goal g2 "support" formal "p" { solution e1 "x" }
                }
            }"#,
        );
        let diagnostics = lint_argument(&taut, &LintConfig::new());
        assert!(diagnostics
            .iter()
            .any(|d| d.code == LintCode::TautologicalConclusion));

        let unsat = case(
            r#"argument "unsat" {
                goal g1 "impossible" formal "p & ~p" {
                  goal g2 "support" formal "p" { solution e1 "x" }
                }
            }"#,
        );
        let diagnostics = lint_argument(&unsat, &LintConfig::new());
        assert!(diagnostics
            .iter()
            .any(|d| d.code == LintCode::UnsatisfiableConclusion));
    }

    #[test]
    fn circular_step_flagged() {
        let a = case(
            r#"argument "circle" {
                goal g1 "safe" formal "safe" {
                  goal g2 "safe, restated" formal "~~safe" { solution e1 "assertion" }
                }
            }"#,
        );
        let diagnostics = lint_argument(&a, &LintConfig::new());
        assert!(diagnostics
            .iter()
            .any(|d| d.code == LintCode::CircularStep
                && d.primary.as_ref().unwrap().as_str() == "g2"));
        // Begging-the-question fires on the same structure, in the same
        // stream, under its own code.
        assert!(diagnostics
            .iter()
            .any(|d| d.code == LintCode::BeggingTheQuestion));
    }

    #[test]
    fn quantifier_cue_rides_along() {
        let a = case(
            r#"argument "hasty" {
                goal g1 "All inputs are validated" {
                  solution e1 "Spot checks on some inputs"
                }
            }"#,
        );
        let diagnostics = lint_argument(&a, &LintConfig::new());
        assert!(diagnostics
            .iter()
            .any(|d| d.code == LintCode::QuantifierMismatch));
    }

    #[test]
    fn output_is_canonically_ordered_and_engines_agree() {
        let cases = [
            clean_case(),
            case(
                r#"argument "gap" {
                    goal g1 "meets deadlines" formal "meets_deadlines" {
                      goal g2 "quality" formal "code_reviewed" { solution e1 "minutes" }
                    }
                }"#,
            ),
        ];
        let config = LintConfig::new();
        for a in &cases {
            let compiled = lint_argument(a, &config);
            let recompiled = baseline::lint_argument_recompiling(a, &config);
            assert_eq!(compiled, recompiled);
            let mut sorted = compiled.clone();
            sorted.sort_by(|x, y| {
                (x.code, x.primary.clone(), x.message.clone()).cmp(&(
                    y.code,
                    y.primary.clone(),
                    y.message.clone(),
                ))
            });
            assert_eq!(compiled, sorted, "canonical order");
        }
    }

    #[test]
    fn sweep_matches_per_argument_lint_and_cached_sweep() {
        let arguments: Vec<Argument> = vec![
            clean_case(),
            case(
                r#"argument "clash" {
                    goal g1 "conclusion" formal "c" {
                      goal g2 "claims p" formal "p" { solution e1 "a" }
                      goal g3 "claims not p" formal "~p" { solution e2 "b" }
                    }
                }"#,
            ),
        ];
        let config = LintConfig::new();
        let serial: Vec<Vec<Diagnostic>> = arguments
            .iter()
            .map(|a| lint_argument(a, &config))
            .collect();
        for workers in [1, 2, 4] {
            let runtime = Runtime::with_workers(workers);
            assert_eq!(lint_sweep(&arguments, &config, &runtime), serial);
            let cache = TheoryCache::compile(&arguments);
            assert_eq!(
                lint_sweep_cached(&arguments, &cache, &config, &runtime),
                serial
            );
        }
    }
}
