//! Argument nodes and edge kinds.

use casekit_logic::ltl::Ltl;
use casekit_logic::prop::Formula;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Identifier of an argument node, e.g. `g1` or `s3`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(Arc<str>);

impl NodeId {
    /// Creates an id. Ids are free-form strings; the DSL restricts them
    /// to `[A-Za-z_][A-Za-z0-9_]*`.
    ///
    /// Construction never panics: an empty id is representable but is
    /// rejected with [`crate::ArgumentError::InvalidId`] when an argument
    /// is built (and by the DSL parser's own diagnostics), so no
    /// degenerate id can enter a built [`crate::Argument`].
    pub fn new(name: impl AsRef<str>) -> Self {
        NodeId(Arc::from(name.as_ref()))
    }

    /// The id text.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for NodeId {
    fn from(s: &str) -> Self {
        NodeId::new(s)
    }
}

/// The kind of an argument node.
///
/// The GSN kinds follow the GSN Community Standard; `Claim`,
/// `ArgumentNode`, and `Evidence` are the CAE vocabulary (kept distinct so
/// that notation-specific rules can tell them apart).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// GSN goal: a claim, stated as a proposition.
    Goal,
    /// GSN strategy: describes how sub-goals combine to support a goal.
    Strategy,
    /// GSN solution: a reference to an item of evidence.
    Solution,
    /// GSN context: scopes the interpretation of a goal or strategy.
    Context,
    /// GSN assumption: an unsubstantiated statement taken as true.
    Assumption,
    /// GSN justification: why a goal or strategy is acceptable.
    Justification,
    /// CAE claim.
    Claim,
    /// CAE argument: the rule connecting evidence/sub-claims to a claim.
    ArgumentNode,
    /// CAE evidence.
    Evidence,
}

impl NodeKind {
    /// Short prefix conventionally used in ids (`G`, `S`, `Sn`, …).
    pub fn prefix(self) -> &'static str {
        match self {
            NodeKind::Goal => "G",
            NodeKind::Strategy => "S",
            NodeKind::Solution => "Sn",
            NodeKind::Context => "C",
            NodeKind::Assumption => "A",
            NodeKind::Justification => "J",
            NodeKind::Claim => "Cl",
            NodeKind::ArgumentNode => "Ag",
            NodeKind::Evidence => "Ev",
        }
    }

    /// Whether the kind belongs to the GSN vocabulary.
    pub fn is_gsn(self) -> bool {
        matches!(
            self,
            NodeKind::Goal
                | NodeKind::Strategy
                | NodeKind::Solution
                | NodeKind::Context
                | NodeKind::Assumption
                | NodeKind::Justification
        )
    }

    /// Whether the kind belongs to the CAE vocabulary.
    pub fn is_cae(self) -> bool {
        matches!(
            self,
            NodeKind::Claim | NodeKind::ArgumentNode | NodeKind::Evidence
        )
    }

    /// Whether nodes of this kind assert a proposition (and so may carry a
    /// formal payload).
    pub fn is_propositional(self) -> bool {
        matches!(
            self,
            NodeKind::Goal | NodeKind::Assumption | NodeKind::Claim
        )
    }
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            NodeKind::Goal => "goal",
            NodeKind::Strategy => "strategy",
            NodeKind::Solution => "solution",
            NodeKind::Context => "context",
            NodeKind::Assumption => "assumption",
            NodeKind::Justification => "justification",
            NodeKind::Claim => "claim",
            NodeKind::ArgumentNode => "argument",
            NodeKind::Evidence => "evidence",
        };
        f.write_str(name)
    }
}

/// The kind of an edge between nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum EdgeKind {
    /// GSN `SupportedBy` / CAE support: inferential support.
    SupportedBy,
    /// GSN `InContextOf`: contextual relationship.
    InContextOf,
}

impl fmt::Display for EdgeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdgeKind::SupportedBy => f.write_str("supported-by"),
            EdgeKind::InContextOf => f.write_str("in-context-of"),
        }
    }
}

/// An optional formal reading of a node's natural-language text — the
/// "symbolic" dimension of formality (Graydon §II-B2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FormalPayload {
    /// A propositional formula, e.g. `~on_grnd -> ~threv_en`.
    Prop(Formula),
    /// An LTL formula, e.g. `G (below_min -> (nonzero U above_min))`
    /// (Brunel & Cazin).
    Temporal(Ltl),
}

impl FormalPayload {
    /// A human-readable rendering of the payload.
    pub fn render(&self) -> String {
        match self {
            FormalPayload::Prop(f) => f.to_string(),
            FormalPayload::Temporal(f) => f.to_string(),
        }
    }
}

impl fmt::Display for FormalPayload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// An argument node: id, kind, natural-language text, and an optional
/// formal payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// The node's identifier, unique within an argument.
    pub id: NodeId,
    /// The node's kind.
    pub kind: NodeKind,
    /// The natural-language statement.
    pub text: String,
    /// Optional symbolic reading of `text`.
    pub formal: Option<FormalPayload>,
    /// Marked undeveloped (GSN diamond): support intentionally absent.
    pub undeveloped: bool,
}

impl Node {
    /// Creates a node with no formal payload.
    pub fn new(id: impl Into<NodeId>, kind: NodeKind, text: impl Into<String>) -> Self {
        Node {
            id: id.into(),
            kind,
            text: text.into(),
            formal: None,
            undeveloped: false,
        }
    }

    /// Attaches a formal payload, builder-style.
    pub fn with_formal(mut self, payload: FormalPayload) -> Self {
        self.formal = Some(payload);
        self
    }

    /// Marks the node undeveloped, builder-style.
    pub fn undeveloped(mut self) -> Self {
        self.undeveloped = true;
        self
    }

    /// Whether the node carries a formal payload.
    pub fn is_formalised(&self) -> bool {
        self.formal.is_some()
    }
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {} \"{}\"", self.id, self.kind, self.text)?;
        if let Some(p) = &self.formal {
            write!(f, " ⟦{p}⟧")?;
        }
        if self.undeveloped {
            write!(f, " ◇")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use casekit_logic::prop::parse;

    #[test]
    fn node_id_display_and_eq() {
        let a = NodeId::new("g1");
        let b: NodeId = "g1".into();
        assert_eq!(a, b);
        assert_eq!(a.to_string(), "g1");
        assert_eq!(a.as_str(), "g1");
    }

    #[test]
    fn empty_node_id_is_representable_but_rejected_at_build() {
        // No panic: the invalid id is routed through `ArgumentError` by
        // `ArgumentBuilder` (see argument.rs) rather than asserted here.
        let id = NodeId::new("");
        assert_eq!(id.as_str(), "");
    }

    #[test]
    fn kind_vocabularies() {
        assert!(NodeKind::Goal.is_gsn());
        assert!(!NodeKind::Goal.is_cae());
        assert!(NodeKind::Claim.is_cae());
        assert!(!NodeKind::Claim.is_gsn());
        assert!(NodeKind::Goal.is_propositional());
        assert!(NodeKind::Assumption.is_propositional());
        assert!(!NodeKind::Strategy.is_propositional());
        assert!(!NodeKind::Solution.is_propositional());
    }

    #[test]
    fn kind_prefixes_are_distinct() {
        use std::collections::BTreeSet;
        let kinds = [
            NodeKind::Goal,
            NodeKind::Strategy,
            NodeKind::Solution,
            NodeKind::Context,
            NodeKind::Assumption,
            NodeKind::Justification,
            NodeKind::Claim,
            NodeKind::ArgumentNode,
            NodeKind::Evidence,
        ];
        let prefixes: BTreeSet<_> = kinds.iter().map(|k| k.prefix()).collect();
        assert_eq!(prefixes.len(), kinds.len());
    }

    #[test]
    fn node_display_shows_payload_and_undeveloped() {
        let n = Node::new("g2", NodeKind::Goal, "Reversers inhibited in flight")
            .with_formal(FormalPayload::Prop(parse("~on_grnd -> ~threv_en").unwrap()));
        let s = n.to_string();
        assert!(s.contains("g2"));
        assert!(s.contains("goal"));
        assert!(s.contains("~on_grnd -> ~threv_en"));
        assert!(n.is_formalised());

        let u = Node::new("g3", NodeKind::Goal, "TBD").undeveloped();
        assert!(u.to_string().contains('◇'));
        assert!(u.undeveloped);
    }

    #[test]
    fn edge_kind_display() {
        assert_eq!(EdgeKind::SupportedBy.to_string(), "supported-by");
        assert_eq!(EdgeKind::InContextOf.to_string(), "in-context-of");
    }
}
