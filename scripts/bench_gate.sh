#!/usr/bin/env bash
# Bench-regression gate: run the nine `repro` benchmark artifacts in
# fast deterministic --smoke mode (small populations, fixed seeds) and
# fail if any speedup drops below its floor or any agreement flag is
# false. CI runs this on every push; `just ci` runs it locally.
#
# The smoke artifacts are written as BENCH_*.smoke.json (gitignored) so
# the committed full-scale BENCH_*.json records are never disturbed.
#
# Floors are deliberately far below the measured values (graph ~1700x,
# logic sweep ~130x, hard CDCL-vs-DPLL ~3.5x at smoke scale,
# experiments ~25x, af SAT-vs-enumeration ~50x, af grounded CSR
# ~1000x, fol interned-vs-seed ~70x, ltl CSR-vs-trace ~17x, lint
# compile-once ~12x, service incremental ~7x) so the gate trips on
# regressions, not on machine noise. Exceptions: LINT_FLOOR and
# SERVICE_FLOOR are the issues' hard >=10x / >=5x acceptance criteria,
# enforced at their stated values; DSL_FLOOR is host-aware (see below)
# because the recovering frontend does strictly more work per defective
# file than the abort-at-first-error baseline it is measured against.
# Override via environment for experiments:
#   GRAPH_FLOOR, LOGIC_SWEEP_FLOOR, HARD_CDCL_FLOOR, EXPERIMENTS_FLOOR,
#   AF_FLOOR, AF_GROUNDED_FLOOR, AF_SCC_N_FLOOR, FOL_FLOOR, LTL_FLOOR,
#   LINT_FLOOR, SERVICE_FLOOR, THREAD_FLOOR, DSL_FLOOR, DSL_MBPS_FLOOR
set -euo pipefail
cd "$(dirname "$0")/.."

GRAPH_FLOOR="${GRAPH_FLOOR:-50}"
LOGIC_SWEEP_FLOOR="${LOGIC_SWEEP_FLOOR:-10}"
HARD_CDCL_FLOOR="${HARD_CDCL_FLOOR:-2}"
EXPERIMENTS_FLOOR="${EXPERIMENTS_FLOOR:-3}"
AF_FLOOR="${AF_FLOOR:-10}"
AF_GROUNDED_FLOOR="${AF_GROUNDED_FLOOR:-50}"
# Smallest framework the decomposed AF engine must complete
# grounded/preferred/stable on in smoke mode.
AF_SCC_N_FLOOR="${AF_SCC_N_FLOOR:-20000}"
FOL_FLOOR="${FOL_FLOOR:-10}"
LTL_FLOOR="${LTL_FLOOR:-10}"
LINT_FLOOR="${LINT_FLOOR:-10}"
SERVICE_FLOOR="${SERVICE_FLOOR:-5}"

echo "==> building repro (release)"
cargo build --release -q -p casekit-bench --bin repro

echo "==> repro graph --smoke"
./target/release/repro graph --smoke > /dev/null
echo "==> repro logic --smoke"
./target/release/repro logic --smoke > /dev/null
echo "==> repro af --smoke"
./target/release/repro af --smoke > /dev/null
echo "==> repro fol --smoke"
./target/release/repro fol --smoke > /dev/null
echo "==> repro ltl --smoke"
./target/release/repro ltl --smoke > /dev/null
echo "==> repro experiments --smoke"
./target/release/repro experiments --smoke > /dev/null
echo "==> repro lint --smoke"
./target/release/repro lint --smoke > /dev/null
echo "==> repro service --smoke"
./target/release/repro service --smoke > /dev/null
echo "==> repro dsl --smoke"
./target/release/repro dsl --smoke > /dev/null

FAILURES=0

# json_number <file> <key> — the unique numeric value for "key" in a
# pretty-printed JSON artifact. Top-level fields (two-space indent) are
# preferred, so a key that also appears inside a nested block — the
# per-point `speedup` entries in the FOL/LTL artifacts — can never
# smuggle in the wrong value; a key with no top-level occurrence (the
# logic artifact's `dpll_over_cdcl`, inside its "hard" block) is
# accepted at any depth but must be unique in the file. Ambiguous keys
# yield no output, which require_floor reports as a failure.
json_number() {
  local top nested
  top="$(sed -n 's/^  "'"$2"'": \([0-9][0-9.eE+-]*\),\{0,1\}$/\1/p' "$1")"
  if [ -n "$top" ] && [ "$(printf '%s\n' "$top" | grep -c .)" -eq 1 ]; then
    printf '%s\n' "$top"
    return
  fi
  nested="$(sed -n 's/^ *"'"$2"'": \([0-9][0-9.eE+-]*\),\{0,1\}$/\1/p' "$1")"
  if [ -n "$nested" ] && [ "$(printf '%s\n' "$nested" | grep -c .)" -eq 1 ]; then
    printf '%s\n' "$nested"
  fi
}

# require_floor <file> <key> <floor> — numeric gate.
require_floor() {
  local file="$1" key="$2" floor="$3" value
  value="$(json_number "$file" "$key")"
  if [ -z "$value" ]; then
    echo "  FAIL  $file has no unique numeric \"$key\""
    FAILURES=$((FAILURES + 1))
    return
  fi
  if awk -v v="$value" -v f="$floor" 'BEGIN { exit !(v >= f) }'; then
    echo "  ok    $file $key = $value (floor $floor)"
  else
    echo "  FAIL  $file $key = $value is below floor $floor"
    FAILURES=$((FAILURES + 1))
  fi
}

# require_true <file> <key> [count] — boolean gate; the artifact must
# contain `"key": true` exactly `count` times (default 1) and never
# `"key": false`.
require_true() {
  local file="$1" key="$2" count="${3:-1}" trues
  trues="$(grep -c "\"$key\": true" "$file" || true)"
  if grep -q "\"$key\": false" "$file"; then
    echo "  FAIL  $file reports \"$key\": false"
    FAILURES=$((FAILURES + 1))
  elif [ "$trues" -ne "$count" ]; then
    echo "  FAIL  $file has $trues \"$key\": true entries, expected $count"
    FAILURES=$((FAILURES + 1))
  else
    echo "  ok    $file $key = true (x$count)"
  fi
}

echo "== bench gates =="
require_floor BENCH_graph.smoke.json speedup "$GRAPH_FLOOR"
require_true  BENCH_graph.smoke.json sweeps_agree

require_floor BENCH_logic.smoke.json speedup "$LOGIC_SWEEP_FLOOR"
require_floor BENCH_logic.smoke.json dpll_over_cdcl "$HARD_CDCL_FLOOR"
require_true  BENCH_logic.smoke.json verdicts_agree 2

require_floor BENCH_af.smoke.json sat_over_naive "$AF_FLOOR"
require_floor BENCH_af.smoke.json grounded_over_naive "$AF_GROUNDED_FLOOR"
require_true  BENCH_af.smoke.json extensions_agree
require_true  BENCH_af.smoke.json grounded_agree
# The SCC-decomposed engine: agreement with the monolithic encoding on
# every smoke instance and every cross-checked scenario (one size, two
# generators), plus a large-n completion floor only the decomposition
# can reach in smoke time.
require_true  BENCH_af.smoke.json scc_agree
require_true  BENCH_af.smoke.json agrees_with_monolithic 2
require_floor BENCH_af.smoke.json scc_largest_n "$AF_SCC_N_FLOOR"

# The FOL and LTL reports carry their report-level speedup at top
# level (json_number ignores the nested per-point `speedup` entries)
# and one `answers_agree` flag each; per-point flags are named `agree`
# so they never collide with the gate's count.
require_floor BENCH_fol.smoke.json speedup "$FOL_FLOOR"
require_true  BENCH_fol.smoke.json answers_agree
require_true  BENCH_fol.smoke.json chain_proved

require_floor BENCH_ltl.smoke.json speedup "$LTL_FLOOR"
require_true  BENCH_ltl.smoke.json answers_agree

require_floor BENCH_experiments.smoke.json speedup "$EXPERIMENTS_FLOOR"
require_true  BENCH_experiments.smoke.json reports_agree

# The lint engine must beat the one-tool-per-lint cost model by the
# issue's 10x acceptance floor, with byte-identical diagnostics across
# the naive loop, the serial engine, and every probed worker count.
require_floor BENCH_lint.smoke.json speedup "$LINT_FLOOR"
require_true  BENCH_lint.smoke.json diagnostics_agree

# The incremental case service must beat recompile-from-scratch under
# mixed edit/query traffic by the issue's 5x acceptance floor, with
# every incremental answer verdict-identical to a fresh batch
# compilation (checked against the stateless baseline and across
# worker counts 1, 2, and the full fleet).
require_floor BENCH_service.smoke.json speedup "$SERVICE_FLOOR"
require_true  BENCH_service.smoke.json answers_agree
# thread_speedup (serial-plan vs parallel-plan, identical work) is only
# a real speedup when the host has idle cores to farm to: on a
# multi-core host the parallel plan must win outright; on a single-core
# host the two plans are identical by design and the gate only rejects
# a real regression (scheduling overhead creeping back in).
HOST_PAR="$(json_number BENCH_experiments.smoke.json host_parallelism)"
if [ "${HOST_PAR:-1}" -gt 1 ]; then
  THREAD_FLOOR="${THREAD_FLOOR:-1.0}"
else
  THREAD_FLOOR="${THREAD_FLOOR:-0.95}"
fi
require_floor BENCH_experiments.smoke.json thread_speedup "$THREAD_FLOOR"

# The recovering DSL frontend must round-trip against the seed parser
# (clean files argument-identical, abort messages contained in the
# recovered streams) with byte-identical diagnostics at every worker
# count, and must not let recovery cost collapse ingestion throughput.
# The engine does strictly more work per defective file than the
# abort-at-first-error baseline, so its end-to-end speedup is only
# expected to exceed 1 when idle cores absorb the recovery cost; on a
# single-core host the floor just rejects a pathological slowdown.
if [ "${HOST_PAR:-1}" -gt 1 ]; then
  DSL_FLOOR="${DSL_FLOOR:-1.0}"
else
  DSL_FLOOR="${DSL_FLOOR:-0.3}"
fi
DSL_MBPS_FLOOR="${DSL_MBPS_FLOOR:-2}"
require_floor BENCH_dsl.smoke.json speedup "$DSL_FLOOR"
require_floor BENCH_dsl.smoke.json engine_mb_per_s "$DSL_MBPS_FLOOR"
require_true  BENCH_dsl.smoke.json diagnostics_roundtrip

if [ "$FAILURES" -eq 0 ]; then
  echo "Bench gate passed."
else
  echo "Bench gate FAILED ($FAILURES gate(s))."
  exit 1
fi
