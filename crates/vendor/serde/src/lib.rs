//! Vendored, dependency-free stand-in for `serde`.
//!
//! The build environment is offline with an empty registry cache, so the
//! real serde is unavailable. This crate keeps the workspace's
//! `#[derive(Serialize, Deserialize)]` annotations compiling and gives
//! `serde_json` (also vendored) a real tree-structured data model to
//! encode, so JSON round-trips are faithful.
//!
//! Differences from real serde, deliberately accepted:
//! * serialization goes through an owned [`Value`] tree (no zero-copy
//!   visitors);
//! * `Deserialize` has no `'de` lifetime;
//! * `#[serde(...)]` attributes are unsupported (unused in this
//!   workspace).
//!
//! The wire shape matches what serde_json would produce for the derive
//! defaults: structs as objects, newtype structs as their payload, enums
//! externally tagged, maps as objects with string keys.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

/// The serialized form: a JSON-like tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// All integers, signed or not, fit in `i128`.
    Int(i128),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    fn serialize(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

/// Support code for the derive macro. Not a public API.
pub mod __private {
    use super::{Deserialize, Error, Value};

    /// Looks up a named field in an object and deserializes it.
    pub fn field<T: Deserialize>(
        pairs: &[(String, Value)],
        name: &str,
        ty: &str,
    ) -> Result<T, Error> {
        match pairs.iter().find(|(k, _)| k == name) {
            Some((_, v)) => T::deserialize(v),
            None => Err(Error::custom(format!("missing field `{name}` of {ty}"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! int_impls {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $ty {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(n) => <$ty>::try_from(*n)
                        .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($ty)))),
                    _ => Err(Error::custom(concat!("expected integer for ", stringify!($ty)))),
                }
            }
        }
    )*};
}

int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(n) => Ok(*n as f64),
            _ => Err(Error::custom("expected number for f64")),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        f64::deserialize(v).map(|f| f as f32)
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::custom("expected single-character string for char")),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

// Shared-pointer string payloads (the `rc` feature of real serde).

impl Serialize for Arc<str> {
    fn serialize(&self) -> Value {
        Value::Str(self.as_ref().to_string())
    }
}

impl Deserialize for Arc<str> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(Arc::from(s.as_str())),
            _ => Err(Error::custom("expected string for Arc<str>")),
        }
    }
}

impl Serialize for Rc<str> {
    fn serialize(&self) -> Value {
        Value::Str(self.as_ref().to_string())
    }
}

impl Deserialize for Rc<str> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(Rc::from(s.as_str())),
            _ => Err(Error::custom("expected string for Rc<str>")),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        T::deserialize(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Arc<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        T::deserialize(v).map(Arc::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(t) => t.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            _ => Err(Error::custom("expected array for Vec")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Vec::<T>::deserialize(v).map(VecDeque::from)
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            _ => Err(Error::custom("expected array for BTreeSet")),
        }
    }
}

/// Map keys must serialize to strings (all key types in this workspace —
/// `String`, id newtypes over strings, fieldless enums — do).
fn key_to_string<K: Serialize>(key: &K) -> Result<String, Error> {
    match key.serialize() {
        Value::Str(s) => Ok(s),
        Value::Int(n) => Ok(n.to_string()),
        _ => Err(Error::custom("map keys must serialize to strings")),
    }
}

fn key_from_string<K: Deserialize>(key: &str) -> Result<K, Error> {
    K::deserialize(&Value::Str(key.to_string()))
        .or_else(|_| K::deserialize(&Value::Int(key.parse::<i128>().map_err(Error::custom)?)))
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| {
                    (
                        key_to_string(k).expect("string-like map key"),
                        v.serialize(),
                    )
                })
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::deserialize(v)?)))
                .collect(),
            _ => Err(Error::custom("expected object for BTreeMap")),
        }
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn serialize(&self) -> Value {
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| {
                (
                    key_to_string(k).expect("string-like map key"),
                    v.serialize(),
                )
            })
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::deserialize(v)?)))
                .collect(),
            _ => Err(Error::custom("expected object for HashMap")),
        }
    }
}

macro_rules! tuple_impls {
    ($(($($idx:tt $name:ident),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                match v {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($name::deserialize(&items[$idx])?,)+))
                    }
                    _ => Err(Error::custom("expected fixed-length array for tuple")),
                }
            }
        }
    )*};
}

tuple_impls! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for () {
    fn serialize(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            _ => Err(Error::custom("expected null for unit")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}
