//! "What-if" exploration of formalised arguments, after Rushby.
//!
//! Graydon §III-M quotes Rushby's proposal that evaluators should "actively
//! probe the argument using 'what-if' exploration (e.g., temporarily remove
//! or change an assumption and observe how the proof fails)". This module
//! implements that interaction against the propositional substrate: given a
//! theory (premises) and a conclusion, it reports which premises are
//! *critical* (removing them breaks entailment), which are *idle*
//! (entailment survives without them), and what the counterexample looks
//! like when entailment fails.
//!
//! Probing is a batch workload — one entailment check plus one per
//! premise — so it runs as a single [`Theory`] session: the premises and
//! the negated conclusion are Tseitin-compiled once into the interned
//! clause database, and each what-if is an `assume`/`check`/`retract`
//! round against it rather than a fresh formula build and solve.

use crate::prop::{Atom, Formula, Lit, Theory, Valuation};
use std::borrow::Borrow;
use std::collections::BTreeSet;

/// The effect of removing one premise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PremiseImpact {
    /// The conclusion is still entailed without this premise.
    Idle,
    /// Removing the premise breaks entailment; the valuation witnesses
    /// premises-without-it true and the conclusion false.
    Critical(Valuation),
}

impl PremiseImpact {
    /// Whether this premise is critical to the conclusion.
    pub fn is_critical(&self) -> bool {
        matches!(self, PremiseImpact::Critical(_))
    }
}

/// A probe report over a whole theory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeReport {
    /// Whether the full premise set entails the conclusion.
    pub entailed: bool,
    /// Per-premise impact, in premise order (empty when `entailed` is
    /// false — there is nothing to probe).
    pub impacts: Vec<PremiseImpact>,
}

impl ProbeReport {
    /// Indices of the critical premises.
    pub fn critical_indices(&self) -> Vec<usize> {
        self.impacts
            .iter()
            .enumerate()
            .filter(|(_, imp)| imp.is_critical())
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of the idle premises (those whose removal changes nothing —
    /// Rushby's candidates for "red herring" premises).
    pub fn idle_indices(&self) -> Vec<usize> {
        self.impacts
            .iter()
            .enumerate()
            .filter(|(_, imp)| !imp.is_critical())
            .map(|(i, _)| i)
            .collect()
    }
}

/// An interactive what-if session: premises and the negated conclusion
/// compiled once, each question one assumption round.
pub struct ProbeSession {
    theory: Theory,
    premise_lits: Vec<Lit>,
    not_conclusion: Lit,
    /// Atoms of the original formulas, for counterexample extraction.
    own_atoms: BTreeSet<Atom>,
}

impl ProbeSession {
    /// Compiles `premises` and `conclusion` into a fresh session.
    pub fn new<B: Borrow<Formula>>(premises: &[B], conclusion: &Formula) -> Self {
        let mut theory = Theory::new();
        let premise_lits: Vec<Lit> = premises
            .iter()
            .map(|p| theory.formula_lit(p.borrow()))
            .collect();
        let not_conclusion = !theory.formula_lit(conclusion);
        let mut own_atoms = conclusion.atoms();
        for p in premises {
            own_atoms.extend(p.borrow().atoms());
        }
        ProbeSession {
            theory,
            premise_lits,
            not_conclusion,
            own_atoms,
        }
    }

    /// Number of premises in the session.
    pub fn len(&self) -> usize {
        self.premise_lits.len()
    }

    /// Whether the session has no premises.
    pub fn is_empty(&self) -> bool {
        self.premise_lits.is_empty()
    }

    /// A counterexample to `premises − skip ⊢ conclusion`, if entailment
    /// fails (the premises minus `skip` hold, the conclusion does not).
    pub fn counterexample(&mut self, skip: Option<usize>) -> Option<Valuation> {
        let assumptions: Vec<Lit> = self
            .premise_lits
            .iter()
            .enumerate()
            .filter(|(i, _)| Some(*i) != skip)
            .map(|(_, &lit)| lit)
            .chain([self.not_conclusion])
            .collect();
        self.theory.model_under(assumptions, self.own_atoms.iter())
    }

    /// Whether the full premise set entails the conclusion.
    pub fn entailed(&mut self) -> bool {
        self.counterexample(None).is_none()
    }

    /// The impact of removing premise `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn what_if_removed(&mut self, index: usize) -> PremiseImpact {
        assert!(
            index < self.premise_lits.len(),
            "premise index out of range"
        );
        match self.counterexample(Some(index)) {
            None => PremiseImpact::Idle,
            Some(v) => PremiseImpact::Critical(v),
        }
    }

    /// Runs the full probe: the entailment check, then one what-if per
    /// premise.
    pub fn report(&mut self) -> ProbeReport {
        if !self.entailed() {
            return ProbeReport {
                entailed: false,
                impacts: Vec::new(),
            };
        }
        let impacts = (0..self.premise_lits.len())
            .map(|i| self.what_if_removed(i))
            .collect();
        ProbeReport {
            entailed: true,
            impacts,
        }
    }
}

/// Checks whether `premises ⊢ conclusion` and, if so, probes each premise
/// by removal. One theory compilation, `premises.len() + 1` checks.
pub fn probe<B: Borrow<Formula>>(premises: &[B], conclusion: &Formula) -> ProbeReport {
    ProbeSession::new(premises, conclusion).report()
}

/// What-if for a single premise: does entailment survive without premise
/// `index`?
///
/// # Panics
///
/// Panics if `index` is out of range.
pub fn what_if_removed<B: Borrow<Formula>>(
    premises: &[B],
    conclusion: &Formula,
    index: usize,
) -> PremiseImpact {
    assert!(index < premises.len(), "premise index out of range");
    ProbeSession::new(premises, conclusion).what_if_removed(index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prop::parse;

    fn f(s: &str) -> Formula {
        parse(s).unwrap()
    }

    #[test]
    fn haley_premises_probe() {
        // From the paper's eleven-line proof: which premises does D -> H
        // actually need? I -> V turns out to be idle (V is never used to
        // reach H) — exactly the insight Rushby says probing surfaces.
        let premises = vec![f("I -> V"), f("C -> H"), f("Y -> V & C"), f("D -> Y")];
        let report = probe(&premises, &f("D -> H"));
        assert!(report.entailed);
        assert_eq!(report.idle_indices(), vec![0]);
        assert_eq!(report.critical_indices(), vec![1, 2, 3]);
    }

    #[test]
    fn critical_impact_carries_counterexample() {
        let premises = vec![f("p -> q"), f("p")];
        let report = probe(&premises, &f("q"));
        assert!(report.entailed);
        for (i, impact) in report.impacts.iter().enumerate() {
            match impact {
                PremiseImpact::Critical(v) => {
                    // Witness: remaining premises hold, conclusion fails.
                    let remaining: Vec<_> = premises
                        .iter()
                        .enumerate()
                        .filter(|(j, _)| *j != i)
                        .map(|(_, p)| p.clone())
                        .collect();
                    assert!(Formula::conj(remaining).eval(v));
                    assert!(!f("q").eval(v));
                }
                PremiseImpact::Idle => panic!("both premises are critical here"),
            }
        }
    }

    #[test]
    fn non_entailed_theory_reports_flat_failure() {
        let report = probe(&[f("p")], &f("q"));
        assert!(!report.entailed);
        assert!(report.impacts.is_empty());
    }

    #[test]
    fn duplicate_premises_are_individually_idle() {
        let premises = vec![f("p"), f("p")];
        let report = probe(&premises, &f("p"));
        assert!(report.entailed);
        assert_eq!(report.idle_indices(), vec![0, 1]);
    }

    #[test]
    fn what_if_single() {
        let premises = vec![f("a"), f("a -> b")];
        assert!(what_if_removed(&premises, &f("b"), 0).is_critical());
        assert!(what_if_removed(&premises, &f("a"), 1) == PremiseImpact::Idle);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn what_if_out_of_range_panics() {
        let _ = what_if_removed(&[f("p")], &f("p"), 3);
    }

    #[test]
    fn tautological_conclusion_makes_all_premises_idle() {
        let premises = vec![f("p"), f("q")];
        let report = probe(&premises, &f("r | ~r"));
        assert!(report.entailed);
        assert_eq!(report.idle_indices(), vec![0, 1]);
    }

    #[test]
    fn borrowed_premises_probe_identically() {
        let owned = vec![f("p -> q"), f("p")];
        let borrowed: Vec<&Formula> = owned.iter().collect();
        assert_eq!(probe(&owned, &f("q")), probe(&borrowed, &f("q")));
    }

    #[test]
    fn session_is_reusable_across_questions() {
        let premises = vec![f("I -> V"), f("C -> H"), f("Y -> V & C"), f("D -> Y")];
        let conclusion = f("D -> H");
        let mut session = ProbeSession::new(&premises, &conclusion);
        assert_eq!(session.len(), 4);
        assert!(!session.is_empty());
        assert!(session.entailed());
        // Ask the same question twice: sessions are stateless between
        // questions (assumptions fully retracted).
        assert_eq!(session.what_if_removed(0), PremiseImpact::Idle);
        assert_eq!(session.what_if_removed(0), PremiseImpact::Idle);
        assert!(session.what_if_removed(3).is_critical());
        let report = session.report();
        assert_eq!(report.critical_indices(), vec![1, 2, 3]);
    }
}
