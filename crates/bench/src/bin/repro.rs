//! `repro` — regenerates every table and figure of Graydon (DSN 2015).
//!
//! Usage:
//!
//! ```text
//! repro [table1 | claims | figure1 | haley | greenwell |
//!        exp-a | exp-b | exp-c | exp-d | exp-e | all]
//! ```
//!
//! With no argument, prints everything.

use casekit_bench as bench;

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let output = match arg.as_str() {
        "table1" => bench::table_i(),
        "claims" => bench::claims_summary(),
        "figure1" => bench::figure_1(),
        "haley" => bench::haley_proof(),
        "greenwell" => bench::greenwell_table(),
        "exp-a" => bench::experiment_a(),
        "exp-b" => bench::experiment_b(),
        "exp-c" => bench::experiment_c(),
        "exp-d" => bench::experiment_d(),
        "exp-e" => bench::experiment_e(),
        "all" => bench::all(),
        other => {
            eprintln!(
                "unknown artefact `{other}`; expected table1, claims, figure1, haley, \
                 greenwell, exp-a..exp-e, or all"
            );
            std::process::exit(2);
        }
    };
    print!("{output}");
}
