//! Statistics for the simulated studies: descriptives, two-sample tests,
//! agreement, and effect sizes.
//!
//! P-values use the standard normal approximation (adequate for the
//! sample sizes the harness generates, n ≥ 20 per arm); this is stated
//! rather than hidden because the experiments report the statistic itself
//! alongside the p-value.
//!
//! Every public function returns `Result`: malformed samples (empty,
//! too small, NaN-bearing, ragged) are [`StatsError`] values, never
//! panics, so the experiment pipeline can surface them to its caller.

use std::fmt;

/// Why a statistic could not be computed from the given sample(s).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatsError {
    /// A sample was empty where at least one observation is required.
    EmptySample,
    /// A sample had fewer observations than the statistic needs.
    TooFewObservations {
        /// Minimum observations required per sample.
        needed: usize,
        /// Observations actually supplied.
        got: usize,
    },
    /// A sample contained NaN, which has no rank or mean.
    NanInput,
    /// Paired ratings differed in length.
    LengthMismatch {
        /// Length of the first rating vector.
        left: usize,
        /// Length of the second rating vector.
        right: usize,
    },
    /// Fewer raters than the agreement measure needs.
    TooFewRaters {
        /// Raters supplied.
        got: usize,
    },
    /// A rating matrix had rows of unequal length.
    RaggedRatings,
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::EmptySample => write!(f, "cannot describe an empty sample"),
            StatsError::TooFewObservations { needed, got } => {
                write!(f, "need n \u{2265} {needed} per sample, got {got}")
            }
            StatsError::NanInput => write!(f, "samples must not contain NaN"),
            StatsError::LengthMismatch { left, right } => {
                write!(f, "paired ratings required, got lengths {left} and {right}")
            }
            StatsError::TooFewRaters { got } => {
                write!(f, "need at least two raters, got {got}")
            }
            StatsError::RaggedRatings => write!(f, "ragged rating matrix"),
        }
    }
}

impl std::error::Error for StatsError {}

/// Descriptive statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Descriptives {
    /// Sample size.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator).
    pub sd: f64,
    /// Standard error of the mean.
    pub se: f64,
    /// 95% confidence half-width (normal approximation).
    pub ci95: f64,
}

/// Computes descriptives.
///
/// # Errors
///
/// [`StatsError::EmptySample`] on an empty sample and
/// [`StatsError::NanInput`] when the sample contains NaN.
pub fn describe(sample: &[f64]) -> Result<Descriptives, StatsError> {
    if sample.is_empty() {
        return Err(StatsError::EmptySample);
    }
    if sample.iter().any(|x| x.is_nan()) {
        return Err(StatsError::NanInput);
    }
    let n = sample.len();
    let mean = sample.iter().sum::<f64>() / n as f64;
    let var = if n > 1 {
        sample.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
    } else {
        0.0
    };
    let sd = var.sqrt();
    let se = sd / (n as f64).sqrt();
    Ok(Descriptives {
        n,
        mean,
        sd,
        se,
        ci95: 1.96 * se,
    })
}

/// Standard normal cumulative distribution function.
pub fn normal_cdf(z: f64) -> f64 {
    // Abramowitz & Stegun 7.1.26 via erf.
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Result of a two-sample test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TestResult {
    /// The test statistic (t or z, per the test).
    pub statistic: f64,
    /// Two-sided p-value (normal approximation).
    pub p_value: f64,
}

/// Welch's unequal-variance t-test (two-sided, normal-approximated p).
///
/// # Errors
///
/// [`StatsError::TooFewObservations`] if either sample has fewer than two
/// observations; [`StatsError::NanInput`] on NaN.
pub fn welch_t_test(a: &[f64], b: &[f64]) -> Result<TestResult, StatsError> {
    let got = a.len().min(b.len());
    if got < 2 {
        return Err(StatsError::TooFewObservations { needed: 2, got });
    }
    let da = describe(a)?;
    let db = describe(b)?;
    let se2 = da.sd.powi(2) / da.n as f64 + db.sd.powi(2) / db.n as f64;
    let t = if se2 == 0.0 {
        if da.mean == db.mean {
            0.0
        } else if da.mean > db.mean {
            f64::INFINITY
        } else {
            f64::NEG_INFINITY
        }
    } else {
        (da.mean - db.mean) / se2.sqrt()
    };
    let p = if t.is_infinite() {
        0.0
    } else {
        2.0 * (1.0 - normal_cdf(t.abs()))
    };
    Ok(TestResult {
        statistic: t,
        p_value: p.clamp(0.0, 1.0),
    })
}

/// Mann–Whitney U test (two-sided, normal approximation with tie-free
/// variance; ties get midranks).
///
/// # Errors
///
/// [`StatsError::EmptySample`] if either sample is empty;
/// [`StatsError::NanInput`] when either sample contains NaN (NaN has no
/// rank).
pub fn mann_whitney_u(a: &[f64], b: &[f64]) -> Result<TestResult, StatsError> {
    if a.is_empty() || b.is_empty() {
        return Err(StatsError::EmptySample);
    }
    if a.iter().chain(b).any(|x| x.is_nan()) {
        return Err(StatsError::NanInput);
    }
    let n1 = a.len() as f64;
    let n2 = b.len() as f64;
    // Midranks over the pooled sample (total order holds: NaN rejected).
    let mut pooled: Vec<(f64, usize)> = a
        .iter()
        .map(|&x| (x, 0usize))
        .chain(b.iter().map(|&x| (x, 1usize)))
        .collect();
    pooled.sort_by(|x, y| x.0.total_cmp(&y.0));
    let mut ranks = vec![0f64; pooled.len()];
    let mut i = 0;
    while i < pooled.len() {
        let mut j = i;
        while j + 1 < pooled.len() && pooled[j + 1].0 == pooled[i].0 {
            j += 1;
        }
        let midrank = (i + j) as f64 / 2.0 + 1.0;
        for r in ranks.iter_mut().take(j + 1).skip(i) {
            *r = midrank;
        }
        i = j + 1;
    }
    let r1: f64 = pooled
        .iter()
        .zip(&ranks)
        .filter(|((_, group), _)| *group == 0)
        .map(|(_, r)| *r)
        .sum();
    let u1 = r1 - n1 * (n1 + 1.0) / 2.0;
    let mu = n1 * n2 / 2.0;
    let sigma = (n1 * n2 * (n1 + n2 + 1.0) / 12.0).sqrt();
    let z = if sigma == 0.0 { 0.0 } else { (u1 - mu) / sigma };
    Ok(TestResult {
        statistic: z,
        p_value: (2.0 * (1.0 - normal_cdf(z.abs()))).clamp(0.0, 1.0),
    })
}

/// Cohen's d (pooled-SD standardised mean difference).
///
/// # Errors
///
/// [`StatsError::TooFewObservations`] if either sample has fewer than two
/// observations; [`StatsError::NanInput`] on NaN.
pub fn cohens_d(a: &[f64], b: &[f64]) -> Result<f64, StatsError> {
    let got = a.len().min(b.len());
    if got < 2 {
        return Err(StatsError::TooFewObservations { needed: 2, got });
    }
    let da = describe(a)?;
    let db = describe(b)?;
    let pooled = (((da.n - 1) as f64 * da.sd.powi(2) + (db.n - 1) as f64 * db.sd.powi(2))
        / ((da.n + db.n - 2) as f64))
        .sqrt();
    Ok(if pooled == 0.0 {
        0.0
    } else {
        (da.mean - db.mean) / pooled
    })
}

/// Cohen's kappa for two raters over categorical labels.
///
/// Returns 1.0 for perfect agreement (including the degenerate
/// single-category case) and can be negative for worse-than-chance
/// agreement.
///
/// # Errors
///
/// [`StatsError::LengthMismatch`] if the rating vectors differ in length;
/// [`StatsError::EmptySample`] if they are empty.
pub fn cohens_kappa<T: PartialEq + Clone>(rater_a: &[T], rater_b: &[T]) -> Result<f64, StatsError> {
    if rater_a.len() != rater_b.len() {
        return Err(StatsError::LengthMismatch {
            left: rater_a.len(),
            right: rater_b.len(),
        });
    }
    if rater_a.is_empty() {
        return Err(StatsError::EmptySample);
    }
    let n = rater_a.len() as f64;
    let observed = rater_a.iter().zip(rater_b).filter(|(x, y)| x == y).count() as f64 / n;
    // Category marginals.
    let mut categories: Vec<T> = Vec::new();
    for item in rater_a.iter().chain(rater_b) {
        if !categories.contains(item) {
            categories.push(item.clone());
        }
    }
    let expected: f64 = categories
        .iter()
        .map(|c| {
            let pa = rater_a.iter().filter(|x| *x == c).count() as f64 / n;
            let pb = rater_b.iter().filter(|x| *x == c).count() as f64 / n;
            pa * pb
        })
        .sum();
    Ok(if (1.0 - expected).abs() < 1e-12 {
        if (observed - 1.0).abs() < 1e-12 {
            1.0
        } else {
            0.0
        }
    } else {
        (observed - expected) / (1.0 - expected)
    })
}

/// Mean pairwise agreement among k raters over binary judgments: the
/// fraction of rater pairs agreeing, averaged over items. 1.0 = everyone
/// always agrees.
///
/// # Errors
///
/// [`StatsError::TooFewRaters`] with fewer than two raters;
/// [`StatsError::EmptySample`] with zero items;
/// [`StatsError::RaggedRatings`] when rows differ in length.
pub fn pairwise_agreement(ratings: &[Vec<bool>]) -> Result<f64, StatsError> {
    if ratings.len() < 2 {
        return Err(StatsError::TooFewRaters { got: ratings.len() });
    }
    let items = ratings[0].len();
    if items == 0 {
        return Err(StatsError::EmptySample);
    }
    if ratings.iter().any(|r| r.len() != items) {
        return Err(StatsError::RaggedRatings);
    }
    let mut total = 0.0;
    let mut pairs = 0usize;
    for i in 0..ratings.len() {
        for j in i + 1..ratings.len() {
            pairs += 1;
            let agree = ratings[i]
                .iter()
                .zip(&ratings[j])
                .filter(|(x, y)| x == y)
                .count();
            total += agree as f64 / items as f64;
        }
    }
    Ok(total / pairs as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn describe_basics() {
        let d = describe(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((d.mean - 5.0).abs() < 1e-12);
        assert!((d.sd - 2.138089935299395).abs() < 1e-9);
        assert_eq!(d.n, 8);
        assert!(d.ci95 > 0.0);
    }

    #[test]
    fn describe_single_point() {
        let d = describe(&[3.0]).unwrap();
        assert_eq!(d.mean, 3.0);
        assert_eq!(d.sd, 0.0);
    }

    #[test]
    fn describe_empty_is_an_error() {
        assert_eq!(describe(&[]), Err(StatsError::EmptySample));
    }

    #[test]
    fn describe_nan_is_an_error() {
        assert_eq!(describe(&[1.0, f64::NAN]), Err(StatsError::NanInput));
    }

    #[test]
    fn normal_cdf_symmetry() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-6);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
        assert!(normal_cdf(5.0) > 0.999);
    }

    #[test]
    fn welch_distinguishes_separated_samples() {
        let a: Vec<f64> = (0..30).map(|i| 10.0 + (i % 5) as f64 * 0.1).collect();
        let b: Vec<f64> = (0..30).map(|i| 12.0 + (i % 5) as f64 * 0.1).collect();
        let r = welch_t_test(&a, &b).unwrap();
        assert!(r.statistic < -10.0);
        assert!(r.p_value < 0.001);
    }

    #[test]
    fn welch_accepts_identical_samples() {
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let r = welch_t_test(&a, &a).unwrap();
        assert_eq!(r.statistic, 0.0);
        assert!(r.p_value > 0.99);
    }

    #[test]
    fn welch_zero_variance_distinct_means() {
        let r = welch_t_test(&[1.0, 1.0], &[2.0, 2.0]).unwrap();
        assert!(r.statistic.is_infinite());
        assert_eq!(r.p_value, 0.0);
    }

    #[test]
    fn welch_undersized_sample_is_an_error() {
        assert_eq!(
            welch_t_test(&[1.0], &[2.0, 3.0]),
            Err(StatsError::TooFewObservations { needed: 2, got: 1 })
        );
    }

    #[test]
    fn mann_whitney_detects_shift() {
        let a: Vec<f64> = (0..25).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..25).map(|i| i as f64 + 30.0).collect();
        let r = mann_whitney_u(&a, &b).unwrap();
        assert!(r.p_value < 0.001);
    }

    #[test]
    fn mann_whitney_no_shift() {
        let a: Vec<f64> = (0..25).map(|i| (i % 7) as f64).collect();
        let r = mann_whitney_u(&a, &a).unwrap();
        assert!(r.p_value > 0.9);
    }

    #[test]
    fn mann_whitney_handles_ties() {
        let a = vec![1.0, 1.0, 2.0, 2.0];
        let b = vec![1.0, 2.0, 2.0, 2.0];
        let r = mann_whitney_u(&a, &b).unwrap();
        assert!(r.p_value > 0.3);
    }

    #[test]
    fn mann_whitney_nan_is_an_error_not_a_panic() {
        assert_eq!(
            mann_whitney_u(&[1.0, f64::NAN], &[2.0]),
            Err(StatsError::NanInput)
        );
        assert_eq!(
            mann_whitney_u(&[1.0], &[f64::NAN]),
            Err(StatsError::NanInput)
        );
    }

    #[test]
    fn mann_whitney_empty_is_an_error() {
        assert_eq!(mann_whitney_u(&[], &[1.0]), Err(StatsError::EmptySample));
    }

    #[test]
    fn cohens_d_magnitude() {
        let a = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let b = vec![3.0, 4.0, 5.0, 6.0, 7.0];
        let d = cohens_d(&a, &b).unwrap();
        assert!((d + 1.2649110640673518).abs() < 1e-9);
        assert_eq!(cohens_d(&a, &a), Ok(0.0));
    }

    #[test]
    fn cohens_d_undersized_sample_is_an_error() {
        assert_eq!(
            cohens_d(&[], &[1.0, 2.0]),
            Err(StatsError::TooFewObservations { needed: 2, got: 0 })
        );
    }

    #[test]
    fn kappa_perfect_and_chance() {
        let a = vec!["x", "y", "x", "y"];
        assert!((cohens_kappa(&a, &a).unwrap() - 1.0).abs() < 1e-12);
        // Independent-looking ratings: kappa near zero.
        let r1 = vec!["x", "x", "y", "y"];
        let r2 = vec!["x", "y", "x", "y"];
        let k = cohens_kappa(&r1, &r2).unwrap();
        assert!(k.abs() < 1e-12);
    }

    #[test]
    fn kappa_worse_than_chance_is_negative() {
        let r1 = vec![true, false, true, false];
        let r2 = vec![false, true, false, true];
        assert!(cohens_kappa(&r1, &r2).unwrap() < 0.0);
    }

    #[test]
    fn kappa_degenerate_single_category() {
        let r = vec!["same"; 5];
        assert_eq!(cohens_kappa(&r, &r), Ok(1.0));
    }

    #[test]
    fn kappa_mismatched_lengths_are_an_error() {
        assert_eq!(
            cohens_kappa(&[true, false], &[true]),
            Err(StatsError::LengthMismatch { left: 2, right: 1 })
        );
        assert_eq!(cohens_kappa::<bool>(&[], &[]), Err(StatsError::EmptySample));
    }

    #[test]
    fn pairwise_agreement_bounds() {
        let all_agree = vec![vec![true, false], vec![true, false], vec![true, false]];
        assert!((pairwise_agreement(&all_agree).unwrap() - 1.0).abs() < 1e-12);
        let half = vec![vec![true, true], vec![true, false]];
        assert!((pairwise_agreement(&half).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn pairwise_agreement_shape_errors() {
        assert_eq!(
            pairwise_agreement(&[vec![true]]),
            Err(StatsError::TooFewRaters { got: 1 })
        );
        assert_eq!(
            pairwise_agreement(&[vec![], vec![]]),
            Err(StatsError::EmptySample)
        );
        assert_eq!(
            pairwise_agreement(&[vec![true], vec![true, false]]),
            Err(StatsError::RaggedRatings)
        );
    }

    #[test]
    fn errors_render_for_humans() {
        assert!(StatsError::EmptySample.to_string().contains("empty"));
        assert!(StatsError::NanInput.to_string().contains("NaN"));
        assert!(StatsError::TooFewObservations { needed: 2, got: 1 }
            .to_string()
            .contains('2'));
        assert!(StatsError::RaggedRatings.to_string().contains("ragged"));
    }
}
