//! `repro` — regenerates every table and figure of Graydon (DSN 2015).
//!
//! Usage:
//!
//! ```text
//! repro [table1 | claims | figure1 | haley | greenwell |
//!        exp-a | exp-b | exp-c | exp-d | exp-e | graph | logic |
//!        experiments | all]
//! ```
//!
//! `graph` additionally writes the measured legacy-vs-indexed graph-core
//! comparison to `BENCH_graph.json` in the working directory; `logic`
//! does the same for the legacy-vs-interned batch entailment sweep
//! (`BENCH_logic.json`), and `experiments` for the serial-vs-parallel
//! experiment runtime (`BENCH_experiments.json`).
//!
//! With no argument, prints everything.

use casekit_bench as bench;

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let output = match arg.as_str() {
        "table1" => bench::table_i(),
        "claims" => bench::claims_summary(),
        "figure1" => bench::figure_1(),
        "haley" => bench::haley_proof(),
        "greenwell" => bench::greenwell_table(),
        "exp-a" => bench::experiment_a(),
        "exp-b" => bench::experiment_b(),
        "exp-c" => bench::experiment_c(),
        "exp-d" => bench::experiment_d(),
        "exp-e" => bench::experiment_e(),
        "graph" => {
            let report = bench::graph::run_graph_bench(10_000);
            let json = bench::graph::bench_graph_json(&report);
            let path = "BENCH_graph.json";
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("warning: could not write {path}: {e}");
            } else {
                eprintln!("wrote {path}");
            }
            bench::graph::render_report(&report)
        }
        "logic" => {
            let report = bench::logic::run_logic_bench(120);
            let json = bench::logic::bench_logic_json(&report);
            let path = "BENCH_logic.json";
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("warning: could not write {path}: {e}");
            } else {
                eprintln!("wrote {path}");
            }
            bench::logic::render_report(&report)
        }
        "experiments" => {
            let report =
                bench::experiments::run_experiments_bench(bench::experiments_bench_workers());
            let json = bench::experiments::bench_experiments_json(&report);
            let path = "BENCH_experiments.json";
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("warning: could not write {path}: {e}");
            } else {
                eprintln!("wrote {path}");
            }
            bench::experiments::render_report(&report)
        }
        "all" => bench::all(),
        other => {
            eprintln!(
                "unknown artefact `{other}`; expected table1, claims, figure1, haley, \
                 greenwell, exp-a..exp-e, graph, logic, experiments, or all"
            );
            std::process::exit(2);
        }
    };
    print!("{output}");
}
