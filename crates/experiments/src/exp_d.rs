//! Experiment D (§VI-D): does formalised pattern instantiation reduce
//! defects?
//!
//! Subjects instantiate real library patterns (ALARP's `Percent`
//! parameter, the element-verification enum). Each parameter entry can go
//! wrong two ways:
//!
//! * a **type-detectable** slip (value of the wrong type/range — what
//!   Matsuno's checker catches), or
//! * a **semantic** slip (well-typed but wrong — the §V-A caveat).
//!
//! The manual arm relies on self-review; the tool arm runs the *actual*
//! [`casekit_patterns`] type checker and retries rejected entries. The
//! tool eliminates residual type-detectable defects at a small retry-time
//! cost and leaves semantic defects untouched.

use crate::population::{generate as generate_pool, PoolConfig, Subject};
use crate::runtime::{stream_rng, Runtime};
use crate::stats::{describe, Descriptives};
use crate::Error;
use casekit_patterns::library;
use casekit_patterns::{Binding, ParamValue, Pattern};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Configuration for experiment D.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Config {
    /// Instantiations per subject.
    pub instantiations: usize,
    /// Subjects per arm.
    pub per_arm: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            instantiations: 6,
            per_arm: 30,
            seed: 0xD,
        }
    }
}

/// Results of experiment D.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Residual type-detectable defects per instantiation (manual arm).
    pub type_defects_manual: f64,
    /// Residual type-detectable defects per instantiation (tool arm).
    pub type_defects_tool: f64,
    /// Residual semantic defects per instantiation (manual, tool).
    pub semantic_defects: (f64, f64),
    /// Minutes per instantiation.
    pub minutes_manual: Descriptives,
    /// Minutes per instantiation (tool arm, including retries).
    pub minutes_tool: Descriptives,
}

/// One parameter-entry attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Entry {
    Good,
    TypeSlip,
    SemanticSlip,
}

fn attempt_entry(subject: &Subject, rng: &mut impl Rng) -> Entry {
    // Care reduces both slip kinds; typing slips are a bit more common.
    let p_type = 0.12 * (1.0 - 0.5 * subject.diligence);
    let p_sem = 0.08 * (1.0 - 0.5 * subject.diligence);
    let roll: f64 = rng.gen();
    if roll < p_type {
        Entry::TypeSlip
    } else if roll < p_type + p_sem {
        Entry::SemanticSlip
    } else {
        Entry::Good
    }
}

/// Builds a binding for `pattern` realising the entry outcomes, so the
/// *real* type checker judges them. Returns (binding, type slips made,
/// semantic slips made).
fn build_binding(
    pattern: &Pattern,
    subject: &Subject,
    rng: &mut impl Rng,
) -> (Binding, usize, usize) {
    use casekit_patterns::ParamType;
    let mut binding = Binding::new();
    let mut type_slips = 0;
    let mut semantic_slips = 0;
    for (name, ty) in &pattern.params {
        let mut entry = attempt_entry(subject, rng);
        // A wrong free-text value is never type-detectable: reclassify.
        if *ty == ParamType::Str && entry == Entry::TypeSlip {
            entry = Entry::SemanticSlip;
        }
        match entry {
            Entry::TypeSlip => type_slips += 1,
            Entry::SemanticSlip => semantic_slips += 1,
            Entry::Good => {}
        }
        let value: ParamValue = match (pattern.name.as_str(), name.as_str(), entry) {
            // ALARP percent parameter.
            ("alarp", "residual_risk_pct", Entry::Good) => 35i64.into(),
            ("alarp", "residual_risk_pct", Entry::TypeSlip) => 350i64.into(), // out of range
            ("alarp", "residual_risk_pct", Entry::SemanticSlip) => 5i64.into(), // wrong but typed
            // Element enum.
            ("element-verification", "element", Entry::Good) => "flaps".into(),
            ("element-verification", "element", Entry::TypeSlip) => "Railway hazards".into(),
            ("element-verification", "element", Entry::SemanticSlip) => "aileron".into(),
            // Free-text parameters: type slips are impossible for Str in
            // this model; treat them as semantic.
            (_, _, Entry::Good | Entry::TypeSlip) => "the intended system".into(),
            (_, _, Entry::SemanticSlip) => "a plausible but wrong value".into(),
        };
        binding.set(name.clone(), value);
    }
    (binding, type_slips, semantic_slips)
}

/// One subject's instantiation outcomes, produced inside a worker.
struct SubjectTally {
    tool_arm: bool,
    type_defects: usize,
    semantic_defects: usize,
    instantiations: usize,
    minutes: Vec<f64>,
}

/// Runs experiment D serially (equivalent to
/// [`run_with`]`(config, &Runtime::serial())`).
pub fn run(config: &Config) -> Result<Report, Error> {
    run_with(config, &Runtime::serial())
}

/// Runs experiment D on the given runtime. The report is identical for
/// every worker count.
pub fn run_with(config: &Config, rt: &Runtime) -> Result<Report, Error> {
    let mut pool = generate_pool(&PoolConfig {
        per_background: (config.per_arm * 2).div_ceil(6).max(1),
        seed: config.seed ^ 0xD00D,
        ..PoolConfig::default()
    });
    pool.truncate(config.per_arm * 2);
    let patterns = [library::alarp(), library::element_verification()];

    let tallies = rt.map(&pool, |i, subject| {
        let mut rng = stream_rng(config.seed, 0, i as u64);
        let tool_arm = i % 2 == 1;
        let mut tally = SubjectTally {
            tool_arm,
            type_defects: 0,
            semantic_defects: 0,
            instantiations: 0,
            minutes: Vec::with_capacity(config.instantiations),
        };
        for k in 0..config.instantiations {
            let pattern = &patterns[k % patterns.len()];
            let (binding, mut type_slips, sem_slips) = build_binding(pattern, subject, &mut rng);
            // Base entry time: ~1.5 min per parameter.
            let mut minutes = pattern.params.len() as f64 * 1.5;
            if tool_arm {
                // The actual checker: rejected bindings are corrected and
                // retried (one retry cycle suffices in this model).
                if pattern.check_binding(&binding).is_err() {
                    minutes += 2.0; // fix-and-retry cost
                    type_slips = 0; // corrected
                }
            } else {
                // Manual self-review catches some typing slips.
                let caught = (0..type_slips)
                    .filter(|_| rng.gen_bool(0.5 * subject.diligence))
                    .count();
                minutes += caught as f64 * 2.0;
                type_slips -= caught;
            }
            tally.type_defects += type_slips;
            tally.semantic_defects += sem_slips;
            tally.instantiations += 1;
            tally.minutes.push(minutes);
        }
        tally
    });

    let mut manual_type = 0usize;
    let mut tool_type = 0usize;
    let mut manual_sem = 0usize;
    let mut tool_sem = 0usize;
    let mut manual_count = 0usize;
    let mut tool_count = 0usize;
    let mut minutes_manual = Vec::new();
    let mut minutes_tool = Vec::new();

    for tally in &tallies {
        if tally.tool_arm {
            tool_type += tally.type_defects;
            tool_sem += tally.semantic_defects;
            tool_count += tally.instantiations;
            minutes_tool.extend_from_slice(&tally.minutes);
        } else {
            manual_type += tally.type_defects;
            manual_sem += tally.semantic_defects;
            manual_count += tally.instantiations;
            minutes_manual.extend_from_slice(&tally.minutes);
        }
    }

    Ok(Report {
        type_defects_manual: manual_type as f64 / manual_count.max(1) as f64,
        type_defects_tool: tool_type as f64 / tool_count.max(1) as f64,
        semantic_defects: (
            manual_sem as f64 / manual_count.max(1) as f64,
            tool_sem as f64 / tool_count.max(1) as f64,
        ),
        minutes_manual: describe(&minutes_manual)?,
        minutes_tool: describe(&minutes_tool)?,
    })
}

impl Report {
    /// Renders the results table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "Experiment D: checked pattern instantiation (§VI-D)");
        let _ = writeln!(
            out,
            "  residual type-detectable defects/instantiation: manual {:.3}, tool {:.3}",
            self.type_defects_manual, self.type_defects_tool
        );
        let _ = writeln!(
            out,
            "  residual semantic defects/instantiation:        manual {:.3}, tool {:.3}",
            self.semantic_defects.0, self.semantic_defects.1
        );
        let _ = writeln!(
            out,
            "  minutes/instantiation: manual {:.1} ± {:.1}, tool {:.1} ± {:.1}",
            self.minutes_manual.mean,
            self.minutes_manual.ci95,
            self.minutes_tool.mean,
            self.minutes_tool.ci95
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tool_eliminates_type_detectable_defects() {
        let r = run(&Config::default()).unwrap();
        assert_eq!(r.type_defects_tool, 0.0);
        assert!(r.type_defects_manual > 0.0);
    }

    #[test]
    fn semantic_defects_survive_both_arms() {
        // The §V-A caveat: type checking cannot catch well-typed-but-wrong.
        let r = run(&Config::default()).unwrap();
        let (manual, tool) = r.semantic_defects;
        assert!(manual > 0.0);
        assert!(tool > 0.0);
        assert!((manual - tool).abs() < 0.1, "manual {manual} tool {tool}");
    }

    #[test]
    fn times_are_comparable() {
        let r = run(&Config::default()).unwrap();
        let ratio = r.minutes_tool.mean / r.minutes_manual.mean;
        assert!((0.7..1.3).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            run(&Config::default()).unwrap(),
            run(&Config::default()).unwrap()
        );
    }

    #[test]
    fn parallel_report_identical_to_serial() {
        let config = Config {
            instantiations: 4,
            per_arm: 9,
            seed: 0xD2,
        };
        let serial = run(&config).unwrap();
        for workers in [2, 4, 8] {
            let parallel = run_with(&config, &Runtime::with_workers(workers)).unwrap();
            assert_eq!(serial, parallel, "workers = {workers}");
        }
    }

    #[test]
    fn empty_arm_surfaces_a_stats_error() {
        let err = run(&Config {
            per_arm: 0,
            ..Config::default()
        })
        .unwrap_err();
        assert!(matches!(err, Error::Stats(_)), "{err}");
    }

    #[test]
    fn render_has_three_metric_rows() {
        let text = run(&Config::default()).unwrap().render();
        assert!(text.contains("type-detectable"));
        assert!(text.contains("semantic"));
        assert!(text.contains("minutes"));
    }
}
