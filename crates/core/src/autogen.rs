//! Automatic generation of safety-argument fragments from formal proofs,
//! after Basir, Denney & Fischer (Graydon §III-E, refs \[6\], \[7\], \[10\]).
//!
//! Their proposal turns a machine-found proof into a GSN argument whose
//! structure "follow\[s\] that of the proof from which it is generated":
//! each derived line becomes a goal supported by the lines it cites, each
//! premise becomes an assumed leaf, and the rule name becomes a strategy
//! description. Two of the paper's observations are reproduced here
//! deliberately:
//!
//! * the generated goals read like *"Formal proof that … holds"* — not
//!   the propositions GSN wants (the authors' 2010 paper has exactly this
//!   defect, which Graydon notes); [`ProofStyle::Literal`] reproduces it,
//!   [`ProofStyle::Propositional`] generates proper propositions;
//! * straightforward conversion "contain\[s\] too many details":
//!   [`generate_argument`] emits one goal per proof line, and
//!   [`generate_abstracted`] implements the abstraction the 2009 paper
//!   lists as future work — eliding reiterations and single-use
//!   intermediate lines.

use crate::argument::Argument;
use crate::node::{FormalPayload, Node, NodeKind};
use casekit_logic::nd::{Proof, Rule};

/// How generated goal texts are phrased.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProofStyle {
    /// Reproduce the surveyed tools' phrasing: "Formal proof that X holds"
    /// (not a proposition — the defect Graydon points out).
    Literal,
    /// Phrase goals as propositions, as GSN requires.
    Propositional,
}

/// The line numbers a rule at line `number` inferentially depends on.
/// `Conclusion(i)` discharges premise `i` *and* rests on the preceding
/// line's derivation, so both are cited.
fn cited(rule: &Rule, number: usize) -> Vec<usize> {
    match rule {
        Rule::Premise => vec![],
        Rule::Reiterate(i)
        | Rule::Split(i)
        | Rule::OrIntro(i)
        | Rule::DoubleNegElim(i)
        | Rule::DoubleNegIntro(i)
        | Rule::ExFalso(i)
        | Rule::IffElim(i) => vec![*i],
        Rule::Conclusion(i) => vec![*i, number - 1],
        Rule::Detach(i, j)
        | Rule::Join(i, j)
        | Rule::ModusTollens(i, j)
        | Rule::ContradictionIntro(i, j)
        | Rule::IffIntro(i, j) => vec![*i, *j],
        Rule::OrElim(i, j, k) => vec![*i, *j, *k],
    }
}

fn goal_text(style: ProofStyle, formula: &casekit_logic::prop::Formula) -> String {
    match style {
        ProofStyle::Literal => format!("Formal proof that {formula} holds"),
        ProofStyle::Propositional => format!("{formula} holds"),
    }
}

/// Generates a GSN argument from a checked proof: the last line becomes
/// the root goal; every derived line becomes a goal supported (through a
/// strategy naming the inference rule) by the goals for its cited lines;
/// premises become assumptions resting on a solution that cites the
/// "formal proof evidence".
///
/// # Errors
///
/// Returns the checker's error if the proof does not check — generating
/// arguments from unchecked proofs would launder invalidity into GSN.
///
/// # Panics
///
/// Panics on an empty proof.
pub fn generate_argument(
    proof: &Proof,
    style: ProofStyle,
) -> Result<Argument, casekit_logic::LogicError> {
    proof.check()?;
    assert!(!proof.is_empty(), "cannot generate from an empty proof");

    let mut builder = Argument::builder("generated-from-proof");
    // One goal (or assumption) per line.
    for (idx, line) in proof.lines().iter().enumerate() {
        let number = idx + 1;
        let id = format!("g{number}");
        match line.rule {
            Rule::Premise => {
                // Premises become goals resting on "formal proof evidence"
                // so the deductive chain is complete and GSN-well-formed.
                let ev_id = format!("e{number}");
                builder = builder
                    .node(
                        Node::new(
                            id.as_str(),
                            NodeKind::Goal,
                            format!("Premise: {}", line.formula),
                        )
                        .with_formal(FormalPayload::Prop(line.formula.clone())),
                    )
                    .add(
                        &ev_id,
                        NodeKind::Solution,
                        &format!("Formal proof evidence for premise {number}"),
                    )
                    .supported_by(&id, &ev_id);
            }
            _ => {
                builder = builder.node(
                    Node::new(id.as_str(), NodeKind::Goal, goal_text(style, &line.formula))
                        .with_formal(FormalPayload::Prop(line.formula.clone())),
                );
            }
        }
    }
    // Strategies per derived line; edges to every cited line's goal.
    for (idx, line) in proof.lines().iter().enumerate() {
        let number = idx + 1;
        if line.rule == Rule::Premise {
            continue;
        }
        let goal_id = format!("g{number}");
        let strat_id = format!("s{number}");
        builder = builder
            .add(
                &strat_id,
                NodeKind::Strategy,
                &format!("By {} on the cited lines", line.rule),
            )
            .supported_by(&goal_id, &strat_id);
        for cite in cited(&line.rule, number) {
            builder = builder.supported_by(&strat_id, &format!("g{cite}"));
        }
    }
    builder
        .build()
        .map_err(|e| casekit_logic::LogicError::InvalidStep {
            line: 0,
            reason: format!("generated argument malformed: {e}"),
        })
}

/// Like [`generate_argument`], but abstracts the proof first: reiterations
/// are elided and chains of single-use intermediate conclusions are
/// collapsed into their consumer, addressing the surveyed authors'
/// "too many details" complaint.
///
/// # Errors
///
/// Propagates [`generate_argument`]'s errors.
pub fn generate_abstracted(
    proof: &Proof,
    style: ProofStyle,
) -> Result<Argument, casekit_logic::LogicError> {
    use crate::argument::NodeIdx;

    // Resolve an edge target across removed goals: a removed goal stands
    // for whatever its (single) child strategy supported.
    fn resolve(full: &Argument, removable: &[bool], idx: NodeIdx, out: &mut Vec<NodeIdx>) {
        if !removable[idx.index()] {
            out.push(idx);
            return;
        }
        for strategy in full.all_children_idx(idx) {
            for grandchild in full.all_children_idx(strategy) {
                resolve(full, removable, grandchild, out);
            }
        }
    }

    let full = generate_argument(proof, style)?;
    // Collapse: a non-root goal with exactly one strategy parent and
    // exactly one strategy child is an intermediate step; its consumer
    // strategy inherits its support, transitively. Membership tests use
    // arena-indexed bitmaps, so the whole pass is O(V+E).
    let mut removable = vec![false; full.len()];
    for idx in full.node_indices() {
        if full.node_at(idx).kind != NodeKind::Goal || full.in_degree(idx) == 0 {
            continue;
        }
        let mut parents = full.parents_idx(idx);
        let sole_parent = (parents.next(), parents.next());
        let mut children = full.all_children_idx(idx);
        let sole_child = (children.next(), children.next());
        if let ((Some(p), None), (Some(c), None)) = (sole_parent, sole_child) {
            removable[idx.index()] = full.node_at(p).kind == NodeKind::Strategy
                && full.node_at(c).kind == NodeKind::Strategy;
        }
    }
    // The removed goals' own child strategies disappear with them.
    let mut orphan_strategy = vec![false; full.len()];
    for idx in full.node_indices() {
        if removable[idx.index()] {
            for child in full.all_children_idx(idx) {
                if full.node_at(child).kind == NodeKind::Strategy {
                    orphan_strategy[child.index()] = true;
                }
            }
        }
    }

    let mut builder = Argument::builder(format!("{} (abstracted)", full.name()));
    for node in full.nodes() {
        let idx = full.node_idx(&node.id).expect("node is interned");
        if removable[idx.index()] || orphan_strategy[idx.index()] {
            continue;
        }
        builder = builder.node(node.clone());
    }
    let mut seen: std::collections::BTreeSet<(NodeIdx, NodeIdx)> =
        std::collections::BTreeSet::new();
    for (from, to, kind) in full.edges_idx() {
        if removable[from.index()] || orphan_strategy[from.index()] || orphan_strategy[to.index()] {
            continue;
        }
        let mut targets = Vec::new();
        resolve(&full, &removable, to, &mut targets);
        for target in targets {
            if seen.insert((from, target)) {
                builder =
                    builder.edge(full.id_at(from).as_str(), full.id_at(target).as_str(), kind);
            }
        }
    }
    builder
        .build()
        .map_err(|e| casekit_logic::LogicError::InvalidStep {
            line: 0,
            reason: format!("abstracted argument malformed: {e}"),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use casekit_logic::prop::parse;

    #[test]
    fn haley_proof_generates_argument() {
        let proof = Proof::haley_example();
        let arg = generate_argument(&proof, ProofStyle::Propositional).unwrap();
        // 11 line nodes + 6 strategies (lines 6..11) + 5 evidence nodes.
        assert_eq!(arg.len(), 22);
        // The conclusion is a root; the proof's *unused* lines (premise 1
        // and the derived-but-never-cited line 8) surface as extra roots —
        // the generated structure faithfully mirrors the proof, clutter
        // included (the authors' own "too many details" complaint).
        let roots = arg.roots();
        let root_ids: Vec<&str> = roots.iter().map(|n| n.id.as_str()).collect();
        assert!(root_ids.contains(&"g11"));
        assert!(root_ids.contains(&"g1"));
        assert!(root_ids.contains(&"g8"));
        assert_eq!(roots.len(), 3);
        // Every generated node is reachable... and the graph is a DAG.
        assert!(arg.is_acyclic());
    }

    #[test]
    fn literal_style_reproduces_the_surveyed_defect() {
        let proof = Proof::haley_example();
        let arg = generate_argument(&proof, ProofStyle::Literal).unwrap();
        let root = arg.node(&"g11".into()).unwrap();
        // "Formal proof that X holds" — not a proposition, per Graydon's
        // criticism of the 2010 paper.
        assert!(root.text.starts_with("Formal proof that"));
        let propositional = generate_argument(&proof, ProofStyle::Propositional).unwrap();
        let root = propositional.node(&"g11".into()).unwrap();
        assert!(!root.text.starts_with("Formal proof"));
    }

    #[test]
    fn premises_become_assumptions_with_evidence() {
        let proof = Proof::haley_example();
        let arg = generate_argument(&proof, ProofStyle::Propositional).unwrap();
        let premises: Vec<_> = arg
            .nodes_of_kind(NodeKind::Goal)
            .into_iter()
            .filter(|n| n.text.starts_with("Premise:"))
            .map(|n| n.id.clone())
            .collect();
        assert_eq!(premises.len(), 5, "five premises");
        let solutions = arg.nodes_of_kind(NodeKind::Solution);
        assert_eq!(solutions.len(), 5, "one evidence node per premise");
    }

    #[test]
    fn structure_follows_the_proof() {
        // Line 10 (H) cites lines 2 and 9: its strategy supports exactly
        // those (premise 2 via evidence+context, line 9 directly).
        let proof = Proof::haley_example();
        let arg = generate_argument(&proof, ProofStyle::Propositional).unwrap();
        let strat = arg.node(&"s10".into()).expect("strategy for line 10");
        assert!(strat.text.contains("Detach"));
        let children = arg.all_children(&strat.id);
        let ids: Vec<&str> = children.iter().map(|n| n.id.as_str()).collect();
        assert!(ids.contains(&"g9"));
        assert!(ids.contains(&"g2"));
        assert_eq!(ids.len(), 2);
    }

    #[test]
    fn unchecked_proof_rejected() {
        use casekit_logic::nd::Rule;
        let mut bad = Proof::new();
        bad.add(parse("a -> b").unwrap(), Rule::Premise);
        bad.add(parse("c").unwrap(), Rule::Premise);
        bad.add(parse("b").unwrap(), Rule::Detach(1, 2));
        assert!(generate_argument(&bad, ProofStyle::Propositional).is_err());
    }

    #[test]
    fn generated_argument_is_machine_clean() {
        // Self-consistency: an argument generated from a valid proof must
        // pass the mechanical entailment checks.
        let proof = Proof::haley_example();
        let arg = generate_argument(&proof, ProofStyle::Propositional).unwrap();
        assert!(crate::semantics::non_deductive_steps(&arg).is_empty());
    }

    #[test]
    fn abstraction_reduces_node_count() {
        let proof = Proof::haley_example();
        let full = generate_argument(&proof, ProofStyle::Propositional).unwrap();
        let abstracted = generate_abstracted(&proof, ProofStyle::Propositional).unwrap();
        assert!(
            abstracted.len() < full.len(),
            "abstracted {} !< full {}",
            abstracted.len(),
            full.len()
        );
        // The root conclusion survives abstraction.
        assert!(abstracted.roots().iter().any(|r| r.text.contains("D -> H")));
        assert!(abstracted.is_acyclic());
    }

    #[test]
    fn small_proof_round_trip() {
        use casekit_logic::nd::Rule;
        let mut proof = Proof::new();
        proof.add(parse("p -> q").unwrap(), Rule::Premise);
        proof.add(parse("p").unwrap(), Rule::Premise);
        proof.add(parse("q").unwrap(), Rule::Detach(1, 2));
        let arg = generate_argument(&proof, ProofStyle::Propositional).unwrap();
        assert_eq!(arg.roots().len(), 1);
        assert_eq!(arg.nodes_of_kind(NodeKind::Solution).len(), 2);
        assert_eq!(arg.nodes_of_kind(NodeKind::Strategy).len(), 1);
        // 3 line goals + 1 strategy + 2 evidence = 6.
        assert_eq!(arg.len(), 6);
    }
}
