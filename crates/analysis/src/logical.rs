//! Logical lint passes: solver-backed checks on one compiled
//! [`ArgumentTheory`] session, plus the re-routed formal/informal
//! fallacy detectors.
//!
//! Every pass is written against `&mut ArgumentTheory` and is
//! self-contained (it re-derives its own gating facts, e.g. premise
//! consistency, with cheap assumption rounds) so the compile-once
//! engine ([`crate::lint_compiled`]) and the recompile-per-lint
//! baseline ([`crate::baseline::lint_argument_recompiling`]) can run
//! the *same* pass bodies and differ only in how many Tseitin
//! compilations they pay. Assumption rounds always retract fully
//! ([`casekit_logic::prop::Theory::check_under`]), so passes compose in
//! any order on one session.

use crate::diagnostic::{LintCode, Sink};
use crate::witness::WitnessPool;
use casekit_core::semantics::ArgumentTheory;
use casekit_core::{Argument, NodeId, NodeIdx};
use casekit_fallacies::formal::Finding;
use casekit_fallacies::taxonomy::FormalFallacy;
use casekit_fallacies::{formal, informal};
use casekit_logic::prop::Lit;

/// Runs every logical and fallacy pass against one shared session —
/// and one shared [`WitnessPool`], so a model found answering one
/// pass's satisfiability question gets reused by every later pass
/// (the recompiling baseline starts a fresh pool per pass, because its
/// per-tool sessions share nothing).
pub(crate) fn run_all(argument: &Argument, theory: &mut ArgumentTheory, sink: &mut Sink<'_>) {
    let mut pool = WitnessPool::new();
    run_all_with(argument, theory, &mut pool, sink);
}

/// [`run_all`] against a caller-owned [`WitnessPool`] — the entry point
/// for long-lived sessions (the incremental service) whose pool
/// outlives any single lint run. Answer-invariant with respect to the
/// pool's contents, so warm and cold pools produce byte-identical
/// diagnostics.
pub(crate) fn run_all_with(
    argument: &Argument,
    theory: &mut ArgumentTheory,
    pool: &mut WitnessPool,
    sink: &mut Sink<'_>,
) {
    pass_non_deductive(argument, theory, sink);
    pass_inconsistent_premises(argument, theory, pool, sink);
    pass_tautological_conclusion(argument, theory, pool, sink);
    pass_unsatisfiable_conclusion(argument, theory, pool, sink);
    pass_entailment(argument, theory, pool, sink);
    pass_redundant_premises(argument, theory, pool, sink);
    pass_circular_steps(argument, theory, pool, sink);
    pass_fallacies(argument, theory, pool, sink);
    pass_quantifier(argument, sink);
}

fn premise_ids(argument: &Argument, theory: &ArgumentTheory) -> Vec<NodeId> {
    theory
        .premise_indices()
        .into_iter()
        .map(|idx| argument.id_at(idx).clone())
        .collect()
}

/// CK106: formalised steps whose support does not entail the claim.
pub(crate) fn pass_non_deductive(
    argument: &Argument,
    theory: &mut ArgumentTheory,
    sink: &mut Sink<'_>,
) {
    for idx in theory.non_deductive_step_indices() {
        let related: Vec<NodeId> = theory
            .step_children(idx)
            .unwrap_or(&[])
            .iter()
            .map(|c| argument.id_at(*c).clone())
            .collect();
        sink.emit(
            LintCode::NonDeductiveStep,
            Some(argument.id_at(idx).clone()),
            related,
            format!(
                "the support for `{}` does not deductively entail it",
                argument.id_at(idx)
            ),
            Some("strengthen the support, weaken the claim, or argue the gap explicitly".into()),
        );
    }
}

/// CK101: the formal premises are jointly unsatisfiable.
pub(crate) fn pass_inconsistent_premises(
    argument: &Argument,
    theory: &mut ArgumentTheory,
    pool: &mut WitnessPool,
    sink: &mut Sink<'_>,
) {
    let premise_lits = theory.premise_lits();
    if premise_lits.is_empty() {
        return;
    }
    let ids = premise_ids(argument, theory);
    if pool.check(theory.theory_mut(), &premise_lits) {
        return;
    }
    sink.emit(
        LintCode::InconsistentPremises,
        Some(ids[0].clone()),
        ids[1..].to_vec(),
        format!(
            "the {} formal premises cannot all be true together",
            ids.len()
        ),
        Some("at least one premise must be false; recheck the flagged leaves".into()),
    );
}

/// CK102: the conclusion is a tautology — the evidence cannot matter.
pub(crate) fn pass_tautological_conclusion(
    argument: &Argument,
    theory: &mut ArgumentTheory,
    pool: &mut WitnessPool,
    sink: &mut Sink<'_>,
) {
    let (Some(conclusion_lit), Some(conclusion_idx)) =
        (theory.conclusion_lit(), theory.conclusion_index())
    else {
        return;
    };
    if pool.check(theory.theory_mut(), &[!conclusion_lit]) {
        return;
    }
    sink.emit(
        LintCode::TautologicalConclusion,
        Some(argument.id_at(conclusion_idx).clone()),
        Vec::new(),
        format!(
            "the conclusion at `{}` is a tautology: it holds regardless of any evidence",
            argument.id_at(conclusion_idx)
        ),
        Some("state a falsifiable claim; a vacuous conclusion assures nothing".into()),
    );
}

/// CK103: the conclusion is unsatisfiable — no evidence could help.
pub(crate) fn pass_unsatisfiable_conclusion(
    argument: &Argument,
    theory: &mut ArgumentTheory,
    pool: &mut WitnessPool,
    sink: &mut Sink<'_>,
) {
    let (Some(conclusion_lit), Some(conclusion_idx)) =
        (theory.conclusion_lit(), theory.conclusion_index())
    else {
        return;
    };
    if pool.check(theory.theory_mut(), &[conclusion_lit]) {
        return;
    }
    sink.emit(
        LintCode::UnsatisfiableConclusion,
        Some(argument.id_at(conclusion_idx).clone()),
        Vec::new(),
        format!(
            "the conclusion at `{}` is unsatisfiable: no state of the world makes it true",
            argument.id_at(conclusion_idx)
        ),
        Some("the claim contradicts itself; restate it".into()),
    );
}

/// CK107: the premises do not entail the conclusion. The same
/// question as [`ArgumentTheory::root_entailed`] — premises assumed,
/// conclusion denied, SAT means a counterexample — asked through the
/// witness pool.
pub(crate) fn pass_entailment(
    argument: &Argument,
    theory: &mut ArgumentTheory,
    pool: &mut WitnessPool,
    sink: &mut Sink<'_>,
) {
    let (Some(conclusion_lit), Some(conclusion_idx)) =
        (theory.conclusion_lit(), theory.conclusion_index())
    else {
        return;
    };
    let mut assumptions = theory.premise_lits();
    if assumptions.is_empty() {
        return;
    }
    assumptions.push(!conclusion_lit);
    if !pool.check(theory.theory_mut(), &assumptions) {
        return; // entailed
    }
    let ids = premise_ids(argument, theory);
    sink.emit(
        LintCode::ConclusionNotEntailed,
        Some(argument.id_at(conclusion_idx).clone()),
        ids,
        format!(
            "the formal premises do not entail the conclusion at `{}`",
            argument.id_at(conclusion_idx)
        ),
        Some("add the missing premise or weaken the conclusion".into()),
    );
}

/// CK104: Rushby-style drop-probes — assume every premise but one plus
/// the negated conclusion; unsatisfiability means the dropped premise
/// was never needed. Gated on a consistent, entailed premise set
/// (inconsistent premises entail everything, which would mark every
/// premise "redundant" while CK101/CK107 already name the real defect).
pub(crate) fn pass_redundant_premises(
    argument: &Argument,
    theory: &mut ArgumentTheory,
    pool: &mut WitnessPool,
    sink: &mut Sink<'_>,
) {
    let premise_lits = theory.premise_lits();
    let (Some(conclusion_lit), Some(conclusion_idx)) =
        (theory.conclusion_lit(), theory.conclusion_index())
    else {
        return;
    };
    if premise_lits.is_empty() {
        return;
    }
    let premise_indices = theory.premise_indices();
    let session = theory.theory_mut();
    if !pool.check(session, &premise_lits) {
        return; // inconsistent: CK101's finding, not a redundancy.
    }
    let with_denied_conclusion: Vec<Lit> = premise_lits
        .iter()
        .copied()
        .chain([!conclusion_lit])
        .collect();
    if pool.check(session, &with_denied_conclusion) {
        return; // not entailed: CK107's finding.
    }
    for (i, dropped) in premise_indices.iter().enumerate() {
        let rest: Vec<Lit> = premise_lits
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(_, lit)| *lit)
            .chain([!conclusion_lit])
            .collect();
        if !pool.check(session, &rest) {
            sink.emit(
                LintCode::RedundantPremise,
                Some(argument.id_at(*dropped).clone()),
                vec![argument.id_at(conclusion_idx).clone()],
                format!(
                    "premise `{}` is idle: the remaining premises already entail the conclusion",
                    argument.id_at(*dropped)
                ),
                Some("drop it, or strengthen the conclusion it was meant to carry".into()),
            );
        }
    }
}

/// CK105: a support child logically equivalent to its parent claim —
/// the step restates rather than justifies. Two assumption rounds per
/// (step, child) edge against the compiled step literals.
pub(crate) fn pass_circular_steps(
    argument: &Argument,
    theory: &mut ArgumentTheory,
    pool: &mut WitnessPool,
    sink: &mut Sink<'_>,
) {
    // A step's parent claim literal plus its (child, literal) pairs.
    type Step = (NodeIdx, Lit, Vec<(NodeIdx, Lit)>);
    let steps: Vec<Step> = theory
        .step_indices()
        .into_iter()
        .filter_map(|parent| {
            let (parent_lit, child_lits) = theory.step_lits(parent)?;
            let children = theory.step_children(parent)?;
            Some((
                parent,
                parent_lit,
                children
                    .iter()
                    .copied()
                    .zip(child_lits.iter().copied())
                    .collect(),
            ))
        })
        .collect();
    let session = theory.theory_mut();
    for (parent, parent_lit, children) in steps {
        for (child, child_lit) in children {
            // Child-true/parent-false first: the redundancy pass's
            // drop-probe witnesses (premises true, conclusion false)
            // usually cover it, and a hit short-circuits the second
            // direction away without a solve.
            let equivalent = !pool.check(session, &[child_lit, !parent_lit])
                && !pool.check(session, &[parent_lit, !child_lit]);
            if equivalent {
                sink.emit(
                    LintCode::CircularStep,
                    Some(argument.id_at(child).clone()),
                    vec![argument.id_at(parent).clone()],
                    format!(
                        "`{}` is logically equivalent to the claim `{}` it supports",
                        argument.id_at(child),
                        argument.id_at(parent)
                    ),
                    Some("support the claim with independent content, not a restatement".into()),
                );
            }
        }
    }
}

/// The stable code for each formal fallacy.
fn fallacy_code(fallacy: FormalFallacy) -> LintCode {
    match fallacy {
        FormalFallacy::BeggingTheQuestion => LintCode::BeggingTheQuestion,
        FormalFallacy::IncompatiblePremises => LintCode::IncompatiblePremises,
        FormalFallacy::PremiseConclusionContradiction => LintCode::PremiseConclusionContradiction,
        FormalFallacy::DenyingTheAntecedent => LintCode::DenyingTheAntecedent,
        FormalFallacy::AffirmingTheConsequent => LintCode::AffirmingTheConsequent,
        FormalFallacy::FalseConversion => LintCode::FalseConversion,
        FormalFallacy::UndistributedMiddle => LintCode::UndistributedMiddle,
        FormalFallacy::IllicitDistribution => LintCode::IllicitDistribution,
    }
}

fn fallacy_hint(code: LintCode) -> Option<String> {
    let hint = match code {
        LintCode::BeggingTheQuestion => {
            "support the conclusion with something other than the conclusion"
        }
        LintCode::IncompatiblePremises => "at least one of the flagged premises must go",
        LintCode::PremiseConclusionContradiction => {
            "the premise and the conclusion cannot both hold"
        }
        LintCode::DenyingTheAntecedent => {
            "an implication says nothing when its antecedent is false"
        }
        LintCode::AffirmingTheConsequent => {
            "an implication does not run backwards from its consequent"
        }
        LintCode::FalseConversion => {
            "an implication does not entail its converse; use a biconditional if both directions hold"
        }
        _ => return None,
    };
    Some(hint.into())
}

/// Routes formal-fallacy [`Finding`]s into the diagnostic stream,
/// mapping premise indices to the argument's premise nodes. Shared by
/// the compile-once engine and the recompiling baseline.
pub(crate) fn emit_fallacy_findings(
    argument: &Argument,
    premise_indices: &[NodeIdx],
    conclusion_idx: Option<NodeIdx>,
    findings: Vec<Finding>,
    sink: &mut Sink<'_>,
) {
    for finding in findings {
        let code = fallacy_code(finding.fallacy);
        let involved: Vec<NodeId> = finding
            .premises
            .iter()
            .filter_map(|i| premise_indices.get(*i))
            .map(|idx| argument.id_at(*idx).clone())
            .collect();
        let (primary, mut related) = match involved.split_first() {
            Some((first, rest)) => (Some(first.clone()), rest.to_vec()),
            None => (
                conclusion_idx.map(|idx| argument.id_at(idx).clone()),
                vec![],
            ),
        };
        if let (Some(conclusion), Some(primary_id)) = (conclusion_idx, &primary) {
            let conclusion_id = argument.id_at(conclusion);
            if conclusion_id != primary_id && !related.contains(conclusion_id) {
                related.push(conclusion_id.clone());
            }
        }
        sink.emit(code, primary, related, finding.detail, fallacy_hint(code));
    }
}

/// CK110–CK115: the formal fallacy detectors, run against the compiled
/// premise/conclusion literals of this session — no second Tseitin pass.
pub(crate) fn pass_fallacies(
    argument: &Argument,
    theory: &mut ArgumentTheory,
    pool: &mut WitnessPool,
    sink: &mut Sink<'_>,
) {
    let premises = casekit_core::semantics::formal_premises(argument);
    let Some(conclusion) = casekit_core::semantics::formal_conclusion(argument) else {
        return;
    };
    if premises.is_empty() {
        return;
    }
    let premise_lits = theory.premise_lits();
    let Some(conclusion_lit) = theory.conclusion_lit() else {
        return;
    };
    let premise_indices = theory.premise_indices();
    let conclusion_idx = theory.conclusion_index();
    let findings = formal::detect_all_compiled_with(
        theory.theory_mut(),
        pool,
        premise_lits,
        conclusion_lit,
        &premises,
        conclusion,
    );
    emit_fallacy_findings(argument, &premise_indices, conclusion_idx, findings, sink);
}

/// CK120: the lexical quantifier-mismatch cue (a universal claim
/// supported only by partial evidence). No solver involved.
pub(crate) fn pass_quantifier(argument: &Argument, sink: &mut Sink<'_>) {
    for cue in informal::quantifier_mismatch_lint(argument) {
        sink.emit(
            LintCode::QuantifierMismatch,
            cue.node,
            Vec::new(),
            cue.detail,
            Some("check whether the cited evidence covers the whole population".into()),
        );
    }
}
