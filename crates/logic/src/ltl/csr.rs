//! The interned LTL core: CSR Kripke graphs, hash-consed compiled
//! formulas, and closure-table lasso evaluation.
//!
//! The seed checker in [`super::kripke`] enumerates lassos and evaluates
//! the formula recursively on a [`super::Trace`] — every candidate lasso
//! re-clones each state's `BTreeSet<Arc<str>>` labels and re-hashes
//! proposition strings at every step of every subformula. This module is
//! the index-plane replacement:
//!
//! * **Graph** — [`CsrKripke`] stores the transition relation in
//!   compressed-sparse-row form (a flat `offsets`/`targets` pair, like
//!   `af::Adjacency`) and each state's labels as a bitset over an
//!   interned `PropId` universe, so "does prop p hold in state s" is one
//!   shift-and-mask.
//! * **Formula** — [`CompiledLtl`] hash-conses the syntax tree into a
//!   flat node arena with children stored before parents; propositions
//!   become `PropId`s at compile time (a prop absent from the model
//!   compiles to `False`, matching the trace evaluator's treatment of
//!   unknown names), and shared subformulas share one node.
//! * **Evaluation** — a closure table: one `bool` row per node over the
//!   lasso's positions, filled children-first. Temporal rows are
//!   backward fixpoint passes — two sweeps over the loop region (the
//!   value at the loop head is exact after the first sweep, the second
//!   propagates the corrected wrap-around), then one sweep over the
//!   stem. Evaluating a lasso costs O(nodes × positions) with no
//!   allocation beyond a reused scratch table.
//!
//! The DFS in [`CsrKripke::check_bounded`] visits lassos in exactly the
//! seed checker's order (deadlocks stutter on their last state; a loop
//! closes at the first on-path revisit), so counterexamples compare
//! equal to [`super::Kripke::check_bounded_naive`]'s.

use super::ast::Ltl;
use super::kripke::{CheckResult, Kripke, StateId};
use crate::error::LogicError;
use std::collections::HashMap;
use std::sync::Arc;

/// A Kripke structure on the index plane: CSR out-edges and bitset
/// labels over interned proposition ids.
#[derive(Debug, Clone)]
pub struct CsrKripke {
    /// Bitset words per state.
    words: usize,
    /// `words` label words per state, concatenated.
    labels: Vec<u64>,
    /// CSR row offsets into `targets`; length `states + 1`.
    offsets: Vec<u32>,
    /// Flattened successor lists.
    targets: Vec<u32>,
    /// Initial states, in insertion order.
    initial: Vec<u32>,
    /// Interned proposition universe.
    prop_index: HashMap<Arc<str>, u32>,
}

impl CsrKripke {
    /// Compiles a name-plane [`Kripke`] structure onto the CSR plane.
    pub fn compile(k: &Kripke) -> CsrKripke {
        let n = k.len();
        let mut prop_index: HashMap<Arc<str>, u32> = HashMap::new();
        for s in 0..n {
            for p in k.labels_of(s) {
                let next = prop_index.len() as u32;
                prop_index.entry(Arc::from(p)).or_insert(next);
            }
        }
        let words = prop_index.len().div_ceil(64);
        let mut labels = vec![0u64; n * words];
        for s in 0..n {
            for p in k.labels_of(s) {
                let idx = prop_index[p];
                labels[s * words + (idx / 64) as usize] |= 1u64 << (idx % 64);
            }
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::new();
        offsets.push(0u32);
        for s in 0..n {
            targets.extend(k.successors_of(s).iter().map(|&t| t as u32));
            offsets.push(targets.len() as u32);
        }
        let initial = k.initial_states().iter().map(|&s| s as u32).collect();
        CsrKripke {
            words,
            labels,
            offsets,
            targets,
            initial,
            prop_index,
        }
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the structure has no states.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of distinct propositions across all states.
    pub fn prop_count(&self) -> usize {
        self.prop_index.len()
    }

    /// The successors of a state, in insertion order.
    pub fn successors_of(&self, state: u32) -> &[u32] {
        let s = state as usize;
        &self.targets[self.offsets[s] as usize..self.offsets[s + 1] as usize]
    }

    fn has_prop(&self, state: u32, prop: u32) -> bool {
        let word = self.labels[state as usize * self.words + (prop / 64) as usize];
        word >> (prop % 64) & 1 == 1
    }

    /// Checks a compiled formula on every lasso of total length ≤
    /// `bound` from each initial state, in the seed checker's visiting
    /// order. Errors when the structure has no initial states.
    pub fn check_bounded(
        &self,
        formula: &CompiledLtl,
        bound: usize,
    ) -> Result<CheckResult, LogicError> {
        if self.initial.is_empty() {
            return Err(LogicError::NoInitialState);
        }
        let mut eval = LassoEval::default();
        // Position-on-path index: `pos + 1` when the state is on the
        // current DFS path, 0 when not — O(1) loop-closure detection.
        let mut pos_of = vec![0u32; self.len()];
        for &init in &self.initial {
            let mut path = vec![init];
            pos_of[init as usize] = 1;
            let found = self.dfs(formula, &mut eval, &mut path, &mut pos_of, bound);
            pos_of[init as usize] = 0;
            if let Some(cex) = found {
                return Ok(cex);
            }
        }
        Ok(CheckResult::HoldsWithinBound)
    }

    fn dfs(
        &self,
        formula: &CompiledLtl,
        eval: &mut LassoEval,
        path: &mut Vec<u32>,
        pos_of: &mut [u32],
        bound: usize,
    ) -> Option<CheckResult> {
        let current = *path.last().expect("path non-empty");
        let succs = self.successors_of(current);

        // Deadlock: treat as stuttering lasso on the last state.
        if succs.is_empty() {
            let ls = path.len() - 1;
            if !eval.eval(formula, self, path, ls) {
                return Some(counterexample(path, ls));
            }
            return None;
        }

        for &next in succs {
            let on_path = pos_of[next as usize];
            if on_path != 0 {
                let ls = (on_path - 1) as usize;
                if !eval.eval(formula, self, path, ls) {
                    return Some(counterexample(path, ls));
                }
            } else if path.len() < bound {
                path.push(next);
                pos_of[next as usize] = path.len() as u32;
                let found = self.dfs(formula, eval, path, pos_of, bound);
                pos_of[next as usize] = 0;
                path.pop();
                if found.is_some() {
                    return found;
                }
            }
        }
        None
    }
}

fn counterexample(path: &[u32], loop_start: usize) -> CheckResult {
    CheckResult::CounterExample {
        prefix: path[..loop_start].iter().map(|&s| s as StateId).collect(),
        looped: path[loop_start..].iter().map(|&s| s as StateId).collect(),
    }
}

/// One node of a compiled formula; children are stored at smaller
/// indices than their parents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum CNode {
    True,
    False,
    Prop(u32),
    Not(u32),
    And(u32, u32),
    Or(u32, u32),
    Implies(u32, u32),
    Next(u32),
    Finally(u32),
    Globally(u32),
    Until(u32, u32),
    Release(u32, u32),
}

/// An [`Ltl`] formula compiled against a [`CsrKripke`]'s proposition
/// universe: a hash-consed flat node arena, children before parents.
#[derive(Debug, Clone)]
pub struct CompiledLtl {
    nodes: Vec<CNode>,
    root: u32,
}

impl CompiledLtl {
    /// Compiles `formula` against `model`'s propositions. Propositions
    /// the model never mentions compile to `False`, matching the trace
    /// evaluator's treatment of unknown names.
    pub fn compile(formula: &Ltl, model: &CsrKripke) -> CompiledLtl {
        let mut nodes = Vec::with_capacity(formula.size());
        let mut index = HashMap::new();
        let root = compile_into(formula, model, &mut nodes, &mut index);
        CompiledLtl { nodes, root }
    }

    /// Number of distinct compiled nodes (shared subformulas count once).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the compiled formula has no nodes (never: every formula
    /// has at least its root).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

fn intern(nodes: &mut Vec<CNode>, index: &mut HashMap<CNode, u32>, node: CNode) -> u32 {
    if let Some(&i) = index.get(&node) {
        return i;
    }
    let i = nodes.len() as u32;
    nodes.push(node);
    index.insert(node, i);
    i
}

fn compile_into(
    f: &Ltl,
    model: &CsrKripke,
    nodes: &mut Vec<CNode>,
    index: &mut HashMap<CNode, u32>,
) -> u32 {
    let node = match f {
        Ltl::True => CNode::True,
        Ltl::False => CNode::False,
        Ltl::Prop(p) => match model.prop_index.get(p.as_ref()) {
            Some(&id) => CNode::Prop(id),
            None => CNode::False,
        },
        Ltl::Not(a) => CNode::Not(compile_into(a, model, nodes, index)),
        Ltl::Next(a) => CNode::Next(compile_into(a, model, nodes, index)),
        Ltl::Finally(a) => CNode::Finally(compile_into(a, model, nodes, index)),
        Ltl::Globally(a) => CNode::Globally(compile_into(a, model, nodes, index)),
        Ltl::And(a, b) => CNode::And(
            compile_into(a, model, nodes, index),
            compile_into(b, model, nodes, index),
        ),
        Ltl::Or(a, b) => CNode::Or(
            compile_into(a, model, nodes, index),
            compile_into(b, model, nodes, index),
        ),
        Ltl::Implies(a, b) => CNode::Implies(
            compile_into(a, model, nodes, index),
            compile_into(b, model, nodes, index),
        ),
        Ltl::Until(a, b) => CNode::Until(
            compile_into(a, model, nodes, index),
            compile_into(b, model, nodes, index),
        ),
        Ltl::Release(a, b) => CNode::Release(
            compile_into(a, model, nodes, index),
            compile_into(b, model, nodes, index),
        ),
    };
    intern(nodes, index, node)
}

/// Reusable closure-table scratch for lasso evaluation.
#[derive(Debug, Default)]
struct LassoEval {
    table: Vec<bool>,
}

/// Backward fixpoint fill for a temporal row over a lasso: two sweeps
/// over the loop region (the loop head's value is exact after the first
/// — a least-fixpoint witness or greatest-fixpoint refutation for the
/// head lies within one unrolling — and the second sweep propagates the
/// corrected wrap-around), then one sweep over the stem.
fn fixpoint_backward(
    row: &mut [bool],
    loop_start: usize,
    init: bool,
    step: impl Fn(usize, bool) -> bool,
) {
    let len = row.len();
    row.fill(init);
    for _pass in 0..2 {
        for i in (loop_start..len).rev() {
            let nxt = if i + 1 < len {
                row[i + 1]
            } else {
                row[loop_start]
            };
            row[i] = step(i, nxt);
        }
    }
    for i in (0..loop_start).rev() {
        row[i] = step(i, row[i + 1]);
    }
}

impl LassoEval {
    /// Evaluates the compiled formula at position 0 of the lasso
    /// `path[..loop_start] · path[loop_start..]ω`.
    fn eval(
        &mut self,
        formula: &CompiledLtl,
        model: &CsrKripke,
        path: &[u32],
        loop_start: usize,
    ) -> bool {
        let len = path.len();
        self.table.clear();
        self.table.resize(formula.nodes.len() * len, false);
        for (idx, node) in formula.nodes.iter().enumerate() {
            let (done, rest) = self.table.split_at_mut(idx * len);
            let row = &mut rest[..len];
            let get = |child: u32, i: usize| done[child as usize * len + i];
            match *node {
                CNode::True => row.fill(true),
                CNode::False => {} // rows start false
                CNode::Prop(p) => {
                    for (i, &s) in path.iter().enumerate() {
                        row[i] = model.has_prop(s, p);
                    }
                }
                CNode::Not(a) => {
                    for (i, r) in row.iter_mut().enumerate() {
                        *r = !get(a, i);
                    }
                }
                CNode::And(a, b) => {
                    for (i, r) in row.iter_mut().enumerate() {
                        *r = get(a, i) && get(b, i);
                    }
                }
                CNode::Or(a, b) => {
                    for (i, r) in row.iter_mut().enumerate() {
                        *r = get(a, i) || get(b, i);
                    }
                }
                CNode::Implies(a, b) => {
                    for (i, r) in row.iter_mut().enumerate() {
                        *r = !get(a, i) || get(b, i);
                    }
                }
                CNode::Next(a) => {
                    for (i, r) in row.iter_mut().enumerate().take(len - 1) {
                        *r = get(a, i + 1);
                    }
                    row[len - 1] = get(a, loop_start);
                }
                CNode::Finally(a) => {
                    fixpoint_backward(row, loop_start, false, |i, nxt| get(a, i) || nxt);
                }
                CNode::Globally(a) => {
                    fixpoint_backward(row, loop_start, true, |i, nxt| get(a, i) && nxt);
                }
                CNode::Until(a, b) => fixpoint_backward(row, loop_start, false, |i, nxt| {
                    get(b, i) || (get(a, i) && nxt)
                }),
                CNode::Release(a, b) => fixpoint_backward(row, loop_start, true, |i, nxt| {
                    get(b, i) && (get(a, i) || nxt)
                }),
            }
        }
        self.table[formula.root as usize * len]
    }
}

#[cfg(test)]
mod tests {
    use super::super::parser::parse_ltl;
    use super::super::trace::Trace;
    use super::*;

    /// Builds a single-lasso Kripke structure from explicit label lists
    /// so closure-table evaluation can be compared against the trace
    /// evaluator on the same word.
    fn lasso_eval(prefix: &[&[&str]], looped: &[&[&str]], src: &str) -> (bool, bool) {
        let mut k = Kripke::new();
        let states: Vec<_> = prefix
            .iter()
            .chain(looped.iter())
            .map(|props| k.add_state(props.iter().copied()))
            .collect();
        for w in states.windows(2) {
            k.add_transition(w[0], w[1]).unwrap();
        }
        k.add_transition(states[states.len() - 1], states[prefix.len()])
            .unwrap();
        let csr = CsrKripke::compile(&k);
        let f = parse_ltl(src).unwrap();
        let compiled = CompiledLtl::compile(&f, &csr);
        let mut eval = LassoEval::default();
        let path: Vec<u32> = states.iter().map(|&s| s as u32).collect();
        let fast = eval.eval(&compiled, &csr, &path, prefix.len());
        let slow = Trace::lasso(
            prefix.iter().map(|p| p.to_vec()).collect::<Vec<_>>(),
            looped.iter().map(|p| p.to_vec()).collect::<Vec<_>>(),
        )
        .satisfies(&f);
        (fast, slow)
    }

    /// (stem labels, loop labels, formula source) — one differential case.
    type LassoCase<'a> = (&'a [&'a [&'a str]], &'a [&'a [&'a str]], &'a str);

    #[test]
    fn closure_table_matches_trace_semantics() {
        let cases: &[LassoCase] = &[
            (&[&["p"]], &[&["p"]], "G p"),
            (&[&["p"]], &[&[]], "G p"),
            (&[&[]], &[&["q"]], "F q"),
            (&[&["q"]], &[&[]], "F q"),
            (&[&[]], &[&[]], "F q"),
            (&[&["a"], &["a"]], &[&["b"]], "a U b"),
            (&[&["a"]], &[&["a"]], "a U b"),
            (&[], &[&["a"], &["b"]], "a U b"),
            (&[], &[&["a"], &["b"]], "X b"),
            (&[], &[&["a"], &["b"]], "X a"),
            (&[&["a"]], &[&["b"]], "X (b & X b)"),
            (&[], &[&["b"], &["a", "b"]], "a R b"),
            (&[], &[&["b"], &["b"]], "a R b"),
            (&[], &[&["b"], &[]], "a R b"),
            (&[&["r"]], &[&[], &["g"]], "G (r -> F g)"),
            (&[&["r"]], &[&["r"]], "G (r -> F g)"),
            (&[&["p"]], &[&["q"], &["p"]], "G F p & G F q"),
            (&[], &[&["p"]], "~p | X p"),
            (&[], &[&[]], "true U p"),
            (&[], &[&["p"]], "false R p"),
        ];
        for (prefix, looped, src) in cases {
            let (fast, slow) = lasso_eval(prefix, looped, src);
            assert_eq!(
                fast, slow,
                "formula `{src}` on prefix {prefix:?} loop {looped:?}"
            );
        }
    }

    #[test]
    fn unknown_props_compile_to_false() {
        let mut k = Kripke::new();
        let a = k.add_state(vec!["p"]);
        k.add_transition(a, a).unwrap();
        let csr = CsrKripke::compile(&k);
        let compiled = CompiledLtl::compile(&parse_ltl("G mystery").unwrap(), &csr);
        let mut eval = LassoEval::default();
        assert!(!eval.eval(&compiled, &csr, &[a as u32], 0));
        let compiled = CompiledLtl::compile(&parse_ltl("G ~mystery").unwrap(), &csr);
        assert!(eval.eval(&compiled, &csr, &[a as u32], 0));
    }

    #[test]
    fn shared_subformulas_compile_once() {
        let mut k = Kripke::new();
        let a = k.add_state(vec!["p"]);
        k.add_transition(a, a).unwrap();
        let csr = CsrKripke::compile(&k);
        // `F p & G F p` shares both `p` and `F p`.
        let compiled = CompiledLtl::compile(&parse_ltl("F p & G F p").unwrap(), &csr);
        assert_eq!(compiled.len(), 4); // p, F p, G F p, And
        assert!(!compiled.is_empty());
    }

    #[test]
    fn csr_layout_round_trips_the_graph() {
        let mut k = Kripke::new();
        let s0 = k.add_state(vec!["x"]);
        let s1 = k.add_state(Vec::<&str>::new());
        let s2 = k.add_state(vec!["x", "y"]);
        k.add_transition(s0, s1).unwrap();
        k.add_transition(s0, s2).unwrap();
        k.add_transition(s2, s0).unwrap();
        k.add_initial(s0).unwrap();
        let csr = CsrKripke::compile(&k);
        assert_eq!(csr.len(), 3);
        assert!(!csr.is_empty());
        assert_eq!(csr.successors_of(s0 as u32), &[s1 as u32, s2 as u32]);
        assert_eq!(csr.successors_of(s1 as u32), &[] as &[u32]);
        assert_eq!(csr.successors_of(s2 as u32), &[s0 as u32]);
        assert_eq!(csr.prop_count(), 2);
        let x = csr.prop_index["x"];
        let y = csr.prop_index["y"];
        assert!(csr.has_prop(s0 as u32, x) && !csr.has_prop(s0 as u32, y));
        assert!(!csr.has_prop(s1 as u32, x));
        assert!(csr.has_prop(s2 as u32, x) && csr.has_prop(s2 as u32, y));
    }

    #[test]
    fn check_bounded_requires_initial_states() {
        let mut k = Kripke::new();
        k.add_state(vec!["p"]);
        let csr = CsrKripke::compile(&k);
        let compiled = CompiledLtl::compile(&parse_ltl("p").unwrap(), &csr);
        assert_eq!(
            csr.check_bounded(&compiled, 5),
            Err(LogicError::NoInitialState)
        );
    }

    #[test]
    fn many_props_span_multiple_bitset_words() {
        let mut k = Kripke::new();
        let props: Vec<String> = (0..130).map(|i| format!("p{i}")).collect();
        let a = k.add_state(props.iter().map(|s| s.as_str()));
        let b = k.add_state(vec!["p129"]);
        k.add_transition(a, b).unwrap();
        k.add_transition(b, a).unwrap();
        k.add_initial(a).unwrap();
        let csr = CsrKripke::compile(&k);
        assert_eq!(csr.words, 3);
        let f = parse_ltl("G F p129").unwrap();
        let compiled = CompiledLtl::compile(&f, &csr);
        assert!(csr.check_bounded(&compiled, 6).unwrap().holds());
        let f = parse_ltl("G p0").unwrap();
        let compiled = CompiledLtl::compile(&f, &csr);
        assert!(!csr.check_bounded(&compiled, 6).unwrap().holds());
    }
}
