//! The PR 2 iterative two-watched-literal DPLL, preserved verbatim as
//! [`DpllSolver`] — the differential-testing oracle and measured
//! baseline for the CDCL core that replaced it.
//!
//! This is chronological search: on conflict it flips the deepest
//! untried decision and rescans, with no memory of *why* the conflict
//! happened. The CDCL solver in the parent module learns a clause from
//! every conflict and jumps straight back to the level where that
//! clause becomes unit; on instances with an unsatisfiable core buried
//! under irrelevant decisions the difference is exponential (measured
//! by the hard-instance population in `repro logic`). The API is
//! intentionally identical to [`Solver`](super::Solver) — `new_var`,
//! `add_clause`, `assume`/`check`/`retract`, `value`/`var_value` — so
//! the property tests can drive both engines with the same script.

use crate::prop::intern::{Lit, Var};

/// A backtracking point: one decision plus everything propagated from it.
#[derive(Debug, Clone, Copy)]
struct Level {
    /// Trail index of the decision literal.
    trail_start: usize,
    /// Branch-order cursor to restore when this level is undone.
    cursor: usize,
    /// Whether the complementary phase has already been tried.
    flipped: bool,
}

/// An incremental SAT solver over packed literals: iterative DPLL with
/// two watched literals, an explicit trail, and chronological
/// backtracking.
///
/// Clauses are permanent once added; queries vary through assumptions.
/// A typical session:
///
/// ```
/// use casekit_logic::prop::solver::dpll::DpllSolver;
/// let mut s = DpllSolver::new();
/// let p = s.new_var();
/// let q = s.new_var();
/// s.add_clause(&[p.negative(), q.positive()]); // p -> q
/// s.assume(p.positive());
/// s.assume(q.negative());
/// assert!(!s.check()); // p & ~q contradicts p -> q
/// s.retract(); // drop ~q
/// assert!(s.check());
/// ```
#[derive(Debug, Clone, Default)]
pub struct DpllSolver {
    /// Flat clause arena: every clause's literals, back to back.
    lits: Vec<Lit>,
    /// Per clause: `(start, end)` bounds into `lits`. Slots `start` and
    /// `start + 1` hold the two watched literals.
    bounds: Vec<(u32, u32)>,
    /// Per literal code: indices of clauses currently watching it.
    watches: Vec<Vec<u32>>,
    /// Unit clauses, re-asserted at the start of every check.
    units: Vec<Lit>,
    /// Whether an empty (trivially false) clause was added.
    empty_clause: bool,
    /// Per variable: `0` unassigned, `1` true, `-1` false.
    assign: Vec<i8>,
    /// Assigned literals in assignment order.
    trail: Vec<Lit>,
    /// Propagation queue head (index into `trail`).
    prop_head: usize,
    /// Open decision levels.
    levels: Vec<Level>,
    /// Per variable: clause-occurrence count (decision activity).
    occurrence: Vec<u64>,
    /// Variables in descending activity order (rebuilt lazily).
    order: Vec<Var>,
    order_dirty: bool,
    /// Branch-order cursor: variables before it are known assigned.
    cursor: usize,
    /// Current assumption stack.
    assumptions: Vec<Lit>,
    /// Decisions made across the solver's lifetime (baseline metric).
    decisions: u64,
}

impl DpllSolver {
    /// An empty solver: no variables, no clauses.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        // Lit packs the variable index shifted left by one, so the
        // index must stay below 2^31 — guard that bound, not u32::MAX.
        let index = u32::try_from(self.assign.len())
            .ok()
            .filter(|i| *i <= u32::MAX >> 1)
            .expect("variable count fits in a packed literal (2^31)");
        let v = Var(index);
        self.assign.push(0);
        self.occurrence.push(0);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order_dirty = true;
        v
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Number of clauses in the database (including units).
    pub fn num_clauses(&self) -> usize {
        self.bounds.len() + self.units.len() + usize::from(self.empty_clause)
    }

    /// Decisions made across the solver's lifetime.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Adds a permanent clause (a disjunction of `lits`).
    ///
    /// Duplicate literals collapse; tautologous clauses (`p | ~p | …`)
    /// are dropped; the empty clause marks the database unsatisfiable.
    ///
    /// # Panics
    ///
    /// Panics if any literal's variable was not allocated by
    /// [`DpllSolver::new_var`].
    pub fn add_clause(&mut self, lits: &[Lit]) {
        for l in lits {
            assert!(
                l.var().index() < self.assign.len(),
                "literal {l} references an unallocated variable"
            );
        }
        // Normalise: sort by code, drop duplicates, detect tautology
        // (complementary literals are adjacent codes after sorting).
        self.undo_to(0);
        self.levels.clear();
        let mut clause: Vec<Lit> = lits.to_vec();
        clause.sort_unstable_by_key(|l| l.code());
        clause.dedup();
        if clause.windows(2).any(|w| w[0] == !w[1]) {
            return;
        }
        for l in &clause {
            self.occurrence[l.var().index()] += 1;
        }
        self.order_dirty = true;
        match clause.len() {
            0 => self.empty_clause = true,
            1 => self.units.push(clause[0]),
            _ => {
                let start = u32::try_from(self.lits.len()).expect("clause arena fits in u32");
                let ci = u32::try_from(self.bounds.len()).expect("clause count fits in u32");
                self.watches[clause[0].code()].push(ci);
                self.watches[clause[1].code()].push(ci);
                self.lits.extend_from_slice(&clause);
                let end = u32::try_from(self.lits.len()).expect("clause arena fits in u32");
                self.bounds.push((start, end));
            }
        }
    }

    /// Pushes an assumption for subsequent [`DpllSolver::check`] calls.
    pub fn assume(&mut self, lit: Lit) {
        assert!(
            lit.var().index() < self.assign.len(),
            "assumption {lit} references an unallocated variable"
        );
        self.assumptions.push(lit);
    }

    /// Pops the most recent assumption.
    pub fn retract(&mut self) -> Option<Lit> {
        self.assumptions.pop()
    }

    /// Drops every assumption.
    pub fn retract_all(&mut self) {
        self.assumptions.clear();
    }

    /// The current assumption stack, oldest first.
    pub fn assumptions(&self) -> &[Lit] {
        &self.assumptions
    }

    /// Decides satisfiability of the clause database under the current
    /// assumptions. On `true`, a model is readable via
    /// [`DpllSolver::value`] until the next mutation.
    pub fn check(&mut self) -> bool {
        self.undo_to(0);
        self.levels.clear();
        self.cursor = 0;
        if self.empty_clause {
            return false;
        }
        if self.order_dirty {
            self.rebuild_order();
        }
        // Units and assumptions form the root level; a conflict here is
        // final (nothing to flip).
        let roots: Vec<Lit> = self
            .units
            .iter()
            .chain(&self.assumptions)
            .copied()
            .collect();
        for lit in roots {
            match self.value(lit) {
                Some(true) => {}
                Some(false) => return false,
                None => self.enqueue(lit),
            }
        }
        loop {
            if self.propagate() {
                // Conflict: flip the deepest untried decision.
                if !self.backtrack_flip() {
                    return false;
                }
            } else {
                match self.pick_branch() {
                    None => return true,
                    Some(var) => {
                        self.decisions += 1;
                        self.levels.push(Level {
                            trail_start: self.trail.len(),
                            cursor: self.cursor,
                            flipped: false,
                        });
                        self.enqueue(var.positive());
                    }
                }
            }
        }
    }

    /// The literal's value under the current (partial) assignment.
    pub fn value(&self, lit: Lit) -> Option<bool> {
        match self.assign[lit.var().index()] {
            0 => None,
            v => Some((v > 0) == lit.is_positive()),
        }
    }

    /// The variable's value under the current (partial) assignment.
    pub fn var_value(&self, var: Var) -> Option<bool> {
        match self.assign[var.index()] {
            0 => None,
            v => Some(v > 0),
        }
    }

    fn rebuild_order(&mut self) {
        self.order = (0..self.assign.len() as u32).map(Var).collect();
        let occurrence = &self.occurrence;
        self.order
            .sort_by_key(|v| (std::cmp::Reverse(occurrence[v.index()]), v.index()));
        self.order_dirty = false;
    }

    fn enqueue(&mut self, lit: Lit) {
        debug_assert!(self.value(lit).is_none(), "enqueue of an assigned literal");
        self.assign[lit.var().index()] = if lit.is_positive() { 1 } else { -1 };
        self.trail.push(lit);
    }

    /// Truncates the trail to `len`, clearing the undone assignments.
    fn undo_to(&mut self, len: usize) {
        while self.trail.len() > len {
            let lit = self.trail.pop().expect("trail shrinks to len");
            self.assign[lit.var().index()] = 0;
        }
        self.prop_head = self.prop_head.min(len);
    }

    /// Watched-literal unit propagation. Returns `true` on conflict.
    fn propagate(&mut self) -> bool {
        while self.prop_head < self.trail.len() {
            let lit = self.trail[self.prop_head];
            self.prop_head += 1;
            let falsified = !lit;
            let fcode = falsified.code();
            let mut i = 0;
            'clauses: while i < self.watches[fcode].len() {
                let ci = self.watches[fcode][i] as usize;
                let (start, end) = self.bounds[ci];
                let (s, e) = (start as usize, end as usize);
                // Keep the falsified literal in the second watch slot.
                if self.lits[s] == falsified {
                    self.lits.swap(s, s + 1);
                }
                let other = self.lits[s];
                if self.value(other) == Some(true) {
                    i += 1;
                    continue;
                }
                // Hunt for a non-false replacement watch.
                for k in s + 2..e {
                    let cand = self.lits[k];
                    if self.value(cand) != Some(false) {
                        self.lits.swap(s + 1, k);
                        self.watches[fcode].swap_remove(i);
                        self.watches[cand.code()].push(ci as u32);
                        continue 'clauses;
                    }
                }
                // Every other literal is false: unit or conflict.
                match self.value(other) {
                    Some(false) => return true,
                    None => {
                        self.enqueue(other);
                        i += 1;
                    }
                    Some(true) => unreachable!("handled above"),
                }
            }
        }
        false
    }

    /// Next unassigned variable in activity order, advancing the cursor.
    fn pick_branch(&mut self) -> Option<Var> {
        while self.cursor < self.order.len() {
            let v = self.order[self.cursor];
            if self.assign[v.index()] == 0 {
                return Some(v);
            }
            self.cursor += 1;
        }
        None
    }

    /// Chronological backtracking: undo exhausted levels, flip the
    /// deepest untried decision. Returns `false` when the root level is
    /// reached (overall unsatisfiability under the assumptions).
    fn backtrack_flip(&mut self) -> bool {
        loop {
            let Some(&Level {
                trail_start,
                cursor,
                flipped,
            }) = self.levels.last()
            else {
                return false;
            };
            if flipped {
                self.levels.pop();
                self.undo_to(trail_start);
                self.cursor = cursor;
            } else {
                let decision = self.trail[trail_start];
                self.undo_to(trail_start);
                self.cursor = cursor;
                let level = self.levels.last_mut().expect("level checked above");
                level.flipped = true;
                self.enqueue(!decision);
                return true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_solver_is_sat() {
        let mut s = DpllSolver::new();
        assert!(s.check());
        assert_eq!(s.num_vars(), 0);
        assert_eq!(s.num_clauses(), 0);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = DpllSolver::new();
        s.add_clause(&[]);
        assert!(!s.check());
        assert_eq!(s.num_clauses(), 1);
    }

    #[test]
    fn unit_propagation_chain() {
        // p, p->q, q->r ... forced all the way; ~last is unsat.
        let mut s = DpllSolver::new();
        let vars: Vec<Var> = (0..20).map(|_| s.new_var()).collect();
        s.add_clause(&[vars[0].positive()]);
        for w in vars.windows(2) {
            s.add_clause(&[w[0].negative(), w[1].positive()]);
        }
        assert!(s.check());
        for v in &vars {
            assert_eq!(s.var_value(*v), Some(true));
        }
        s.assume(vars[19].negative());
        assert!(!s.check());
        s.retract_all();
        assert!(s.check());
    }

    #[test]
    fn assume_retract_session_reuses_database() {
        let mut s = DpllSolver::new();
        let p = s.new_var();
        let q = s.new_var();
        let r = s.new_var();
        // (p | q) & (~p | r)
        s.add_clause(&[p.positive(), q.positive()]);
        s.add_clause(&[p.negative(), r.positive()]);
        assert!(s.check());
        s.assume(p.positive());
        s.assume(r.negative());
        assert!(!s.check());
        assert_eq!(s.retract(), Some(r.negative()));
        assert!(s.check());
        assert_eq!(s.value(r.positive()), Some(true));
        s.assume(q.negative());
        assert!(s.check()); // p & ~q & r works
        assert_eq!(s.assumptions().len(), 2);
        s.retract_all();
        assert!(s.check());
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // 3 pigeons, 2 holes: each pigeon somewhere, no hole shared.
        let mut s = DpllSolver::new();
        let at: Vec<Vec<Var>> = (0..3)
            .map(|_| (0..2).map(|_| s.new_var()).collect())
            .collect();
        for p in &at {
            s.add_clause(&[p[0].positive(), p[1].positive()]);
        }
        for a in 0..3 {
            for b in a + 1..3 {
                for (x, y) in at[a].iter().zip(&at[b]) {
                    s.add_clause(&[x.negative(), y.negative()]);
                }
            }
        }
        assert!(!s.check());
    }

    #[test]
    fn model_satisfies_every_clause() {
        let mut s = DpllSolver::new();
        let vars: Vec<Var> = (0..8).map(|_| s.new_var()).collect();
        let clauses: Vec<Vec<Lit>> = (0..12)
            .map(|i| {
                (0..3)
                    .map(|j| {
                        let v = vars[(i * 3 + j * 5) % 8];
                        v.lit((i + j) % 2 == 0)
                    })
                    .collect()
            })
            .collect();
        for c in &clauses {
            s.add_clause(c);
        }
        assert!(s.check());
        for c in &clauses {
            assert!(
                c.iter().any(|&l| s.value(l) == Some(true)),
                "model falsifies a clause"
            );
        }
    }

    #[test]
    fn incremental_clause_add_after_check() {
        let mut s = DpllSolver::new();
        let p = s.new_var();
        assert!(s.check());
        s.add_clause(&[p.positive()]);
        assert!(s.check());
        assert_eq!(s.var_value(p), Some(true));
        s.add_clause(&[p.negative()]);
        assert!(!s.check());
    }
}
