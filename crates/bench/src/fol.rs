//! FOL benchmark harness: seeded Horn-program generators, the seed
//! recursive engine (`KnowledgeBase::solve_seed_with`) as the oracle,
//! and the interned indexed engine (`InternedKb`) as the measured path.
//!
//! The seed engine scans every clause at every resolution step, deep
//! clones each candidate with freshly suffixed variable names, and
//! threads a `BTreeMap` substitution through the search. The interned
//! engine compiles the program once — hash-consed term arena,
//! first-argument clause index, bindings-slot trail — so each step
//! touches only the clauses that can match. [`run_fol_bench`]
//! cross-checks the two answer-for-answer (same solutions in the same
//! order, same truncation flag) on every swept query and emits the
//! comparison as `BENCH_fol.json` (via `repro fol`).
//!
//! The sweep uses reachability programs (a `c0 → c1 → …` backbone plus
//! seeded forward shortcuts, `tag/1` distractor facts, and the two
//! transitive-closure rules): every answer is ground, so answer parity
//! is exact, and the reachable set is large enough that the
//! `max_solutions` cap — not exhaustion — ends each query on both
//! engines. The deep-chain scenario runs the interned engine alone: its
//! derivation is tens of thousands of steps deep, which the seed
//! engine's call-stack recursion cannot survive.

use casekit_logic::fol::{parse_program, parse_query, InternedKb, KnowledgeBase, SolveConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// Budgets for the swept queries: deep enough to reach the solution
/// cap, with a work budget no swept instance approaches — the engines
/// count work differently (the seed counts every scanned clause, the
/// indexed engine only candidates), so outcomes stay comparable only
/// while neither trips it.
fn sweep_config() -> SolveConfig {
    SolveConfig {
        max_depth: 32,
        max_work: 1_000_000_000,
        max_solutions: 8,
    }
}

/// A seeded reachability program over `n_consts` constants: backbone
/// edges `edge(ci, ci+1)`, `extra_edges` forward shortcuts spanning at
/// most 4 constants, one `tag(ci)` distractor fact per constant (clauses
/// the seed engine scans at every step and the index never touches),
/// and the two `path/2` transitive-closure rules.
pub fn reachability_program(n_consts: usize, extra_edges: usize, seed: u64) -> KnowledgeBase {
    assert!(n_consts >= 2, "a backbone needs two constants");
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xF01D_0000_0000_0000);
    let mut src = String::new();
    for i in 0..n_consts - 1 {
        src.push_str(&format!("edge(c{i}, c{}).\n", i + 1));
    }
    for _ in 0..extra_edges {
        let i = rng.gen_range(0..n_consts - 1);
        let span = rng.gen_range(1..=4.min(n_consts - 1 - i));
        src.push_str(&format!("edge(c{i}, c{}).\n", i + span));
    }
    for i in 0..n_consts {
        src.push_str(&format!("tag(c{i}).\n"));
    }
    src.push_str("path(X, Y) :- edge(X, Y).\npath(X, Y) :- edge(X, Z), path(Z, Y).\n");
    parse_program(&src).expect("generated program parses")
}

/// A pure linear chain `edge(c0, c1). … edge(cn-2, cn-1).` with the
/// `path/2` rules — the deep-derivation stress shape.
pub fn chain_program(n_consts: usize) -> KnowledgeBase {
    assert!(n_consts >= 2, "a chain needs two constants");
    let mut src = String::new();
    for i in 0..n_consts - 1 {
        src.push_str(&format!("edge(c{i}, c{}).\n", i + 1));
    }
    src.push_str("path(X, Y) :- edge(X, Y).\npath(X, Y) :- edge(X, Z), path(Z, Y).\n");
    parse_program(&src).expect("generated program parses")
}

/// Everything one engine reports about one query; both engines must
/// produce exactly this.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryVerdict {
    /// The rendered solutions, in discovery order.
    pub answers: Vec<String>,
    /// Whether a budget cut the search off.
    pub truncated: bool,
}

/// The query starts swept at each program size: spread across the
/// backbone, each clamped far enough from the end that the solution cap
/// (not exhaustion) ends the query.
fn query_starts(n_consts: usize) -> [usize; 4] {
    let cap = n_consts.saturating_sub(10);
    [
        0,
        (n_consts / 4).min(cap),
        (n_consts / 2).min(cap),
        (3 * n_consts / 4).min(cap),
    ]
}

fn verdicts_seed(kb: &KnowledgeBase, queries: &[casekit_logic::fol::Term]) -> Vec<QueryVerdict> {
    queries
        .iter()
        .map(|q| {
            let out = kb.solve_seed_with(q, sweep_config());
            QueryVerdict {
                answers: out.solutions.iter().map(|s| s.to_string()).collect(),
                truncated: out.truncated,
            }
        })
        .collect()
}

fn verdicts_interned(
    kb: &KnowledgeBase,
    queries: &[casekit_logic::fol::Term],
) -> Vec<QueryVerdict> {
    // Compilation is timed along with the queries: the measured win
    // includes the cost of building the arena and the clause index.
    let mut interned = InternedKb::compile(kb);
    queries
        .iter()
        .map(|q| {
            let out = interned.solve_with(q, sweep_config());
            QueryVerdict {
                answers: out.solutions.iter().map(|s| s.to_string()).collect(),
                truncated: out.truncated,
            }
        })
        .collect()
}

/// Measured engine comparison at one program size.
#[derive(Debug, Clone, Serialize)]
pub struct FolSweepPoint {
    /// Constants in the reachability program.
    pub n_consts: usize,
    /// Total clauses (edges + distractors + rules).
    pub clauses: usize,
    /// Queries swept (`path(c_start, X)` at the spread starts).
    pub queries: usize,
    /// Seed recursive engine over all queries, milliseconds (best of 3).
    pub seed_ms: f64,
    /// Interned indexed engine (compile + all queries), milliseconds
    /// (best of 3).
    pub interned_ms: f64,
    /// seed / interned.
    pub speedup: f64,
    /// Identical answer lists (order included) and truncation flags on
    /// every query at this size.
    pub agree: bool,
}

/// The measured comparison, serialized into `BENCH_fol.json`.
#[derive(Debug, Clone, Serialize)]
pub struct FolBenchReport {
    /// Total seed time / total interned time across the sweep.
    pub speedup: f64,
    /// Every swept query agreed answer-for-answer.
    pub answers_agree: bool,
    /// Per-size measurements.
    pub sweep: Vec<FolSweepPoint>,
    /// Chain length of the interned-only deep-derivation scenario.
    pub chain_n: usize,
    /// Interned engine proving `path(c0, c_last)` on the chain,
    /// milliseconds (best of 3) — a derivation `chain_n` steps deep,
    /// beyond the seed engine's call-stack ceiling.
    pub chain_ms: f64,
    /// The chain query was proved…
    pub chain_proved: bool,
    /// …without tripping any budget.
    pub chain_truncated: bool,
}

/// Runs the engine comparison: seed-vs-interned sweeps at each of
/// `sizes` constants (cross-checked answer-for-answer), then the
/// interned-only deep chain at `chain_n`.
pub fn run_fol_bench(sizes: &[usize], chain_n: usize) -> FolBenchReport {
    let mut sweep = Vec::with_capacity(sizes.len());
    let mut answers_agree = true;
    let mut total_seed = 0.0;
    let mut total_interned = 0.0;
    for &n in sizes {
        let kb = reachability_program(n, n / 2, n as u64);
        let queries: Vec<_> = query_starts(n)
            .iter()
            .map(|&s| parse_query(&format!("path(c{s}, X)")).expect("generated query parses"))
            .collect();
        let (seed_ms, seed_verdicts) = crate::best_of_ms(3, || verdicts_seed(&kb, &queries));
        let (interned_ms, interned_verdicts) =
            crate::best_of_ms(3, || verdicts_interned(&kb, &queries));
        let agree = seed_verdicts == interned_verdicts;
        answers_agree &= agree;
        total_seed += seed_ms;
        total_interned += interned_ms;
        sweep.push(FolSweepPoint {
            n_consts: n,
            clauses: kb.len(),
            queries: queries.len(),
            seed_ms,
            interned_ms,
            speedup: seed_ms / interned_ms.max(1e-9),
            agree,
        });
    }

    let chain = chain_program(chain_n);
    let goal = parse_query(&format!("path(c0, c{})", chain_n - 1)).expect("chain query parses");
    let chain_config = SolveConfig {
        max_depth: 3 * chain_n,
        max_work: 50 * chain_n,
        max_solutions: 1,
    };
    let (chain_ms, chain_out) = crate::best_of_ms(3, || {
        InternedKb::compile(&chain).solve_with(&goal, chain_config)
    });

    FolBenchReport {
        speedup: total_seed / total_interned.max(1e-9),
        answers_agree,
        sweep,
        chain_n,
        chain_ms,
        chain_proved: chain_out.succeeded(),
        chain_truncated: chain_out.truncated,
    }
}

/// Renders the report as JSON (the `BENCH_fol.json` artifact).
pub fn bench_fol_json(report: &FolBenchReport) -> String {
    serde_json::to_string_pretty(report).expect("report serializes")
}

/// Human-readable summary for the repro binary.
pub fn render_report(report: &FolBenchReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "FOL resolution, seed clause-scan engine vs interned indexed engine\n\
         (speedup: {:.1}x   answers agree: {})",
        report.speedup, report.answers_agree,
    );
    for s in &report.sweep {
        let _ = writeln!(
            out,
            "  consts={:<6} clauses={:<6} queries={} \
             seed {:>10.3} ms   interned {:>9.3} ms   speedup {:>6.1}x   agree: {}",
            s.n_consts, s.clauses, s.queries, s.seed_ms, s.interned_ms, s.speedup, s.agree,
        );
    }
    let _ = writeln!(
        out,
        "interned-only deep chain: n={}  {:.3} ms  proved: {}  truncated: {}",
        report.chain_n, report.chain_ms, report.chain_proved, report.chain_truncated,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(
            reachability_program(20, 10, 7),
            reachability_program(20, 10, 7)
        );
        let kb = reachability_program(20, 10, 7);
        // 19 backbone + 10 shortcuts + 20 tags + 2 rules.
        assert_eq!(kb.len(), 51);
        assert_eq!(chain_program(5).len(), 6);
    }

    #[test]
    fn engines_agree_on_small_programs() {
        for n in [12, 30] {
            let kb = reachability_program(n, n / 2, n as u64);
            let queries: Vec<_> = query_starts(n)
                .iter()
                .map(|&s| parse_query(&format!("path(c{s}, X)")).unwrap())
                .collect();
            assert_eq!(
                verdicts_seed(&kb, &queries),
                verdicts_interned(&kb, &queries),
                "n={n}"
            );
        }
    }

    #[test]
    fn swept_queries_end_on_the_solution_cap() {
        // The comparison is only meaningful while both engines stop at
        // max_solutions rather than exhausting or truncating.
        let n = 30;
        let kb = reachability_program(n, n / 2, n as u64);
        for &s in &query_starts(n) {
            let q = parse_query(&format!("path(c{s}, X)")).unwrap();
            let out = kb.solve_with(&q, sweep_config());
            assert_eq!(out.solutions.len(), sweep_config().max_solutions, "c{s}");
        }
    }

    #[test]
    fn report_is_sane_at_small_scale() {
        let report = run_fol_bench(&[16, 40], 300);
        assert!(report.answers_agree);
        assert!(report.speedup > 0.0);
        assert_eq!(report.sweep.len(), 2);
        for s in &report.sweep {
            assert!(s.agree);
            assert_eq!(s.queries, 4);
        }
        assert_eq!(report.chain_n, 300);
        assert!(report.chain_proved);
        assert!(!report.chain_truncated);
        let json = bench_fol_json(&report);
        assert!(json.contains("\"speedup\""));
        assert!(json.contains("\"answers_agree\": true"));
        assert!(json.contains("\"chain_proved\": true"));
        // The gate reads the FIRST "speedup" in the file: it must be the
        // report-level one, ahead of any per-point speedup.
        assert!(json.find("\"speedup\"").unwrap() < json.find("\"sweep\"").unwrap());
        assert!(render_report(&report).contains("answers agree: true"));
    }
}
