//! Bridging arguments to formal logic: compiling formal payloads into a
//! theory and checking deductive support, in the style of Rushby's
//! "formalise what lends itself to the process" (Graydon §III-M).
//!
//! Only nodes with [`FormalPayload::Prop`] payloads participate; everything
//! else remains informal — which is the paper's partial-formalisation
//! setting. The checks here answer precisely the question mechanical
//! verification can answer (does the symbol structure entail the
//! conclusion?) and none of the questions it cannot (do the premises
//! describe the world?).
//!
//! # Batch checking
//!
//! [`ArgumentTheory::compile`] Tseitin-compiles every propositional
//! payload **once** into one interned clause database; each support
//! step, the root entailment, and every what-if probe is then an
//! `assume`/`check`/`retract` round against it. The free functions
//! ([`step_is_deductive`], [`non_deductive_steps`], [`probe_argument`])
//! stay source-compatible and route through a single compilation;
//! callers with several questions about the same argument should
//! compile once and reuse the theory.

use crate::argument::{Argument, NodeIdx};
use crate::node::{EdgeKind, FormalPayload, NodeId, NodeKind};
use casekit_logic::probe::{PremiseImpact, ProbeReport};
use casekit_logic::prop::{Atom, Formula, Lit, Theory};
use std::collections::{BTreeSet, HashMap};

/// The formal premises of an argument: the propositional payloads of its
/// formalised support *leaves* (solutions/evidence are cited through their
/// parent goals' payloads, so leaves here means "formalised nodes with no
/// formalised descendants providing support"). Borrowed from the
/// argument's nodes — theory assembly allocates no formula clones.
pub fn formal_premises(argument: &Argument) -> Vec<&Formula> {
    argument
        .sorted_indices()
        .map(|idx| (idx, argument.node_at(idx)))
        .filter(|(idx, n)| {
            n.is_formalised() && formalised_support_children(argument, *idx).is_empty()
        })
        .filter_map(|(_, n)| match &n.formal {
            Some(FormalPayload::Prop(f)) => Some(f),
            _ => None,
        })
        .collect()
}

/// The node plane of [`formal_premises`]: indices of the formal premise
/// leaves, in the same sorted-id order. A pure graph pass — no solver
/// involved — so analyses that only need the *locations* of the
/// premises (e.g. to anchor diagnostics) can ask without compiling.
pub fn formal_premise_indices(argument: &Argument) -> Vec<NodeIdx> {
    argument
        .sorted_indices()
        .filter(|idx| {
            let n = argument.node_at(*idx);
            matches!(n.formal, Some(FormalPayload::Prop(_)))
                && formalised_support_children(argument, *idx).is_empty()
        })
        .collect()
}

/// The node plane of [`formal_conclusion`]: index of the first root with
/// a propositional payload, if any.
pub fn formal_conclusion_index(argument: &Argument) -> Option<NodeIdx> {
    argument
        .sorted_roots_idx()
        .find(|idx| matches!(argument.node_at(*idx).formal, Some(FormalPayload::Prop(_))))
}

/// The formal conclusion: the propositional payload of the (first) root
/// goal, if it has one. Borrowed, like [`formal_premises`].
pub fn formal_conclusion(argument: &Argument) -> Option<&Formula> {
    argument
        .sorted_roots_idx()
        .find_map(|idx| match &argument.node_at(idx).formal {
            Some(FormalPayload::Prop(f)) => Some(f),
            _ => None,
        })
}

/// Formalised children supporting `idx` (transitively skipping
/// unformalised strategies, which GSN interposes between goals).
fn formalised_support_children(argument: &Argument, idx: NodeIdx) -> Vec<NodeIdx> {
    let mut out = Vec::new();
    for child_idx in argument.children_idx(idx, EdgeKind::SupportedBy) {
        let child = argument.node_at(child_idx);
        if child.is_formalised() {
            out.push(child_idx);
        } else if child.kind == NodeKind::Strategy {
            out.extend(formalised_support_children(argument, child_idx));
        }
    }
    out
}

/// Parents of the support steps an edit to `touched` can affect: the
/// touched node itself plus every formalised ancestor that reaches it
/// through `SupportedBy` edges crossing only unformalised strategies
/// (the exact paths `formalised_support_children` recurses through).
/// An editor that changed one premise re-verifies only these steps; all
/// other step verdicts are untouched by construction, because a step's
/// truth depends only on its parent payload and the payloads of its
/// formalised support children.
pub fn affected_step_parents(
    argument: &Argument,
    touched: impl IntoIterator<Item = NodeIdx>,
) -> BTreeSet<NodeIdx> {
    let mut affected = BTreeSet::new();
    let mut stack: Vec<NodeIdx> = touched.into_iter().collect();
    // Every touched node is itself a candidate step parent.
    affected.extend(stack.iter().copied());
    while let Some(idx) = stack.pop() {
        for parent in argument.parents_by_kind_idx(idx, EdgeKind::SupportedBy) {
            let node = argument.node_at(parent);
            if node.is_formalised() {
                // A formalised parent anchors a step; the chain stops
                // here because grandparent steps see only this parent's
                // payload, which the edit did not change.
                affected.insert(parent);
            } else if node.kind == NodeKind::Strategy && affected.insert(parent) {
                // Unformalised strategies are transparent to
                // `formalised_support_children`; keep climbing.
                stack.push(parent);
            }
        }
    }
    affected
}

/// Per-node memo of compiled payload literals for
/// [`ArgumentTheory::recompile`]: which formula each node last compiled
/// to, the packed literal it received, and what that compilation cost
/// in fresh solver variables (the garbage left behind if the payload is
/// later replaced or the node removed).
#[derive(Debug, Clone, Default)]
pub struct PayloadCache {
    entries: HashMap<NodeId, CachedPayload>,
    /// Solver variables spent on payloads since retired — definitional
    /// clauses nothing references, carried by the session as dead
    /// weight until whole-theory invalidation compacts them.
    garbage: usize,
    /// Solver variables backing currently-live payloads.
    live: usize,
}

#[derive(Debug, Clone)]
struct CachedPayload {
    formula: Formula,
    lit: Lit,
    cost: usize,
}

impl PayloadCache {
    /// Number of cached payload literals.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Solver variables backing retired payloads (dead definitional
    /// clauses accumulated across edits).
    pub fn garbage_cost(&self) -> usize {
        self.garbage
    }

    /// Solver variables backing live payloads.
    pub fn live_cost(&self) -> usize {
        self.live
    }

    /// The literal for `id`'s payload, reusing the cached compilation
    /// when the formula is unchanged and compiling a fresh definition
    /// otherwise.
    fn lit_for(
        &mut self,
        theory: &mut Theory,
        id: &NodeId,
        formula: &Formula,
        stats: &mut RecompileStats,
    ) -> Lit {
        if let Some(entry) = self.entries.get(id) {
            if entry.formula == *formula {
                stats.reused_payloads += 1;
                return entry.lit;
            }
        }
        let before = theory.num_vars();
        let lit = theory.formula_lit(formula);
        let cost = theory.num_vars() - before;
        stats.fresh_payloads += 1;
        self.live += cost;
        if let Some(old) = self.entries.insert(
            id.clone(),
            CachedPayload {
                formula: formula.clone(),
                lit,
                cost,
            },
        ) {
            self.garbage += old.cost;
            self.live -= old.cost;
        }
        lit
    }

    /// Retires cache entries whose node no longer exists (or no longer
    /// carries a propositional payload), moving their cost to garbage.
    fn retire_missing(&mut self, argument: &Argument, stats: &mut RecompileStats) {
        let mut garbage = 0usize;
        let mut retired = 0u32;
        self.entries.retain(|id, entry| {
            let alive = argument.node_idx(id).is_some_and(|idx| {
                matches!(argument.node_at(idx).formal, Some(FormalPayload::Prop(_)))
            });
            if !alive {
                garbage += entry.cost;
                retired += 1;
            }
            alive
        });
        self.garbage += garbage;
        self.live -= garbage;
        stats.retired_payloads += retired;
    }
}

/// What one [`ArgumentTheory::recompile`] round did: how much of the
/// previous compilation survived, and how much dead weight the session
/// is carrying. `garbage_cost / max(1, live_cost)` is the natural
/// compaction trigger.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecompileStats {
    /// Payloads whose cached literal was reused unchanged.
    pub reused_payloads: u32,
    /// Payloads compiled fresh (new nodes or changed formulas).
    pub fresh_payloads: u32,
    /// Cache entries dropped because their node vanished or lost its
    /// propositional payload.
    pub retired_payloads: u32,
    /// Total solver variables after this round.
    pub num_vars: usize,
    /// Cumulative variables backing retired payloads.
    pub garbage_cost: usize,
    /// Variables backing live payloads.
    pub live_cost: usize,
}

/// One checkable support step: a parent with a propositional payload and
/// formalised support including at least one propositional payload.
#[derive(Debug, Clone)]
struct Step {
    parent: NodeIdx,
    parent_lit: Lit,
    /// Propositional support children, aligned index-for-index with
    /// `child_lits` (formalised children with temporal payloads carry no
    /// propositional literal and are excluded from both).
    children: Vec<NodeIdx>,
    child_lits: Vec<Lit>,
}

/// An argument's propositional skeleton, compiled once into an interned
/// solver session.
///
/// Every payload formula becomes an equivalent packed literal over a
/// shared clause database; support steps, the root entailment, and
/// premise probes are assumption rounds against it. Compile once per
/// argument, ask as many questions as you like:
///
/// ```
/// use casekit_core::{Argument, FormalPayload, Node, NodeKind};
/// use casekit_core::semantics::ArgumentTheory;
/// use casekit_logic::prop::parse;
/// let argument = Argument::builder("mp")
///     .node(Node::new("g1", NodeKind::Goal, "q")
///         .with_formal(FormalPayload::Prop(parse("q").unwrap())))
///     .node(Node::new("g2", NodeKind::Goal, "rule")
///         .with_formal(FormalPayload::Prop(parse("(p -> q) & p").unwrap())))
///     .add("e1", NodeKind::Solution, "evidence")
///     .supported_by("g1", "g2")
///     .supported_by("g2", "e1")
///     .build()
///     .unwrap();
/// let mut theory = ArgumentTheory::compile(&argument);
/// let g1 = argument.node_idx(&"g1".into()).unwrap();
/// assert_eq!(theory.step_is_deductive(g1), Some(true));
/// assert_eq!(theory.root_entailed(), Some(true));
/// ```
#[derive(Debug, Clone)]
pub struct ArgumentTheory {
    theory: Theory,
    steps: Vec<Step>,
    /// Formal leaves in sorted-id order, with their payload literals.
    premises: Vec<(NodeIdx, Lit)>,
    conclusion: Option<(NodeIdx, Lit)>,
    /// Atoms of the premise and conclusion payloads, for counterexample
    /// valuations.
    probe_atoms: BTreeSet<Atom>,
}

impl ArgumentTheory {
    /// Compiles every propositional payload of `argument` into one
    /// solver session. This is the only place formulas are traversed;
    /// every subsequent question is solver work.
    pub fn compile(argument: &Argument) -> Self {
        let mut theory = Theory::new();
        // Payload literal per arena slot, compiled in arena order.
        let mut lits: Vec<Option<Lit>> = vec![None; argument.len()];
        for idx in argument.node_indices() {
            if let Some(FormalPayload::Prop(f)) = &argument.node_at(idx).formal {
                lits[idx.index()] = Some(theory.formula_lit(f));
            }
        }
        Self::assemble(argument, theory, &lits)
    }

    /// Recompiles an *edited* argument against a live solver session,
    /// reusing the payload literals of unchanged nodes.
    ///
    /// This is the incremental counterpart of [`compile`](Self::compile)
    /// for long-lived case sessions: `theory` is the clause database of
    /// the previous revision (extract it with
    /// [`into_theory`](Self::into_theory)) and `cache` maps node ids to
    /// the literal their payload compiled to last time. Unchanged
    /// payloads keep their literals without touching the Tseitin
    /// compiler; changed or new payloads pay exactly their own
    /// compilation delta. Because payloads are compiled as
    /// *definitional* biconditionals (never asserted), the clause
    /// database only ever grows, so everything the solver learned
    /// answering earlier revisions' questions remains a consequence and
    /// keeps accelerating future checks. Retired payloads leave their
    /// (unreferenced, non-constraining) definition clauses behind as
    /// garbage; the returned [`RecompileStats`] report the accumulated
    /// garbage so callers can fall back to whole-theory invalidation —
    /// a fresh [`compile`](Self::compile) with an empty cache — when
    /// compaction is worth more than the retained learning.
    ///
    /// Passing a fresh `Theory` and an empty cache is exactly
    /// [`compile`](Self::compile) (same literal numbering, same
    /// tables), which is what makes the two paths differentially
    /// testable.
    pub fn recompile(
        argument: &Argument,
        theory: Theory,
        cache: &mut PayloadCache,
    ) -> (Self, RecompileStats) {
        let mut theory = theory;
        let mut stats = RecompileStats::default();
        let mut lits: Vec<Option<Lit>> = vec![None; argument.len()];
        for idx in argument.node_indices() {
            if let Some(FormalPayload::Prop(f)) = &argument.node_at(idx).formal {
                let id = argument.id_at(idx);
                lits[idx.index()] = Some(cache.lit_for(&mut theory, id, f, &mut stats));
            }
        }
        cache.retire_missing(argument, &mut stats);
        stats.num_vars = theory.num_vars();
        stats.garbage_cost = cache.garbage;
        stats.live_cost = cache.live;
        (Self::assemble(argument, theory, &lits), stats)
    }

    /// Consumes the session, releasing the underlying solver (clause
    /// database, learned clauses, interner) for
    /// [`recompile`](Self::recompile) against an edited argument.
    pub fn into_theory(self) -> Theory {
        self.theory
    }

    /// Builds the step/premise/conclusion tables over compiled payload
    /// literals (one per arena slot, arena order).
    fn assemble(argument: &Argument, theory: Theory, lits: &[Option<Lit>]) -> Self {
        // Checkable support steps, in arena order (the legacy report
        // order of `non_deductive_steps`).
        let mut steps = Vec::new();
        for idx in argument.node_indices() {
            let Some(parent_lit) = lits[idx.index()] else {
                continue;
            };
            let children = formalised_support_children(argument, idx);
            if children.is_empty() {
                continue;
            }
            let (children, child_lits): (Vec<NodeIdx>, Vec<Lit>) = children
                .iter()
                .filter_map(|c| lits[c.index()].map(|lit| (*c, lit)))
                .unzip();
            if child_lits.is_empty() {
                continue;
            }
            steps.push(Step {
                parent: idx,
                parent_lit,
                children,
                child_lits,
            });
        }
        // Premises (formal leaves, sorted order) and conclusion.
        let mut probe_atoms = BTreeSet::new();
        let mut premises = Vec::new();
        for idx in argument.sorted_indices() {
            let node = argument.node_at(idx);
            if !node.is_formalised() || !formalised_support_children(argument, idx).is_empty() {
                continue;
            }
            if let (Some(lit), Some(FormalPayload::Prop(f))) = (lits[idx.index()], &node.formal) {
                premises.push((idx, lit));
                probe_atoms.extend(f.atoms());
            }
        }
        let conclusion =
            argument
                .sorted_roots_idx()
                .find_map(|idx| match &argument.node_at(idx).formal {
                    Some(FormalPayload::Prop(f)) => {
                        probe_atoms.extend(f.atoms());
                        lits[idx.index()].map(|lit| (idx, lit))
                    }
                    _ => None,
                });
        ArgumentTheory {
            theory,
            steps,
            premises,
            conclusion,
            probe_atoms,
        }
    }

    /// Indices of the formal premise leaves, in sorted-id order.
    pub fn premise_indices(&self) -> Vec<NodeIdx> {
        self.premises.iter().map(|(idx, _)| *idx).collect()
    }

    /// Parents of every checkable support step, in arena order.
    pub fn step_indices(&self) -> Vec<NodeIdx> {
        self.steps.iter().map(|s| s.parent).collect()
    }

    /// Index of the formal conclusion node, if any.
    pub fn conclusion_index(&self) -> Option<NodeIdx> {
        self.conclusion.map(|(idx, _)| idx)
    }

    /// The compiled literals of the support step into `idx`: the
    /// parent's payload literal and the literals of its propositional
    /// support children. `None` when the step is not checkable. Lets
    /// downstream analyses (e.g. the circular-justification lint) ask
    /// per-edge questions against this compilation instead of paying a
    /// second Tseitin pass.
    pub fn step_lits(&self, idx: NodeIdx) -> Option<(Lit, &[Lit])> {
        let i = self.steps.binary_search_by_key(&idx, |s| s.parent).ok()?;
        Some((self.steps[i].parent_lit, &self.steps[i].child_lits))
    }

    /// The propositional support children of the step into `idx`,
    /// aligned index-for-index with the child literals of
    /// [`step_lits`](Self::step_lits). `None` when the step is not
    /// checkable.
    pub fn step_children(&self, idx: NodeIdx) -> Option<&[NodeIdx]> {
        let i = self.steps.binary_search_by_key(&idx, |s| s.parent).ok()?;
        Some(&self.steps[i].children)
    }

    /// The compiled premise literals, aligned with [`formal_premises`]
    /// (same nodes, same sorted order).
    pub fn premise_lits(&self) -> Vec<Lit> {
        self.premises.iter().map(|(_, lit)| *lit).collect()
    }

    /// The compiled conclusion literal, aligned with
    /// [`formal_conclusion`].
    pub fn conclusion_lit(&self) -> Option<Lit> {
        self.conclusion.map(|(_, lit)| lit)
    }

    /// The underlying solver session, for callers (e.g. the fallacy
    /// detectors) that want to ask further questions against the same
    /// compiled clause database instead of recompiling the payloads.
    pub fn theory_mut(&mut self) -> &mut Theory {
        &mut self.theory
    }

    /// Whether the support step into `idx` is deductively valid (`None`
    /// when the step is not checkable).
    pub fn step_is_deductive(&mut self, idx: NodeIdx) -> Option<bool> {
        // Steps are built in arena order, so parents are sorted.
        let i = self.steps.binary_search_by_key(&idx, |s| s.parent).ok()?;
        Some(Self::check_step(&mut self.theory, &self.steps[i]))
    }

    /// Parents of every non-deductive formalised step, in arena order.
    pub fn non_deductive_step_indices(&mut self) -> Vec<NodeIdx> {
        let mut out = Vec::new();
        for i in 0..self.steps.len() {
            if !Self::check_step(&mut self.theory, &self.steps[i]) {
                out.push(self.steps[i].parent);
            }
        }
        out
    }

    fn check_step(theory: &mut Theory, step: &Step) -> bool {
        let assumptions = step.child_lits.iter().copied().chain([!step.parent_lit]);
        !theory.check_under(assumptions)
    }

    /// Whether the formal premises entail the formal conclusion (`None`
    /// when the argument lacks premises or a conclusion).
    pub fn root_entailed(&mut self) -> Option<bool> {
        if self.premises.is_empty() {
            return None;
        }
        self.conclusion?;
        Some(self.root_counterexample(None).is_none())
    }

    /// A model of the premises (minus `skip`) that falsifies the
    /// conclusion, if entailment fails.
    fn root_counterexample(
        &mut self,
        skip: Option<usize>,
    ) -> Option<casekit_logic::prop::Valuation> {
        let (_, conclusion_lit) = self.conclusion.expect("caller checked conclusion");
        let assumptions: Vec<Lit> = self
            .premises
            .iter()
            .enumerate()
            .filter(|(i, _)| Some(*i) != skip)
            .map(|(_, &(_, lit))| lit)
            .chain([!conclusion_lit])
            .collect();
        self.theory
            .model_under(assumptions, self.probe_atoms.iter())
    }

    /// Rushby's what-if probe over the formal skeleton: the root
    /// entailment check plus one removal check per premise, all in this
    /// session. `None` when there is no formal conclusion.
    pub fn probe(&mut self) -> Option<ProbeReport> {
        self.conclusion?;
        if self.root_counterexample(None).is_some() {
            return Some(ProbeReport {
                entailed: false,
                impacts: Vec::new(),
            });
        }
        let impacts = (0..self.premises.len())
            .map(|i| match self.root_counterexample(Some(i)) {
                None => PremiseImpact::Idle,
                Some(v) => PremiseImpact::Critical(v),
            })
            .collect();
        Some(ProbeReport {
            entailed: true,
            impacts,
        })
    }
}

/// An immutable, thread-shareable store of compiled argument theories —
/// one [`ArgumentTheory`] per argument, compiled up front.
///
/// Compilation (the only formula traversal) happens once per argument;
/// afterwards the cache is read-only, so `&TheoryCache` can be handed to
/// any number of worker threads (`Send + Sync` — every constituent is
/// plain data behind `Arc<str>` atoms). Because solver questions need
/// `&mut` (they push and retract assumption trails), each asker clones a
/// private [`session`](TheoryCache::session): a flat copy of the
/// compiled clause database, far cheaper than re-running Tseitin
/// compilation from the argument's formulas. This is what lets a
/// parallel review harness share one compilation per argument across
/// all workers instead of recompiling per review.
#[derive(Debug, Clone, Default)]
pub struct TheoryCache {
    compiled: Vec<ArgumentTheory>,
}

impl TheoryCache {
    /// Compiles every argument in order. The cache is indexed by the
    /// argument's position in `arguments`.
    pub fn compile<'a, I>(arguments: I) -> Self
    where
        I: IntoIterator<Item = &'a Argument>,
    {
        TheoryCache {
            compiled: arguments.into_iter().map(ArgumentTheory::compile).collect(),
        }
    }

    /// Wraps theories compiled elsewhere (e.g. in parallel) into a cache.
    pub fn from_compiled(compiled: Vec<ArgumentTheory>) -> Self {
        TheoryCache { compiled }
    }

    /// Number of cached theories.
    pub fn len(&self) -> usize {
        self.compiled.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.compiled.is_empty()
    }

    /// Borrows the compiled theory at `index`, if present.
    pub fn get(&self, index: usize) -> Option<&ArgumentTheory> {
        self.compiled.get(index)
    }

    /// A private mutable session over the theory at `index`: a clone of
    /// the compiled clause database, ready for assumption rounds.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds (caches are built from the
    /// same slice the caller is iterating).
    pub fn session(&self, index: usize) -> ArgumentTheory {
        self.compiled[index].clone()
    }
}

/// Whether the support step into `id` is deductively valid: the
/// conjunction of the formalised supporting children's payloads entails
/// `id`'s payload.
///
/// Returns `None` when the step is not checkable (the node or all of its
/// support lacks propositional payloads). One-off convenience; compile an
/// [`ArgumentTheory`] to check many steps.
pub fn step_is_deductive(argument: &Argument, id: &NodeId) -> Option<bool> {
    let idx = argument.node_idx(id)?;
    ArgumentTheory::compile(argument).step_is_deductive(idx)
}

/// Every non-deductive formalised step in the argument (node ids whose
/// support fails entailment). An empty result means the formalised skeleton
/// is free of *formal* fallacies of consequence — and nothing more.
///
/// One theory compilation, one solver check per step.
pub fn non_deductive_steps(argument: &Argument) -> Vec<NodeId> {
    ArgumentTheory::compile(argument)
        .non_deductive_step_indices()
        .into_iter()
        .map(|idx| argument.node_at(idx).id.clone())
        .collect()
}

/// Runs Rushby's what-if probe over the argument's formal skeleton:
/// premises = formal leaf payloads, conclusion = root payload.
///
/// Returns `None` when the argument has no formal conclusion. One theory
/// compilation, `premises + 1` solver checks.
pub fn probe_argument(argument: &Argument) -> Option<ProbeReport> {
    ArgumentTheory::compile(argument).probe()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Node;
    use casekit_logic::prop::parse;

    fn payload(src: &str) -> FormalPayload {
        FormalPayload::Prop(parse(src).unwrap())
    }

    /// g1 ⟦q⟧ ← s1 ← { g2 ⟦p -> q⟧, g3 ⟦p⟧ }, each on a solution.
    fn deductive_case() -> Argument {
        Argument::builder("mp")
            .node(Node::new("g1", NodeKind::Goal, "q").with_formal(payload("q")))
            .add("s1", NodeKind::Strategy, "deduce")
            .node(Node::new("g2", NodeKind::Goal, "rule").with_formal(payload("p -> q")))
            .node(Node::new("g3", NodeKind::Goal, "fact").with_formal(payload("p")))
            .add("e1", NodeKind::Solution, "review")
            .add("e2", NodeKind::Solution, "measurement")
            .supported_by("g1", "s1")
            .supported_by("s1", "g2")
            .supported_by("s1", "g3")
            .supported_by("g2", "e1")
            .supported_by("g3", "e2")
            .build()
            .unwrap()
    }

    #[test]
    fn deductive_step_through_strategy() {
        let a = deductive_case();
        assert_eq!(step_is_deductive(&a, &"g1".into()), Some(true));
        assert!(non_deductive_steps(&a).is_empty());
    }

    #[test]
    fn premises_and_conclusion_extraction() {
        let a = deductive_case();
        let premises = formal_premises(&a);
        assert_eq!(premises.len(), 2);
        assert_eq!(formal_conclusion(&a), Some(&parse("q").unwrap()));
    }

    #[test]
    fn compiled_theory_answers_every_question_in_one_session() {
        let a = deductive_case();
        let mut theory = ArgumentTheory::compile(&a);
        let g1 = a.node_idx(&"g1".into()).unwrap();
        let g2 = a.node_idx(&"g2".into()).unwrap();
        assert_eq!(theory.step_is_deductive(g1), Some(true));
        assert_eq!(theory.step_is_deductive(g2), None); // leaf: no support
        assert!(theory.non_deductive_step_indices().is_empty());
        assert_eq!(theory.root_entailed(), Some(true));
        assert_eq!(theory.premise_indices().len(), 2);
        assert_eq!(theory.conclusion_index(), Some(g1));
        let report = theory.probe().unwrap();
        assert!(report.entailed);
        assert_eq!(report.critical_indices(), vec![0, 1]);
        // Answers are stable across repeated questions (assumptions are
        // fully retracted between checks).
        assert_eq!(theory.step_is_deductive(g1), Some(true));
        assert_eq!(theory.root_entailed(), Some(true));
    }

    #[test]
    fn step_literals_align_with_step_children() {
        let a = deductive_case();
        let mut theory = ArgumentTheory::compile(&a);
        // Steps reach through the unformalised strategy: the compiled
        // step parents g1 directly onto g2/g3.
        let g1 = a.node_idx(&"g1".into()).unwrap();
        let (parent_lit, child_lits) = theory.step_lits(g1).expect("g1 is a compiled step");
        let children = theory.step_children(g1).expect("g1 is a compiled step");
        assert_eq!(child_lits.len(), 2);
        assert_eq!(children.len(), child_lits.len());
        let ids: Vec<&str> = children.iter().map(|c| a.id_at(*c).as_str()).collect();
        assert_eq!(ids, vec!["g2", "g3"]);
        // The step literals answer the same entailment question as the
        // step API: premises assumed, parent denied, must be UNSAT.
        let assumptions: Vec<_> = child_lits.iter().copied().chain([!parent_lit]).collect();
        assert!(!theory.theory_mut().check_under(assumptions));
        // Leaves compile no step.
        let g2 = a.node_idx(&"g2".into()).unwrap();
        assert!(theory.step_lits(g2).is_none());
        assert!(theory.step_children(g2).is_none());
    }

    #[test]
    fn free_premise_indices_match_compiled_theory() {
        let a = deductive_case();
        let theory = ArgumentTheory::compile(&a);
        assert_eq!(formal_premise_indices(&a), theory.premise_indices());
        assert_eq!(formal_conclusion_index(&a), theory.conclusion_index());
        // And on an argument with no formal payloads at all.
        let informal = Argument::builder("informal")
            .add("g1", NodeKind::Goal, "Safe")
            .add("e1", NodeKind::Solution, "Tests")
            .supported_by("g1", "e1")
            .build()
            .unwrap();
        assert!(formal_premise_indices(&informal).is_empty());
        assert_eq!(formal_conclusion_index(&informal), None);
    }

    #[test]
    fn non_deductive_step_detected() {
        // The paper's §V-B example: code_reviewed & unit_tests_passed does
        // NOT entail meets_deadlines, however confidently asserted.
        let a = Argument::builder("wrong-reasons")
            .node(
                Node::new("g1", NodeKind::Goal, "deadlines met")
                    .with_formal(payload("meets_deadlines")),
            )
            .node(
                Node::new("g2", NodeKind::Goal, "quality signals")
                    .with_formal(payload("code_reviewed & unit_tests_passed")),
            )
            .add("e1", NodeKind::Solution, "review minutes")
            .supported_by("g1", "g2")
            .supported_by("g2", "e1")
            .build()
            .unwrap();
        assert_eq!(step_is_deductive(&a, &"g1".into()), Some(false));
        assert_eq!(non_deductive_steps(&a), vec![NodeId::new("g1")]);
    }

    #[test]
    fn unformalised_steps_not_checkable() {
        let a = Argument::builder("informal")
            .add("g1", NodeKind::Goal, "Safe")
            .add("e1", NodeKind::Solution, "Tests")
            .supported_by("g1", "e1")
            .build()
            .unwrap();
        assert_eq!(step_is_deductive(&a, &"g1".into()), None);
        assert!(non_deductive_steps(&a).is_empty());
        assert!(probe_argument(&a).is_none());
    }

    #[test]
    fn probe_argument_finds_idle_premise() {
        // Root q; leaves: p, p -> q, and an irrelevant premise r.
        let a = Argument::builder("probe")
            .node(Node::new("g1", NodeKind::Goal, "q").with_formal(payload("q")))
            .node(Node::new("g2", NodeKind::Goal, "p").with_formal(payload("p")))
            .node(Node::new("g3", NodeKind::Goal, "rule").with_formal(payload("p -> q")))
            .node(Node::new("g4", NodeKind::Goal, "red herring").with_formal(payload("r")))
            .add("e1", NodeKind::Solution, "a")
            .add("e2", NodeKind::Solution, "b")
            .add("e3", NodeKind::Solution, "c")
            .supported_by("g1", "g2")
            .supported_by("g1", "g3")
            .supported_by("g1", "g4")
            .supported_by("g2", "e1")
            .supported_by("g3", "e2")
            .supported_by("g4", "e3")
            .build()
            .unwrap();
        let report = probe_argument(&a).unwrap();
        assert!(report.entailed);
        // Premises are ordered by node id: g2 (p), g3 (p->q), g4 (r).
        assert_eq!(report.idle_indices(), vec![2]);
        assert_eq!(report.critical_indices(), vec![0, 1]);
    }

    #[test]
    fn formal_premise_with_formalised_ancestor_not_a_leaf() {
        let a = deductive_case();
        // g1 has formalised support (g2, g3 via s1), so its payload is a
        // conclusion, not a premise.
        let premises = formal_premises(&a);
        let q = parse("q").unwrap();
        assert!(!premises.iter().any(|p| **p == q));
    }

    #[test]
    fn theory_cache_sessions_are_independent_and_shareable() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TheoryCache>();
        let a = deductive_case();
        let cache = TheoryCache::compile([&a]);
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
        assert!(cache.get(0).is_some());
        assert!(cache.get(1).is_none());
        // Two sessions from the same compilation answer independently
        // (each carries its own assumption trail).
        let mut s1 = cache.session(0);
        let mut s2 = cache.session(0);
        assert_eq!(s1.root_entailed(), Some(true));
        assert_eq!(s2.root_entailed(), Some(true));
        assert_eq!(s1.probe().unwrap().critical_indices(), vec![0, 1]);
    }

    #[test]
    fn temporal_payloads_are_skipped_by_propositional_checks() {
        use casekit_logic::ltl::parse_ltl;
        let a = Argument::builder("ltl")
            .node(
                Node::new("g1", NodeKind::Goal, "always ok")
                    .with_formal(FormalPayload::Temporal(parse_ltl("G ok").unwrap())),
            )
            .add("e1", NodeKind::Solution, "model check log")
            .supported_by("g1", "e1")
            .build()
            .unwrap();
        assert_eq!(step_is_deductive(&a, &"g1".into()), None);
        assert!(formal_premises(&a).is_empty());
        assert!(formal_conclusion(&a).is_none());
    }

    #[test]
    fn recompile_with_empty_cache_matches_compile() {
        let a = deductive_case();
        let mut batch = ArgumentTheory::compile(&a);
        let mut cache = PayloadCache::default();
        let (mut inc, stats) = ArgumentTheory::recompile(&a, Theory::new(), &mut cache);
        // Same tables, same literal numbering, same verdicts.
        assert_eq!(inc.premise_indices(), batch.premise_indices());
        assert_eq!(inc.step_indices(), batch.step_indices());
        assert_eq!(inc.conclusion_index(), batch.conclusion_index());
        assert_eq!(inc.premise_lits(), batch.premise_lits());
        assert_eq!(inc.conclusion_lit(), batch.conclusion_lit());
        assert_eq!(inc.root_entailed(), batch.root_entailed());
        assert_eq!(
            inc.non_deductive_step_indices(),
            batch.non_deductive_step_indices()
        );
        assert_eq!(stats.fresh_payloads, 3);
        assert_eq!(stats.reused_payloads, 0);
        assert_eq!(stats.garbage_cost, 0);
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn recompile_reuses_unchanged_payloads_and_tracks_garbage() {
        let mut a = deductive_case();
        let mut cache = PayloadCache::default();
        let (mut inc, _) = ArgumentTheory::recompile(&a, Theory::new(), &mut cache);
        assert_eq!(inc.root_entailed(), Some(true));
        // Break the rule premise: g2 now says p -> r, so q is no longer
        // entailed.
        a.node_mut(&"g2".into()).unwrap().formal = Some(payload("p -> r"));
        let (mut inc, stats) = ArgumentTheory::recompile(&a, inc.into_theory(), &mut cache);
        assert_eq!(stats.reused_payloads, 2);
        assert_eq!(stats.fresh_payloads, 1);
        assert!(stats.garbage_cost > 0, "replaced payload leaves garbage");
        assert_eq!(inc.root_entailed(), Some(false));
        // Restore it; the verdict round-trips on the same session.
        a.node_mut(&"g2".into()).unwrap().formal = Some(payload("p -> q"));
        let (mut inc, stats) = ArgumentTheory::recompile(&a, inc.into_theory(), &mut cache);
        assert_eq!(stats.fresh_payloads, 1);
        assert_eq!(inc.root_entailed(), Some(true));
        assert_eq!(
            inc.probe().unwrap().critical_indices(),
            ArgumentTheory::compile(&a)
                .probe()
                .unwrap()
                .critical_indices()
        );
    }

    #[test]
    fn recompile_retires_payloads_of_removed_nodes() {
        let a = deductive_case();
        let mut cache = PayloadCache::default();
        let (inc, _) = ArgumentTheory::recompile(&a, Theory::new(), &mut cache);
        let live_before = cache.live_cost();
        // Rebuild the argument without g2/e1 (the `p -> q` rule — a
        // compound payload, so retiring it strands Tseitin variables).
        let nodes: Vec<Node> = a
            .arena()
            .iter()
            .filter(|n| n.id != "g2".into() && n.id != "e1".into())
            .cloned()
            .collect();
        let edges: Vec<_> = a
            .edges()
            .iter()
            .filter(|e| e.from != "g2".into() && e.to != "g2".into() && e.to != "e1".into())
            .cloned()
            .collect();
        let shrunk = Argument::from_parts("mp", nodes, edges).unwrap();
        let (mut inc, stats) = ArgumentTheory::recompile(&shrunk, inc.into_theory(), &mut cache);
        assert_eq!(stats.retired_payloads, 1);
        assert!(cache.garbage_cost() > 0);
        assert!(cache.live_cost() < live_before);
        assert_eq!(cache.len(), 2);
        // Without the rule, modus ponens no longer closes.
        assert_eq!(inc.root_entailed(), Some(false));
    }

    #[test]
    fn affected_step_parents_climbs_through_unformalised_strategies_only() {
        let a = deductive_case();
        let g3 = a.node_idx(&"g3".into()).unwrap();
        let s1 = a.node_idx(&"s1".into()).unwrap();
        let g1 = a.node_idx(&"g1".into()).unwrap();
        // Touching the `p` premise reaches g1's step through the
        // transparent strategy s1.
        let affected = affected_step_parents(&a, [g3]);
        assert_eq!(affected, BTreeSet::from([g3, s1, g1]));
        // A formalised parent stops the climb: stack another goal above
        // g1 and confirm a g3 edit never reaches it.
        let mut nodes: Vec<Node> = a.arena().to_vec();
        nodes.push(Node::new("g0", NodeKind::Goal, "top").with_formal(payload("q | z")));
        let mut edges: Vec<_> = a.edges().to_vec();
        edges.push(crate::argument::Edge {
            from: "g0".into(),
            to: "g1".into(),
            kind: EdgeKind::SupportedBy,
        });
        let tall = Argument::from_parts("tall", nodes, edges).unwrap();
        let g3t = tall.node_idx(&"g3".into()).unwrap();
        let g0t = tall.node_idx(&"g0".into()).unwrap();
        let affected = affected_step_parents(&tall, [g3t]);
        assert!(affected.contains(&tall.node_idx(&"g1".into()).unwrap()));
        assert!(!affected.contains(&g0t), "formalised parents stop the walk");
    }
}
