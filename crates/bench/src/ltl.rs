//! LTL benchmark harness: seeded Kripke-structure generators, the seed
//! checker (`Kripke::check_bounded_naive`) as the oracle, and the CSR
//! index plane (`Kripke::check_bounded`) as the measured path.
//!
//! The seed checker enumerates candidate lassos with `BTreeSet<Arc<str>>`
//! state labels, clones them into a [`Trace`] per lasso, and evaluates
//! the formula recursively with string hashing at every proposition
//! test. The CSR plane compiles the structure once — bitset labels over
//! an interned proposition universe, compressed-sparse-row out-edges —
//! and the formula to a hash-consed node arena, then evaluates each
//! lasso with a closure table of boolean rows. Both visit lassos in the
//! same order, so [`run_ltl_bench`] can cross-check them
//! result-for-result, counterexample paths included, and emit the
//! comparison as `BENCH_ltl.json` (via `repro ltl`).
//!
//! The generated structures are ring backbones (so every state stays
//! live and lassos exist at every depth) with seeded chord edges for
//! branching, and per-state labels drawn from a small proposition set.
//!
//! [`Trace`]: casekit_logic::ltl::Trace

use casekit_logic::ltl::{parse_ltl, CheckResult, CompiledLtl, CsrKripke, Kripke, Ltl};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// The formula family checked at every sweep point: invariance,
/// response, stabilisation, and fairness shapes over the first three
/// generated propositions, exercising every temporal operator the
/// closure table implements. The nested-response shapes at the end are
/// where the planes diverge hardest: the seed evaluator re-recurses
/// over the suffix at every position (O(len^depth) in the temporal
/// nesting depth), while the closure table fills one O(len) row per
/// subformula regardless of nesting.
pub fn formula_family() -> Vec<Ltl> {
    [
        // Mostly-violated shapes: check that counterexample paths match.
        "G p0",
        "G (p0 -> F p1)",
        "F (G p2)",
        "p0 U p1",
        "X (p1 U (p2 | G p0))",
        "(F p2) -> (p1 R p0)",
        // Holding shapes over the always-on `tick`: these force both
        // planes to enumerate the entire lasso space, and their nesting
        // is where the naive evaluator's cost compounds.
        "G tick",
        "G (p0 -> F (p1 | F tick))",
        "G (F (tick & X (tick U tick)))",
        "G ((p0 U tick) -> F (tick & X (F tick)))",
    ]
    .iter()
    .map(|src| parse_ltl(src).expect("formula family parses"))
    .collect()
}

/// A seeded Kripke structure: `n` states on a ring (`si → s(i+1) mod n`),
/// `chords` extra seeded edges, each state labelled with the always-on
/// proposition `tick` plus each of `n_props` propositions `p0…` with
/// probability 0.4, and state 0 initial.
pub fn random_kripke(n: usize, chords: usize, n_props: usize, seed: u64) -> Kripke {
    assert!(n >= 2, "a ring needs two states");
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x17E1_0000_0000_0000);
    let mut k = Kripke::new();
    let props: Vec<String> = (0..n_props).map(|p| format!("p{p}")).collect();
    let states: Vec<_> = (0..n)
        .map(|_| {
            let mut labels = vec!["tick"];
            labels.extend(
                props
                    .iter()
                    .filter(|_| rng.gen_bool(0.4))
                    .map(String::as_str),
            );
            k.add_state(labels)
        })
        .collect();
    for i in 0..n {
        k.add_transition(states[i], states[(i + 1) % n])
            .expect("ring states exist");
    }
    for _ in 0..chords {
        let from = states[rng.gen_range(0..n)];
        let to = states[rng.gen_range(0..n)];
        k.add_transition(from, to).expect("chord states exist");
    }
    k.add_initial(states[0]).expect("state 0 exists");
    k
}

fn verdicts_naive(k: &Kripke, formulas: &[Ltl], bound: usize) -> Vec<CheckResult> {
    formulas
        .iter()
        .map(|f| k.check_bounded_naive(f, bound).expect("initial state set"))
        .collect()
}

fn verdicts_csr(k: &Kripke, formulas: &[Ltl], bound: usize) -> Vec<CheckResult> {
    // Compile once per structure, inside the timed closure: the measured
    // win includes building the CSR graph and the formula arenas.
    let csr = CsrKripke::compile(k);
    formulas
        .iter()
        .map(|f| {
            let compiled = CompiledLtl::compile(f, &csr);
            csr.check_bounded(&compiled, bound)
                .expect("initial state set")
        })
        .collect()
}

/// Measured checker comparison at one (states, bound) point.
#[derive(Debug, Clone, Serialize)]
pub struct LtlSweepPoint {
    /// States in the generated structure.
    pub states: usize,
    /// Chord edges beyond the ring backbone.
    pub chords: usize,
    /// Lasso length bound.
    pub bound: usize,
    /// Formulas checked (the whole family).
    pub formulas: usize,
    /// Seed trace-based checker over all formulas, milliseconds (best of 3).
    pub naive_ms: f64,
    /// CSR closure-table checker (compile + all formulas), milliseconds
    /// (best of 3).
    pub csr_ms: f64,
    /// naive / csr.
    pub speedup: f64,
    /// Identical [`CheckResult`]s — counterexample paths included — on
    /// every formula at this point.
    pub agree: bool,
}

/// The measured comparison, serialized into `BENCH_ltl.json`.
#[derive(Debug, Clone, Serialize)]
pub struct LtlBenchReport {
    /// Total naive time / total CSR time across the sweep.
    pub speedup: f64,
    /// Every swept check agreed result-for-result.
    pub answers_agree: bool,
    /// Per-point measurements.
    pub sweep: Vec<LtlSweepPoint>,
    /// States in the CSR-only deep scenario.
    pub large_states: usize,
    /// Bound of the CSR-only deep scenario.
    pub large_bound: usize,
    /// CSR checker over the family at the deep point, milliseconds
    /// (best of 3) — a lasso space the seed checker would take orders of
    /// magnitude longer to enumerate.
    pub large_ms: f64,
    /// How many of the family's formulas were violated at the deep point.
    pub large_violations: usize,
}

/// Runs the checker comparison: naive-vs-CSR sweeps at each
/// `(states, chords, bound)` point (cross-checked result-for-result),
/// then the CSR-only deep scenario at `large`.
pub fn run_ltl_bench(
    points: &[(usize, usize, usize)],
    large: (usize, usize, usize),
) -> LtlBenchReport {
    let formulas = formula_family();
    let mut sweep = Vec::with_capacity(points.len());
    let mut answers_agree = true;
    let mut total_naive = 0.0;
    let mut total_csr = 0.0;
    for &(n, chords, bound) in points {
        let k = random_kripke(n, chords, 3, n as u64);
        let (naive_ms, naive_verdicts) =
            crate::best_of_ms(3, || verdicts_naive(&k, &formulas, bound));
        let (csr_ms, csr_verdicts) = crate::best_of_ms(3, || verdicts_csr(&k, &formulas, bound));
        let agree = naive_verdicts == csr_verdicts;
        answers_agree &= agree;
        total_naive += naive_ms;
        total_csr += csr_ms;
        sweep.push(LtlSweepPoint {
            states: n,
            chords,
            bound,
            formulas: formulas.len(),
            naive_ms,
            csr_ms,
            speedup: naive_ms / csr_ms.max(1e-9),
            agree,
        });
    }

    let (large_n, large_chords, large_bound) = large;
    let k = random_kripke(large_n, large_chords, 3, large_n as u64);
    let (large_ms, large_verdicts) =
        crate::best_of_ms(3, || verdicts_csr(&k, &formulas, large_bound));

    LtlBenchReport {
        speedup: total_naive / total_csr.max(1e-9),
        answers_agree,
        sweep,
        large_states: large_n,
        large_bound,
        large_ms,
        large_violations: large_verdicts.iter().filter(|r| !r.holds()).count(),
    }
}

/// Renders the report as JSON (the `BENCH_ltl.json` artifact).
pub fn bench_ltl_json(report: &LtlBenchReport) -> String {
    serde_json::to_string_pretty(report).expect("report serializes")
}

/// Human-readable summary for the repro binary.
pub fn render_report(report: &LtlBenchReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "LTL bounded checking, seed trace checker vs CSR closure-table checker\n\
         (speedup: {:.1}x   answers agree: {})",
        report.speedup, report.answers_agree,
    );
    for s in &report.sweep {
        let _ = writeln!(
            out,
            "  states={:<4} chords={:<4} bound={:<3} formulas={} \
             naive {:>10.3} ms   csr {:>9.3} ms   speedup {:>6.1}x   agree: {}",
            s.states, s.chords, s.bound, s.formulas, s.naive_ms, s.csr_ms, s.speedup, s.agree,
        );
    }
    let _ = writeln!(
        out,
        "csr-only deep point: states={}  bound={}  {:.3} ms  violations: {}",
        report.large_states, report.large_bound, report.large_ms, report.large_violations,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        let a = random_kripke(10, 5, 3, 42);
        let b = random_kripke(10, 5, 3, 42);
        assert_eq!(a.len(), b.len());
        for s in 0..a.len() {
            assert_eq!(
                a.labels_of(s).collect::<Vec<_>>(),
                b.labels_of(s).collect::<Vec<_>>()
            );
            assert_eq!(a.successors_of(s), b.successors_of(s));
        }
        assert_eq!(a.initial_states(), b.initial_states());
    }

    #[test]
    fn planes_agree_on_small_structures() {
        let formulas = formula_family();
        for n in [4, 7] {
            let k = random_kripke(n, n / 2, 3, n as u64);
            assert_eq!(
                verdicts_naive(&k, &formulas, 6),
                verdicts_csr(&k, &formulas, 6),
                "n={n}"
            );
        }
    }

    #[test]
    fn report_is_sane_at_small_scale() {
        let report = run_ltl_bench(&[(4, 2, 5), (6, 3, 5)], (8, 4, 6));
        assert!(report.answers_agree);
        assert!(report.speedup > 0.0);
        assert_eq!(report.sweep.len(), 2);
        for s in &report.sweep {
            assert!(s.agree);
            assert_eq!(s.formulas, formula_family().len());
        }
        assert_eq!(report.large_states, 8);
        let json = bench_ltl_json(&report);
        assert!(json.contains("\"speedup\""));
        assert!(json.contains("\"answers_agree\": true"));
        // The gate reads the FIRST "speedup" in the file: it must be the
        // report-level one, ahead of any per-point speedup.
        assert!(json.find("\"speedup\"").unwrap() < json.find("\"sweep\"").unwrap());
        assert!(render_report(&report).contains("answers agree: true"));
    }
}
