//! # casekit-service — long-lived incremental case sessions
//!
//! Everything else in the toolkit is batch: edit an argument, recompile
//! the whole theory, re-answer every question. This crate is the
//! interactive counterpart — a [`CaseService`] that keeps each case's
//! compiled state alive between edits and re-verifies only what an
//! edit can actually change.
//!
//! # Architecture
//!
//! A [`CaseSession`] owns four pieces of state per case:
//!
//! * the arena [`Argument`] — the current
//!   revision of the case;
//! * its compiled
//!   [`ArgumentTheory`](casekit_core::semantics::ArgumentTheory) — a
//!   persistent CDCL session whose clause database **only grows**
//!   across edits (payload formulas compile to definitional Tseitin
//!   biconditionals, never asserted facts), so learned clauses remain
//!   consequences of the database and are retained, sound, across
//!   revisions;
//! * a [`PayloadCache`](casekit_core::semantics::PayloadCache) mapping
//!   node ids to compiled literals, so an edit pays only its own
//!   Tseitin delta
//!   ([`recompile`](casekit_core::semantics::ArgumentTheory::recompile)
//!   reuses every
//!   unchanged payload's literal verbatim);
//! * the analysis [`WitnessPool`](casekit_analysis::WitnessPool) —
//!   models found answering one revision's satisfiability questions
//!   keep answering the next revision's (stored witnesses bound-check
//!   away variables newer than themselves, so stale hits are
//!   impossible).
//!
//! **Dirty-step tracking.** A support step's verdict depends only on
//! its parent payload and its formalised support children, so editing
//! one premise invalidates exactly the steps returned by
//! [`affected_step_parents`](casekit_core::semantics::affected_step_parents)
//! — the edited node plus the formalised ancestors that reach it
//! through unformalised strategies. Every other step verdict is reused
//! from the per-session cache; the machine report still lists findings
//! in the exact order of the batch checker.
//!
//! **Conservative invalidation.** Replaced payloads strand their old
//! definitional clauses as garbage; when the stranded cost outweighs
//! the live cost the session performs whole-theory invalidation — a
//! fresh compile with a cleared payload cache and witness pool — which
//! is always sound and bounds memory growth under heavy editing.
//!
//! **Batched questions.** [`CaseSession::answers`] returns the machine
//! check, the full CaseLint diagnostic stream, and the premise probe
//! classification in one pass over the shared compilation, and caches
//! the bundle until the next edit. Every answer is verdict-identical
//! to recompiling from scratch ([`batch_answers`]) — the service
//! proptests and `BENCH_service.json`'s `answers_agree` flag check
//! exactly that, after every step of random edit scripts.
//!
//! **Scale-out.** [`CaseService::drive`] shards per-case traffic
//! streams across `casekit-runtime` workers
//! ([`Runtime::map_mut`](casekit_runtime::Runtime::map_mut)); cases
//! are independent and per-case op order is preserved, so transcripts
//! are byte-identical at any worker count.
//!
//! ```
//! use casekit_core::dsl::parse_argument;
//! use casekit_service::{batch_answers, CaseService, EditOp};
//! use casekit_analysis::LintConfig;
//! use casekit_logic::prop::parse;
//!
//! let argument = parse_argument(r#"
//!     argument "mp" {
//!       goal g1 "q holds" formal "q" {
//!         goal g2 "the rule" formal "p -> q" { solution e1 "review" }
//!         goal g3 "the fact" formal "p" { solution e2 "measurement" }
//!       }
//!     }"#).unwrap();
//! let mut service = CaseService::new();
//! let case = service.open(argument);
//! assert!(service.answers(case).unwrap().machine.is_clean());
//! // Break the rule: only g1's step is re-verified.
//! service.apply(case, &EditOp::ReplaceFormula {
//!     node: "g2".into(),
//!     formula: parse("p -> r").unwrap(),
//! }).unwrap();
//! let answers = service.answers(case).unwrap();
//! assert!(!answers.machine.is_clean());
//! // Verdict-for-verdict identical to a from-scratch recompilation.
//! let fresh = batch_answers(service.session(case).unwrap().argument(), &LintConfig::new());
//! assert_eq!(answers, fresh);
//! ```

#![forbid(unsafe_code)]

mod loader;
mod ops;
mod session;

pub use loader::{CorpusLoader, LoadedCase};
pub use ops::{CaseAnswers, CaseOp, EditError, EditOp, ProbeAnswer};
pub use session::{batch_answers, batch_transcript, CaseSession, SessionStats};

use casekit_analysis::{check_source, Diagnostic, LintConfig};
use casekit_core::Argument;
use casekit_runtime::Runtime;

/// A fleet of live case sessions behind one edit/query front door.
///
/// Cases are addressed by the dense index [`open`](Self::open) returns.
/// Edits are cheap metadata operations; compilation and solving are
/// deferred to the next query, so an edit burst costs one recompile.
#[derive(Debug, Default)]
pub struct CaseService {
    sessions: Vec<CaseSession>,
    config: LintConfig,
}

impl CaseService {
    /// An empty service with the default lint configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty service whose sessions lint under `config`.
    pub fn with_config(config: LintConfig) -> Self {
        CaseService {
            sessions: Vec::new(),
            config,
        }
    }

    /// Opens a session for `argument` and returns its case index.
    pub fn open(&mut self, argument: Argument) -> usize {
        self.sessions
            .push(CaseSession::open(argument, self.config.clone()));
        self.sessions.len() - 1
    }

    /// Opens a session straight from `.case` source text via the
    /// error-recovering DSL frontend.
    ///
    /// Returns the new case index when enough of the file parsed to
    /// build an argument (even if it carried recoverable errors), plus
    /// the full span-carrying diagnostic stream — syntax (`CK2xx`) and
    /// graph/solver findings — under this service's lint configuration.
    /// A file too broken to yield an argument returns `(None, ...)` and
    /// opens nothing.
    pub fn open_source(&mut self, src: &str) -> (Option<usize>, Vec<Diagnostic>) {
        let analysis = check_source(src, &self.config);
        let case = analysis.argument.map(|argument| self.open(argument));
        (case, analysis.diagnostics)
    }

    /// Number of open sessions.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Whether the service holds no sessions.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// The session for `case`, if open.
    pub fn session(&self, case: usize) -> Option<&CaseSession> {
        self.sessions.get(case)
    }

    /// Mutable access to the session for `case`, if open.
    pub fn session_mut(&mut self, case: usize) -> Option<&mut CaseSession> {
        self.sessions.get_mut(case)
    }

    /// Every open session, for callers that shard their own traffic
    /// across a [`Runtime`].
    pub fn sessions_mut(&mut self) -> &mut [CaseSession] {
        &mut self.sessions
    }

    /// Applies one edit to `case`.
    pub fn apply(&mut self, case: usize, op: &EditOp) -> Result<(), EditError> {
        let session = self
            .sessions
            .get_mut(case)
            .ok_or(EditError::UnknownCase(case))?;
        session.apply(op)
    }

    /// The batched answers for `case` — machine check, lint stream,
    /// probe classification — recompiling only what edits dirtied.
    pub fn answers(&mut self, case: usize) -> Option<CaseAnswers> {
        self.sessions.get_mut(case).map(CaseSession::answers)
    }

    /// Answers every open case, sharded across the runtime's workers.
    /// Byte-identical at any worker count: sessions are independent and
    /// [`Runtime::map_mut`] preserves order.
    pub fn answer_all(&mut self, runtime: &Runtime) -> Vec<CaseAnswers> {
        runtime.map_mut(&mut self.sessions, |_, session| session.answers())
    }

    /// Drives one traffic stream per case — `traffic[i]` is the op
    /// sequence for case `i` — sharded across the runtime's workers,
    /// and returns each case's query transcript (one [`CaseAnswers`]
    /// per [`CaseOp::Query`], in stream order).
    ///
    /// Per-case op order is sequential and cases never communicate, so
    /// transcripts are byte-identical at any worker count. Edits that
    /// fail (unknown node, invalid rebuild) leave the session on its
    /// last valid revision and the stream moves on; pre-validated
    /// traffic — the bench and proptest generators — never hits that
    /// path.
    ///
    /// # Panics
    ///
    /// Panics if `traffic` is not exactly one stream per open case.
    pub fn drive(&mut self, traffic: &[Vec<CaseOp>], runtime: &Runtime) -> Vec<Vec<CaseAnswers>> {
        assert_eq!(
            traffic.len(),
            self.sessions.len(),
            "one traffic stream per open case"
        );
        runtime.map_mut(&mut self.sessions, |i, session| {
            traffic[i]
                .iter()
                .filter_map(|op| match op {
                    CaseOp::Edit(edit) => {
                        let _ = session.apply(edit);
                        None
                    }
                    CaseOp::Query => Some(session.answers()),
                })
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use casekit_core::dsl::parse_argument;
    use casekit_core::{Node, NodeKind};
    use casekit_logic::prop::parse;

    fn mp_case() -> Argument {
        parse_argument(
            r#"argument "mp" {
                goal g1 "q holds" formal "q" {
                  goal g2 "the rule" formal "p -> q" { solution e1 "review" }
                  goal g3 "the fact" formal "p" { solution e2 "measurement" }
                }
            }"#,
        )
        .unwrap()
    }

    /// A two-branch case: editing one branch's premise must not
    /// re-verify the other branch's step.
    fn two_branch_case() -> Argument {
        parse_argument(
            r#"argument "branches" {
                goal g1 "a & b" formal "a & b" {
                  goal ga "a" formal "a" {
                    goal ga1 "a from x" formal "x -> a" { solution ea1 "x review" }
                    goal ga2 "x" formal "x" { solution ea2 "x measurement" }
                  }
                  goal gb "b" formal "b" {
                    goal gb1 "b from y" formal "y -> b" { solution eb1 "y review" }
                    goal gb2 "y" formal "y" { solution eb2 "y measurement" }
                  }
                }
            }"#,
        )
        .unwrap()
    }

    fn assert_agrees(service: &mut CaseService, case: usize) {
        let incremental = service.answers(case).unwrap();
        let fresh = batch_answers(
            service.session(case).unwrap().argument(),
            &LintConfig::new(),
        );
        assert_eq!(incremental, fresh);
    }

    #[test]
    fn incremental_answers_match_batch_through_an_edit_script() {
        let mut service = CaseService::new();
        let case = service.open(mp_case());
        assert_agrees(&mut service, case);
        // Formula edit that breaks entailment.
        service
            .apply(
                case,
                &EditOp::ReplaceFormula {
                    node: "g2".into(),
                    formula: parse("p -> r").unwrap(),
                },
            )
            .unwrap();
        assert_agrees(&mut service, case);
        // Text-only edit (lint plane).
        service
            .apply(
                case,
                &EditOp::SetText {
                    node: "g1".into(),
                    text: "All outputs are checked".into(),
                },
            )
            .unwrap();
        assert_agrees(&mut service, case);
        // Structural: new supporting premise restores entailment.
        service
            .apply(
                case,
                &EditOp::AddSupport {
                    parent: "g1".into(),
                    node: Node::new("g4", NodeKind::Goal, "the missing rule")
                        .with_formal(casekit_core::FormalPayload::Prop(parse("r -> q").unwrap())),
                },
            )
            .unwrap();
        assert_agrees(&mut service, case);
        // Structural: drop a premise again.
        service
            .apply(case, &EditOp::RemoveNode { node: "g3".into() })
            .unwrap();
        assert_agrees(&mut service, case);
    }

    #[test]
    fn repeat_queries_answer_from_the_cached_bundle() {
        let mut service = CaseService::new();
        let case = service.open(mp_case());
        let first = service.answers(case).unwrap();
        let second = service.answers(case).unwrap();
        assert_eq!(first, second);
        let stats = service.session(case).unwrap().stats();
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.cached_answers, 1);
        assert_eq!(stats.recompiles, 1);
    }

    #[test]
    fn editing_one_branch_reuses_the_other_branchs_step_verdicts() {
        let mut service = CaseService::new();
        let case = service.open(two_branch_case());
        assert_agrees(&mut service, case);
        let checked_cold = service.session(case).unwrap().stats().steps_checked;
        service
            .apply(
                case,
                &EditOp::ReplaceFormula {
                    node: "ga2".into(),
                    formula: parse("~x").unwrap(),
                },
            )
            .unwrap();
        assert_agrees(&mut service, case);
        let stats = service.session(case).unwrap().stats();
        // The b-branch steps (gb, gb1's chain) and the untouched root
        // pieces answer from cache; only the dirtied a-chain re-checks.
        assert!(stats.steps_reused > 0, "stats: {stats:?}");
        assert!(
            stats.steps_checked < 2 * checked_cold,
            "edit re-checked everything: {stats:?}"
        );
    }

    #[test]
    fn heavy_editing_triggers_compaction_and_answers_still_agree() {
        let mut service = CaseService::new();
        let case = service.open(mp_case());
        // Churn the rule with ever-different formulas until the
        // stranded definitional clauses outweigh the live ones.
        for round in 0..40 {
            let atoms: Vec<String> = (0..=round).map(|i| format!("v{i}")).collect();
            let src = format!("({}) -> q", atoms.join(" & "));
            service
                .apply(
                    case,
                    &EditOp::ReplaceFormula {
                        node: "g2".into(),
                        formula: parse(&src).unwrap(),
                    },
                )
                .unwrap();
            let _ = service.answers(case).unwrap();
        }
        assert_agrees(&mut service, case);
        let stats = service.session(case).unwrap().stats();
        assert!(stats.full_rebuilds >= 1, "stats: {stats:?}");
    }

    #[test]
    fn manual_compact_preserves_answers() {
        let mut service = CaseService::new();
        let case = service.open(mp_case());
        let before = service.answers(case).unwrap();
        service.session_mut(case).unwrap().compact();
        assert_eq!(service.answers(case).unwrap(), before);
        assert_agrees(&mut service, case);
    }

    #[test]
    fn drive_transcripts_are_identical_at_every_worker_count() {
        let traffic: Vec<Vec<CaseOp>> = (0..6)
            .map(|i| {
                vec![
                    CaseOp::Query,
                    CaseOp::Edit(EditOp::ReplaceFormula {
                        node: "g3".into(),
                        formula: parse(if i % 2 == 0 { "~p" } else { "p & p" }).unwrap(),
                    }),
                    CaseOp::Query,
                    CaseOp::Edit(EditOp::SetText {
                        node: "g1".into(),
                        text: format!("revision {i}"),
                    }),
                    CaseOp::Query,
                ]
            })
            .collect();
        let mut reference: Option<Vec<Vec<CaseAnswers>>> = None;
        for workers in [1, 2, 4] {
            let mut service = CaseService::new();
            for _ in 0..traffic.len() {
                service.open(mp_case());
            }
            let transcript = service.drive(&traffic, &Runtime::with_workers(workers));
            match &reference {
                None => reference = Some(transcript),
                Some(expected) => assert_eq!(&transcript, expected, "workers = {workers}"),
            }
        }
    }

    #[test]
    fn open_source_recovers_and_opens_when_possible() {
        let mut service = CaseService::new();
        // A typo'd node is dropped, but the file still opens.
        let (case, diagnostics) = service.open_source(
            "argument \"typo\" {\n  gaol g1 \"dropped\"\n  goal g2 \"kept\" { solution e1 \"log\" }\n}\n",
        );
        let case = case.expect("recovery yields an openable case");
        assert!(!diagnostics.is_empty());
        assert!(diagnostics.iter().all(|d| d.span.is_some()));
        assert_eq!(service.session(case).unwrap().argument().nodes().count(), 2);
        assert!(service.answers(case).is_some());
        // A file with no header opens nothing.
        let (none, diagnostics) = service.open_source("widget { }");
        assert_eq!(none, None);
        assert!(!diagnostics.is_empty());
        assert_eq!(service.len(), 1);
    }

    #[test]
    fn edit_errors_leave_the_session_usable() {
        let mut service = CaseService::new();
        let case = service.open(mp_case());
        let before = service.answers(case).unwrap();
        assert_eq!(
            service.apply(
                case,
                &EditOp::RemoveNode {
                    node: "nope".into()
                }
            ),
            Err(EditError::UnknownNode("nope".into()))
        );
        // Duplicate id through AddSupport surfaces the rebuild error.
        let dup = service.apply(
            case,
            &EditOp::AddSupport {
                parent: "g1".into(),
                node: Node::new("g2", NodeKind::Goal, "already taken"),
            },
        );
        assert!(matches!(dup, Err(EditError::Rebuild(_))), "got: {dup:?}");
        assert_eq!(
            service.apply(99, &EditOp::RemoveNode { node: "g1".into() }),
            Err(EditError::UnknownCase(99))
        );
        assert_eq!(service.answers(case).unwrap(), before);
        assert_agrees(&mut service, case);
    }
}
