//! Figure 1 of the paper, end to end: the desert-bank argument is
//! formally valid (our SLD engine derives the conclusion) yet fallacious
//! (it equivocates on `bank`) — and the sort machinery shows exactly how
//! much of that a machine can and cannot catch.
//!
//! Run with: `cargo run --example desert_bank`

use casekit::logic::fol::{desert_bank_kb, parse_query};
use casekit::logic::sorts::SortRegistry;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kb = desert_bank_kb();
    println!("From these premises:");
    for clause in kb.clauses() {
        println!("  {clause}");
    }

    // Formal validation: the derivation goes through.
    let goal = parse_query("adjacent(desert_bank, river)")?;
    println!("\nWe can 'prove' that:\n  {goal}.");
    assert!(kb.proves(&goal));
    println!("Derivable: yes — the argument passes formal validation.");

    // The strict per-position lint flags `bank`, but it is a heuristic:
    // it would also flag harmless relational constants.
    let strict = SortRegistry::infer_conflicts(&kb);
    println!(
        "\nStrict sort lint flags: {:?}",
        strict.keys().collect::<Vec<_>>()
    );

    // The variable-linked inference is 'smarter' — and silent, because the
    // bridging rule is precisely what licenses the equivocation.
    let linked = SortRegistry::infer_conflicts_linked(&kb);
    println!(
        "Linked sort inference flags: {:?}",
        linked.keys().collect::<Vec<_>>()
    );

    // Declaring honest sorts catches it — but the declarations themselves
    // are informal judgments a machine cannot validate (Graydon §IV-C).
    let mut registry = SortRegistry::new();
    registry.declare_predicate("is_a", ["Institution", "InstitutionKind"]);
    registry.declare_predicate("adjacent", ["Landform", "Landform"]);
    registry.declare_constant("desert_bank", "Institution");
    registry.declare_constant("bank", "InstitutionKind");
    registry.declare_constant("river", "Landform");
    match registry.check(&kb) {
        Ok(()) => println!("\nUnder declared sorts: well-sorted (unexpected!)"),
        Err(errors) => {
            println!("\nUnder honestly declared sorts, the KB is rejected:");
            for e in errors {
                println!("  - {e}");
            }
        }
    }
    Ok(())
}
