#!/usr/bin/env bash
# Full local gate: format, lints, tests, benches, and the benchmark
# artifacts. Mirrors what `just check` runs; `just ci` / the GitHub
# workflow run the same steps plus the smoke bench gate.
#
# Every step runs even when an earlier one fails, each failure is
# recorded, and a per-step summary prints at the end — so local runs
# and CI agree on exactly what "green" means.
set -euo pipefail
cd "$(dirname "$0")/.."

STEP_NAMES=()
STEP_RESULTS=()

# run_step <name> <command...> — runs the command with failure captured
# (set -e stays on inside the command itself).
run_step() {
  local name="$1"
  shift
  echo "==> ${name}"
  local status=0
  "$@" || status=$?
  STEP_NAMES+=("$name")
  STEP_RESULTS+=("$status")
  if [ "$status" -ne 0 ]; then
    echo "FAIL: ${name} (exit ${status})"
  fi
}

# Artifact steps regenerate the file and gate its agreement flags in
# one step, so a gate can never pass against a stale committed artifact
# left behind by a failed regeneration.
repro_logic_gated() {
  cargo run --release -q -p casekit-bench --bin repro logic || return 1
  [ "$(grep -c '"verdicts_agree": true' BENCH_logic.json)" -eq 2 ] \
    || { echo "BENCH_logic.json does not report sweep + hard-instance verdict agreement"; return 1; }
}

repro_af_gated() {
  cargo run --release -q -p casekit-bench --bin repro af || return 1
  grep -q '"extensions_agree": true' BENCH_af.json \
    || { echo "BENCH_af.json does not report SAT/enumerator extension agreement"; return 1; }
  grep -q '"grounded_agree": true' BENCH_af.json \
    || { echo "BENCH_af.json does not report grounded-engine agreement"; return 1; }
  grep -q '"scc_agree": true' BENCH_af.json \
    || { echo "BENCH_af.json does not report decomposed-engine agreement"; return 1; }
  grep -q '"scc_largest_n": 100000' BENCH_af.json \
    || { echo "BENCH_af.json does not record a 100k-argument decomposed run"; return 1; }
}

repro_fol_gated() {
  cargo run --release -q -p casekit-bench --bin repro fol || return 1
  grep -q '"answers_agree": true' BENCH_fol.json \
    || { echo "BENCH_fol.json does not report seed/interned answer agreement"; return 1; }
  grep -q '"chain_proved": true' BENCH_fol.json \
    || { echo "BENCH_fol.json does not record a proved deep chain"; return 1; }
}

repro_ltl_gated() {
  cargo run --release -q -p casekit-bench --bin repro ltl || return 1
  grep -q '"answers_agree": true' BENCH_ltl.json \
    || { echo "BENCH_ltl.json does not report naive/CSR result agreement"; return 1; }
}

repro_experiments_gated() {
  cargo run --release -q -p casekit-bench --bin repro experiments || return 1
  grep -q '"reports_agree": true' BENCH_experiments.json \
    || { echo "BENCH_experiments.json does not report serial/parallel agreement"; return 1; }
}

repro_lint_gated() {
  cargo run --release -q -p casekit-bench --bin repro lint || return 1
  grep -q '"diagnostics_agree": true' BENCH_lint.json \
    || { echo "BENCH_lint.json does not report cross-engine/cross-worker diagnostic agreement"; return 1; }
}

repro_service_gated() {
  cargo run --release -q -p casekit-bench --bin repro service || return 1
  grep -q '"answers_agree": true' BENCH_service.json \
    || { echo "BENCH_service.json does not report incremental/batch answer agreement"; return 1; }
}

repro_dsl_gated() {
  cargo run --release -q -p casekit-bench --bin repro dsl || return 1
  grep -q '"diagnostics_roundtrip": true' BENCH_dsl.json \
    || { echo "BENCH_dsl.json does not report seed containment + worker-invariant diagnostics"; return 1; }
}

# The malformed fixture corpus must fail caselint, with every syntax
# code class represented — the CLI face of the recovery tests in
# crates/analysis/tests/malformed_fixtures.rs.
caselint_malformed_gated() {
  local out
  if out="$(cargo run --release -q -p casekit-analysis --bin caselint -- examples/cases/malformed)"; then
    echo "caselint unexpectedly passed on examples/cases/malformed"
    return 1
  fi
  local code
  for code in CK201 CK202 CK203 CK204 CK205; do
    printf '%s' "$out" | grep -q "\[$code\]" \
      || { echo "malformed fixtures produced no $code diagnostic"; return 1; }
  done
}

run_step "cargo fmt --check" cargo fmt --all --check
run_step "cargo clippy -D warnings" cargo clippy --workspace --all-targets -- -D warnings
run_step "cargo test" cargo test -q
run_step "caselint examples/cases (deny level)" \
  cargo run --release -q -p casekit-analysis --bin caselint -- --deny examples/cases/*.case
run_step "caselint examples/cases/malformed (expected codes, nonzero exit)" \
  caselint_malformed_gated
run_step "cargo bench (short measurement budget)" \
  env CASEKIT_BENCH_MS="${CASEKIT_BENCH_MS:-25}" cargo bench -q -p casekit-bench
run_step "repro graph (writes BENCH_graph.json)" \
  cargo run --release -q -p casekit-bench --bin repro graph
run_step "repro logic + verdict gates (writes BENCH_logic.json)" repro_logic_gated
run_step "repro af + agreement gates (writes BENCH_af.json)" repro_af_gated
run_step "repro fol + agreement gates (writes BENCH_fol.json)" repro_fol_gated
run_step "repro ltl + agreement gate (writes BENCH_ltl.json)" repro_ltl_gated
run_step "repro experiments + agreement gate (writes BENCH_experiments.json)" \
  repro_experiments_gated
run_step "repro lint + agreement gate (writes BENCH_lint.json)" repro_lint_gated
run_step "repro service + agreement gate (writes BENCH_service.json)" repro_service_gated
run_step "repro dsl + roundtrip gate (writes BENCH_dsl.json)" repro_dsl_gated

echo
echo "== step summary =="
overall=0
for i in "${!STEP_NAMES[@]}"; do
  if [ "${STEP_RESULTS[$i]}" -eq 0 ]; then
    printf '  ok    %s\n' "${STEP_NAMES[$i]}"
  else
    printf '  FAIL  %s (exit %s)\n' "${STEP_NAMES[$i]}" "${STEP_RESULTS[$i]}"
    overall=1
  fi
done
if [ "$overall" -eq 0 ]; then
  echo "All checks passed."
else
  echo "Some checks FAILED."
fi
exit "$overall"
