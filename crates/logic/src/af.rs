//! Abstract argumentation frameworks with non-monotonic semantics, after
//! Tolchinsky et al.'s deliberation dialogues (Graydon §III-O).
//!
//! Their on-line decision aid stores claims as symbolic predicates and
//! uses dialogue games over a non-monotonic logic to decide whether a
//! proposed safety-critical action (e.g. transplanting a given organ) is
//! acceptable. The substrate for such systems is Dung's abstract
//! argumentation: arguments and an *attacks* relation, with acceptability
//! computed as a fixed point rather than by classical entailment — adding
//! an argument can *retract* previously-accepted conclusions, which
//! classical deduction cannot model.
//!
//! This module implements the framework with grounded, complete, and
//! preferred semantics, plus a small [`Deliberation`] layer that mirrors
//! the dialogue-game usage: a proposed action, pro/con arguments added in
//! turns, and a verdict that changes non-monotonically as the dialogue
//! unfolds.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Identifier of an argument within a framework.
pub type ArgId = usize;

/// A Dung argumentation framework: abstract arguments plus attacks.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Framework {
    labels: Vec<String>,
    attacks: BTreeSet<(ArgId, ArgId)>,
}

impl Framework {
    /// An empty framework.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an argument with a human-readable label; returns its id.
    pub fn add_argument(&mut self, label: impl Into<String>) -> ArgId {
        self.labels.push(label.into());
        self.labels.len() - 1
    }

    /// Records that `attacker` attacks `target`.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn add_attack(&mut self, attacker: ArgId, target: ArgId) {
        assert!(attacker < self.labels.len(), "unknown attacker");
        assert!(target < self.labels.len(), "unknown target");
        self.attacks.insert((attacker, target));
    }

    /// Number of arguments.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the framework is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The label of an argument.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn label(&self, id: ArgId) -> &str {
        &self.labels[id]
    }

    /// The attackers of `target`.
    pub fn attackers(&self, target: ArgId) -> Vec<ArgId> {
        self.attacks
            .iter()
            .filter(|(_, t)| *t == target)
            .map(|(a, _)| *a)
            .collect()
    }

    /// Whether `set` attacks `id`.
    fn set_attacks(&self, set: &BTreeSet<ArgId>, id: ArgId) -> bool {
        self.attackers(id).iter().any(|a| set.contains(a))
    }

    /// Whether `set` *defends* `id`: every attacker of `id` is attacked by
    /// `set`.
    pub fn defends(&self, set: &BTreeSet<ArgId>, id: ArgId) -> bool {
        self.attackers(id)
            .iter()
            .all(|&attacker| self.set_attacks(set, attacker))
    }

    /// Whether `set` is conflict-free.
    pub fn conflict_free(&self, set: &BTreeSet<ArgId>) -> bool {
        !self
            .attacks
            .iter()
            .any(|(a, t)| set.contains(a) && set.contains(t))
    }

    /// Whether `set` is *admissible*: conflict-free and self-defending.
    pub fn admissible(&self, set: &BTreeSet<ArgId>) -> bool {
        self.conflict_free(set) && set.iter().all(|&id| self.defends(set, id))
    }

    /// The grounded extension: the least fixed point of the characteristic
    /// function — the sceptical core every reasonable semantics accepts.
    pub fn grounded_extension(&self) -> BTreeSet<ArgId> {
        let mut current: BTreeSet<ArgId> = BTreeSet::new();
        loop {
            let next: BTreeSet<ArgId> = (0..self.labels.len())
                .filter(|&id| self.defends(&current, id))
                .collect();
            if next == current {
                return current;
            }
            current = next;
        }
    }

    /// All complete extensions (conflict-free fixpoints of the
    /// characteristic function). Exponential enumeration — frameworks in
    /// deliberation dialogues are small.
    ///
    /// # Panics
    ///
    /// Panics above 16 arguments.
    pub fn complete_extensions(&self) -> Vec<BTreeSet<ArgId>> {
        let n = self.labels.len();
        assert!(
            n <= 16,
            "complete-extension enumeration limited to 16 arguments"
        );
        let mut out = Vec::new();
        for mask in 0..(1u32 << n) {
            let set: BTreeSet<ArgId> = (0..n).filter(|i| mask >> i & 1 == 1).collect();
            if !self.conflict_free(&set) {
                continue;
            }
            // Complete: contains exactly the arguments it defends.
            let defended: BTreeSet<ArgId> = (0..n).filter(|&id| self.defends(&set, id)).collect();
            if defended == set {
                out.push(set);
            }
        }
        out
    }

    /// The preferred extensions: maximal (by inclusion) complete
    /// extensions.
    ///
    /// # Panics
    ///
    /// Panics above 16 arguments (see [`Framework::complete_extensions`]).
    pub fn preferred_extensions(&self) -> Vec<BTreeSet<ArgId>> {
        let complete = self.complete_extensions();
        complete
            .iter()
            .filter(|s| {
                !complete
                    .iter()
                    .any(|other| *s != other && s.is_subset(other))
            })
            .cloned()
            .collect()
    }

    /// Whether `id` is sceptically accepted (in the grounded extension).
    pub fn sceptically_accepted(&self, id: ArgId) -> bool {
        self.grounded_extension().contains(&id)
    }
}

/// The status of a deliberated action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// The proposal is sceptically accepted: perform the action.
    Accepted,
    /// The proposal is attacked and undefended: do not perform it.
    Rejected,
}

/// A deliberation dialogue over one proposed safety-critical action,
/// mirroring Tolchinsky et al.'s usage: participants submit arguments for
/// or against, each possibly attacking earlier arguments, and the verdict
/// is recomputed non-monotonically after every move.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Deliberation {
    framework: Framework,
    proposal: ArgId,
    history: Vec<(ArgId, Verdict)>,
}

impl Deliberation {
    /// Opens a deliberation over `proposal` (e.g.
    /// `treat(r, penicillin)` — the paper's symbolic-claim example).
    pub fn open(proposal: impl Into<String>) -> Self {
        let mut framework = Framework::new();
        let proposal = framework.add_argument(proposal);
        let mut d = Deliberation {
            framework,
            proposal,
            history: Vec::new(),
        };
        d.history.push((proposal, d.verdict()));
        d
    }

    /// Submits an argument attacking an earlier one; returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `target` is unknown.
    pub fn object(&mut self, label: impl Into<String>, target: ArgId) -> ArgId {
        let id = self.framework.add_argument(label);
        self.framework.add_attack(id, target);
        self.history.push((id, self.verdict()));
        id
    }

    /// The current verdict on the proposal.
    pub fn verdict(&self) -> Verdict {
        if self.framework.sceptically_accepted(self.proposal) {
            Verdict::Accepted
        } else {
            Verdict::Rejected
        }
    }

    /// The framework built so far.
    pub fn framework(&self) -> &Framework {
        &self.framework
    }

    /// The verdict after each move — the dialogue's non-monotone history.
    pub fn verdict_history(&self) -> Vec<Verdict> {
        self.history.iter().map(|(_, v)| *v).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[ArgId]) -> BTreeSet<ArgId> {
        ids.iter().copied().collect()
    }

    #[test]
    fn unattacked_argument_is_grounded() {
        let mut af = Framework::new();
        let a = af.add_argument("a");
        assert_eq!(af.grounded_extension(), set(&[a]));
        assert!(af.sceptically_accepted(a));
        assert_eq!(af.label(a), "a");
    }

    #[test]
    fn simple_attack_defeats() {
        let mut af = Framework::new();
        let a = af.add_argument("do it");
        let b = af.add_argument("objection");
        af.add_attack(b, a);
        assert_eq!(af.grounded_extension(), set(&[b]));
        assert!(!af.sceptically_accepted(a));
    }

    #[test]
    fn reinstatement_chain() {
        // c attacks b attacks a: a is reinstated (defended by c).
        let mut af = Framework::new();
        let a = af.add_argument("a");
        let b = af.add_argument("b");
        let c = af.add_argument("c");
        af.add_attack(b, a);
        af.add_attack(c, b);
        assert_eq!(af.grounded_extension(), set(&[a, c]));
    }

    #[test]
    fn mutual_attack_grounds_to_empty() {
        let mut af = Framework::new();
        let a = af.add_argument("a");
        let b = af.add_argument("b");
        af.add_attack(a, b);
        af.add_attack(b, a);
        assert!(af.grounded_extension().is_empty());
        // But there are two preferred extensions: {a} and {b}.
        let preferred = af.preferred_extensions();
        assert_eq!(preferred.len(), 2);
        assert!(preferred.contains(&set(&[a])));
        assert!(preferred.contains(&set(&[b])));
    }

    #[test]
    fn self_attacking_argument_never_accepted() {
        let mut af = Framework::new();
        let a = af.add_argument("liar");
        af.add_attack(a, a);
        assert!(af.grounded_extension().is_empty());
        assert_eq!(af.preferred_extensions(), vec![BTreeSet::new()]);
    }

    #[test]
    fn admissibility_and_conflict_freedom() {
        let mut af = Framework::new();
        let a = af.add_argument("a");
        let b = af.add_argument("b");
        let c = af.add_argument("c");
        af.add_attack(b, a);
        af.add_attack(c, b);
        assert!(af.conflict_free(&set(&[a, c])));
        assert!(!af.conflict_free(&set(&[a, b])));
        assert!(af.admissible(&set(&[a, c])));
        assert!(!af.admissible(&set(&[a]))); // a cannot defend itself
        assert!(af.admissible(&set(&[])));
    }

    #[test]
    fn grounded_is_subset_of_every_preferred() {
        let mut af = Framework::new();
        let a = af.add_argument("a");
        let b = af.add_argument("b");
        let c = af.add_argument("c");
        let d = af.add_argument("d");
        af.add_attack(a, b);
        af.add_attack(b, a);
        af.add_attack(a, c);
        af.add_attack(b, c);
        af.add_attack(c, d);
        let grounded = af.grounded_extension();
        for preferred in af.preferred_extensions() {
            assert!(grounded.is_subset(&preferred));
        }
    }

    #[test]
    fn transplant_deliberation_is_non_monotonic() {
        // The paper's scenario: deliberate a transplant action. The
        // verdict flips as the dialogue adds information — the
        // non-monotonicity classical deduction cannot model.
        let mut d = Deliberation::open("transplant(organ1, recipient_r)");
        assert_eq!(d.verdict(), Verdict::Accepted);

        let objection = d.object("donor history indicates hepatitis risk", 0);
        assert_eq!(d.verdict(), Verdict::Rejected);

        let rebuttal = d.object("serology panel rules the risk out", objection);
        assert_eq!(d.verdict(), Verdict::Accepted);

        d.object("panel used an expired reagent batch", rebuttal);
        assert_eq!(d.verdict(), Verdict::Rejected);

        assert_eq!(
            d.verdict_history(),
            vec![
                Verdict::Accepted,
                Verdict::Rejected,
                Verdict::Accepted,
                Verdict::Rejected
            ]
        );
        assert_eq!(d.framework().len(), 4);
    }

    #[test]
    fn attackers_listed() {
        let mut af = Framework::new();
        let a = af.add_argument("a");
        let b = af.add_argument("b");
        let c = af.add_argument("c");
        af.add_attack(b, a);
        af.add_attack(c, a);
        assert_eq!(af.attackers(a), vec![b, c]);
        assert!(af.attackers(b).is_empty());
    }

    #[test]
    #[should_panic(expected = "unknown attacker")]
    fn bad_attack_panics() {
        let mut af = Framework::new();
        let a = af.add_argument("a");
        af.add_attack(9, a);
    }

    #[test]
    fn complete_extensions_of_classic_example() {
        // a <-> b, both attack c: complete extensions are {}, {a}, {b}.
        let mut af = Framework::new();
        let a = af.add_argument("a");
        let b = af.add_argument("b");
        let c = af.add_argument("c");
        af.add_attack(a, b);
        af.add_attack(b, a);
        af.add_attack(a, c);
        af.add_attack(b, c);
        let complete = af.complete_extensions();
        assert_eq!(complete.len(), 3);
        assert!(complete.contains(&BTreeSet::new()));
        assert!(complete.contains(&set(&[a])));
        assert!(complete.contains(&set(&[b])));
    }
}
