//! Kripke structures and bounded LTL checking by lasso enumeration.
//!
//! Brunel & Cazin's proposal validates formalised argument claims against a
//! system model. We model the system as a Kripke structure (states labelled
//! with atomic propositions, total transition relation not required) and
//! check `M ⊨ φ` by enumerating every lasso path up to a bound and
//! evaluating `φ` on each — bounded model checking in its simplest,
//! auditable form. A counterexample lasso is returned when found.

use super::ast::Ltl;
use super::csr::{CompiledLtl, CsrKripke};
use super::trace::Trace;
use crate::error::LogicError;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Index of a state within a [`Kripke`] structure.
pub type StateId = usize;

/// The result of a bounded check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckResult {
    /// Every lasso within the bound satisfies the formula.
    HoldsWithinBound,
    /// Some lasso violates the formula; the witness is returned together
    /// with the state sequence (prefix then loop).
    CounterExample {
        /// States along the prefix of the violating lasso.
        prefix: Vec<StateId>,
        /// States along the repeating loop.
        looped: Vec<StateId>,
    },
}

impl CheckResult {
    /// Whether the property held within the bound.
    pub fn holds(&self) -> bool {
        matches!(self, CheckResult::HoldsWithinBound)
    }
}

/// An explicit-state Kripke structure.
#[derive(Debug, Clone, Default)]
pub struct Kripke {
    labels: Vec<BTreeSet<Arc<str>>>,
    successors: Vec<Vec<StateId>>,
    initial: Vec<StateId>,
}

impl Kripke {
    /// An empty structure.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a state labelled with the given true propositions; returns its id.
    pub fn add_state<I, S>(&mut self, props: I) -> StateId
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        self.labels
            .push(props.into_iter().map(|s| Arc::from(s.as_ref())).collect());
        self.successors.push(Vec::new());
        self.labels.len() - 1
    }

    /// Adds a transition `from → to`. Errors when either state id was
    /// never allocated by [`Kripke::add_state`].
    pub fn add_transition(&mut self, from: StateId, to: StateId) -> Result<(), LogicError> {
        for id in [from, to] {
            if id >= self.labels.len() {
                return Err(LogicError::UnknownState {
                    id,
                    states: self.labels.len(),
                });
            }
        }
        if !self.successors[from].contains(&to) {
            self.successors[from].push(to);
        }
        Ok(())
    }

    /// Marks a state as initial. Errors when the state id was never
    /// allocated by [`Kripke::add_state`].
    pub fn add_initial(&mut self, state: StateId) -> Result<(), LogicError> {
        if state >= self.labels.len() {
            return Err(LogicError::UnknownState {
                id: state,
                states: self.labels.len(),
            });
        }
        if !self.initial.contains(&state) {
            self.initial.push(state);
        }
        Ok(())
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the structure has no states.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The labels of a state.
    ///
    /// # Panics
    ///
    /// Panics if the state id is out of range.
    pub fn labels_of(&self, state: StateId) -> impl Iterator<Item = &str> {
        self.labels[state].iter().map(|s| s.as_ref())
    }

    /// The successors of a state, in insertion order.
    ///
    /// # Panics
    ///
    /// Panics if the state id is out of range.
    pub fn successors_of(&self, state: StateId) -> &[StateId] {
        &self.successors[state]
    }

    /// The initial states, in insertion order.
    pub fn initial_states(&self) -> &[StateId] {
        &self.initial
    }

    /// Builds the [`Trace`] corresponding to a lasso path through the
    /// structure.
    fn trace_of(&self, prefix: &[StateId], looped: &[StateId]) -> Trace {
        let state_props = |id: &StateId| -> Vec<String> {
            self.labels[*id].iter().map(|p| p.to_string()).collect()
        };
        Trace::lasso(
            prefix.iter().map(state_props).collect::<Vec<_>>(),
            looped.iter().map(state_props).collect::<Vec<_>>(),
        )
    }

    /// Checks `φ` on every lasso of total length ≤ `bound` starting from
    /// each initial state. Returns the first counterexample found.
    ///
    /// Deadlocked paths (states with no successors) are treated as lassos
    /// stuttering on their final state, so finite behaviours are covered.
    ///
    /// The check runs on the CSR plane ([`CsrKripke`]): the structure
    /// compiles to a CSR graph with bitset labels, the formula to a flat
    /// node arena, and each candidate lasso is evaluated by closure
    /// table. Lassos are visited in the same order as
    /// [`Kripke::check_bounded_naive`], so results — including
    /// counterexample paths — are identical. For repeated checks,
    /// compile once with [`CsrKripke::compile`] and query that.
    ///
    /// Errors when the structure has no initial states.
    pub fn check_bounded(&self, formula: &Ltl, bound: usize) -> Result<CheckResult, LogicError> {
        let csr = CsrKripke::compile(self);
        let compiled = CompiledLtl::compile(formula, &csr);
        csr.check_bounded(&compiled, bound)
    }

    /// The seed checker (the differential oracle): the same lasso
    /// enumeration, but each lasso is rebuilt as a [`Trace`] and the
    /// formula evaluated recursively over label sets.
    ///
    /// Errors when the structure has no initial states.
    pub fn check_bounded_naive(
        &self,
        formula: &Ltl,
        bound: usize,
    ) -> Result<CheckResult, LogicError> {
        if self.initial.is_empty() {
            return Err(LogicError::NoInitialState);
        }
        for &init in &self.initial {
            let mut path = vec![init];
            if let Some(cex) = self.dfs(formula, &mut path, bound) {
                return Ok(cex);
            }
        }
        Ok(CheckResult::HoldsWithinBound)
    }

    /// DFS over paths; at each revisit of a state already on the path, a
    /// lasso is formed and evaluated.
    fn dfs(&self, formula: &Ltl, path: &mut Vec<StateId>, bound: usize) -> Option<CheckResult> {
        let current = *path.last().expect("path non-empty");

        // Deadlock: treat as stuttering lasso on the last state.
        if self.successors[current].is_empty() {
            let prefix = &path[..path.len() - 1];
            let looped = &path[path.len() - 1..];
            if !self.trace_of(prefix, looped).satisfies(formula) {
                return Some(CheckResult::CounterExample {
                    prefix: prefix.to_vec(),
                    looped: looped.to_vec(),
                });
            }
            return None;
        }

        for &next in &self.successors[current] {
            if let Some(loop_pos) = path.iter().position(|&s| s == next) {
                // Lasso closed: prefix is path[..loop_pos], loop is the rest.
                let prefix = &path[..loop_pos];
                let looped = &path[loop_pos..];
                if !self.trace_of(prefix, looped).satisfies(formula) {
                    return Some(CheckResult::CounterExample {
                        prefix: prefix.to_vec(),
                        looped: looped.to_vec(),
                    });
                }
            } else if path.len() < bound {
                path.push(next);
                if let Some(cex) = self.dfs(formula, path, bound) {
                    return Some(cex);
                }
                path.pop();
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::super::parser::parse_ltl;
    use super::*;

    fn f(src: &str) -> Ltl {
        parse_ltl(src).unwrap()
    }

    /// Checks on both planes, asserts they agree (counterexamples
    /// included), and returns the shared result.
    fn check(k: &Kripke, formula: &Ltl, bound: usize) -> CheckResult {
        let fast = k.check_bounded(formula, bound).unwrap();
        let slow = k.check_bounded_naive(formula, bound).unwrap();
        assert_eq!(fast, slow, "planes disagree on `{formula}`");
        fast
    }

    /// A two-state request/grant machine where every request is granted.
    fn good_arbiter() -> Kripke {
        let mut k = Kripke::new();
        let idle = k.add_state(Vec::<&str>::new());
        let req = k.add_state(vec!["request"]);
        let grant = k.add_state(vec!["grant"]);
        k.add_transition(idle, idle).unwrap();
        k.add_transition(idle, req).unwrap();
        k.add_transition(req, grant).unwrap();
        k.add_transition(grant, idle).unwrap();
        k.add_initial(idle).unwrap();
        k
    }

    #[test]
    fn invariant_holds() {
        let mut k = Kripke::new();
        let a = k.add_state(vec!["safe"]);
        let b = k.add_state(vec!["safe"]);
        k.add_transition(a, b).unwrap();
        k.add_transition(b, a).unwrap();
        k.add_initial(a).unwrap();
        assert!(check(&k, &f("G safe"), 10).holds());
    }

    #[test]
    fn invariant_violation_found_with_witness() {
        let mut k = Kripke::new();
        let a = k.add_state(vec!["safe"]);
        let b = k.add_state(Vec::<&str>::new()); // unsafe state
        k.add_transition(a, a).unwrap();
        k.add_transition(a, b).unwrap();
        k.add_transition(b, a).unwrap();
        k.add_initial(a).unwrap();
        match check(&k, &f("G safe"), 10) {
            CheckResult::CounterExample { prefix, looped } => {
                // The witness path must actually visit state b.
                assert!(prefix.contains(&b) || looped.contains(&b));
            }
            CheckResult::HoldsWithinBound => panic!("violation missed"),
        }
    }

    #[test]
    fn response_property() {
        let k = good_arbiter();
        assert!(check(&k, &f("G (request -> F grant)"), 12).holds());
    }

    #[test]
    fn response_violation_detected() {
        // A machine that can loop forever in the request state.
        let mut k = Kripke::new();
        let idle = k.add_state(Vec::<&str>::new());
        let req = k.add_state(vec!["request"]);
        k.add_transition(idle, req).unwrap();
        k.add_transition(req, req).unwrap(); // starvation loop
        k.add_initial(idle).unwrap();
        let result = check(&k, &f("G (request -> F grant)"), 12);
        assert!(!result.holds());
    }

    #[test]
    fn deadlock_treated_as_stutter() {
        let mut k = Kripke::new();
        let a = k.add_state(vec!["p"]);
        let end = k.add_state(vec!["p", "done"]);
        k.add_transition(a, end).unwrap();
        k.add_initial(a).unwrap();
        assert!(check(&k, &f("G p"), 10).holds());
        assert!(check(&k, &f("F done"), 10).holds());
        assert!(check(&k, &f("F G done"), 10).holds());
        assert!(!check(&k, &f("G done"), 10).holds());
    }

    #[test]
    fn detect_and_avoid_model() {
        // Brunel & Cazin's UAV claim, as a model: once separation drops
        // below minimum, distance stays non-zero until separation is
        // restored.
        let mut k = Kripke::new();
        let cruise = k.add_state(vec!["above_min", "nonzero"]);
        let conflict = k.add_state(vec!["below_min", "nonzero"]);
        let avoiding = k.add_state(vec!["nonzero"]);
        k.add_transition(cruise, cruise).unwrap();
        k.add_transition(cruise, conflict).unwrap();
        k.add_transition(conflict, avoiding).unwrap();
        k.add_transition(avoiding, cruise).unwrap();
        k.add_initial(cruise).unwrap();
        let claim = f("G (below_min -> (nonzero U above_min))");
        assert!(check(&k, &claim, 16).holds());

        // Introduce a collision state and the claim fails.
        let collision = k.add_state(Vec::<&str>::new());
        k.add_transition(avoiding, collision).unwrap();
        k.add_transition(collision, collision).unwrap();
        assert!(!check(&k, &claim, 16).holds());
    }

    #[test]
    fn multiple_initial_states_all_checked() {
        let mut k = Kripke::new();
        let good = k.add_state(vec!["p"]);
        let bad = k.add_state(Vec::<&str>::new());
        k.add_transition(good, good).unwrap();
        k.add_transition(bad, bad).unwrap();
        k.add_initial(good).unwrap();
        assert!(check(&k, &f("G p"), 5).holds());
        k.add_initial(bad).unwrap();
        assert!(!check(&k, &f("G p"), 5).holds());
    }

    #[test]
    fn no_initial_states_is_an_error() {
        let mut k = Kripke::new();
        k.add_state(vec!["p"]);
        assert_eq!(k.check_bounded(&f("p"), 5), Err(LogicError::NoInitialState));
        assert_eq!(
            k.check_bounded_naive(&f("p"), 5),
            Err(LogicError::NoInitialState)
        );
    }

    #[test]
    fn bad_state_ids_are_errors() {
        let mut k = Kripke::new();
        let a = k.add_state(vec!["p"]);
        assert_eq!(
            k.add_transition(a, 99),
            Err(LogicError::UnknownState { id: 99, states: 1 })
        );
        assert_eq!(
            k.add_transition(7, a),
            Err(LogicError::UnknownState { id: 7, states: 1 })
        );
        assert_eq!(
            k.add_initial(3),
            Err(LogicError::UnknownState { id: 3, states: 1 })
        );
    }

    #[test]
    fn labels_accessible() {
        let mut k = Kripke::new();
        let a = k.add_state(vec!["x", "y"]);
        let labels: Vec<_> = k.labels_of(a).collect();
        assert_eq!(labels, vec!["x", "y"]);
        assert_eq!(k.len(), 1);
        assert!(!k.is_empty());
        assert_eq!(k.successors_of(a), &[] as &[StateId]);
        assert_eq!(k.initial_states(), &[] as &[StateId]);
    }

    #[test]
    fn planes_agree_on_counterexample_paths() {
        // A structure with several distinct violating lassos: both
        // planes must report the *same* (first) witness.
        let mut k = Kripke::new();
        let s: Vec<_> = (0..5)
            .map(|i| {
                if i % 2 == 0 {
                    k.add_state(vec!["p"])
                } else {
                    k.add_state(Vec::<&str>::new())
                }
            })
            .collect();
        for i in 0..5 {
            k.add_transition(s[i], s[(i + 1) % 5]).unwrap();
            k.add_transition(s[i], s[(i + 2) % 5]).unwrap();
        }
        k.add_initial(s[0]).unwrap();
        for formula in ["G p", "F G p", "G F p", "p U (G ~p)", "X X p"] {
            check(&k, &f(formula), 8);
        }
    }
}
