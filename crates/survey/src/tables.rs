//! Table generators: Table I and the claims summary.

use crate::characterise;
use crate::paper::{Domain, Library, Paper};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// The reproduced Table I.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableI {
    /// Rows: (library, safety count, security count).
    pub rows: Vec<(Library, usize, usize)>,
    /// Unique papers overall.
    pub unique_total: usize,
    /// Unique papers from the safety query.
    pub unique_safety: usize,
    /// Unique papers from the security query.
    pub unique_security: usize,
}

/// Computes Table I from phase-1 survivors.
pub fn table_i(phase1: &[Paper]) -> TableI {
    let count = |lib, dom| phase1.iter().filter(|p| p.attributed(lib, dom)).count();
    let rows = Library::ALL
        .iter()
        .map(|&lib| {
            (
                lib,
                count(lib, Domain::Safety),
                count(lib, Domain::Security),
            )
        })
        .collect();
    TableI {
        rows,
        unique_total: phase1.len(),
        unique_safety: phase1
            .iter()
            .filter(|p| p.in_domain(Domain::Safety))
            .count(),
        unique_security: phase1
            .iter()
            .filter(|p| p.in_domain(Domain::Security))
            .count(),
    }
}

impl TableI {
    /// Renders in the paper's layout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Table I: NUMBER OF PAPERS SELECTED IN THE FIRST SELECTION PHASE"
        );
        let _ = writeln!(
            out,
            "{:<24} {:>8} {:>10}",
            "Digital library", "Safety", "Security"
        );
        for (lib, safety, security) in &self.rows {
            let _ = writeln!(
                out,
                "{:<24} {:>8} {:>10}",
                lib.to_string(),
                safety,
                security
            );
        }
        let _ = writeln!(
            out,
            "Unique results ({} total): {:>6} {:>10}",
            self.unique_total, self.unique_safety, self.unique_security
        );
        out
    }
}

/// Renders the claims summary (the in-text aggregates of §IV–§VI).
pub fn render_claims_summary() -> String {
    let agg = characterise::aggregates();
    let mut out = String::new();
    let refs = |set: &std::collections::BTreeSet<u8>| {
        set.iter()
            .map(|r| format!("[{r}]"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let _ = writeln!(out, "Survey claim aggregates (computed from the corpus):");
    let _ = writeln!(
        out,
        "  claim/imply mechanical-validation benefit : {:>2}  {}",
        agg.mechanical_benefit.len(),
        refs(&agg.mechanical_benefit)
    );
    let _ = writeln!(
        out,
        "  propose symbolic, deductive content       : {:>2}  {}",
        agg.symbolic_content.len(),
        refs(&agg.symbolic_content)
    );
    let _ = writeln!(
        out,
        "  explicitly mention mechanical verification: {:>2}  {}",
        agg.explicit_verification.len(),
        refs(&agg.explicit_verification)
    );
    let _ = writeln!(
        out,
        "  formalise graphical-argument syntax       : {:>2}  {}",
        agg.formal_syntax.len(),
        refs(&agg.formal_syntax)
    );
    let _ = writeln!(
        out,
        "  informal first, then formalise            : {:>2}  {}",
        agg.informal_first.len(),
        refs(&agg.informal_first)
    );
    let _ = writeln!(
        out,
        "  formalise pattern structure / parameters  : {:>2} / {}  {} / {}",
        agg.pattern_structure.len(),
        agg.pattern_parameters.len(),
        refs(&agg.pattern_structure),
        refs(&agg.pattern_parameters)
    );
    let _ = writeln!(
        out,
        "  substantial empirical evidence of benefit : {:>2}",
        agg.substantial_evidence.len()
    );
    let _ = writeln!(
        out,
        "  candidly framed as hypothesis             : {:>2}  {}",
        agg.hypothesis_acknowledged.len(),
        refs(&agg.hypothesis_acknowledged)
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{corpus, selection};

    #[test]
    fn table_i_matches_the_paper_exactly() {
        let pool = corpus::raw_pool();
        let phase1 = selection::phase1(&pool);
        let t = table_i(&phase1);
        assert_eq!(
            t.rows,
            vec![
                (Library::IeeeXplore, 12, 13),
                (Library::AcmDl, 17, 7),
                (Library::SpringerLink, 24, 2),
                (Library::GoogleScholar, 8, 1),
            ]
        );
        assert_eq!(t.unique_total, 72);
        assert_eq!(t.unique_safety, 54);
        assert_eq!(t.unique_security, 23);
    }

    #[test]
    fn table_i_renders_all_rows() {
        let pool = corpus::raw_pool();
        let t = table_i(&selection::phase1(&pool));
        let r = t.render();
        assert!(r.contains("IEEE Xplore"));
        assert!(r.contains("Google Scholar"));
        assert!(r.contains("Unique results (72 total)"));
        assert!(r.contains("54"));
        assert!(r.contains("23"));
    }

    #[test]
    fn claims_summary_shows_paper_counts() {
        let s = render_claims_summary();
        assert!(s.contains(":  6  "), "six mechanical-benefit papers:\n{s}");
        assert!(s.contains(": 11  "), "eleven symbolic-content papers:\n{s}");
        assert!(s.contains("[19], [20]"), "{s}");
        assert!(s.contains(" 0"), "{s}");
    }
}
