//! Experiment B (§VI-B): the effort of formalising an informal argument.
//!
//! Three surveyed proposals build the argument informally first and then
//! formalise it; the paper asks what that translation costs. The simulated
//! task: each subject formalises the propositional content of arguments of
//! increasing size; per-node translation time falls with formal-logic
//! skill and rises with formula complexity. The study design accounts for
//! *learning effects* by having each subject work through the arguments in
//! order and discounting repeated-pattern nodes.

use crate::population::{generate as generate_pool, PoolConfig};
use crate::runtime::{stream_rng, Runtime};
use crate::stats::{describe, Descriptives};
use crate::Error;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Configuration for experiment B.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Config {
    /// Argument sizes (node counts) in the sweep.
    pub sizes: Vec<usize>,
    /// Subjects drawn per background.
    pub per_background: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sizes: vec![10, 20, 40, 80],
            per_background: 10,
            seed: 0xB,
        }
    }
}

/// Per-cell result: minutes to formalise an argument of a given size.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Argument size (nodes).
    pub size: usize,
    /// Minutes across subjects.
    pub minutes: Descriptives,
    /// Minutes for the high-skill subset (logic skill ≥ 0.6).
    pub minutes_skilled: Descriptives,
    /// Minutes for the low-skill subset.
    pub minutes_unskilled: Descriptives,
}

/// Results of experiment B.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// One row per argument size.
    pub cells: Vec<Cell>,
}

/// Minutes for one subject to formalise one node, given how many similar
/// nodes they have already translated (learning discounts repetition).
fn node_minutes(skill: f64, rng: &mut impl Rng, seen_similar: usize) -> f64 {
    let base = 6.0 - 4.0 * skill; // 2–6 minutes per node by skill
    let noise = 1.0 + 0.2 * crate::population::standard_normal(rng);
    let learning = 1.0 / (1.0 + 0.15 * seen_similar as f64);
    (base * noise * learning).max(0.25)
}

/// Runs experiment B serially (equivalent to
/// [`run_with`]`(config, &Runtime::serial())`).
pub fn run(config: &Config) -> Result<Report, Error> {
    run_with(config, &Runtime::serial())
}

/// Runs experiment B on the given runtime. Each `(size, subject)` cell
/// draws from its own RNG stream, so the report is identical for every
/// worker count.
pub fn run_with(config: &Config, rt: &Runtime) -> Result<Report, Error> {
    let pool = generate_pool(&PoolConfig {
        per_background: config.per_background,
        seed: config.seed ^ 0xF00,
        ..PoolConfig::default()
    });
    let mut cells = Vec::new();
    for (size_index, &size) in config.sizes.iter().enumerate() {
        let minutes_by_subject = rt.map(&pool, |j, subject| {
            let mut rng = stream_rng(config.seed, size_index as u64, j as u64);
            // Roughly 60% of nodes are propositional and need translating.
            let translatable = (size as f64 * 0.6).round() as usize;
            let mut minutes = 0.0;
            for node_index in 0..translatable {
                // Pattern-shaped arguments repeat: every 4th node is
                // structurally similar to earlier ones.
                let seen_similar = node_index / 4;
                minutes += node_minutes(subject.logic_skill, &mut rng, seen_similar);
            }
            minutes
        });
        let mut all = Vec::new();
        let mut skilled = Vec::new();
        let mut unskilled = Vec::new();
        for (subject, minutes) in pool.iter().zip(minutes_by_subject) {
            all.push(minutes);
            if subject.logic_skill >= 0.6 {
                skilled.push(minutes);
            } else {
                unskilled.push(minutes);
            }
        }
        cells.push(Cell {
            size,
            minutes: describe(&all)?,
            minutes_skilled: describe(&skilled)?,
            minutes_unskilled: describe(&unskilled)?,
        });
    }
    Ok(Report { cells })
}

impl Report {
    /// Renders the sweep table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "Experiment B: effort of formalisation (§VI-B)");
        let _ = writeln!(
            out,
            "  {:>6} {:>16} {:>16} {:>16}",
            "nodes", "all (min)", "skilled (min)", "unskilled (min)"
        );
        for cell in &self.cells {
            let _ = writeln!(
                out,
                "  {:>6} {:>9.0} ± {:<4.0} {:>9.0} ± {:<4.0} {:>9.0} ± {:<4.0}",
                cell.size,
                cell.minutes.mean,
                cell.minutes.ci95,
                cell.minutes_skilled.mean,
                cell.minutes_skilled.ci95,
                cell.minutes_unskilled.mean,
                cell.minutes_unskilled.ci95,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effort_grows_with_argument_size() {
        let r = run(&Config::default()).unwrap();
        for pair in r.cells.windows(2) {
            assert!(
                pair[1].minutes.mean > pair[0].minutes.mean,
                "effort should grow with size"
            );
        }
    }

    #[test]
    fn skill_reduces_effort() {
        let r = run(&Config::default()).unwrap();
        for cell in &r.cells {
            assert!(
                cell.minutes_skilled.mean < cell.minutes_unskilled.mean,
                "skilled subjects should be faster at {} nodes",
                cell.size
            );
        }
    }

    #[test]
    fn sublinear_due_to_learning() {
        // Doubling size should less-than-double time (pattern learning).
        let r = run(&Config {
            sizes: vec![20, 40],
            ..Config::default()
        })
        .unwrap();
        let ratio = r.cells[1].minutes.mean / r.cells[0].minutes.mean;
        assert!(ratio < 2.0, "learning should make ratio < 2, got {ratio}");
        assert!(ratio > 1.2, "but still substantial, got {ratio}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            run(&Config::default()).unwrap(),
            run(&Config::default()).unwrap()
        );
    }

    #[test]
    fn parallel_report_identical_to_serial() {
        let config = Config {
            sizes: vec![10, 20],
            per_background: 5,
            seed: 0xB0,
        };
        let serial = run(&config).unwrap();
        for workers in [2, 4, 8] {
            let parallel = run_with(&config, &Runtime::with_workers(workers)).unwrap();
            assert_eq!(serial, parallel, "workers = {workers}");
        }
    }

    #[test]
    fn empty_pool_surfaces_a_stats_error() {
        let err = run(&Config {
            per_background: 0,
            ..Config::default()
        })
        .unwrap_err();
        assert!(matches!(err, Error::Stats(_)), "{err}");
    }

    #[test]
    fn pool_includes_all_backgrounds() {
        // Guard: the unskilled subset must be non-empty, else describe()
        // would return EmptySample — managers and operators keep it
        // populated.
        let pool = generate_pool(&PoolConfig::default());
        assert!(pool
            .iter()
            .any(|s| s.background == crate::population::Background::Manager));
    }

    #[test]
    fn render_has_one_row_per_size() {
        let r = run(&Config::default()).unwrap();
        let text = r.render();
        assert_eq!(text.lines().count(), 2 + r.cells.len());
        assert!(text.contains("Experiment B"));
    }
}
