//! The paper's own empirical content, regenerated: Table I, the claim
//! aggregates, the Greenwell fallacy counts, and all five §VI studies.
//! (The `repro` binary prints the same artefacts individually.)
//!
//! Run with: `cargo run --release --example survey_and_experiments`

use casekit::experiments::{exp_a, exp_b, exp_c, exp_d, exp_e, generator};
use casekit::fallacies::checker::check_argument;
use casekit::survey::{corpus, selection, tables};

fn main() {
    // Table I from the executable pipeline.
    let pool = corpus::raw_pool();
    let (phase1, phase2) = selection::run_pipeline(&pool);
    println!("{}", tables::table_i(&phase1).render());
    println!("phase-2 selected papers: {}\n", phase2.len());

    // The in-text aggregates of §IV–§VI.
    println!("{}", tables::render_claims_summary());

    // Greenwell: 45 seeded informal findings, 0 machine findings.
    let cases = generator::greenwell_case_studies();
    let seeded: usize = cases.iter().map(|c| c.seeded.len()).sum();
    let machine: usize = cases
        .iter()
        .map(|c| check_argument(&c.argument).findings.len())
        .sum();
    println!("Greenwell reconstruction: {seeded} seeded informal findings, {machine} machine-detectable\n");

    // The five proposed studies, simulated.
    println!(
        "{}",
        exp_a::run(&exp_a::Config::default()).unwrap().render()
    );
    println!(
        "{}",
        exp_b::run(&exp_b::Config::default()).unwrap().render()
    );
    println!(
        "{}",
        exp_c::run(&exp_c::Config::default()).unwrap().render()
    );
    println!(
        "{}",
        exp_d::run(&exp_d::Config::default()).unwrap().render()
    );
    println!(
        "{}",
        exp_e::run(&exp_e::Config::default()).unwrap().render()
    );
}
