//! Source-plane analysis: the recovering DSL frontend routed into the
//! diagnostic substrate.
//!
//! [`check_source`] is the span-carrying sibling of
//! [`lint_source`](crate::lint_source): instead of aborting on the
//! first parse error it runs the error-recovering parser, converts
//! every syntax error into a `CK2xx` [`Diagnostic`] with its byte span,
//! and — when an argument could still be recovered — runs the full
//! graph/solver lint set over it, anchoring each graph finding to its
//! node's declaration span through the parser's
//! [`SourceMap`](casekit_core::dsl::SourceMap). One call, one uniform
//! stream, every diagnostic locatable in the text it came from.

use crate::diagnostic::{Diagnostic, LintCode, LintConfig, Sink};
use casekit_core::dsl::{parse_argument_recovering, SourceMap};
use casekit_core::Argument;
use casekit_logic::{LineIndex, Span, SyntaxErrorKind};
use casekit_runtime::Runtime;

/// Everything the source-plane pipeline recovers from one `.case` text:
/// the argument (when enough of the file parsed to build one), the span
/// map of surviving declarations, and the combined syntax + lint
/// diagnostic stream in canonical order.
#[derive(Debug, Clone)]
pub struct SourceAnalysis {
    /// The recovered argument; `None` when the header was missing or a
    /// structural error made the file unbuildable.
    pub argument: Option<Argument>,
    /// Declaration spans for every node that survived recovery.
    pub source_map: SourceMap,
    /// Syntax (`CK2xx`) and graph/solver diagnostics, sorted by code,
    /// then primary node, then message. Every diagnostic raised from
    /// this source carries a populated `span`.
    pub diagnostics: Vec<Diagnostic>,
}

impl SourceAnalysis {
    /// True when no diagnostics were emitted at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// The stable code for one recovered syntax error.
fn code_for(kind: SyntaxErrorKind) -> LintCode {
    match kind {
        SyntaxErrorKind::UnterminatedString => LintCode::UnterminatedString,
        SyntaxErrorKind::UnknownKeyword => LintCode::UnknownKeyword,
        SyntaxErrorKind::BadPayload => LintCode::MalformedPayload,
        SyntaxErrorKind::Structure => LintCode::InvalidStructure,
        _ => LintCode::SyntaxGeneral,
    }
}

/// Parses `src` with the recovering DSL frontend and lints whatever
/// could be built, returning one combined diagnostic stream in which
/// every finding carries a byte span into `src`.
///
/// Syntax errors become `CK2xx` diagnostics at the error's own span;
/// graph and solver findings are anchored to the primary node's
/// identifier span via the parser's source map (falling back to the
/// argument-name span for findings with no node anchor).
///
/// ```
/// use casekit_analysis::{check_source, LintCode, LintConfig};
///
/// let src = "argument \"demo\" {\n  gaol g1 \"top\"\n  goal g2 \"kept\" { solution e1 \"log\" }\n}\n";
/// let analysis = check_source(src, &LintConfig::new());
/// // The typo is a syntax diagnostic with a span…
/// let typo = analysis
///     .diagnostics
///     .iter()
///     .find(|d| d.code == LintCode::UnknownKeyword)
///     .unwrap();
/// assert_eq!(&src[typo.span.unwrap().start..typo.span.unwrap().end], "gaol");
/// // …and the rest of the file still parsed and was linted.
/// let argument = analysis.argument.as_ref().unwrap();
/// assert_eq!(argument.nodes().count(), 2);
/// assert!(analysis.diagnostics.iter().all(|d| d.span.is_some()));
/// ```
pub fn check_source(src: &str, config: &LintConfig) -> SourceAnalysis {
    let mut analysis = check_syntax(src, config);
    if let Some(argument) = &analysis.argument {
        let mut graph = crate::lint_argument(argument, config);
        for diagnostic in &mut graph {
            diagnostic.span = Some(anchor(diagnostic, &analysis.source_map));
        }
        analysis.diagnostics.extend(graph);
        analysis
            .diagnostics
            .sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
    }
    analysis
}

/// The syntax half of [`check_source`]: runs the recovering parser and
/// converts its errors into `CK2xx` diagnostics, but does **not** lint
/// the recovered argument. This is the corpus-ingestion fast path — the
/// service's `CorpusLoader` uses it to shard parsing across workers
/// without paying for a solver session per file.
pub fn check_syntax(src: &str, config: &LintConfig) -> SourceAnalysis {
    let outcome = parse_argument_recovering(src);
    let mut sink = Sink::new(config);
    for error in &outcome.errors {
        sink.emit_at(
            code_for(error.error.kind),
            error.node.clone(),
            error.error.message.clone(),
            error.error.hint.clone(),
            error.error.span,
        );
    }
    let diagnostics = sink.finish();
    SourceAnalysis {
        argument: outcome.argument,
        source_map: outcome.source_map,
        diagnostics,
    }
}

/// The span a graph diagnostic anchors to: its primary node's
/// identifier, else the argument-name span, else the start of the file.
fn anchor(diagnostic: &Diagnostic, map: &SourceMap) -> Span {
    diagnostic
        .primary
        .as_ref()
        .and_then(|id| map.node(id))
        .map(|spans| spans.id)
        .or(map.name)
        .unwrap_or(Span::point(0))
}

/// [`check_source`] over a corpus, sharded across the runtime's
/// workers. Output is index-aligned with `sources` and byte-identical
/// at any worker count: the per-file analysis is a pure function and
/// [`Runtime::map`] preserves order.
pub fn check_sources(
    sources: &[String],
    config: &LintConfig,
    runtime: &Runtime,
) -> Vec<SourceAnalysis> {
    runtime.map(sources, |_, src| check_source(src, config))
}

/// Renders a two-line caret excerpt for `span`: the source line it
/// starts on, and a `^^^` underline clamped to that line.
///
/// Returns `None` when the span's line cannot be recovered (empty
/// source).
///
/// ```
/// use casekit_analysis::excerpt;
/// use casekit_logic::{LineIndex, Span};
///
/// let src = "argument \"a\" {\n  gaol g1 \"top\"\n}\n";
/// let index = LineIndex::new(src);
/// let lines = excerpt(src, &index, Span::new(17, 21)).unwrap();
/// assert_eq!(lines, "   2 |   gaol g1 \"top\"\n     |   ^^^^");
/// ```
pub fn excerpt(src: &str, index: &LineIndex, span: Span) -> Option<String> {
    let (line, col) = index.line_col(span.start);
    let line_span = index.line_span(line)?;
    let text = src[line_span.start..line_span.end].trim_end_matches(['\n', '\r']);
    // Clamp the underline to the line (spans may run to end of file) and
    // keep at least one caret for point spans.
    let width = span
        .end
        .saturating_sub(span.start)
        .min(text.len().saturating_sub(col - 1))
        .max(1);
    let gutter = format!("{line:>4} | ");
    let mut out = format!("{gutter}{text}\n");
    out.push_str(&format!(
        "{:>pad$} | {:>off$}{}",
        "",
        "",
        "^".repeat(width),
        pad = 4,
        off = col - 1,
    ));
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Severity;

    #[test]
    fn clean_source_is_clean_and_graph_lints_carry_spans() {
        let src = r#"argument "mp" {
  goal g1 "q holds" formal "q" {
    goal g2 "the rule" formal "p -> q" { solution e1 "rule review" }
    goal g3 "the fact" formal "p" { solution e2 "measurement" }
  }
}"#;
        let analysis = check_source(src, &LintConfig::deny_all());
        assert!(analysis.is_clean(), "got: {:?}", analysis.diagnostics);
        assert!(analysis.argument.is_some());

        let gappy = r#"argument "gap" {
  goal g1 "deadlines" formal "met" {
    goal g2 "quality" formal "reviewed" { solution e1 "minutes" }
  }
}"#;
        let analysis = check_source(gappy, &LintConfig::new());
        assert!(!analysis.is_clean());
        for d in &analysis.diagnostics {
            let span = d.span.expect("every diagnostic carries a span");
            // Each graph finding is anchored at its node's identifier.
            if let Some(primary) = &d.primary {
                assert_eq!(&gappy[span.start..span.end], primary.as_str());
            }
        }
    }

    #[test]
    fn syntax_errors_map_to_stable_codes() {
        let src = "argument \"bad\" {\n  gaol g1 \"typo\"\n  goal g2 \"ok\" formal \"p &\" { solution e1 \"x\" }\n  goal g2 \"dup\"\n  evidence e9 \"unterminated\n}\n";
        let analysis = check_source(src, &LintConfig::new());
        let codes: Vec<LintCode> = analysis.diagnostics.iter().map(|d| d.code).collect();
        assert!(codes.contains(&LintCode::UnknownKeyword), "{codes:?}");
        assert!(codes.contains(&LintCode::MalformedPayload), "{codes:?}");
        assert!(codes.contains(&LintCode::InvalidStructure), "{codes:?}");
        assert!(codes.contains(&LintCode::UnterminatedString), "{codes:?}");
        // Syntax codes default to deny: all errors.
        for d in analysis
            .diagnostics
            .iter()
            .filter(|d| d.code.number() >= 201)
        {
            assert_eq!(d.severity, Severity::Error);
            assert!(d.span.is_some());
        }
    }

    #[test]
    fn missing_header_yields_no_argument_but_diagnostics() {
        let analysis = check_source("widget { }", &LintConfig::new());
        assert!(analysis.argument.is_none());
        assert!(!analysis.diagnostics.is_empty());
        assert!(analysis.diagnostics.iter().all(|d| d.span.is_some()));
    }

    #[test]
    fn allow_suppresses_syntax_codes_too() {
        let config = LintConfig::allow_all();
        let analysis = check_source("argument \"a\" {\n  gaol g1 \"x\"\n}\n", &config);
        assert!(analysis.diagnostics.is_empty());
    }

    #[test]
    fn sharded_corpus_is_worker_invariant() {
        let sources: Vec<String> = (0..24)
            .map(|i| {
                if i % 3 == 0 {
                    format!("argument \"c{i}\" {{\n  gaol g1 \"typo\"\n  goal g2 \"ok\" {{ solution e1 \"x\" }}\n}}\n")
                } else {
                    format!("argument \"c{i}\" {{\n  goal g1 \"top\" {{ solution e1 \"x\" }}\n}}\n")
                }
            })
            .collect();
        let config = LintConfig::new();
        let serial: Vec<Vec<Diagnostic>> = sources
            .iter()
            .map(|s| check_source(s, &config).diagnostics)
            .collect();
        for workers in [1, 2, 4] {
            let runtime = Runtime::with_workers(workers);
            let sharded: Vec<Vec<Diagnostic>> = check_sources(&sources, &config, &runtime)
                .into_iter()
                .map(|a| a.diagnostics)
                .collect();
            assert_eq!(sharded, serial, "workers={workers}");
        }
    }

    #[test]
    fn excerpt_clamps_to_the_line() {
        let src = "argument \"a\" {\n  evidence e1 \"runs off\n}\n";
        let index = LineIndex::new(src);
        // The unterminated string spans to end of file; the caret stays
        // on line 2.
        let analysis = check_source(src, &LintConfig::new());
        let unterminated = analysis
            .diagnostics
            .iter()
            .find(|d| d.code == LintCode::UnterminatedString)
            .unwrap();
        let rendered = excerpt(src, &index, unterminated.span.unwrap()).unwrap();
        let mut lines = rendered.lines();
        assert_eq!(lines.next(), Some("   2 |   evidence e1 \"runs off"));
        let caret_line = lines.next().unwrap();
        assert!(caret_line
            .trim_start_matches([' ', '|'])
            .chars()
            .all(|c| c == '^'));
        assert_eq!(lines.next(), None);
    }
}
