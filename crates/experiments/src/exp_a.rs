//! Experiment A (§VI-A): can automatic detection of formal fallacies make
//! reviews faster or more reliable?
//!
//! Two arms review the same seeded arguments:
//!
//! * **control** — reviewers look for *both* informal and formal
//!   fallacies;
//! * **treatment** — reviewers look for informal fallacies only, and the
//!   mechanical checker handles the formal ones.
//!
//! Measured: review minutes per arm (Welch t-test), formal-fallacy catch
//! rate per arm (humans vs machine), and informal catch rate (should not
//! differ — the checker cannot help there).
//!
//! The machine arm runs once per generated argument through
//! [`runtime::machine_check_sweep`] — the findings are deterministic, so
//! every treatment review shares them instead of recompiling the
//! argument's theory. Subjects are sharded across the [`Runtime`]'s
//! workers with per-subject RNG streams; the report is byte-identical
//! for every worker count.

use crate::generator::{generate, Generated, GeneratorConfig, SeededFormal};
use crate::population::{generate as generate_pool, PoolConfig};
use crate::reviewer::{review_counts, ReviewScope};
use crate::runtime::{self, Runtime, StreamLane};
use crate::stats::{describe, welch_t_test, Descriptives, TestResult};
use crate::Error;
use casekit_fallacies::taxonomy::InformalFallacy;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Configuration for experiment A.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Config {
    /// Reviewers per arm.
    pub per_arm: usize,
    /// Arguments each reviewer examines.
    pub arguments: usize,
    /// Hazards per argument.
    pub hazards: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            per_arm: 30,
            arguments: 4,
            hazards: 8,
            seed: 0xA,
        }
    }
}

/// Results of experiment A.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Review minutes, control arm (informal + formal by hand).
    pub minutes_control: Descriptives,
    /// Review minutes, treatment arm (informal only; machine does formal).
    pub minutes_treatment: Descriptives,
    /// Welch t-test on minutes.
    pub minutes_test: TestResult,
    /// Fraction of seeded formal defects caught by human review (control).
    pub formal_catch_human: f64,
    /// Fraction caught by the machine checker (treatment).
    pub formal_catch_machine: f64,
    /// Informal catch rates (control, treatment).
    pub informal_catch: (f64, f64),
}

/// One subject's measurements, produced inside a worker.
struct SubjectTally {
    control: bool,
    minutes: f64,
    informal_found: usize,
    informal_total: usize,
    formal_found: usize,
    formal_total: usize,
}

/// The study materials: the subject pool (both arms interleaved) and
/// the argument set every subject reviews. Exposed so the benchmark
/// harness can time alternative measurement loops over *exactly* the
/// materials [`run_with`] uses.
pub fn materials(
    config: &Config,
) -> Result<(Vec<crate::population::Subject>, Vec<Generated>), Error> {
    Ok((generate_subjects(config), generate_cases(config)?))
}

/// The argument set for a run: each argument carries ONE formal defect
/// kind (combining them lets inconsistent premises mask the
/// missing-support defect — see the generator's masking test) plus a
/// spread of informal ones.
fn generate_cases(config: &Config) -> Result<Vec<Generated>, Error> {
    const DEFECT_CYCLE: [SeededFormal; 3] = [
        SeededFormal::Begging,
        SeededFormal::Incompatible,
        SeededFormal::MissingSupport,
    ];
    (0..config.arguments)
        .map(|i| {
            generate(&GeneratorConfig {
                hazards: config.hazards,
                formal: vec![DEFECT_CYCLE[i % DEFECT_CYCLE.len()]],
                informal: vec![
                    InformalFallacy::RedHerring,
                    InformalFallacy::UsingWrongReasons,
                    InformalFallacy::Equivocation,
                    InformalFallacy::OmissionOfKeyEvidence,
                ],
                seed: config.seed.wrapping_add(i as u64),
            })
            .map_err(Error::from)
        })
        .collect()
}

/// The subject pool for a run.
fn generate_subjects(config: &Config) -> Vec<crate::population::Subject> {
    let mut pool = generate_pool(&PoolConfig {
        per_background: (config.per_arm * 2).div_ceil(6).max(1),
        seed: config.seed ^ 0x900D,
        ..PoolConfig::default()
    });
    pool.truncate(config.per_arm * 2);
    pool
}

/// One subject's reviews over the whole argument set (pure given the
/// subject's index — the unit of parallel work). Runs on the
/// allocation-free [`review_counts`] path: the tally only needs counts,
/// and the draw sequence is pinned to [`crate::reviewer::review`] by a
/// reviewer unit test, so reports match the per-outcome loop bit for
/// bit. The caller derives the RNG stream through a shared
/// [`StreamLane`], so the per-subject cost is one finalizer mix.
fn review_subject(
    lane: &StreamLane,
    cases: &[Generated],
    index: usize,
    subject: &crate::population::Subject,
) -> SubjectTally {
    let control = index.is_multiple_of(2);
    let mut rng = lane.rng(index as u64);
    let mut tally = SubjectTally {
        control,
        minutes: 0.0,
        informal_found: 0,
        informal_total: 0,
        formal_found: 0,
        formal_total: 0,
    };
    let scope = if control {
        ReviewScope::InformalAndFormal
    } else {
        ReviewScope::InformalOnly
    };
    for case in cases {
        let counts = review_counts(subject, &case.case, &case.formal, scope, &mut rng);
        tally.minutes += counts.minutes;
        tally.informal_found += counts.informal_found;
        tally.informal_total += case.case.seeded.len();
        if control {
            tally.formal_found += counts.formal_found;
            tally.formal_total += case.formal.len();
        }
    }
    tally
}

/// Runs experiment A serially (equivalent to
/// [`run_with`]`(config, &Runtime::serial())`).
pub fn run(config: &Config) -> Result<Report, Error> {
    run_with(config, &Runtime::serial())
}

/// Runs experiment A on the given runtime. The report is identical for
/// every worker count.
pub fn run_with(config: &Config, rt: &Runtime) -> Result<Report, Error> {
    let pool = generate_subjects(config);
    let cases = generate_cases(config)?;

    // The machine pass: once per argument, shared by every treatment
    // review (its runtime is negligible next to human minutes and is
    // not charged to the reviewer).
    let case_arguments: Vec<&casekit_core::Argument> =
        cases.iter().map(|c| &c.case.argument).collect();
    let machine_reports = runtime::machine_check_sweep(&case_arguments, rt);
    let machine_caught_per_sweep: usize = cases
        .iter()
        .zip(&machine_reports)
        .map(|(case, report)| {
            case.formal
                .iter()
                .filter(|seeded| report.findings.iter().any(|f| seeded.matches(f)))
                .count()
        })
        .sum();
    let machine_total_per_sweep: usize = cases.iter().map(|c| c.formal.len()).sum();

    let lane = StreamLane::new(config.seed, 0);
    let tallies = rt.map(&pool, |i, subject| {
        review_subject(&lane, &cases, i, subject)
    });

    let mut minutes_control = Vec::new();
    let mut minutes_treatment = Vec::new();
    let mut human_formal_hits = 0usize;
    let mut human_formal_total = 0usize;
    let mut machine_formal_hits = 0usize;
    let mut machine_formal_total = 0usize;
    let mut informal_hits = (0usize, 0usize);
    let mut informal_total = (0usize, 0usize);

    for tally in &tallies {
        if tally.control {
            minutes_control.push(tally.minutes);
            human_formal_hits += tally.formal_found;
            human_formal_total += tally.formal_total;
            informal_hits.0 += tally.informal_found;
            informal_total.0 += tally.informal_total;
        } else {
            minutes_treatment.push(tally.minutes);
            informal_hits.1 += tally.informal_found;
            informal_total.1 += tally.informal_total;
            machine_formal_hits += machine_caught_per_sweep;
            machine_formal_total += machine_total_per_sweep;
        }
    }

    Ok(Report {
        minutes_control: describe(&minutes_control)?,
        minutes_treatment: describe(&minutes_treatment)?,
        minutes_test: welch_t_test(&minutes_control, &minutes_treatment)?,
        formal_catch_human: human_formal_hits as f64 / human_formal_total.max(1) as f64,
        formal_catch_machine: machine_formal_hits as f64 / machine_formal_total.max(1) as f64,
        informal_catch: (
            informal_hits.0 as f64 / informal_total.0.max(1) as f64,
            informal_hits.1 as f64 / informal_total.1.max(1) as f64,
        ),
    })
}

impl Report {
    /// Renders the experiment's results table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Experiment A: automatic formal-fallacy detection (§VI-A)"
        );
        let _ = writeln!(
            out,
            "  review minutes   control (human does formal): {:7.1} ± {:.1}",
            self.minutes_control.mean, self.minutes_control.ci95
        );
        let _ = writeln!(
            out,
            "  review minutes   treatment (machine formal) : {:7.1} ± {:.1}",
            self.minutes_treatment.mean, self.minutes_treatment.ci95
        );
        let _ = writeln!(
            out,
            "  Welch t = {:.2}, p = {:.4}",
            self.minutes_test.statistic, self.minutes_test.p_value
        );
        let _ = writeln!(
            out,
            "  formal catch rate: human {:5.1}%   machine {:5.1}%",
            self.formal_catch_human * 100.0,
            self.formal_catch_machine * 100.0
        );
        let _ = writeln!(
            out,
            "  informal catch rate: control {:5.1}%   treatment {:5.1}% (machine cannot help)",
            self.informal_catch.0 * 100.0,
            self.informal_catch.1 * 100.0
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_catches_all_formal_seeds() {
        let r = run(&Config::default()).unwrap();
        assert_eq!(r.formal_catch_machine, 1.0);
    }

    #[test]
    fn humans_catch_fewer_formal_fallacies_than_machine() {
        let r = run(&Config::default()).unwrap();
        assert!(r.formal_catch_human < r.formal_catch_machine);
        assert!(r.formal_catch_human > 0.0, "humans find some");
    }

    #[test]
    fn treatment_arm_reviews_faster() {
        let r = run(&Config::default()).unwrap();
        assert!(r.minutes_treatment.mean < r.minutes_control.mean);
        assert!(
            r.minutes_test.p_value < 0.05,
            "p = {}",
            r.minutes_test.p_value
        );
    }

    #[test]
    fn informal_catch_rates_similar_across_arms() {
        let r = run(&Config::default()).unwrap();
        let (c, t) = r.informal_catch;
        assert!((c - t).abs() < 0.15, "control {c} vs treatment {t}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(&Config::default()).unwrap();
        let b = run(&Config::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_report_identical_to_serial() {
        let config = Config::default();
        let serial = run(&config).unwrap();
        for workers in [2, 4, 8] {
            let parallel = run_with(&config, &Runtime::with_workers(workers)).unwrap();
            assert_eq!(serial, parallel, "workers = {workers}");
        }
    }

    #[test]
    fn invalid_hazard_count_is_an_error_not_a_panic() {
        let err = run(&Config {
            hazards: 1,
            ..Config::default()
        })
        .unwrap_err();
        assert!(matches!(err, Error::Generator(_)), "{err}");
    }

    #[test]
    fn empty_arm_surfaces_a_stats_error() {
        let err = run(&Config {
            per_arm: 0,
            ..Config::default()
        })
        .unwrap_err();
        assert!(matches!(
            err,
            Error::Stats(crate::stats::StatsError::EmptySample)
        ));
    }

    #[test]
    fn render_mentions_key_rows() {
        let r = run(&Config {
            per_arm: 6,
            arguments: 2,
            hazards: 4,
            seed: 77,
        })
        .unwrap();
        let text = r.render();
        assert!(text.contains("Experiment A"));
        assert!(text.contains("machine"));
        assert!(text.contains("Welch"));
    }
}
