//! Graph-core benchmark harness: synthetic arguments at scale, the
//! pre-arena "flat scan" baseline, and the indexed sweep that replaced
//! it.
//!
//! The seed implementation stored nodes in a `BTreeMap` and edges in a
//! flat `Vec`, so every `children`/`parents` call scanned the whole edge
//! list — O(V·E) for any whole-graph check. The arena/CSR core makes the
//! same sweep O(V+E). [`FlatBaseline`] reproduces the old access pattern
//! faithfully so the speedup stays measurable after the old code is
//! gone, and [`bench_graph_json`] emits the comparison as a JSON artifact
//! (`BENCH_graph.json` via `repro graph`).

use casekit_core::{Argument, EdgeKind, NodeId, NodeKind};
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::time::Instant;

/// Builds a deterministic, roughly balanced synthetic assurance argument
/// with at least `target_nodes` nodes: a goal tree with strategies
/// interposed, solutions at the leaves, and contexts sprinkled in —
/// the population shape the experiment generator produces, at scale.
pub fn synthetic_argument(target_nodes: usize) -> Argument {
    let mut builder = Argument::builder(format!("synthetic-{target_nodes}"));
    let mut count = 0usize;
    builder = builder.add("g0", NodeKind::Goal, "Top-level claim");
    count += 1;
    let mut frontier: VecDeque<String> = VecDeque::from(["g0".to_string()]);
    let mut serial = 0usize;
    while count < target_nodes {
        let goal = frontier.pop_front().expect("frontier never empties early");
        serial += 1;
        let strategy = format!("s{serial}");
        builder = builder
            .add(&strategy, NodeKind::Strategy, "Argue over sub-claims")
            .supported_by(&goal, &strategy);
        count += 1;
        if serial.is_multiple_of(7) && count < target_nodes {
            let context = format!("c{serial}");
            builder = builder
                .add(&context, NodeKind::Context, "Operating context")
                .in_context_of(&goal, &context);
            count += 1;
        }
        // Fan out 2–4 sub-goals per strategy, varying deterministically.
        let fanout = 2 + (serial % 3);
        let mut added = 0usize;
        for child in 0..fanout {
            if count >= target_nodes {
                break;
            }
            let sub = format!("g{serial}_{child}");
            builder = builder
                .add(&sub, NodeKind::Goal, "Sub-claim")
                .supported_by(&strategy, &sub);
            count += 1;
            added += 1;
            frontier.push_back(sub);
        }
        if added == 0 {
            // The node budget ran out right after this strategy was
            // added; close it with a solution so the argument stays
            // GSN-developed at every target size.
            let sol = format!("es{serial}");
            builder = builder
                .add(&sol, NodeKind::Solution, "Evidence item")
                .supported_by(&strategy, &sol);
            count += 1;
        }
    }
    // Close every open goal with a solution so the argument is
    // GSN-developed.
    for (i, goal) in frontier.iter().enumerate() {
        let sol = format!("e{i}");
        builder = builder
            .add(&sol, NodeKind::Solution, "Evidence item")
            .supported_by(goal, &sol);
    }
    builder.build().expect("synthetic construction is valid")
}

/// Aggregate produced by a structural sweep; identical between the
/// baseline and the indexed implementation by construction (asserted in
/// tests), so the benchmark compares equal work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepSummary {
    /// Sum over nodes of `SupportedBy` children counts.
    pub support_children: usize,
    /// Sum over nodes of parent counts.
    pub parent_links: usize,
    /// Number of support leaves.
    pub leaves: usize,
    /// Whether the support graph is acyclic.
    pub acyclic: bool,
}

/// The seed's data layout: `BTreeMap` of nodes plus a flat edge list,
/// with every traversal a full edge scan. Kept as a measurable baseline.
pub struct FlatBaseline {
    ids: BTreeMap<NodeId, ()>,
    edges: Vec<(NodeId, NodeId, EdgeKind)>,
}

impl FlatBaseline {
    /// Snapshots an argument into the legacy layout.
    pub fn from_argument(argument: &Argument) -> Self {
        FlatBaseline {
            ids: argument.nodes().map(|n| (n.id.clone(), ())).collect(),
            edges: argument
                .edges()
                .iter()
                .map(|e| (e.from.clone(), e.to.clone(), e.kind))
                .collect(),
        }
    }

    /// O(E) per call — the pre-refactor `children` cost.
    pub fn children_count(&self, id: &NodeId, kind: EdgeKind) -> usize {
        self.edges
            .iter()
            .filter(|(from, _, k)| from == id && *k == kind)
            .count()
    }

    /// O(E) per call — the pre-refactor `parents` cost.
    pub fn parents_count(&self, id: &NodeId) -> usize {
        self.edges.iter().filter(|(_, to, _)| to == id).count()
    }

    /// Whole-graph structural sweep at the pre-refactor cost: O(V·E).
    pub fn structural_sweep(&self) -> SweepSummary {
        let mut support_children = 0usize;
        let mut parent_links = 0usize;
        let mut leaves = 0usize;
        for id in self.ids.keys() {
            let support = self.children_count(id, EdgeKind::SupportedBy);
            support_children += support;
            parent_links += self.parents_count(id);
            if support == 0 {
                leaves += 1;
            }
        }
        SweepSummary {
            support_children,
            parent_links,
            leaves,
            acyclic: self.is_acyclic(),
        }
    }

    /// Kahn's algorithm with per-pop edge scans — the seed's shape.
    fn is_acyclic(&self) -> bool {
        let mut indegree: BTreeMap<&NodeId, usize> = self.ids.keys().map(|id| (id, 0)).collect();
        for (_, to, kind) in &self.edges {
            if *kind == EdgeKind::SupportedBy {
                *indegree.get_mut(to).expect("edge target exists") += 1;
            }
        }
        let mut queue: VecDeque<&NodeId> = indegree
            .iter()
            .filter(|(_, d)| **d == 0)
            .map(|(id, _)| *id)
            .collect();
        let mut visited = 0usize;
        let mut seen: BTreeSet<&NodeId> = queue.iter().copied().collect();
        while let Some(id) = queue.pop_front() {
            visited += 1;
            for (from, to, kind) in &self.edges {
                if *kind != EdgeKind::SupportedBy || from != id {
                    continue;
                }
                let d = indegree.get_mut(to).expect("edge target exists");
                *d -= 1;
                if *d == 0 && seen.insert(to) {
                    queue.push_back(to);
                }
            }
        }
        visited == self.ids.len()
    }
}

/// The same whole-graph sweep through the arena/CSR fast paths: O(V+E).
pub fn indexed_structural_sweep(argument: &Argument) -> SweepSummary {
    let mut support_children = 0usize;
    let mut parent_links = 0usize;
    let mut leaves = 0usize;
    for idx in argument.node_indices() {
        let support = argument.children_idx(idx, EdgeKind::SupportedBy).count();
        support_children += support;
        parent_links += argument.in_degree(idx);
        if support == 0 {
            leaves += 1;
        }
    }
    SweepSummary {
        support_children,
        parent_links,
        leaves,
        acyclic: argument.is_acyclic(),
    }
}

/// The measured comparison, serialized into `BENCH_graph.json`.
#[derive(Debug, Clone, Serialize)]
pub struct GraphBenchReport {
    /// Node count of the synthetic argument.
    pub nodes: usize,
    /// Edge count of the synthetic argument.
    pub edges: usize,
    /// Full legacy O(V·E) sweep, milliseconds (single run — it is slow
    /// by design).
    pub legacy_sweep_ms: f64,
    /// Full indexed O(V+E) sweep, milliseconds (best of several runs).
    pub indexed_sweep_ms: f64,
    /// legacy / indexed.
    pub speedup: f64,
    /// Sanity: both sweeps agreed on every aggregate.
    pub sweeps_agree: bool,
}

/// Runs the comparison on a synthetic argument of `target_nodes` nodes.
pub fn run_graph_bench(target_nodes: usize) -> GraphBenchReport {
    let argument = synthetic_argument(target_nodes);
    let baseline = FlatBaseline::from_argument(&argument);

    let start = Instant::now();
    let legacy = baseline.structural_sweep();
    let legacy_sweep_ms = start.elapsed().as_secs_f64() * 1e3;

    let mut indexed_sweep_ms = f64::INFINITY;
    let mut indexed = indexed_structural_sweep(&argument);
    for _ in 0..5 {
        let start = Instant::now();
        indexed = indexed_structural_sweep(&argument);
        indexed_sweep_ms = indexed_sweep_ms.min(start.elapsed().as_secs_f64() * 1e3);
    }

    GraphBenchReport {
        nodes: argument.len(),
        edges: argument.edges().len(),
        legacy_sweep_ms,
        indexed_sweep_ms,
        speedup: legacy_sweep_ms / indexed_sweep_ms.max(1e-9),
        sweeps_agree: legacy == indexed,
    }
}

/// Renders the report as JSON (the `BENCH_graph.json` artifact).
pub fn bench_graph_json(report: &GraphBenchReport) -> String {
    serde_json::to_string_pretty(report).expect("report serializes")
}

/// Human-readable summary for the repro binary.
pub fn render_report(report: &GraphBenchReport) -> String {
    format!(
        "graph core sweep over {} nodes / {} edges\n\
           legacy flat-scan (O(V*E)):  {:>10.3} ms\n\
           indexed arena/CSR (O(V+E)): {:>10.3} ms\n\
           speedup: {:.1}x   sweeps agree: {}\n",
        report.nodes,
        report.edges,
        report.legacy_sweep_ms,
        report.indexed_sweep_ms,
        report.speedup,
        report.sweeps_agree
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_argument_is_well_formed() {
        let a = synthetic_argument(500);
        assert!(a.len() >= 500);
        assert!(a.is_acyclic());
        assert!(
            casekit_core::gsn::check(&a).is_empty(),
            "GSN-clean synthetic case"
        );
    }

    #[test]
    fn baseline_and_indexed_sweeps_agree() {
        let a = synthetic_argument(300);
        let baseline = FlatBaseline::from_argument(&a).structural_sweep();
        let indexed = indexed_structural_sweep(&a);
        assert_eq!(baseline, indexed);
        assert!(baseline.acyclic);
        // Support children summed over nodes = number of SupportedBy edges.
        assert_eq!(
            baseline.support_children,
            a.edges()
                .iter()
                .filter(|e| e.kind == EdgeKind::SupportedBy)
                .count()
        );
        assert_eq!(baseline.parent_links, a.edges().len());
    }

    #[test]
    fn report_speedup_is_material_even_at_small_scale() {
        // At 2k nodes the asymptotic gap is already unmistakable; the
        // acceptance-criteria 10k run lives in the repro binary and the
        // criterion bench.
        let report = run_graph_bench(2_000);
        assert!(report.sweeps_agree);
        assert!(
            report.speedup >= 10.0,
            "expected >=10x even at 2k nodes, measured {:.1}x",
            report.speedup
        );
        let json = bench_graph_json(&report);
        assert!(json.contains("\"speedup\""));
        assert!(render_report(&report).contains("speedup"));
    }
}
