//! Property-based tests across the workspace: parser round-trips, solver
//! agreement, engine invariants, and structural closure properties.

use casekit::logic::fol::{unify, Substitution, Term};
use casekit::logic::prop::{self, Formula};
use proptest::prelude::*;

/// Strategy: arbitrary propositional formulas over a small atom alphabet.
fn formula_strategy() -> impl Strategy<Value = Formula> {
    let leaf = prop_oneof![
        Just(Formula::True),
        Just(Formula::False),
        prop_oneof![Just("p"), Just("q"), Just("r"), Just("s")].prop_map(Formula::atom),
    ];
    leaf.prop_recursive(4, 32, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|f| f.not()),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.implies(b)),
            (inner.clone(), inner).prop_map(|(a, b)| a.iff(b)),
        ]
    })
}

/// Strategy: arbitrary ground-ish first-order terms.
fn term_strategy() -> impl Strategy<Value = Term> {
    let leaf = prop_oneof![
        prop_oneof![Just("a"), Just("b"), Just("c")].prop_map(Term::constant),
        prop_oneof![Just("X"), Just("Y"), Just("Z")].prop_map(Term::var),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        (
            prop_oneof![Just("f"), Just("g")],
            collection::vec(inner, 1..3),
        )
            .prop_map(|(functor, args)| Term::compound(functor, args))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn formula_display_parse_round_trip(f in formula_strategy()) {
        let printed = f.to_string();
        let reparsed = prop::parse(&printed).expect("rendered formula parses");
        prop_assert_eq!(f, reparsed);
    }

    #[test]
    fn dpll_agrees_with_truth_table(f in formula_strategy()) {
        let brute = prop::truth_table(&f).expect("small alphabet").models() > 0;
        prop_assert_eq!(f.is_satisfiable(), brute);
    }

    #[test]
    fn nnf_preserves_equivalence(f in formula_strategy()) {
        prop_assert!(f.equivalent(&f.to_nnf()));
    }

    #[test]
    fn distributive_cnf_preserves_equivalence(f in formula_strategy()) {
        let cnf = f.to_cnf();
        let tt = prop::truth_table(&f).expect("small alphabet");
        for (values, expected) in tt.rows() {
            let v: prop::Valuation = tt
                .atoms()
                .iter()
                .cloned()
                .zip(values.iter().copied())
                .collect();
            prop_assert_eq!(cnf.eval(&v), *expected);
        }
    }

    #[test]
    fn tseitin_is_equisatisfiable(f in formula_strategy()) {
        let direct = f.is_satisfiable();
        let via_tseitin = prop::dpll_clauses(&f.to_cnf_tseitin()).is_sat();
        prop_assert_eq!(direct, via_tseitin);
    }

    #[test]
    fn entailment_is_reflexive_and_supports_weakening(f in formula_strategy(), g in formula_strategy()) {
        prop_assert!(f.entails(&f));
        // f & g entails f.
        prop_assert!(f.clone().and(g).entails(&f));
    }

    #[test]
    fn unification_produces_a_unifier(a in term_strategy(), b in term_strategy()) {
        if let Some(s) = unify(&a, &b, &Substitution::new()) {
            prop_assert_eq!(s.apply(&a), s.apply(&b));
        }
    }

    #[test]
    fn unification_is_symmetric_in_success(a in term_strategy(), b in term_strategy()) {
        let fwd = unify(&a, &b, &Substitution::new()).is_some();
        let bwd = unify(&b, &a, &Substitution::new()).is_some();
        prop_assert_eq!(fwd, bwd);
    }

    #[test]
    fn renamed_clauses_share_no_variables(t in term_strategy()) {
        let renamed = t.rename_variables(7);
        for v in t.variables() {
            prop_assert!(!renamed.occurs(&v));
        }
    }
}

// ---------------------------------------------------------------------------
// Solver agreement: the CDCL core, the chronological watched-literal DPLL
// baseline, the legacy recursive DPLL (the differential-testing oracle),
// resolution, and brute-force truth tables must agree on satisfiability for
// fuzzed formulas over up to 12 atoms.
// ---------------------------------------------------------------------------

/// Strategy: arbitrary propositional formulas over a 12-atom alphabet.
fn wide_formula_strategy() -> impl Strategy<Value = Formula> {
    let atom = prop_oneof![
        Just("a"),
        Just("b"),
        Just("c"),
        Just("d"),
        Just("e"),
        Just("f"),
        Just("g"),
        Just("h"),
        Just("i"),
        Just("j"),
        Just("k"),
        Just("l"),
    ]
    .prop_map(Formula::atom);
    let leaf = prop_oneof![Just(Formula::True), Just(Formula::False), atom];
    leaf.prop_recursive(5, 64, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|f| f.not()),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.implies(b)),
            (inner.clone(), inner).prop_map(|(a, b)| a.iff(b)),
        ]
    })
}

/// Decides satisfiability of `f` on the chronological DPLL baseline:
/// Tseitin clauses interned by hand into a [`prop::DpllSolver`].
fn dpll_baseline_is_sat(f: &Formula) -> bool {
    let cs = f.to_cnf_tseitin();
    let mut solver = prop::DpllSolver::new();
    let mut atoms = prop::AtomTable::new();
    let mut clause: Vec<prop::Lit> = Vec::new();
    for c in cs.clauses() {
        clause.clear();
        for literal in c.literals() {
            let var = atoms.intern_with(&literal.atom, || solver.new_var());
            clause.push(var.lit(literal.positive));
        }
        solver.add_clause(&clause);
    }
    solver.check()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    #[test]
    fn four_solvers_agree_on_satisfiability(f in wide_formula_strategy()) {
        // Ground truth: brute-force enumeration (≤ 12 atoms by strategy).
        let brute = prop::truth_table(&f).expect("at most 12 atoms").models() > 0;
        // CDCL core (the production path under dpll()).
        prop_assert_eq!(prop::dpll(&f).is_sat(), brute, "CDCL core vs truth table");
        // Chronological watched-literal DPLL baseline.
        prop_assert_eq!(dpll_baseline_is_sat(&f), brute, "DPLL baseline vs truth table");
        // Legacy recursive DPLL oracle.
        prop_assert_eq!(prop::legacy::dpll(&f).is_sat(), brute, "legacy oracle vs truth table");
        // Resolution refutation over the equisatisfiable Tseitin CNF.
        // Saturation is quadratic per round, so keep it to the small
        // instances and skip when the budget runs out — agreement is
        // still exercised on every formula that resolves in budget.
        let cs = f.to_cnf_tseitin();
        if cs.len() <= 24 {
            match prop::resolution_refute(&cs, 8_000) {
                prop::ResolutionOutcome::Refuted(_) => prop_assert!(!brute, "resolution refuted a satisfiable formula"),
                prop::ResolutionOutcome::Saturated => prop_assert!(brute, "resolution saturated on an unsatisfiable formula"),
                prop::ResolutionOutcome::BudgetExhausted => {}
            }
        }
    }

    #[test]
    fn watched_solver_models_satisfy_the_formula(f in wide_formula_strategy()) {
        if let prop::SatResult::Sat(model) = prop::dpll(&f) {
            prop_assert!(f.eval(&model), "witness model must satisfy the formula");
        }
    }

    #[test]
    fn sessions_agree_with_monolithic_solves(
        premises in collection::vec(wide_formula_strategy(), 1..5),
        conclusion in wide_formula_strategy(),
    ) {
        // An assume/check/retract session over one compiled theory must
        // answer exactly like building the conjunction formula each time.
        let mut theory = prop::Theory::new();
        let lits: Vec<prop::Lit> = premises.iter().map(|p| theory.formula_lit(p)).collect();
        let not_conclusion = !theory.formula_lit(&conclusion);

        // Entailment: premises ∧ ¬conclusion unsat.
        for &l in &lits { theory.assume(l); }
        theory.assume(not_conclusion);
        let session_entails = !theory.check();
        theory.retract_all();
        let monolithic = Formula::conj(premises.iter().cloned())
            .entails(&conclusion);
        prop_assert_eq!(session_entails, monolithic);

        // Retraction restores the weaker query: premises alone.
        for &l in &lits { theory.assume(l); }
        let session_consistent = theory.check();
        theory.retract_all();
        let consistent = Formula::conj(premises.iter().cloned()).is_satisfiable();
        prop_assert_eq!(session_consistent, consistent);
    }

    #[test]
    fn cdcl_learning_never_changes_session_verdicts(
        clauses in collection::vec(
            collection::vec((0u32..10, 0u8..2), 1..4),
            1..24,
        ),
        rounds in collection::vec(
            collection::vec((0u32..10, 0u8..2), 0..4),
            1..8,
        ),
    ) {
        // One random clause database, one random script of assumption
        // rounds, both engines. The CDCL solver carries learned clauses
        // from each round into the next; every verdict must still match
        // the memoryless chronological baseline.
        let mut cdcl = prop::Solver::new();
        let mut base = prop::DpllSolver::new();
        let cv: Vec<prop::Var> = (0..10).map(|_| cdcl.new_var()).collect();
        let bv: Vec<prop::Var> = (0..10).map(|_| base.new_var()).collect();
        for clause in &clauses {
            let cc: Vec<prop::Lit> =
                clause.iter().map(|&(v, pos)| cv[v as usize].lit(pos == 1)).collect();
            let bc: Vec<prop::Lit> =
                clause.iter().map(|&(v, pos)| bv[v as usize].lit(pos == 1)).collect();
            cdcl.add_clause(&cc);
            base.add_clause(&bc);
        }
        for (i, round) in rounds.iter().enumerate() {
            for &(v, pos) in round {
                cdcl.assume(cv[v as usize].lit(pos == 1));
                base.assume(bv[v as usize].lit(pos == 1));
            }
            let (c_sat, b_sat) = (cdcl.check(), base.check());
            prop_assert_eq!(c_sat, b_sat, "round {} of {:?}", i, rounds);
            if c_sat {
                // The CDCL model must actually satisfy the database.
                for clause in &clauses {
                    prop_assert!(
                        clause.iter().any(|&(v, pos)| {
                            cdcl.value(cv[v as usize].lit(pos == 1)) == Some(true)
                        }),
                        "model falsifies {:?} on round {}", clause, i
                    );
                }
            }
            cdcl.retract_all();
            base.retract_all();
        }
    }
}

// Pattern instantiation is closed over GSN well-formedness for arbitrary
// hazard lists.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn hazard_pattern_instances_always_well_formed(
        hazards in collection::vec("[a-z]{1,12}", 1..12),
        system in "[A-Za-z ]{1,20}",
    ) {
        use casekit::patterns::{library, Binding, ParamValue};
        let binding = Binding::new().with("system", system).with(
            "hazards",
            ParamValue::List(hazards.into_iter().map(ParamValue::Str).collect()),
        );
        let argument = library::hazard_directed_breakdown()
            .instantiate(&binding)
            .expect("well-typed binding instantiates");
        prop_assert!(casekit::core::gsn::check(&argument).is_empty());
        // And the DSL round-trips it.
        let rendered = casekit::core::dsl::render_dsl(&argument);
        let reparsed = casekit::core::dsl::parse_argument(&rendered).expect("round trip");
        prop_assert_eq!(argument.len(), reparsed.len());
    }

    #[test]
    fn query_results_are_subset_of_annotated_nodes(
        severities in collection::vec(0usize..3, 3..10),
    ) {
        use casekit::core::{Argument, NodeKind};
        use casekit::query::{parse_query, AnnotationStore, FieldType, Ontology};
        let names = ["catastrophic", "major", "minor"];
        let mut builder = Argument::builder("q").add("g_top", NodeKind::Goal, "top");
        for i in 0..severities.len() {
            builder = builder
                .add(&format!("g{i}"), NodeKind::Goal, &format!("hazard {i}"))
                .supported_by("g_top", &format!("g{i}"))
                .add(&format!("e{i}"), NodeKind::Solution, "ev")
                .supported_by(&format!("g{i}"), &format!("e{i}"));
        }
        let argument = builder.build().unwrap();
        let mut ontology = Ontology::new();
        ontology.declare_enum("severity", names);
        ontology.declare_attribute(
            "hazard",
            [("severity", FieldType::Enum("severity".into()))],
        );
        let mut store = AnnotationStore::new(ontology);
        for (i, s) in severities.iter().enumerate() {
            store
                .annotate(&argument, &format!("g{i}"), "hazard", [("severity", names[*s])])
                .unwrap();
        }
        let q = parse_query("select goals where hazard.severity = catastrophic").unwrap();
        let hits = q.run(&argument, &store);
        let expected = severities.iter().filter(|&&s| s == 0).count();
        prop_assert_eq!(hits.len(), expected);
    }
}

// Mutating any single line reference of a valid proof is caught.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn nd_checker_rejects_reference_mutations(
        line in 5usize..11,
        delta in 1usize..4,
    ) {
        use casekit::logic::nd::{Proof, Rule};
        let good = Proof::haley_example();
        let mut mutated = Proof::new();
        for (i, l) in good.lines().iter().enumerate() {
            let number = i + 1;
            let rule = if number == line {
                match &l.rule {
                    Rule::Detach(a, b) => Rule::Detach(a.saturating_sub(delta).max(1), *b),
                    Rule::Split(a) => Rule::Split(a.saturating_sub(delta).max(1)),
                    Rule::Conclusion(a) => Rule::Conclusion(a.saturating_sub(delta).max(1)),
                    other => other.clone(),
                }
            } else {
                l.rule.clone()
            };
            mutated.add(l.formula.clone(), rule);
        }
        // Either the mutation was a no-op (reference unchanged) or the
        // checker rejects.
        if mutated != good {
            prop_assert!(mutated.check().is_err());
        }
    }
}

// ---------------------------------------------------------------------------
// Arena graph core: construction fuzzing, index-plane invariants, and DSL
// round-trips.
// ---------------------------------------------------------------------------

mod arena_props {
    use casekit::core::{Argument, EdgeKind, NodeKind};
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    const KINDS: [NodeKind; 6] = [
        NodeKind::Goal,
        NodeKind::Strategy,
        NodeKind::Solution,
        NodeKind::Context,
        NodeKind::Assumption,
        NodeKind::Justification,
    ];

    /// The edge kind the DSL infers from nesting under a parent.
    fn dsl_edge_kind(child: NodeKind) -> EdgeKind {
        match child {
            NodeKind::Context | NodeKind::Assumption | NodeKind::Justification => {
                EdgeKind::InContextOf
            }
            _ => EdgeKind::SupportedBy,
        }
    }

    /// Strategy: a built argument with `n` nodes — a random single-rooted
    /// tree (guaranteeing every node renders from the root) plus extra
    /// forward `SupportedBy` edges (emitted as `ref`s by the renderer).
    fn built_argument() -> impl Strategy<Value = Argument> {
        (
            2usize..32,
            collection::vec(0usize..1_000_000, 1..32),
            collection::vec((0usize..1_000_000, 0usize..1_000_000), 0..16),
            0usize..6,
        )
            .prop_map(|(n, parent_picks, extra_picks, kind_offset)| {
                let kind_of = |i: usize| KINDS[(i + kind_offset) % KINDS.len()];
                let mut builder = Argument::builder("fuzz");
                // Node 0 is the root and must be able to carry children.
                builder = builder.add("n0", NodeKind::Goal, "root claim \"quoted\"");
                for i in 1..n {
                    builder = builder.add(
                        &format!("n{i}"),
                        kind_of(i),
                        &format!("text {i} with \\ and \""),
                    );
                }
                let mut edges: BTreeSet<(usize, usize)> = BTreeSet::new();
                for i in 1..n {
                    // Tree edge from some earlier non-leaf-kind node; fall
                    // back to the root, which always accepts children.
                    let pick = parent_picks[i % parent_picks.len()] % i;
                    let parent = if matches!(
                        kind_of(pick),
                        NodeKind::Solution
                            | NodeKind::Context
                            | NodeKind::Assumption
                            | NodeKind::Justification
                    ) && pick != 0
                    {
                        0
                    } else {
                        pick
                    };
                    edges.insert((parent, i));
                    builder = builder.edge(
                        &format!("n{parent}"),
                        &format!("n{i}"),
                        dsl_edge_kind(kind_of(i)),
                    );
                }
                // Extra forward DAG edges; the DSL renders these as `ref`
                // children, which parse back as SupportedBy, so only
                // target support-kind nodes.
                for &(a, b) in &extra_picks {
                    let from = a % n;
                    let to = b % n;
                    if from >= to || edges.contains(&(from, to)) {
                        continue;
                    }
                    if dsl_edge_kind(kind_of(to)) != EdgeKind::SupportedBy || to == 0 {
                        continue;
                    }
                    if matches!(
                        kind_of(from),
                        NodeKind::Solution
                            | NodeKind::Context
                            | NodeKind::Assumption
                            | NodeKind::Justification
                    ) && from != 0
                    {
                        continue;
                    }
                    edges.insert((from, to));
                    builder = builder.edge(
                        &format!("n{from}"),
                        &format!("n{to}"),
                        EdgeKind::SupportedBy,
                    );
                }
                builder.build().expect("fuzzed construction is valid")
            })
    }

    fn edge_set(a: &Argument) -> BTreeSet<(String, String, EdgeKind)> {
        a.edges()
            .iter()
            .map(|e| {
                (
                    e.from.as_str().to_string(),
                    e.to.as_str().to_string(),
                    e.kind,
                )
            })
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        #[test]
        fn interner_is_a_bijection(a in built_argument()) {
            for idx in a.node_indices() {
                prop_assert_eq!(a.node_idx(a.id_at(idx)), Some(idx));
            }
            prop_assert_eq!(a.node_indices().len(), a.len());
            // And every id-plane lookup agrees with the index plane.
            for node in a.nodes() {
                let idx = a.node_idx(&node.id).unwrap();
                prop_assert_eq!(a.node_at(idx).id.as_str(), node.id.as_str());
            }
        }

        #[test]
        fn csr_adjacency_matches_edge_list(a in built_argument()) {
            // Per-node children by kind must equal a filtered scan of
            // edges(), in edge-insertion order (the legacy contract).
            for node in a.nodes() {
                for kind in [EdgeKind::SupportedBy, EdgeKind::InContextOf] {
                    let via_api: Vec<String> = a
                        .children(&node.id, kind)
                        .iter()
                        .map(|n| n.id.as_str().to_string())
                        .collect();
                    let via_scan: Vec<String> = a
                        .edges()
                        .iter()
                        .filter(|e| e.from == node.id && e.kind == kind)
                        .map(|e| e.to.as_str().to_string())
                        .collect();
                    prop_assert_eq!(via_api, via_scan);
                }
                let parents_api: BTreeSet<String> = a
                    .parents(&node.id)
                    .iter()
                    .map(|n| n.id.as_str().to_string())
                    .collect();
                let parents_scan: BTreeSet<String> = a
                    .edges()
                    .iter()
                    .filter(|e| e.to == node.id)
                    .map(|e| e.from.as_str().to_string())
                    .collect();
                prop_assert_eq!(parents_api, parents_scan);
            }
            // Degree sums account for every edge exactly once per side.
            let out_total: usize = a.node_indices().map(|i| a.out_degree(i)).sum();
            let in_total: usize = a.node_indices().map(|i| a.in_degree(i)).sum();
            prop_assert_eq!(out_total, a.edges().len());
            prop_assert_eq!(in_total, a.edges().len());
        }

        #[test]
        fn dsl_render_parse_round_trip_preserves_argument(a in built_argument()) {
            let rendered = casekit::core::dsl::render_dsl(&a);
            let reparsed = casekit::core::dsl::parse_argument(&rendered)
                .expect("rendered DSL parses");
            prop_assert_eq!(reparsed.name(), a.name());
            prop_assert_eq!(reparsed.len(), a.len());
            for node in a.nodes() {
                let back = reparsed.node(&node.id).expect("node survives round trip");
                prop_assert_eq!(back.kind, node.kind);
                prop_assert_eq!(&back.text, &node.text);
                prop_assert_eq!(back.undeveloped, node.undeveloped);
            }
            prop_assert_eq!(edge_set(&reparsed), edge_set(&a));
        }

        #[test]
        fn serde_round_trip_preserves_fuzzed_arguments(a in built_argument()) {
            let json = serde_json::to_string(&a).unwrap();
            let back: Argument = serde_json::from_str(&json).unwrap();
            prop_assert_eq!(&back, &a);
            // The reconstructed arena answers traversals identically.
            for node in a.nodes() {
                prop_assert_eq!(
                    back.all_children(&node.id).len(),
                    a.all_children(&node.id).len()
                );
            }
        }

        #[test]
        fn reachability_and_acyclicity_agree_with_naive_definitions(a in built_argument()) {
            // The fuzzed graphs are forward DAGs by construction.
            prop_assert!(a.is_acyclic());
            // reachable_from == transitive closure computed by scanning.
            let root = a.node_idx(&"n0".into()).unwrap();
            let fast: BTreeSet<String> = a
                .reachable_from(root)
                .into_iter()
                .map(|i| a.id_at(i).as_str().to_string())
                .collect();
            let mut slow: BTreeSet<String> = BTreeSet::new();
            let mut frontier = vec!["n0".to_string()];
            while let Some(current) = frontier.pop() {
                for e in a.edges().iter().filter(|e| e.from.as_str() == current) {
                    if slow.insert(e.to.as_str().to_string()) {
                        frontier.push(e.to.as_str().to_string());
                    }
                }
            }
            prop_assert_eq!(fast, slow);
        }
    }
}

mod runtime_props {
    use casekit::experiments::runtime::Runtime;
    use casekit::experiments::{exp_a, exp_b, exp_c, exp_d, exp_e};
    use proptest::prelude::*;

    // The acceptance property of the experiment runtime: for any master
    // seed, `Runtime { workers: k }` with k in {1, 2, 4, 8} produces
    // byte-identical reports across all five §VI studies (small
    // configurations keep the fuzzing budget sane; worker count must be
    // unobservable at any scale by the same construction).
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn worker_count_is_unobservable_across_all_five_experiments(seed in 0u64..1 << 48) {
            let workers = [1usize, 2, 4, 8];

            let a_cfg = exp_a::Config { per_arm: 9, arguments: 3, hazards: 5, seed };
            let a_base = exp_a::run_with(&a_cfg, &Runtime::with_workers(1)).unwrap();
            for k in workers {
                prop_assert_eq!(
                    &exp_a::run_with(&a_cfg, &Runtime::with_workers(k)).unwrap(),
                    &a_base,
                    "exp_a, workers = {}", k
                );
            }

            let b_cfg = exp_b::Config { sizes: vec![10, 20], per_background: 3, seed };
            let b_base = exp_b::run_with(&b_cfg, &Runtime::with_workers(1)).unwrap();
            for k in workers {
                prop_assert_eq!(
                    &exp_b::run_with(&b_cfg, &Runtime::with_workers(k)).unwrap(),
                    &b_base,
                    "exp_b, workers = {}", k
                );
            }

            let c_cfg = exp_c::Config { per_cell: 5, words: 400, questions: 5, seed };
            let c_base = exp_c::run_with(&c_cfg, &Runtime::with_workers(1)).unwrap();
            for k in workers {
                prop_assert_eq!(
                    &exp_c::run_with(&c_cfg, &Runtime::with_workers(k)).unwrap(),
                    &c_base,
                    "exp_c, workers = {}", k
                );
            }

            let d_cfg = exp_d::Config { instantiations: 3, per_arm: 7, seed };
            let d_base = exp_d::run_with(&d_cfg, &Runtime::with_workers(1)).unwrap();
            for k in workers {
                prop_assert_eq!(
                    &exp_d::run_with(&d_cfg, &Runtime::with_workers(k)).unwrap(),
                    &d_base,
                    "exp_d, workers = {}", k
                );
            }

            let e_cfg = exp_e::Config { per_arm: 6, leaves: 6, seed };
            let e_base = exp_e::run_with(&e_cfg, &Runtime::with_workers(1)).unwrap();
            for k in workers {
                prop_assert_eq!(
                    &exp_e::run_with(&e_cfg, &Runtime::with_workers(k)).unwrap(),
                    &e_base,
                    "exp_e, workers = {}", k
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Interned FOL engine: the indexed iterative machine against the seed
// recursive engine, outcome for outcome, on fuzzed Horn programs.
// ---------------------------------------------------------------------------

mod fol_props {
    use casekit::logic::fol::{parse_program, parse_query, KnowledgeBase, SolveConfig};
    use proptest::prelude::*;

    /// The shared budgets: deep enough to explore cyclic edge relations,
    /// with a work budget no fuzzed instance approaches (the engines
    /// count work differently, so the comparison is only exact while
    /// neither trips it).
    const CONFIG: SolveConfig = SolveConfig {
        max_depth: 12,
        max_work: 1_000_000_000,
        max_solutions: 32,
    };

    /// Strategy: a program of random ground `edge/2` facts over six
    /// constants (cycles and duplicates allowed) plus the fixed
    /// transitive-closure rules. Every derivable answer is ground, so
    /// the engines must agree on the exact solution list — the seed's
    /// leaked rename counters and the interned engine's canonical
    /// `_G{n}` names only diverge on non-ground answers.
    fn program_strategy() -> impl Strategy<Value = KnowledgeBase> {
        collection::vec((0usize..6, 0usize..6), 0..15).prop_map(|edges| {
            let mut src = String::new();
            for (a, b) in edges {
                src.push_str(&format!("edge(c{a}, c{b}).\n"));
            }
            src.push_str("path(X, Y) :- edge(X, Y).\npath(X, Y) :- edge(X, Z), path(Z, Y).\n");
            parse_program(&src).expect("generated program parses")
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        #[test]
        fn interned_engine_matches_seed_outcome_for_outcome(kb in program_strategy()) {
            // Bound starts, open ends, ground checks, and an all-variable
            // query: same solutions, same order, same truncation flag.
            for query in [
                "path(c0, X)",
                "path(c3, X)",
                "path(c1, c4)",
                "path(X, Y)",
                "edge(X, c2)",
            ] {
                let goal = parse_query(query).expect("static query");
                prop_assert_eq!(
                    kb.solve_with(&goal, CONFIG),
                    kb.solve_seed_with(&goal, CONFIG),
                    "query {}", query
                );
            }
        }
    }

    #[test]
    fn deep_chains_resolve_without_overflowing_the_stack() {
        // The old `assert!` here is the seed engine's call stack: a
        // derivation tens of thousands of steps deep is exactly what the
        // interned machine's explicit goal stack exists for.
        let n = 30_000usize;
        let mut src = String::new();
        for i in 0..n - 1 {
            src.push_str(&format!("edge(c{i}, c{}).\n", i + 1));
        }
        src.push_str("path(X, Y) :- edge(X, Y).\npath(X, Y) :- edge(X, Z), path(Z, Y).\n");
        let kb = parse_program(&src).unwrap();
        let goal = parse_query(&format!("path(c0, c{})", n - 1)).unwrap();
        let out = kb.solve_with(
            &goal,
            SolveConfig {
                max_depth: 3 * n,
                max_work: 50 * n,
                max_solutions: 1,
            },
        );
        assert!(out.succeeded());
        assert!(!out.truncated);
    }
}

// ---------------------------------------------------------------------------
// CSR LTL checking: the closure-table plane against the seed trace
// checker, result for result, on fuzzed Kripke structures and formulas.
// ---------------------------------------------------------------------------

mod ltl_props {
    use casekit::logic::ltl::{Kripke, Ltl};
    use proptest::prelude::*;

    /// Strategy: LTL formulas to nesting depth 4 over `a`/`b`/`c` — plus
    /// the never-labelled `d`, which the CSR plane must compile to false
    /// exactly like the trace evaluator treats an absent proposition.
    fn ltl_strategy() -> impl Strategy<Value = Ltl> {
        let leaf = prop_oneof![
            Just(Ltl::True),
            Just(Ltl::False),
            prop_oneof![Just("a"), Just("b"), Just("c"), Just("d")].prop_map(Ltl::prop),
        ];
        leaf.prop_recursive(4, 24, 2, |inner| {
            prop_oneof![
                inner.clone().prop_map(Ltl::not),
                (inner.clone(), inner.clone()).prop_map(|(p, q)| p.and(q)),
                (inner.clone(), inner.clone()).prop_map(|(p, q)| p.or(q)),
                (inner.clone(), inner.clone()).prop_map(|(p, q)| p.implies(q)),
                inner.clone().prop_map(Ltl::next),
                inner.clone().prop_map(Ltl::finally),
                inner.clone().prop_map(Ltl::globally),
                (inner.clone(), inner.clone()).prop_map(|(p, q)| p.until(q)),
                (inner.clone(), inner).prop_map(|(p, q)| p.release(q)),
            ]
        })
    }

    /// Strategy: a Kripke structure of up to 8 states labelled over
    /// `a`/`b`/`c`, with a random transition relation (deadlocks and
    /// self-loops included) and state 0 always initial.
    fn kripke_strategy() -> impl Strategy<Value = Kripke> {
        (1usize..9).prop_flat_map(|n| {
            (
                collection::vec(collection::vec(0usize..3, 0..3), n..n + 1),
                collection::vec((0..n, 0..n), 0..2 * n + 1),
                collection::vec(0..n, 0..3),
            )
                .prop_map(|(labels, transitions, extra_initial)| {
                    let names = ["a", "b", "c"];
                    let mut k = Kripke::new();
                    let states: Vec<_> = labels
                        .iter()
                        .map(|ps| k.add_state(ps.iter().map(|&p| names[p])))
                        .collect();
                    for (from, to) in transitions {
                        k.add_transition(states[from], states[to])
                            .expect("in range");
                    }
                    k.add_initial(states[0]).expect("in range");
                    for s in extra_initial {
                        k.add_initial(states[s]).expect("in range");
                    }
                    k
                })
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(192))]

        #[test]
        fn csr_checker_matches_trace_checker_result_for_result(
            k in kripke_strategy(),
            f in ltl_strategy(),
        ) {
            // Identical verdicts AND identical counterexample lassos:
            // the CSR plane visits candidates in the oracle's order.
            prop_assert_eq!(k.check_bounded(&f, 6), k.check_bounded_naive(&f, 6));
        }
    }
}

mod af_props {
    use casekit::logic::af::scc::Decomposed;
    use casekit::logic::af::{naive, ArgId, Framework};
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    /// Strategy: a framework with up to `max_args` arguments and a
    /// random attack relation (self-attacks included).
    fn framework_strategy(max_args: usize) -> impl Strategy<Value = Framework> {
        (1..max_args + 1).prop_flat_map(|n| {
            collection::vec((0..n, 0..n), 0..3 * n + 1).prop_map(move |attacks| {
                let mut af = Framework::new();
                for i in 0..n {
                    af.add_argument(format!("a{i}"));
                }
                for (attacker, target) in attacks {
                    af.add_attack(attacker, target).expect("ids are in range");
                }
                af
            })
        })
    }

    fn as_set(extensions: Vec<BTreeSet<ArgId>>) -> BTreeSet<BTreeSet<ArgId>> {
        extensions.into_iter().collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn sat_engine_agrees_with_subset_enumeration(af in framework_strategy(9)) {
            // The SAT labelling path against the seed's exponential
            // enumerator, semantics for semantics.
            prop_assert_eq!(
                as_set(af.complete_extensions()),
                as_set(naive::complete_extensions(&af).expect("within cap"))
            );
            prop_assert_eq!(
                as_set(af.preferred_extensions()),
                as_set(naive::preferred_extensions(&af).expect("within cap"))
            );
            prop_assert_eq!(
                as_set(af.stable_extensions()),
                as_set(naive::stable_extensions(&af).expect("within cap"))
            );
        }

        #[test]
        fn acceptance_agrees_between_engines(af in framework_strategy(8)) {
            let naive_preferred = naive::preferred_extensions(&af).expect("within cap");
            let naive_grounded = naive::grounded_extension(&af);
            for id in 0..af.len() {
                prop_assert_eq!(
                    af.credulously_accepted(id).expect("id in range"),
                    naive::credulously_accepted(&af, id).expect("within cap")
                );
                prop_assert_eq!(
                    af.sceptically_accepted_preferred(id).expect("id in range"),
                    naive_preferred.iter().all(|e| e.contains(&id))
                );
                prop_assert_eq!(
                    af.sceptically_accepted(id).expect("id in range"),
                    naive_grounded.contains(&id)
                );
            }
        }

        #[test]
        fn grounded_csr_matches_the_fixpoint_scan(af in framework_strategy(24)) {
            prop_assert_eq!(af.grounded_extension(), naive::grounded_extension(&af));
        }

        #[test]
        fn decomposed_engine_agrees_with_monolithic(af in framework_strategy(40)) {
            // The SCC-decomposed engine against the monolithic SAT
            // path, set for set — on frameworks below the routing
            // threshold, so `af.*_extensions()` is the monolithic
            // answer and the comparison is between distinct engines.
            let dec = Decomposed::new(&af);
            prop_assert_eq!(
                as_set(dec.complete_extensions()),
                as_set(af.complete_extensions())
            );
            prop_assert_eq!(
                as_set(dec.preferred_extensions()),
                as_set(af.preferred_extensions())
            );
            prop_assert_eq!(
                as_set(dec.stable_extensions()),
                as_set(af.stable_extensions())
            );
            for id in 0..af.len() {
                prop_assert_eq!(
                    dec.credulous(id),
                    af.credulously_accepted(id).expect("id in range")
                );
                prop_assert_eq!(
                    dec.sceptical_preferred(id),
                    af.sceptically_accepted_preferred(id).expect("id in range")
                );
            }
        }

        #[test]
        fn condensation_is_acyclic_and_covers_every_argument(af in framework_strategy(40)) {
            let dec = Decomposed::new(&af);
            let cond = dec.condensation();
            // Coverage: the components partition the arguments.
            let mut seen = vec![false; af.len()];
            for c in 0..cond.num_components() {
                for &a in cond.members(c) {
                    prop_assert!(!seen[a], "argument {} in two components", a);
                    seen[a] = true;
                    prop_assert_eq!(cond.component_of(a), c);
                }
            }
            prop_assert!(seen.iter().all(|&s| s), "every argument is covered");
            // Acyclicity in attackers-first order: a cross-component
            // attack always points from a lower-numbered (and strictly
            // shallower) component to a higher one.
            for target in 0..af.len() {
                let tc = cond.component_of(target);
                for attacker in af.attackers(target) {
                    let ac = cond.component_of(attacker);
                    if ac != tc {
                        prop_assert!(ac < tc, "attacker component ordered first");
                        prop_assert!(
                            cond.depth(ac) < cond.depth(tc),
                            "attacks only deepen the condensation"
                        );
                    }
                }
            }
        }

        #[test]
        fn semantics_invariants_hold_beyond_the_enumeration_cap(af in framework_strategy(40)) {
            // Sizes the enumerator cannot cross-check: the classical
            // containments must still hold.
            let grounded = af.grounded_extension();
            let preferred = af.preferred_extensions();
            prop_assert!(!preferred.is_empty(), "preferred semantics is universal");
            for p in &preferred {
                prop_assert!(af.admissible(p), "preferred extensions are admissible");
                prop_assert!(grounded.is_subset(p), "grounded is the sceptical core");
            }
            for s in af.stable_extensions() {
                prop_assert!(
                    preferred.contains(&s),
                    "every stable extension is preferred"
                );
            }
        }
    }

    #[test]
    fn preferred_succeeds_on_a_200_argument_framework() {
        // The old `assert!(n <= 16)` ceiling, exceeded by an order of
        // magnitude: a deterministic pseudo-random framework (SplitMix
        // steps) with cycles, solved through the SAT path.
        let mut state = 0x5EEDu64;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let n = 200usize;
        let mut af = Framework::new();
        for i in 0..n {
            af.add_argument(format!("a{i}"));
        }
        for _ in 0..2 * n {
            let attacker = next() as usize % n;
            let target = next() as usize % n;
            af.add_attack(attacker, target).expect("ids in range");
        }
        let preferred = af.preferred_extensions();
        assert!(!preferred.is_empty());
        let grounded = af.grounded_extension();
        for p in &preferred {
            assert!(af.admissible(p));
            assert!(grounded.is_subset(p));
        }
    }
}
