//! Truth-functional evaluation: valuations and truth tables.

use super::ast::{Atom, Formula};
use std::collections::BTreeMap;

/// An assignment of truth values to atoms.
///
/// Atoms absent from the valuation evaluate as `false`; use
/// [`Valuation::get`] if you need to distinguish "absent" from "false".
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Valuation {
    map: BTreeMap<Atom, bool>,
}

impl Valuation {
    /// An empty valuation (all atoms false).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets `atom` to `value`, returning `self` for chaining.
    pub fn with(mut self, atom: impl Into<Atom>, value: bool) -> Self {
        self.map.insert(atom.into(), value);
        self
    }

    /// Sets `atom` to `value`.
    pub fn set(&mut self, atom: impl Into<Atom>, value: bool) {
        self.map.insert(atom.into(), value);
    }

    /// The value assigned to `atom`, if any.
    pub fn get(&self, atom: &Atom) -> Option<bool> {
        self.map.get(atom).copied()
    }

    /// True atoms in this valuation, in sorted order.
    pub fn true_atoms(&self) -> impl Iterator<Item = &Atom> {
        self.map.iter().filter(|(_, v)| **v).map(|(a, _)| a)
    }

    /// Number of atoms explicitly assigned.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no atoms are explicitly assigned.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl FromIterator<(Atom, bool)> for Valuation {
    fn from_iter<I: IntoIterator<Item = (Atom, bool)>>(iter: I) -> Self {
        Valuation {
            map: iter.into_iter().collect(),
        }
    }
}

impl Extend<(Atom, bool)> for Valuation {
    fn extend<I: IntoIterator<Item = (Atom, bool)>>(&mut self, iter: I) {
        self.map.extend(iter);
    }
}

impl Formula {
    /// Evaluates the formula under `v` (unassigned atoms read as false).
    pub fn eval(&self, v: &Valuation) -> bool {
        match self {
            Formula::True => true,
            Formula::False => false,
            Formula::Atom(a) => v.get(a).unwrap_or(false),
            Formula::Not(inner) => !inner.eval(v),
            Formula::And(l, r) => l.eval(v) && r.eval(v),
            Formula::Or(l, r) => l.eval(v) || r.eval(v),
            Formula::Implies(l, r) => !l.eval(v) || r.eval(v),
            Formula::Iff(l, r) => l.eval(v) == r.eval(v),
        }
    }

    /// True when some valuation satisfies the formula.
    ///
    /// Decided by the DPLL solver in `sat`; formulas from assurance
    /// arguments are small, but arguments compiled from generated corpora
    /// can reach thousands of clauses, which enumeration would not handle.
    pub fn is_satisfiable(&self) -> bool {
        matches!(super::sat::dpll(self), super::sat::SatResult::Sat(_))
    }

    /// True when every valuation satisfies the formula.
    pub fn is_tautology(&self) -> bool {
        !self.clone().not().is_satisfiable()
    }

    /// True when no valuation satisfies the formula.
    pub fn is_contradiction(&self) -> bool {
        !self.is_satisfiable()
    }

    /// True when `self` semantically entails `other`.
    pub fn entails(&self, other: &Formula) -> bool {
        self.clone().and(other.clone().not()).is_contradiction()
    }

    /// True when `self` and `other` are logically equivalent.
    pub fn equivalent(&self, other: &Formula) -> bool {
        self.clone().iff(other.clone()).is_tautology()
    }
}

/// A complete truth table for a formula over its atoms.
#[derive(Debug, Clone)]
pub struct TruthTable {
    atoms: Vec<Atom>,
    /// One entry per row: the atom values (in `atoms` order) and the result.
    rows: Vec<(Vec<bool>, bool)>,
}

impl TruthTable {
    /// The column headers (atom order used by [`TruthTable::rows`]).
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// The rows: input values per atom plus the formula's value.
    pub fn rows(&self) -> &[(Vec<bool>, bool)] {
        &self.rows
    }

    /// Number of satisfying rows.
    pub fn models(&self) -> usize {
        self.rows.iter().filter(|(_, out)| *out).count()
    }

    /// Renders as a plain-text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for a in &self.atoms {
            out.push_str(a.name());
            out.push(' ');
        }
        out.push_str("| result\n");
        for (values, result) in &self.rows {
            for (a, v) in self.atoms.iter().zip(values) {
                let cell = if *v { "1" } else { "0" };
                out.push_str(cell);
                for _ in 0..a.name().len().saturating_sub(1) {
                    out.push(' ');
                }
                out.push(' ');
            }
            out.push_str("| ");
            out.push_str(if *result { "1" } else { "0" });
            out.push('\n');
        }
        out
    }
}

/// Builds the full truth table of `formula`.
///
/// Returns [`TooManyAtoms`](crate::LogicError::TooManyAtoms) above 24 atoms (2^24 rows):
/// truth tables are for explanation, not deciding — use
/// [`super::dpll`] or a [`super::solver::Theory`] session for that.
pub fn truth_table(formula: &Formula) -> Result<TruthTable, crate::error::LogicError> {
    let atoms: Vec<Atom> = formula.atoms().into_iter().collect();
    let n = atoms.len();
    if n > 24 {
        return Err(crate::error::LogicError::TooManyAtoms {
            atoms: n,
            limit: 24,
        });
    }
    let mut rows = Vec::with_capacity(1 << n);
    for bits in 0..(1u32 << n) {
        let values: Vec<bool> = (0..n).map(|i| bits >> (n - 1 - i) & 1 == 1).collect();
        let v: Valuation = atoms.iter().cloned().zip(values.iter().copied()).collect();
        rows.push((values, formula.eval(&v)));
    }
    Ok(TruthTable { atoms, rows })
}

#[cfg(test)]
mod tests {
    use super::super::parse;
    use super::*;

    #[test]
    fn eval_basic_connectives() {
        let v = Valuation::new().with("p", true).with("q", false);
        assert!(parse("p").unwrap().eval(&v));
        assert!(!parse("q").unwrap().eval(&v));
        assert!(!parse("p & q").unwrap().eval(&v));
        assert!(parse("p | q").unwrap().eval(&v));
        assert!(!parse("p -> q").unwrap().eval(&v));
        assert!(parse("q -> p").unwrap().eval(&v));
        assert!(!parse("p <-> q").unwrap().eval(&v));
        assert!(parse("~q").unwrap().eval(&v));
        assert!(parse("T").unwrap().eval(&v));
        assert!(!parse("F").unwrap().eval(&v));
    }

    #[test]
    fn unassigned_atoms_default_false() {
        let v = Valuation::new();
        assert!(!parse("p").unwrap().eval(&v));
        assert!(v.is_empty());
    }

    #[test]
    fn tautology_contradiction_contingent() {
        assert!(parse("p | ~p").unwrap().is_tautology());
        assert!(parse("p & ~p").unwrap().is_contradiction());
        let f = parse("p -> q").unwrap();
        assert!(f.is_satisfiable() && !f.is_tautology());
    }

    #[test]
    fn entailment_modus_ponens() {
        let premises = parse("(p -> q) & p").unwrap();
        assert!(premises.entails(&parse("q").unwrap()));
        assert!(!premises.entails(&parse("~q").unwrap()));
    }

    #[test]
    fn equivalence_de_morgan() {
        assert!(parse("~(p & q)")
            .unwrap()
            .equivalent(&parse("~p | ~q").unwrap()));
        assert!(!parse("~(p & q)")
            .unwrap()
            .equivalent(&parse("~p & ~q").unwrap()));
    }

    #[test]
    fn truth_table_shape_and_models() {
        let tt = truth_table(&parse("p & q").unwrap()).unwrap();
        assert_eq!(tt.atoms().len(), 2);
        assert_eq!(tt.rows().len(), 4);
        assert_eq!(tt.models(), 1);
        let rendered = tt.render();
        assert!(rendered.contains("| result"));
        assert!(rendered.lines().count() == 5);
    }

    #[test]
    fn truth_table_of_closed_formula() {
        let tt = truth_table(&parse("T -> F").unwrap()).unwrap();
        assert_eq!(tt.rows().len(), 1);
        assert_eq!(tt.models(), 0);
    }

    #[test]
    fn truth_table_rejects_wide_formulas() {
        let wide = Formula::conj((0..25).map(|i| Formula::atom(format!("w{i}"))));
        let err = truth_table(&wide).unwrap_err();
        assert!(err.to_string().contains("25"));
        assert!(err.to_string().contains("24"));
    }

    #[test]
    fn valuation_true_atoms_sorted() {
        let v = Valuation::new()
            .with("z", true)
            .with("a", true)
            .with("m", false);
        let names: Vec<_> = v.true_atoms().map(|a| a.name().to_string()).collect();
        assert_eq!(names, vec!["a", "z"]);
        assert_eq!(v.len(), 3);
    }
}
