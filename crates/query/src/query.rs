//! The structured query language over annotated arguments.
//!
//! ```text
//! query ::= "select" selector ("where" condition ("and" condition)*)?
//! selector ::= "goals" | "strategies" | "solutions" | "contexts"
//!            | "assumptions" | "justifications" | "nodes"
//! condition ::= attr "." field op value
//!             | "has" attr
//!             | "text" "contains" string
//! op ::= "=" | "!="
//! value ::= ident | integer | string
//! ```

use crate::annotation::{AnnotationStore, FieldValue};
use casekit_core::{Argument, NodeId, NodeKind};
use casekit_logic::{ParseError, Span};
use serde::{Deserialize, Serialize};
use std::fmt;

/// What kinds of node a query selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Selector {
    /// A single node kind.
    Kind(NodeKind),
    /// Every node.
    AnyNode,
}

/// Comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
}

/// One query condition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Condition {
    /// `attr.field <op> value`.
    Field {
        /// Attribute name.
        attribute: String,
        /// Field name.
        field: String,
        /// Operator.
        op: Op,
        /// Comparand.
        value: FieldValue,
    },
    /// `has attr` — the node carries at least one instance of the attribute.
    Has {
        /// Attribute name.
        attribute: String,
    },
    /// `text contains "..."` — substring match on the node's prose.
    TextContains {
        /// The needle.
        needle: String,
    },
}

/// A parsed query.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Query {
    /// The node selector.
    pub selector: Selector,
    /// Conjunctive conditions.
    pub conditions: Vec<Condition>,
}

impl Query {
    /// Runs the query, returning matching node ids in id order.
    pub fn run(&self, argument: &Argument, store: &AnnotationStore) -> Vec<NodeId> {
        argument
            .nodes()
            .filter(|node| match self.selector {
                Selector::AnyNode => true,
                Selector::Kind(k) => node.kind == k,
            })
            .filter(|node| {
                self.conditions
                    .iter()
                    .all(|c| condition_holds(c, node, store))
            })
            .map(|node| node.id.clone())
            .collect()
    }
}

fn condition_holds(
    condition: &Condition,
    node: &casekit_core::Node,
    store: &AnnotationStore,
) -> bool {
    match condition {
        Condition::Has { attribute } => store
            .annotations(&node.id)
            .iter()
            .any(|a| &a.attribute == attribute),
        Condition::Field {
            attribute,
            field,
            op,
            value,
        } => store.annotations(&node.id).iter().any(|a| {
            if &a.attribute != attribute {
                return false;
            }
            match a.fields.get(field) {
                None => false,
                Some(actual) => match op {
                    Op::Eq => actual == value,
                    Op::Ne => actual != value,
                },
            }
        }),
        Condition::TextContains { needle } => {
            node.text.to_lowercase().contains(&needle.to_lowercase())
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.selector {
            Selector::AnyNode => "nodes".to_string(),
            Selector::Kind(k) => format!("{k}s"),
        };
        write!(f, "select {kind}")?;
        for (i, c) in self.conditions.iter().enumerate() {
            let joiner = if i == 0 { " where " } else { " and " };
            f.write_str(joiner)?;
            match c {
                Condition::Field {
                    attribute,
                    field,
                    op,
                    value,
                } => {
                    let op = match op {
                        Op::Eq => "=",
                        Op::Ne => "!=",
                    };
                    write!(f, "{attribute}.{field} {op} {value}")?;
                }
                Condition::Has { attribute } => write!(f, "has {attribute}")?,
                Condition::TextContains { needle } => write!(f, "text contains \"{needle}\"")?,
            }
        }
        Ok(())
    }
}

/// Parses a query.
///
/// # Errors
///
/// Returns a [`ParseError`] for malformed input.
pub fn parse_query(input: &str) -> Result<Query, ParseError> {
    let mut toks = tokenize(input);
    expect(&mut toks, "select", input)?;
    let selector_word = next_word(&mut toks, "a selector", input)?;
    let selector = match selector_word.as_str() {
        "goals" => Selector::Kind(NodeKind::Goal),
        "strategies" => Selector::Kind(NodeKind::Strategy),
        "solutions" => Selector::Kind(NodeKind::Solution),
        "contexts" => Selector::Kind(NodeKind::Context),
        "assumptions" => Selector::Kind(NodeKind::Assumption),
        "justifications" => Selector::Kind(NodeKind::Justification),
        "claims" => Selector::Kind(NodeKind::Claim),
        "evidence" => Selector::Kind(NodeKind::Evidence),
        "nodes" => Selector::AnyNode,
        other => {
            return Err(ParseError::new(
                format!("unknown selector `{other}`"),
                Span::new(0, input.len()),
            ))
        }
    };
    let mut conditions = Vec::new();
    if !toks.is_empty() {
        expect(&mut toks, "where", input)?;
        loop {
            conditions.push(parse_condition(&mut toks, input)?);
            if toks.is_empty() {
                break;
            }
            expect(&mut toks, "and", input)?;
        }
    }
    Ok(Query {
        selector,
        conditions,
    })
}

#[derive(Debug, Clone, PartialEq)]
enum QTok {
    Word(String),
    Str(String),
    Int(i64),
    Dot,
    Eq,
    Ne,
}

fn tokenize(input: &str) -> Vec<QTok> {
    let mut out = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
        } else if c == '.' {
            out.push(QTok::Dot);
            i += 1;
        } else if c == '=' {
            out.push(QTok::Eq);
            i += 1;
        } else if c == '!' && chars.get(i + 1) == Some(&'=') {
            out.push(QTok::Ne);
            i += 2;
        } else if c == '"' {
            let mut s = String::new();
            i += 1;
            while i < chars.len() && chars[i] != '"' {
                s.push(chars[i]);
                i += 1;
            }
            i += 1; // closing quote (or end)
            out.push(QTok::Str(s));
        } else if c == '-' || c.is_ascii_digit() {
            let start = i;
            i += 1;
            while i < chars.len() && chars[i].is_ascii_digit() {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            match text.parse() {
                Ok(v) => out.push(QTok::Int(v)),
                Err(_) => out.push(QTok::Word(text)),
            }
        } else if c.is_alphanumeric() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            out.push(QTok::Word(chars[start..i].iter().collect()));
        } else {
            // Unknown char: emit as a word so the parser reports it.
            out.push(QTok::Word(c.to_string()));
            i += 1;
        }
    }
    out
}

fn expect(toks: &mut Vec<QTok>, word: &str, input: &str) -> Result<(), ParseError> {
    match toks.first() {
        Some(QTok::Word(w)) if w == word => {
            toks.remove(0);
            Ok(())
        }
        _ => Err(ParseError::new(
            format!("expected `{word}`"),
            Span::new(0, input.len()),
        )),
    }
}

fn next_word(toks: &mut Vec<QTok>, what: &str, input: &str) -> Result<String, ParseError> {
    match toks.first().cloned() {
        Some(QTok::Word(w)) => {
            toks.remove(0);
            Ok(w)
        }
        _ => Err(ParseError::new(
            format!("expected {what}"),
            Span::new(0, input.len()),
        )),
    }
}

fn parse_condition(toks: &mut Vec<QTok>, input: &str) -> Result<Condition, ParseError> {
    let first = next_word(toks, "a condition", input)?;
    if first == "has" {
        let attribute = next_word(toks, "an attribute name", input)?;
        return Ok(Condition::Has { attribute });
    }
    if first == "text" {
        expect(toks, "contains", input)?;
        match toks.first().cloned() {
            Some(QTok::Str(s)) => {
                toks.remove(0);
                return Ok(Condition::TextContains { needle: s });
            }
            _ => {
                return Err(ParseError::new(
                    "expected a quoted string after `contains`",
                    Span::new(0, input.len()),
                ))
            }
        }
    }
    // attr.field op value
    match toks.first() {
        Some(QTok::Dot) => {
            toks.remove(0);
        }
        _ => {
            return Err(ParseError::new(
                format!("expected `.` after attribute `{first}`"),
                Span::new(0, input.len()),
            ))
        }
    }
    let field = next_word(toks, "a field name", input)?;
    let op = match toks.first() {
        Some(QTok::Eq) => {
            toks.remove(0);
            Op::Eq
        }
        Some(QTok::Ne) => {
            toks.remove(0);
            Op::Ne
        }
        _ => {
            return Err(ParseError::new(
                "expected `=` or `!=`",
                Span::new(0, input.len()),
            ))
        }
    };
    let value = match toks.first().cloned() {
        Some(QTok::Word(w)) => {
            toks.remove(0);
            FieldValue::Str(w)
        }
        Some(QTok::Str(s)) => {
            toks.remove(0);
            FieldValue::Str(s)
        }
        Some(QTok::Int(v)) => {
            toks.remove(0);
            FieldValue::Int(v)
        }
        _ => {
            return Err(ParseError::new(
                "expected a value",
                Span::new(0, input.len()),
            ))
        }
    };
    Ok(Condition::Field {
        attribute: first,
        field,
        op,
        value,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ontology::{FieldType, Ontology};
    use casekit_core::dsl::parse_argument;

    fn setup() -> (Argument, AnnotationStore) {
        let arg = parse_argument(
            r#"argument "haz" {
                goal g1 "All hazards mitigated" {
                  goal g2 "Fire suppressed" { solution e1 "sprinkler test" }
                  goal g3 "Runaway halted" { solution e2 "estop test" }
                  goal g4 "Noise within limits" { solution e3 "acoustic survey" }
                }
            }"#,
        )
        .unwrap();
        let mut ontology = Ontology::new();
        ontology.declare_enum("severity", ["catastrophic", "major", "minor"]);
        ontology.declare_enum("likelihood", ["frequent", "probable", "remote"]);
        ontology.declare_attribute(
            "hazard",
            [
                ("severity", FieldType::Enum("severity".into())),
                ("likelihood", FieldType::Enum("likelihood".into())),
            ],
        );
        ontology.declare_attribute("wcet_ms", [("value", FieldType::Nat)]);
        let mut store = AnnotationStore::new(ontology);
        store
            .annotate(
                &arg,
                "g2",
                "hazard",
                [("severity", "catastrophic"), ("likelihood", "remote")],
            )
            .unwrap();
        store
            .annotate(
                &arg,
                "g3",
                "hazard",
                [("severity", "catastrophic"), ("likelihood", "frequent")],
            )
            .unwrap();
        store
            .annotate(
                &arg,
                "g4",
                "hazard",
                [("severity", "minor"), ("likelihood", "remote")],
            )
            .unwrap();
        store
            .annotate(&arg, "e1", "wcet_ms", [("value", 250i64)])
            .unwrap();
        (arg, store)
    }

    #[test]
    fn papers_example_query() {
        // "traceability to only those hazards whose likelihood of
        // occurrence is remote, and whose severity is catastrophic".
        let (arg, store) = setup();
        let q = parse_query(
            "select goals where hazard.severity = catastrophic and hazard.likelihood = remote",
        )
        .unwrap();
        let hits = q.run(&arg, &store);
        assert_eq!(hits, vec![NodeId::new("g2")]);
    }

    #[test]
    fn has_and_kind_selectors() {
        let (arg, store) = setup();
        let q = parse_query("select goals where has hazard").unwrap();
        assert_eq!(q.run(&arg, &store).len(), 3);
        let q = parse_query("select solutions where has wcet_ms").unwrap();
        assert_eq!(q.run(&arg, &store), vec![NodeId::new("e1")]);
        let q = parse_query("select nodes").unwrap();
        assert_eq!(q.run(&arg, &store).len(), arg.len());
    }

    #[test]
    fn inequality_and_int_values() {
        let (arg, store) = setup();
        let q = parse_query("select goals where hazard.severity != minor").unwrap();
        assert_eq!(q.run(&arg, &store).len(), 2);
        let q = parse_query("select solutions where wcet_ms.value = 250").unwrap();
        assert_eq!(q.run(&arg, &store), vec![NodeId::new("e1")]);
        let q = parse_query("select solutions where wcet_ms.value = 999").unwrap();
        assert!(q.run(&arg, &store).is_empty());
    }

    #[test]
    fn text_contains() {
        let (arg, store) = setup();
        let q = parse_query("select nodes where text contains \"fire\"").unwrap();
        assert_eq!(q.run(&arg, &store), vec![NodeId::new("g2")]);
    }

    #[test]
    fn unannotated_nodes_never_match_field_conditions() {
        let (arg, store) = setup();
        let q = parse_query("select goals where hazard.severity = catastrophic").unwrap();
        let hits = q.run(&arg, &store);
        assert!(!hits.contains(&NodeId::new("g1")));
    }

    #[test]
    fn display_round_trip() {
        for src in [
            "select goals where hazard.severity = catastrophic and hazard.likelihood = remote",
            "select nodes",
            "select solutions where has wcet_ms",
            "select nodes where text contains \"fire\"",
            "select goals where wcet_ms.value != 3",
        ] {
            let q = parse_query(src).unwrap();
            let q2 = parse_query(&q.to_string()).unwrap();
            assert_eq!(q, q2, "round trip failed for {src}");
        }
    }

    #[test]
    fn parse_errors() {
        assert!(parse_query("").is_err());
        assert!(parse_query("select widgets").is_err());
        assert!(parse_query("select goals where").is_err());
        assert!(parse_query("select goals where hazard severity = x").is_err());
        assert!(parse_query("select goals where hazard.severity ~ x").is_err());
        assert!(parse_query("select goals where text contains fire").is_err());
        assert!(parse_query("goals").is_err());
    }

    #[test]
    fn results_in_id_order() {
        let (arg, store) = setup();
        let q = parse_query("select goals where hazard.severity = catastrophic").unwrap();
        let hits = q.run(&arg, &store);
        assert_eq!(hits, vec![NodeId::new("g2"), NodeId::new("g3")]);
    }
}
