//! Bridging arguments to formal logic: compiling formal payloads into a
//! theory and checking deductive support, in the style of Rushby's
//! "formalise what lends itself to the process" (Graydon §III-M).
//!
//! Only nodes with [`FormalPayload::Prop`] payloads participate; everything
//! else remains informal — which is the paper's partial-formalisation
//! setting. The checks here answer precisely the question mechanical
//! verification can answer (does the symbol structure entail the
//! conclusion?) and none of the questions it cannot (do the premises
//! describe the world?).

use crate::argument::{Argument, NodeIdx};
use crate::node::{EdgeKind, FormalPayload, NodeId, NodeKind};
use casekit_logic::probe::{probe, ProbeReport};
use casekit_logic::prop::Formula;

/// The formal premises of an argument: the propositional payloads of its
/// formalised support *leaves* (solutions/evidence are cited through their
/// parent goals' payloads, so leaves here means "formalised nodes with no
/// formalised descendants providing support").
pub fn formal_premises(argument: &Argument) -> Vec<Formula> {
    argument
        .sorted_indices()
        .map(|idx| (idx, argument.node_at(idx)))
        .filter(|(idx, n)| {
            n.is_formalised() && formalised_support_children(argument, *idx).is_empty()
        })
        .filter_map(|(_, n)| match &n.formal {
            Some(FormalPayload::Prop(f)) => Some(f.clone()),
            _ => None,
        })
        .collect()
}

/// The formal conclusion: the propositional payload of the (first) root
/// goal, if it has one.
pub fn formal_conclusion(argument: &Argument) -> Option<Formula> {
    argument
        .sorted_roots_idx()
        .find_map(|idx| match &argument.node_at(idx).formal {
            Some(FormalPayload::Prop(f)) => Some(f.clone()),
            _ => None,
        })
}

/// Formalised children supporting `idx` (transitively skipping
/// unformalised strategies, which GSN interposes between goals).
fn formalised_support_children(argument: &Argument, idx: NodeIdx) -> Vec<&crate::node::Node> {
    let mut out = Vec::new();
    for child_idx in argument.children_idx(idx, EdgeKind::SupportedBy) {
        let child = argument.node_at(child_idx);
        if child.is_formalised() {
            out.push(child);
        } else if child.kind == NodeKind::Strategy {
            out.extend(formalised_support_children(argument, child_idx));
        }
    }
    out
}

/// Whether the support step into `id` is deductively valid: the
/// conjunction of the formalised supporting children's payloads entails
/// `id`'s payload.
///
/// Returns `None` when the step is not checkable (the node or all of its
/// support lacks propositional payloads).
pub fn step_is_deductive(argument: &Argument, id: &NodeId) -> Option<bool> {
    let idx = argument.node_idx(id)?;
    let target = match &argument.node_at(idx).formal {
        Some(FormalPayload::Prop(f)) => f.clone(),
        _ => return None,
    };
    let children = formalised_support_children(argument, idx);
    if children.is_empty() {
        return None;
    }
    let premises: Vec<Formula> = children
        .iter()
        .filter_map(|c| match &c.formal {
            Some(FormalPayload::Prop(f)) => Some(f.clone()),
            _ => None,
        })
        .collect();
    if premises.is_empty() {
        return None;
    }
    Some(Formula::conj(premises).entails(&target))
}

/// Every non-deductive formalised step in the argument (node ids whose
/// support fails entailment). An empty result means the formalised skeleton
/// is free of *formal* fallacies of consequence — and nothing more.
pub fn non_deductive_steps(argument: &Argument) -> Vec<NodeId> {
    argument
        .nodes()
        .filter(|n| step_is_deductive(argument, &n.id) == Some(false))
        .map(|n| n.id.clone())
        .collect()
}

/// Runs Rushby's what-if probe over the argument's formal skeleton:
/// premises = formal leaf payloads, conclusion = root payload.
///
/// Returns `None` when the argument has no formal conclusion.
pub fn probe_argument(argument: &Argument) -> Option<ProbeReport> {
    let conclusion = formal_conclusion(argument)?;
    let premises = formal_premises(argument);
    Some(probe(&premises, &conclusion))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Node;
    use casekit_logic::prop::parse;

    fn payload(src: &str) -> FormalPayload {
        FormalPayload::Prop(parse(src).unwrap())
    }

    /// g1 ⟦q⟧ ← s1 ← { g2 ⟦p -> q⟧, g3 ⟦p⟧ }, each on a solution.
    fn deductive_case() -> Argument {
        Argument::builder("mp")
            .node(Node::new("g1", NodeKind::Goal, "q").with_formal(payload("q")))
            .add("s1", NodeKind::Strategy, "deduce")
            .node(Node::new("g2", NodeKind::Goal, "rule").with_formal(payload("p -> q")))
            .node(Node::new("g3", NodeKind::Goal, "fact").with_formal(payload("p")))
            .add("e1", NodeKind::Solution, "review")
            .add("e2", NodeKind::Solution, "measurement")
            .supported_by("g1", "s1")
            .supported_by("s1", "g2")
            .supported_by("s1", "g3")
            .supported_by("g2", "e1")
            .supported_by("g3", "e2")
            .build()
            .unwrap()
    }

    #[test]
    fn deductive_step_through_strategy() {
        let a = deductive_case();
        assert_eq!(step_is_deductive(&a, &"g1".into()), Some(true));
        assert!(non_deductive_steps(&a).is_empty());
    }

    #[test]
    fn premises_and_conclusion_extraction() {
        let a = deductive_case();
        let premises = formal_premises(&a);
        assert_eq!(premises.len(), 2);
        assert_eq!(formal_conclusion(&a), Some(parse("q").unwrap()));
    }

    #[test]
    fn non_deductive_step_detected() {
        // The paper's §V-B example: code_reviewed & unit_tests_passed does
        // NOT entail meets_deadlines, however confidently asserted.
        let a = Argument::builder("wrong-reasons")
            .node(
                Node::new("g1", NodeKind::Goal, "deadlines met")
                    .with_formal(payload("meets_deadlines")),
            )
            .node(
                Node::new("g2", NodeKind::Goal, "quality signals")
                    .with_formal(payload("code_reviewed & unit_tests_passed")),
            )
            .add("e1", NodeKind::Solution, "review minutes")
            .supported_by("g1", "g2")
            .supported_by("g2", "e1")
            .build()
            .unwrap();
        assert_eq!(step_is_deductive(&a, &"g1".into()), Some(false));
        assert_eq!(non_deductive_steps(&a), vec![NodeId::new("g1")]);
    }

    #[test]
    fn unformalised_steps_not_checkable() {
        let a = Argument::builder("informal")
            .add("g1", NodeKind::Goal, "Safe")
            .add("e1", NodeKind::Solution, "Tests")
            .supported_by("g1", "e1")
            .build()
            .unwrap();
        assert_eq!(step_is_deductive(&a, &"g1".into()), None);
        assert!(non_deductive_steps(&a).is_empty());
        assert!(probe_argument(&a).is_none());
    }

    #[test]
    fn probe_argument_finds_idle_premise() {
        // Root q; leaves: p, p -> q, and an irrelevant premise r.
        let a = Argument::builder("probe")
            .node(Node::new("g1", NodeKind::Goal, "q").with_formal(payload("q")))
            .node(Node::new("g2", NodeKind::Goal, "p").with_formal(payload("p")))
            .node(Node::new("g3", NodeKind::Goal, "rule").with_formal(payload("p -> q")))
            .node(Node::new("g4", NodeKind::Goal, "red herring").with_formal(payload("r")))
            .add("e1", NodeKind::Solution, "a")
            .add("e2", NodeKind::Solution, "b")
            .add("e3", NodeKind::Solution, "c")
            .supported_by("g1", "g2")
            .supported_by("g1", "g3")
            .supported_by("g1", "g4")
            .supported_by("g2", "e1")
            .supported_by("g3", "e2")
            .supported_by("g4", "e3")
            .build()
            .unwrap();
        let report = probe_argument(&a).unwrap();
        assert!(report.entailed);
        // Premises are ordered by node id: g2 (p), g3 (p->q), g4 (r).
        assert_eq!(report.idle_indices(), vec![2]);
        assert_eq!(report.critical_indices(), vec![0, 1]);
    }

    #[test]
    fn formal_premise_with_formalised_ancestor_not_a_leaf() {
        let a = deductive_case();
        // g1 has formalised support (g2, g3 via s1), so its payload is a
        // conclusion, not a premise.
        let premises = formal_premises(&a);
        assert!(!premises.contains(&parse("q").unwrap()));
    }

    #[test]
    fn temporal_payloads_are_skipped_by_propositional_checks() {
        use casekit_logic::ltl::parse_ltl;
        let a = Argument::builder("ltl")
            .node(
                Node::new("g1", NodeKind::Goal, "always ok")
                    .with_formal(FormalPayload::Temporal(parse_ltl("G ok").unwrap())),
            )
            .add("e1", NodeKind::Solution, "model check log")
            .supported_by("g1", "e1")
            .build()
            .unwrap();
        assert_eq!(step_is_deductive(&a, &"g1".into()), None);
        assert!(formal_premises(&a).is_empty());
        assert!(formal_conclusion(&a).is_none());
    }
}
