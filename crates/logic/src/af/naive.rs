//! The seed's exponential extension enumerator, preserved as the
//! differential-testing oracle and the measured baseline for the SAT
//! path ([`super::encode`]).
//!
//! Every function here walks all `2^n` argument subsets, so everything
//! is capped at [`ENUMERATION_LIMIT`] arguments and returns
//! [`LogicError::TooManyAtoms`] beyond it. The public
//! [`Framework`] API has no such ceiling — it routes
//! through the solver — but on tiny frameworks the enumerator is an
//! independent implementation of the same semantics, which is exactly
//! what the cross-checking proptests and `repro af` need.

use super::{ArgId, Framework};
use crate::error::LogicError;
use std::collections::BTreeSet;

/// Largest argument count the subset enumerator accepts.
pub const ENUMERATION_LIMIT: usize = 16;

/// `Ok(n)` when the framework is small enough to enumerate.
fn enumerable(af: &Framework) -> Result<usize, LogicError> {
    let n = af.len();
    if n <= ENUMERATION_LIMIT {
        Ok(n)
    } else {
        Err(LogicError::TooManyAtoms {
            atoms: n,
            limit: ENUMERATION_LIMIT,
        })
    }
}

/// All subsets of `0..n` satisfying `keep`, in mask order.
fn enumerate_subsets(
    n: usize,
    mut keep: impl FnMut(&BTreeSet<ArgId>) -> bool,
) -> Vec<BTreeSet<ArgId>> {
    let mut out = Vec::new();
    for mask in 0..(1u32 << n) {
        let set: BTreeSet<ArgId> = (0..n).filter(|i| mask >> i & 1 == 1).collect();
        if keep(&set) {
            out.push(set);
        }
    }
    out
}

/// All complete extensions (conflict-free fixpoints of the
/// characteristic function), by subset enumeration.
pub fn complete_extensions(af: &Framework) -> Result<Vec<BTreeSet<ArgId>>, LogicError> {
    let n = enumerable(af)?;
    Ok(enumerate_subsets(n, |set| {
        if !af.conflict_free(set) {
            return false;
        }
        // Complete: contains exactly the arguments it defends.
        let defended: BTreeSet<ArgId> = (0..n).filter(|&id| af.defends(set, id)).collect();
        defended == *set
    }))
}

/// The preferred extensions: maximal (by inclusion) complete extensions.
pub fn preferred_extensions(af: &Framework) -> Result<Vec<BTreeSet<ArgId>>, LogicError> {
    Ok(preferred_from(&complete_extensions(af)?))
}

/// The ⊆-maximal members of a precomputed complete-extension set — the
/// maximality filter shared by [`preferred_extensions`] and callers
/// that already paid for the complete enumeration (the benchmark
/// baseline).
pub fn preferred_from(complete: &[BTreeSet<ArgId>]) -> Vec<BTreeSet<ArgId>> {
    complete
        .iter()
        .filter(|s| {
            !complete
                .iter()
                .any(|other| *s != other && s.is_subset(other))
        })
        .cloned()
        .collect()
}

/// The stable extensions: conflict-free sets attacking every argument
/// outside them, by subset enumeration.
pub fn stable_extensions(af: &Framework) -> Result<Vec<BTreeSet<ArgId>>, LogicError> {
    let n = enumerable(af)?;
    Ok(enumerate_subsets(n, |set| {
        af.conflict_free(set)
            && (0..n)
                .filter(|id| !set.contains(id))
                .all(|id| af.attackers(id).iter().any(|a| set.contains(a)))
    }))
}

/// Whether `id` belongs to some complete extension — credulous
/// acceptance by enumeration.
pub fn credulously_accepted(af: &Framework, id: ArgId) -> Result<bool, LogicError> {
    Ok(complete_extensions(af)?.iter().any(|e| e.contains(&id)))
}

/// The seed's grounded fixpoint: re-runs [`Framework::defends`] (a full
/// attack-relation scan per attacker) over every argument in every
/// pass — `O(n · |attacks| · passes)`. Kept as the measured baseline
/// for the CSR worklist in [`Adjacency::grounded`](super::Adjacency);
/// unlike the extension enumerators it is merely slow, not exponential,
/// so it takes no size cap.
pub fn grounded_extension(af: &Framework) -> BTreeSet<ArgId> {
    let mut current: BTreeSet<ArgId> = BTreeSet::new();
    loop {
        let next: BTreeSet<ArgId> = (0..af.len())
            .filter(|&id| af.defends(&current, id))
            .collect();
        if next == current {
            return current;
        }
        current = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[ArgId]) -> BTreeSet<ArgId> {
        ids.iter().copied().collect()
    }

    fn classic() -> Framework {
        // a <-> b, both attack c.
        let mut af = Framework::new();
        let a = af.add_argument("a");
        let b = af.add_argument("b");
        let c = af.add_argument("c");
        af.add_attack(a, b).unwrap();
        af.add_attack(b, a).unwrap();
        af.add_attack(a, c).unwrap();
        af.add_attack(b, c).unwrap();
        af
    }

    #[test]
    fn classic_example_extensions() {
        let af = classic();
        let complete = complete_extensions(&af).unwrap();
        assert_eq!(complete.len(), 3);
        assert!(complete.contains(&BTreeSet::new()));
        let preferred = preferred_extensions(&af).unwrap();
        assert_eq!(preferred, vec![set(&[0]), set(&[1])]);
        let stable = stable_extensions(&af).unwrap();
        assert_eq!(stable, preferred);
        assert!(credulously_accepted(&af, 0).unwrap());
        assert!(!credulously_accepted(&af, 2).unwrap());
        assert_eq!(grounded_extension(&af), BTreeSet::new());
    }

    #[test]
    fn cap_is_a_typed_error() {
        let mut af = Framework::new();
        for i in 0..=ENUMERATION_LIMIT {
            af.add_argument(format!("a{i}"));
        }
        assert!(matches!(
            complete_extensions(&af),
            Err(LogicError::TooManyAtoms {
                atoms: 17,
                limit: 16
            })
        ));
        assert!(preferred_extensions(&af).is_err());
        assert!(stable_extensions(&af).is_err());
        assert!(credulously_accepted(&af, 0).is_err());
        // The grounded fixpoint has no cap — it is quadratic, not
        // exponential.
        assert_eq!(grounded_extension(&af).len(), 17);
    }

    #[test]
    fn odd_cycle_has_no_stable_extension() {
        let mut af = Framework::new();
        for i in 0..3 {
            af.add_argument(format!("a{i}"));
        }
        for i in 0..3 {
            af.add_attack(i, (i + 1) % 3).unwrap();
        }
        assert!(stable_extensions(&af).unwrap().is_empty());
        assert_eq!(preferred_extensions(&af).unwrap(), vec![BTreeSet::new()]);
    }
}
