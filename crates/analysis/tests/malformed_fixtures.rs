//! The malformed fixture corpus under `examples/cases/malformed/`:
//! one file per defect class the recovering frontend handles, each
//! pinned to its exact diagnostic codes, spans, and line:col
//! positions. CI runs `caselint` over the same directory and asserts
//! it fails with these codes; this test keeps the fixtures and the
//! engine honest at byte granularity.

use casekit_analysis::{check_source, excerpt, Diagnostic, LintCode, LintConfig, Severity};
use casekit_logic::LineIndex;
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/cases/malformed")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

fn analyze(name: &str) -> (String, Vec<Diagnostic>) {
    let src = fixture(name);
    let diagnostics = check_source(&src, &LintConfig::new()).diagnostics;
    (src, diagnostics)
}

/// `(line, col)` of a diagnostic's span start, 1-based.
fn line_col(src: &str, diagnostic: &Diagnostic) -> (usize, usize) {
    let span = diagnostic
        .span
        .expect("every fixture diagnostic has a span");
    LineIndex::new(src).line_col(span.start)
}

/// The source text a diagnostic's span covers.
fn covered<'s>(src: &'s str, diagnostic: &Diagnostic) -> &'s str {
    let span = diagnostic.span.unwrap();
    &src[span.start..span.end]
}

#[test]
fn bad_keyword_fixture() {
    let (src, diagnostics) = analyze("bad_keyword.case");
    assert_eq!(diagnostics.len(), 1, "got: {diagnostics:?}");
    let d = &diagnostics[0];
    assert_eq!(d.code, LintCode::UnknownKeyword);
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(line_col(&src, d), (4, 3));
    assert_eq!(covered(&src, d), "gaol");
    assert_eq!(d.hint.as_deref(), Some("did you mean `goal`?"));
}

#[test]
fn truncated_block_fixture() {
    let (src, diagnostics) = analyze("truncated_block.case");
    assert_eq!(diagnostics.len(), 1, "got: {diagnostics:?}");
    let d = &diagnostics[0];
    assert_eq!(d.code, LintCode::SyntaxGeneral);
    assert_eq!(d.message, "expected `}`, found end of input");
    assert_eq!(line_col(&src, d), (6, 1));
    assert_eq!(d.span.unwrap().start, src.len());
}

#[test]
fn broken_payload_fixture() {
    let (src, diagnostics) = analyze("broken_payload.case");
    assert_eq!(diagnostics.len(), 1, "got: {diagnostics:?}");
    let d = &diagnostics[0];
    assert_eq!(d.code, LintCode::MalformedPayload);
    assert_eq!(
        d.message,
        "in formal payload of `g1`: unexpected end of input"
    );
    assert_eq!(d.primary.as_ref().unwrap().as_str(), "g1");
    // Anchored inside the quoted formula, at the point the parser gave
    // up — just past `safe &`.
    assert_eq!(line_col(&src, d), (5, 44));
}

#[test]
fn unterminated_string_fixture() {
    let (src, diagnostics) = analyze("unterminated_string.case");
    assert_eq!(diagnostics.len(), 2, "got: {diagnostics:?}");
    // Canonical order puts CK201 (the swallowed `}`) first.
    assert_eq!(diagnostics[0].code, LintCode::SyntaxGeneral);
    assert_eq!(diagnostics[0].message, "expected `}`, found end of input");
    let d = &diagnostics[1];
    assert_eq!(d.code, LintCode::UnterminatedString);
    assert_eq!(line_col(&src, d), (5, 17));
    // The literal runs from its opening quote to end of input.
    assert_eq!(d.span.unwrap().end, src.len());
    assert!(covered(&src, d).starts_with("\"the evidence log"));
}

#[test]
fn stray_character_fixture() {
    let (src, diagnostics) = analyze("stray_character.case");
    assert_eq!(diagnostics.len(), 1, "got: {diagnostics:?}");
    let d = &diagnostics[0];
    assert_eq!(d.code, LintCode::SyntaxGeneral);
    assert_eq!(d.message, "unexpected character `$`");
    assert_eq!(line_col(&src, d), (7, 3));
    assert_eq!(covered(&src, d), "$");
}

#[test]
fn invalid_structure_fixture() {
    let (src, diagnostics) = analyze("invalid_structure.case");
    assert_eq!(diagnostics.len(), 2, "got: {diagnostics:?}");
    let dangling = &diagnostics[0];
    assert_eq!(dangling.code, LintCode::InvalidStructure);
    assert_eq!(dangling.message, "unknown node `g9`");
    assert_eq!(line_col(&src, dangling), (7, 9));
    assert_eq!(covered(&src, dangling), "g9");
    let duplicate = &diagnostics[1];
    assert_eq!(duplicate.code, LintCode::InvalidStructure);
    assert_eq!(duplicate.message, "duplicate node id `g1`");
    assert_eq!(duplicate.primary.as_ref().unwrap().as_str(), "g1");
    assert_eq!(line_col(&src, duplicate), (9, 8));
    assert_eq!(covered(&src, duplicate), "g1");
}

#[test]
fn every_fixture_recovers_and_renders_an_excerpt() {
    for name in [
        "bad_keyword.case",
        "truncated_block.case",
        "broken_payload.case",
        "unterminated_string.case",
        "stray_character.case",
        "invalid_structure.case",
    ] {
        let src = fixture(name);
        let analysis = check_source(&src, &LintConfig::new());
        // Every fixture keeps enough of the file to build an argument…
        assert!(analysis.argument.is_some(), "{name} built no argument");
        // …and every diagnostic is span-carrying, error-severity, and
        // excerptable.
        assert!(!analysis.diagnostics.is_empty(), "{name} was clean");
        let index = LineIndex::new(&src);
        for d in &analysis.diagnostics {
            assert_eq!(d.severity, Severity::Error, "{name}: {d}");
            let span = d.span.expect("span present");
            let rendered = excerpt(&src, &index, span).expect("excerpt renders");
            assert!(rendered.contains('^'), "{name}: {rendered}");
        }
    }
}
