//! Recursive-descent parser for propositional formulas.
//!
//! Grammar (lowest precedence first):
//!
//! ```text
//! iff     ::= implies ( "<->" implies )*
//! implies ::= or ( "->" implies )?          (right associative)
//! or      ::= and ( "|" and )*
//! and     ::= unary ( "&" unary )*
//! unary   ::= "~" unary | "(" iff ")" | "T" | "F" | ident
//! ident   ::= [A-Za-z_][A-Za-z0-9_']*
//! ```
//!
//! Unicode aliases are accepted: `¬` for `~`, `∧` for `&`, `∨` for `|`,
//! `⇒`/`→` for `->`, `⇔`/`↔` for `<->`.

use super::ast::Formula;
use crate::error::{ParseError, Span, SyntaxError, SyntaxErrorKind};

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Not,
    And,
    Or,
    Implies,
    Iff,
    LParen,
    RParen,
    True,
    False,
    Ident(String),
}

#[derive(Debug, Clone)]
struct Lexed {
    tok: Tok,
    span: Span,
}

fn lex(input: &str) -> Result<Vec<Lexed>, ParseError> {
    let mut out = Vec::new();
    let mut chars = input.char_indices().peekable();
    while let Some(&(i, c)) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            '~' | '¬' | '!' => {
                chars.next();
                out.push(Lexed {
                    tok: Tok::Not,
                    span: Span::new(i, i + c.len_utf8()),
                });
            }
            '&' | '∧' => {
                chars.next();
                // Tolerate `&&`.
                if c == '&' {
                    if let Some(&(_, '&')) = chars.peek() {
                        chars.next();
                    }
                }
                out.push(Lexed {
                    tok: Tok::And,
                    span: Span::new(i, i + c.len_utf8()),
                });
            }
            '|' | '∨' => {
                chars.next();
                if c == '|' {
                    if let Some(&(_, '|')) = chars.peek() {
                        chars.next();
                    }
                }
                out.push(Lexed {
                    tok: Tok::Or,
                    span: Span::new(i, i + c.len_utf8()),
                });
            }
            '⇒' | '→' => {
                chars.next();
                out.push(Lexed {
                    tok: Tok::Implies,
                    span: Span::new(i, i + c.len_utf8()),
                });
            }
            '⇔' | '↔' => {
                chars.next();
                out.push(Lexed {
                    tok: Tok::Iff,
                    span: Span::new(i, i + c.len_utf8()),
                });
            }
            '(' => {
                chars.next();
                out.push(Lexed {
                    tok: Tok::LParen,
                    span: Span::new(i, i + 1),
                });
            }
            ')' => {
                chars.next();
                out.push(Lexed {
                    tok: Tok::RParen,
                    span: Span::new(i, i + 1),
                });
            }
            '-' => {
                chars.next();
                match chars.peek() {
                    Some(&(_, '>')) => {
                        chars.next();
                        out.push(Lexed {
                            tok: Tok::Implies,
                            span: Span::new(i, i + 2),
                        });
                    }
                    _ => {
                        return Err(SyntaxError::with_kind(
                            SyntaxErrorKind::UnexpectedChar,
                            "expected `>` after `-` (implication is `->`)",
                            Span::new(i, i + 1),
                        )
                        .with_hint("write implication as `->`"))
                    }
                }
            }
            '<' => {
                chars.next();
                let ok = matches!(chars.peek(), Some(&(_, '-')));
                if ok {
                    chars.next();
                    if let Some(&(_, '>')) = chars.peek() {
                        chars.next();
                        out.push(Lexed {
                            tok: Tok::Iff,
                            span: Span::new(i, i + 3),
                        });
                        continue;
                    }
                }
                return Err(SyntaxError::with_kind(
                    SyntaxErrorKind::UnexpectedChar,
                    "expected `<->` (biconditional)",
                    Span::new(i, i + 1),
                )
                .with_hint("write the biconditional as `<->`"));
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                let mut end = i;
                while let Some(&(j, d)) = chars.peek() {
                    if d.is_alphanumeric() || d == '_' || d == '\'' {
                        end = j + d.len_utf8();
                        chars.next();
                    } else {
                        break;
                    }
                }
                let word = &input[start..end];
                let tok = match word {
                    "T" | "true" => Tok::True,
                    "F" | "false" => Tok::False,
                    _ => Tok::Ident(word.to_string()),
                };
                out.push(Lexed {
                    tok,
                    span: Span::new(start, end),
                });
            }
            other => {
                return Err(SyntaxError::with_kind(
                    SyntaxErrorKind::UnexpectedChar,
                    format!("unexpected character `{other}`"),
                    Span::new(i, i + other.len_utf8()),
                ))
            }
        }
    }
    Ok(out)
}

/// How a token reads in an "expected X, found Y" message.
fn describe(tok: &Tok) -> String {
    match tok {
        Tok::Not => "`~`".into(),
        Tok::And => "`&`".into(),
        Tok::Or => "`|`".into(),
        Tok::Implies => "`->`".into(),
        Tok::Iff => "`<->`".into(),
        Tok::LParen => "`(`".into(),
        Tok::RParen => "`)`".into(),
        Tok::True => "`T`".into(),
        Tok::False => "`F`".into(),
        Tok::Ident(name) => format!("`{name}`"),
    }
}

struct Parser {
    toks: Vec<Lexed>,
    pos: usize,
    input_len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Lexed> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Lexed> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn here(&self) -> Span {
        self.peek()
            .map(|l| l.span)
            .unwrap_or_else(|| Span::point(self.input_len))
    }

    fn parse_iff(&mut self) -> Result<Formula, ParseError> {
        let mut lhs = self.parse_implies()?;
        while matches!(self.peek().map(|l| &l.tok), Some(Tok::Iff)) {
            self.next();
            let rhs = self.parse_implies()?;
            lhs = lhs.iff(rhs);
        }
        Ok(lhs)
    }

    fn parse_implies(&mut self) -> Result<Formula, ParseError> {
        let lhs = self.parse_or()?;
        if matches!(self.peek().map(|l| &l.tok), Some(Tok::Implies)) {
            self.next();
            let rhs = self.parse_implies()?;
            return Ok(lhs.implies(rhs));
        }
        Ok(lhs)
    }

    fn parse_or(&mut self) -> Result<Formula, ParseError> {
        let mut lhs = self.parse_and()?;
        while matches!(self.peek().map(|l| &l.tok), Some(Tok::Or)) {
            self.next();
            let rhs = self.parse_and()?;
            lhs = lhs.or(rhs);
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Formula, ParseError> {
        let mut lhs = self.parse_unary()?;
        while matches!(self.peek().map(|l| &l.tok), Some(Tok::And)) {
            self.next();
            let rhs = self.parse_unary()?;
            lhs = lhs.and(rhs);
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Formula, ParseError> {
        let span = self.here();
        match self.next().map(|l| l.tok) {
            Some(Tok::Not) => Ok(self.parse_unary()?.not()),
            Some(Tok::LParen) => {
                let inner = self.parse_iff()?;
                let found = self.peek().map(|l| describe(&l.tok));
                match self.next().map(|l| l.tok) {
                    Some(Tok::RParen) => Ok(inner),
                    _ => Err(SyntaxError::expected_found("`)`", found, self.here())
                        .with_hint("close the parenthesized group")),
                }
            }
            Some(Tok::True) => Ok(Formula::True),
            Some(Tok::False) => Ok(Formula::False),
            Some(Tok::Ident(name)) => Ok(Formula::atom(name)),
            Some(tok) => Err(SyntaxError::expected_found(
                "a formula",
                Some(describe(&tok)),
                span,
            )),
            None => Err(SyntaxError::with_kind(
                SyntaxErrorKind::UnexpectedEof,
                "unexpected end of input",
                span,
            )),
        }
    }
}

/// Parses a propositional formula from text.
///
/// # Errors
///
/// Returns a [`ParseError`] with a byte-span locating the first offending
/// token if the input is not a well-formed formula.
///
/// # Examples
///
/// ```
/// use casekit_logic::prop::parse;
/// let f = parse("(p -> q) & p -> q").unwrap();
/// assert!(f.is_tautology());
/// ```
pub fn parse(input: &str) -> Result<Formula, ParseError> {
    let toks = lex(input)?;
    let mut p = Parser {
        toks,
        pos: 0,
        input_len: input.len(),
    };
    let f = p.parse_iff()?;
    if let Some(extra) = p.peek() {
        return Err(SyntaxError::with_kind(
            SyntaxErrorKind::TrailingInput,
            "unexpected trailing input",
            extra.span,
        ));
    }
    Ok(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_atoms_and_constants() {
        assert_eq!(parse("p").unwrap(), Formula::atom("p"));
        assert_eq!(parse("T").unwrap(), Formula::True);
        assert_eq!(parse("false").unwrap(), Formula::False);
        assert_eq!(parse("on_grnd").unwrap(), Formula::atom("on_grnd"));
    }

    #[test]
    fn precedence_not_and_or_implies_iff() {
        let f = parse("~p & q | r -> s <-> t").unwrap();
        // ((((~p & q) | r) -> s) <-> t)
        let expected = Formula::atom("p")
            .not()
            .and(Formula::atom("q"))
            .or(Formula::atom("r"))
            .implies(Formula::atom("s"))
            .iff(Formula::atom("t"));
        assert_eq!(f, expected);
    }

    #[test]
    fn implication_is_right_associative() {
        assert_eq!(
            parse("a -> b -> c").unwrap(),
            parse("a -> (b -> c)").unwrap()
        );
        assert_ne!(
            parse("a -> b -> c").unwrap(),
            parse("(a -> b) -> c").unwrap()
        );
    }

    #[test]
    fn and_or_are_left_associative() {
        assert_eq!(parse("a & b & c").unwrap(), parse("(a & b) & c").unwrap());
        assert_eq!(parse("a | b | c").unwrap(), parse("(a | b) | c").unwrap());
    }

    #[test]
    fn unicode_aliases() {
        assert_eq!(parse("¬p ∧ q").unwrap(), parse("~p & q").unwrap());
        assert_eq!(parse("p ⇒ q").unwrap(), parse("p -> q").unwrap());
        assert_eq!(parse("p ⇔ q").unwrap(), parse("p <-> q").unwrap());
        assert_eq!(parse("p → q").unwrap(), parse("p -> q").unwrap());
    }

    #[test]
    fn doubled_ascii_operators_tolerated() {
        assert_eq!(parse("p && q").unwrap(), parse("p & q").unwrap());
        assert_eq!(parse("p || q").unwrap(), parse("p | q").unwrap());
    }

    #[test]
    fn paper_example_thrust_reverser() {
        // Graydon §II-B2: `¬on_grnd ⇒ ¬threv_en`.
        let f = parse("¬on_grnd ⇒ ¬threv_en").unwrap();
        assert_eq!(f.to_string(), "~on_grnd -> ~threv_en");
    }

    #[test]
    fn errors_carry_spans() {
        let e = parse("p -").unwrap_err();
        assert!(e.span.start >= 2);
        let e = parse("p @ q").unwrap_err();
        assert_eq!(e.span.start, 2);
        let e = parse("(p").unwrap_err();
        assert!(e.message.contains(")"));
        let e = parse("p q").unwrap_err();
        assert!(e.message.contains("trailing"));
        let e = parse("").unwrap_err();
        assert!(e.message.contains("end of input"));
        let e = parse("p <- q").unwrap_err();
        assert!(e.message.contains("<->"));
    }

    #[test]
    fn display_parse_round_trip() {
        for src in [
            "p",
            "~p",
            "p & q",
            "p | q & r",
            "(p | q) & r",
            "p -> q -> r",
            "(p -> q) -> r",
            "~(p <-> q)",
            "T & ~F",
            "a' & b'",
        ] {
            let f = parse(src).unwrap();
            let round = parse(&f.to_string()).unwrap();
            assert_eq!(f, round, "round-trip failed for {src}");
        }
    }
}
