//! End-to-end integration: DSL → well-formedness → formalisation →
//! mechanical checking → annotation → querying → views → rendering.

use casekit::core::{dsl, gsn, hicase, render, NodeId};
use casekit::fallacies::checker::check_argument;
use casekit::query::{parse_query, traceability_view, AnnotationStore, FieldType, Ontology};

const CASE: &str = r#"
argument "braking system" {
  goal g1 "The braking system is acceptably safe"
    formal "h_fade & h_lock & h_latent" {
    context c1 "Heavy goods vehicle, EU operations"
    assumption a1 "Maintenance schedule is followed"
    strategy s1 "Argue over identified hazards" {
      justification j1 "Hazard identification per ISO 26262"
      goal g2 "Brake fade hazard mitigated" formal "h_fade" {
        solution e1 "Dynamometer test series"
      }
      goal g3 "Wheel lock hazard mitigated" formal "h_lock" {
        solution e2 "ABS verification report"
      }
      goal g4 "Latent failures are detected" formal "h_latent" {
        solution e3 "Built-in test coverage analysis"
      }
    }
  }
}
"#;

fn setup_store(arg: &casekit::core::Argument) -> AnnotationStore {
    let mut ontology = Ontology::new();
    ontology.declare_enum("severity", ["catastrophic", "major", "minor"]);
    ontology.declare_enum("likelihood", ["frequent", "probable", "remote"]);
    ontology.declare_attribute(
        "hazard",
        [
            ("severity", FieldType::Enum("severity".into())),
            ("likelihood", FieldType::Enum("likelihood".into())),
        ],
    );
    let mut store = AnnotationStore::new(ontology);
    store
        .annotate(
            arg,
            "g2",
            "hazard",
            [("severity", "major"), ("likelihood", "probable")],
        )
        .unwrap();
    store
        .annotate(
            arg,
            "g3",
            "hazard",
            [("severity", "catastrophic"), ("likelihood", "remote")],
        )
        .unwrap();
    store
        .annotate(
            arg,
            "g4",
            "hazard",
            [("severity", "catastrophic"), ("likelihood", "remote")],
        )
        .unwrap();
    store
}

#[test]
fn full_pipeline_clean_argument() {
    let arg = dsl::parse_argument(CASE).unwrap();
    assert_eq!(arg.len(), 11);
    assert!(gsn::check(&arg).is_empty());
    // Denney–Pai's stricter formalisation agrees here (no goal→goal).
    assert!(gsn::check_denney_pai(&arg).is_empty());

    // The formal skeleton is deductively sound: h_fade & h_lock & h_latent
    // follows from the three leaf payloads.
    let report = check_argument(&arg);
    assert!(report.is_clean(), "{:?}", report.findings);
    assert!(report.checkable);
    assert_eq!(report.formal_nodes, 4);

    // The paper's query finds the two catastrophic/remote hazards.
    let store = setup_store(&arg);
    let q = parse_query(
        "select goals where hazard.severity = catastrophic and hazard.likelihood = remote",
    )
    .unwrap();
    let hits = q.run(&arg, &store);
    assert_eq!(hits, vec![NodeId::new("g3"), NodeId::new("g4")]);

    // The traceability view keeps matches, ancestors, and their evidence.
    let view = traceability_view(&arg, &hits).unwrap();
    assert!(view.node(&"g1".into()).is_some());
    assert!(view.node(&"e2".into()).is_some());
    assert!(view.node(&"e1".into()).is_none());

    // Views render in every notation.
    assert!(render::ascii_tree(&view).contains("g3"));
    assert!(render::dot(&view).contains("digraph"));
    assert!(render::prose(&view).contains("We claim"));
}

#[test]
fn formalisation_error_is_caught_end_to_end() {
    // Break the deduction: the root now claims a hazard nobody supports.
    let broken = CASE.replace(
        "formal \"h_fade & h_lock & h_latent\"",
        "formal \"h_fade & h_lock & h_latent & h_unsupported\"",
    );
    let arg = dsl::parse_argument(&broken).unwrap();
    assert!(gsn::check(&arg).is_empty(), "syntax is still fine");
    let report = check_argument(&arg);
    assert!(
        !report.is_clean(),
        "mechanical check must notice the unsupported conjunct"
    );
}

#[test]
fn hicase_views_compose_with_queries() {
    let arg = dsl::parse_argument(CASE).unwrap();
    let mut view = hicase::View::new(&arg);
    view.collapse(&NodeId::new("s1"));
    assert_eq!(view.visible().len(), 4); // g1, c1, a1, s1 — nothing below s1
    let rendered = view.render();
    assert!(rendered.contains("hidden"));
    view.expand_all();
    assert_eq!(view.visible().len(), arg.len());
}

#[test]
fn dsl_round_trip_preserves_machine_verdict() {
    let arg = dsl::parse_argument(CASE).unwrap();
    let rendered = dsl::render_dsl(&arg);
    let reparsed = dsl::parse_argument(&rendered).unwrap();
    let a = check_argument(&arg);
    let b = check_argument(&reparsed);
    assert_eq!(a.is_clean(), b.is_clean());
    assert_eq!(a.formal_nodes, b.formal_nodes);
}

#[test]
fn gsn_standard_vs_denney_pai_disagreement_is_observable() {
    // Goal directly supporting a goal: fine by the standard, rejected by
    // the published formalisation — the paper's §III-I observation.
    let arg = dsl::parse_argument(
        r#"argument "g2g" {
            goal g1 "top" {
              goal g2 "sub" { solution e1 "ev" }
            }
        }"#,
    )
    .unwrap();
    assert!(gsn::check(&arg).is_empty());
    let issues = gsn::check_denney_pai(&arg);
    assert_eq!(issues.len(), 1);
    assert_eq!(issues[0].rule, gsn::Rule::DenneyPaiNoGoalToGoal);
}
