//! # casekit
//!
//! An assurance-case toolkit reproducing Graydon, *Formal Assurance
//! Arguments: A Solution In Search of a Problem?* (DSN 2015).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`core`] — argument model and notations (GSN, CAE, Toulmin).
//! * [`logic`] — deductive substrates (propositional, natural deduction,
//!   Horn clauses, LTL, event calculus, sorts).
//! * [`fallacies`] — formal/informal fallacy taxonomy and detectors.
//! * [`analysis`] — CaseLint: multi-pass static analyzer over built
//!   arguments with a unified diagnostic substrate.
//! * [`patterns`] — formalised GSN patterns with typed parameters.
//! * [`query`] — metadata annotation and structured querying.
//! * [`survey`] — the paper's systematic literature survey pipeline.
//! * [`experiments`] — simulated studies from the paper's section VI.
//! * [`service`] — long-lived incremental case sessions with dirty-step
//!   re-verification and batched multi-question answering.

#![forbid(unsafe_code)]

pub use casekit_analysis as analysis;
pub use casekit_core as core;
pub use casekit_experiments as experiments;
pub use casekit_fallacies as fallacies;
pub use casekit_logic as logic;
pub use casekit_patterns as patterns;
pub use casekit_query as query;
pub use casekit_service as service;
pub use casekit_survey as survey;
