//! Per-paper characterisation (the survey questions of Graydon §III-A)
//! and the aggregate claims his §IV–§VI draw from it.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// What artefact/aspect a proposal formalises (survey question 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Aspect {
    /// The argument's syntax (structure rules).
    Syntax,
    /// The argument's content, in symbolic/deductive logic.
    Content,
    /// Argument generated from an existing formal proof.
    GeneratedFromProof,
    /// Metadata annotations on an informal argument.
    Annotations,
    /// Pattern structure.
    PatternStructure,
    /// Pattern parameters (typed placeholders).
    PatternParameters,
}

/// Relationship to the informal argument (survey question 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Relationship {
    /// The formalism replaces (part of) the informal argument.
    Replaces,
    /// The formalism augments an informal argument.
    Augments,
    /// The formal artefact is generated from another formal artefact.
    Generated,
    /// The papers do not make it clear.
    Unclear,
}

/// What evidence of benefit the paper offers (survey question 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Evidence {
    /// No evidence offered.
    None,
    /// An illustrative example only.
    Example,
    /// A cited case study without assessable detail.
    ThinCaseStudy,
    /// Substantial empirical evidence (no surveyed paper reaches this;
    /// the variant exists so the aggregate is computed, not hard-coded).
    Substantial,
}

/// One characterised paper.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Characterisation {
    /// Graydon's reference number.
    pub ref_num: u8,
    /// Short author tag for reports.
    pub authors: &'static str,
    /// Aspects formalised.
    pub aspects: &'static [Aspect],
    /// Relationship to the informal argument.
    pub relationship: Relationship,
    /// Claims (or implies) mechanical validation justifies more
    /// confidence (§IV: six papers).
    pub claims_mechanical_benefit: bool,
    /// Explicitly mentions mechanical verification of the formalised
    /// argument (§V-B: four papers).
    pub mentions_mechanical_verification: bool,
    /// Counted by Graydon §V-B among the papers proposing symbolic,
    /// deductive *content* (his list of eleven).
    pub symbolic_content: bool,
    /// Proposes writing the argument informally first, then formalising
    /// (§VI-B: three papers).
    pub informal_first: bool,
    /// Evidence offered for claimed benefits.
    pub evidence: Evidence,
    /// Mentions any drawback of formalisation.
    pub notes_drawbacks: bool,
    /// Candidly frames benefit as a hypothesis needing experiments
    /// (§VII: only Rushby).
    pub acknowledges_hypothesis: bool,
}

/// The characterisation table: the twenty selected papers plus Sokolsky
/// et al. \[39\], which Graydon characterises alongside them.
pub fn characterisations() -> Vec<Characterisation> {
    use Aspect::*;
    use Relationship::*;
    let c = |ref_num,
             authors,
             aspects,
             relationship,
             claims_mechanical_benefit,
             mentions_mechanical_verification,
             symbolic_content,
             informal_first,
             evidence,
             notes_drawbacks,
             acknowledges_hypothesis| Characterisation {
        ref_num,
        authors,
        aspects,
        relationship,
        claims_mechanical_benefit,
        mentions_mechanical_verification,
        symbolic_content,
        informal_first,
        evidence,
        notes_drawbacks,
        acknowledges_hypothesis,
    };
    vec![
        c(
            6,
            "Basir, Denney & Fischer 2009",
            &[GeneratedFromProof] as &[Aspect],
            Generated,
            false,
            false,
            false,
            false,
            Evidence::Example,
            true,
            false,
        ),
        c(
            7,
            "Basir, Denney & Fischer 2010",
            &[GeneratedFromProof],
            Generated,
            false,
            false,
            false,
            false,
            Evidence::Example,
            false,
            false,
        ),
        c(
            8,
            "Bishop & Bloomfield 1995",
            &[Content],
            Replaces,
            false,
            false,
            true,
            false,
            Evidence::None,
            false,
            false,
        ),
        c(
            9,
            "Brunel & Cazin 2012",
            &[Content],
            Replaces,
            true,
            true,
            true,
            true,
            Evidence::Example,
            true,
            false,
        ),
        c(
            10,
            "Denney, Pai & Pohl 2012",
            &[GeneratedFromProof],
            Generated,
            false,
            false,
            false,
            false,
            Evidence::Example,
            false,
            false,
        ),
        c(
            11,
            "Denney & Pai 2013",
            &[Syntax, PatternStructure],
            Augments,
            true,
            false,
            false,
            false,
            Evidence::None,
            false,
            false,
        ),
        c(
            12,
            "Denney, Pai & Whiteside 2013",
            &[Syntax],
            Augments,
            false,
            false,
            false,
            false,
            Evidence::Example,
            false,
            false,
        ),
        c(
            13,
            "Denney, Naylor & Pai 2014",
            &[Annotations],
            Augments,
            false,
            false,
            false,
            false,
            Evidence::Example,
            true,
            false,
        ),
        c(
            14,
            "Forder 1992",
            &[Content],
            Unclear,
            false,
            false,
            true,
            false,
            Evidence::None,
            false,
            false,
        ),
        c(
            15,
            "Haley et al. 2006",
            &[Content],
            Replaces,
            false,
            false,
            true,
            false,
            Evidence::None,
            false,
            false,
        ),
        c(
            16,
            "Haley et al. 2008",
            &[Content],
            Replaces,
            true,
            false,
            true,
            false,
            Evidence::Example,
            true,
            false,
        ),
        c(
            17,
            "Matsuno & Taguchi 2011",
            &[Syntax, PatternStructure, PatternParameters],
            Augments,
            true,
            false,
            false,
            false,
            Evidence::None,
            false,
            false,
        ),
        c(
            18,
            "Matsuno 2014",
            &[Syntax, PatternStructure, PatternParameters],
            Augments,
            true,
            false,
            false,
            false,
            Evidence::None,
            false,
            false,
        ),
        c(
            19,
            "Rushby 2010",
            &[Content],
            Augments,
            false,
            true,
            true,
            true,
            Evidence::None,
            true,
            true,
        ),
        c(
            20,
            "Rushby 2013 (SAFECOMP)",
            &[Content],
            Augments,
            false,
            true,
            true,
            false,
            Evidence::None,
            true,
            true,
        ),
        c(
            21,
            "Rushby 2013 (AAA)",
            &[Content],
            Augments,
            false,
            false,
            false,
            false,
            Evidence::None,
            false,
            false,
        ),
        c(
            22,
            "Tun et al. 2012",
            &[Content],
            Replaces,
            false,
            true,
            true,
            true,
            Evidence::Example,
            false,
            false,
        ),
        c(
            23,
            "Tolchinsky et al. 2012",
            &[Content],
            Unclear,
            false,
            false,
            false,
            false,
            Evidence::Example,
            true,
            false,
        ),
        c(
            24,
            "Tun et al. 2010",
            &[Content],
            Replaces,
            false,
            false,
            true,
            false,
            Evidence::Example,
            false,
            false,
        ),
        c(
            25,
            "Yu et al. 2011",
            &[Content],
            Replaces,
            false,
            false,
            true,
            false,
            Evidence::ThinCaseStudy,
            false,
            false,
        ),
        c(
            39,
            "Sokolsky, Lee & Heimdahl 2011",
            &[Content],
            Unclear,
            true,
            false,
            true,
            false,
            Evidence::None,
            false,
            false,
        ),
    ]
}

/// The aggregate counts Graydon's text states, computed from the table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClaimAggregates {
    /// §IV: papers claiming/implying mechanical-validation benefit.
    pub mechanical_benefit: BTreeSet<u8>,
    /// §V-B: papers proposing symbolic/deductive *content*.
    pub symbolic_content: BTreeSet<u8>,
    /// §V-B: of those, papers explicitly mentioning mechanical
    /// verification.
    pub explicit_verification: BTreeSet<u8>,
    /// §V-A: papers formalising graphical-argument *syntax*.
    pub formal_syntax: BTreeSet<u8>,
    /// §VI-B: papers proposing informal-first-then-formalise.
    pub informal_first: BTreeSet<u8>,
    /// §VI-D: papers formalising pattern structure.
    pub pattern_structure: BTreeSet<u8>,
    /// §VI-D: papers formalising pattern parameters.
    pub pattern_parameters: BTreeSet<u8>,
    /// Papers supplying substantial evidence of benefit (the paper's
    /// finding: none).
    pub substantial_evidence: BTreeSet<u8>,
    /// Papers candidly framing benefit as a hypothesis (Rushby only).
    pub hypothesis_acknowledged: BTreeSet<u8>,
}

/// Computes the aggregates over [`characterisations`].
pub fn aggregates() -> ClaimAggregates {
    let table = characterisations();
    let refs = |pred: &dyn Fn(&Characterisation) -> bool| -> BTreeSet<u8> {
        table
            .iter()
            .filter(|c| pred(c))
            .map(|c| c.ref_num)
            .collect()
    };
    ClaimAggregates {
        mechanical_benefit: refs(&|c| c.claims_mechanical_benefit),
        symbolic_content: refs(&|c| c.symbolic_content),
        explicit_verification: refs(&|c| c.mentions_mechanical_verification),
        formal_syntax: refs(&|c| c.aspects.contains(&Aspect::Syntax)),
        informal_first: refs(&|c| c.informal_first),
        pattern_structure: refs(&|c| c.aspects.contains(&Aspect::PatternStructure)),
        pattern_parameters: refs(&|c| c.aspects.contains(&Aspect::PatternParameters)),
        substantial_evidence: refs(&|c| matches!(c.evidence, Evidence::Substantial)),
        hypothesis_acknowledged: refs(&|c| c.acknowledges_hypothesis),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(items: &[u8]) -> BTreeSet<u8> {
        items.iter().copied().collect()
    }

    #[test]
    fn twenty_one_characterised_papers() {
        let table = characterisations();
        assert_eq!(table.len(), 21);
        let refs: BTreeSet<u8> = table.iter().map(|c| c.ref_num).collect();
        assert_eq!(refs.len(), 21);
    }

    #[test]
    fn section_iv_six_papers_claim_mechanical_benefit() {
        // "[9], [11], [16]–[18], [39]".
        let agg = aggregates();
        assert_eq!(agg.mechanical_benefit, set(&[9, 11, 16, 17, 18, 39]));
        assert_eq!(agg.mechanical_benefit.len(), 6);
    }

    #[test]
    fn section_v_b_eleven_symbolic_content_proposals() {
        // "[8], [9], [14]–[16], [19], [20], [22], [24], [25], [39]".
        let agg = aggregates();
        assert_eq!(
            agg.symbolic_content,
            set(&[8, 9, 14, 15, 16, 19, 20, 22, 24, 25, 39])
        );
        assert_eq!(agg.symbolic_content.len(), 11);
    }

    #[test]
    fn section_v_b_four_explicit_verification() {
        // "[9], [19], [20], [22]".
        let agg = aggregates();
        assert_eq!(agg.explicit_verification, set(&[9, 19, 20, 22]));
    }

    #[test]
    fn section_v_a_four_formal_syntax_proposals() {
        // "[11], [12], [17], [18]".
        let agg = aggregates();
        assert_eq!(agg.formal_syntax, set(&[11, 12, 17, 18]));
    }

    #[test]
    fn section_vi_b_three_informal_first() {
        // "[9], [19], [22]".
        let agg = aggregates();
        assert_eq!(agg.informal_first, set(&[9, 19, 22]));
    }

    #[test]
    fn section_vi_d_pattern_counts() {
        // Structure: "[11], [17], [18]"; parameters: "[17], [18]".
        let agg = aggregates();
        assert_eq!(agg.pattern_structure, set(&[11, 17, 18]));
        assert_eq!(agg.pattern_parameters, set(&[17, 18]));
    }

    #[test]
    fn no_substantial_evidence_and_only_rushby_candid() {
        let agg = aggregates();
        assert!(agg.substantial_evidence.is_empty());
        assert_eq!(agg.hypothesis_acknowledged, set(&[19, 20]));
    }
}
