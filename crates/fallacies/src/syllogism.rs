//! Categorical syllogisms and the distribution rules.
//!
//! Two of Damer's eight formal fallacies — the *undistributed middle* and
//! *illicit distribution of an end term* — are properties of categorical
//! syllogisms, not propositional formulas. This module implements the
//! classical machinery: A/E/I/O propositions over terms, the distribution
//! table, and rule-based validity checking.
//!
//! | form | reading            | subject distributed | predicate distributed |
//! |------|--------------------|---------------------|-----------------------|
//! | A    | All S are P        | yes                 | no                    |
//! | E    | No S are P         | yes                 | yes                   |
//! | I    | Some S are P       | no                  | no                    |
//! | O    | Some S are not P   | no                  | yes                   |

use crate::taxonomy::FormalFallacy;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The four categorical proposition forms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Form {
    /// Universal affirmative: all S are P.
    A,
    /// Universal negative: no S are P.
    E,
    /// Particular affirmative: some S are P.
    I,
    /// Particular negative: some S are not P.
    O,
}

impl Form {
    /// Whether the form is negative (E or O).
    pub fn is_negative(self) -> bool {
        matches!(self, Form::E | Form::O)
    }

    /// Whether the form is particular (I or O).
    pub fn is_particular(self) -> bool {
        matches!(self, Form::I | Form::O)
    }

    /// Whether the subject term is distributed.
    pub fn distributes_subject(self) -> bool {
        matches!(self, Form::A | Form::E)
    }

    /// Whether the predicate term is distributed.
    pub fn distributes_predicate(self) -> bool {
        matches!(self, Form::E | Form::O)
    }
}

/// A categorical proposition over two terms.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Proposition {
    /// The proposition's form.
    pub form: Form,
    /// The subject term.
    pub subject: String,
    /// The predicate term.
    pub predicate: String,
}

impl Proposition {
    /// Creates a proposition.
    pub fn new(form: Form, subject: impl Into<String>, predicate: impl Into<String>) -> Self {
        Proposition {
            form,
            subject: subject.into(),
            predicate: predicate.into(),
        }
    }

    /// Whether `term` is distributed in this proposition.
    ///
    /// Returns `false` for terms not occurring at all.
    pub fn distributes(&self, term: &str) -> bool {
        (self.subject == term && self.form.distributes_subject())
            || (self.predicate == term && self.form.distributes_predicate())
    }

    /// Whether `term` occurs in this proposition.
    pub fn mentions(&self, term: &str) -> bool {
        self.subject == term || self.predicate == term
    }
}

impl fmt::Display for Proposition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.form {
            Form::A => write!(f, "All {} are {}", self.subject, self.predicate),
            Form::E => write!(f, "No {} are {}", self.subject, self.predicate),
            Form::I => write!(f, "Some {} are {}", self.subject, self.predicate),
            Form::O => write!(f, "Some {} are not {}", self.subject, self.predicate),
        }
    }
}

/// A categorical syllogism: two premises and a conclusion.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Syllogism {
    /// The premise containing the conclusion's predicate (major term).
    pub major_premise: Proposition,
    /// The premise containing the conclusion's subject (minor term).
    pub minor_premise: Proposition,
    /// The conclusion.
    pub conclusion: Proposition,
}

/// A violation of the syllogistic rules.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SyllogismIssue {
    /// The syllogism does not have exactly three terms arranged correctly.
    MalformedTerms(String),
    /// The middle term is distributed in neither premise.
    UndistributedMiddle(String),
    /// An end term distributed in the conclusion is undistributed in its
    /// premise. The flag is `true` for the major term.
    IllicitDistribution {
        /// The offending term.
        term: String,
        /// `true` = illicit major, `false` = illicit minor.
        major: bool,
    },
    /// Two negative premises.
    ExclusivePremises,
    /// A negative premise with an affirmative conclusion, or vice versa.
    NegativityMismatch,
    /// Two universal premises with a particular conclusion (existential
    /// import issue — flagged under the modern reading).
    ExistentialFallacy,
}

impl fmt::Display for SyllogismIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyllogismIssue::MalformedTerms(d) => write!(f, "malformed syllogism: {d}"),
            SyllogismIssue::UndistributedMiddle(t) => {
                write!(f, "middle term `{t}` is distributed in neither premise")
            }
            SyllogismIssue::IllicitDistribution { term, major } => write!(
                f,
                "illicit {}: `{term}` distributed in conclusion but not in its premise",
                if *major { "major" } else { "minor" }
            ),
            SyllogismIssue::ExclusivePremises => write!(f, "two negative premises"),
            SyllogismIssue::NegativityMismatch => {
                write!(
                    f,
                    "negative/affirmative mismatch between premises and conclusion"
                )
            }
            SyllogismIssue::ExistentialFallacy => {
                write!(f, "particular conclusion from two universal premises")
            }
        }
    }
}

impl SyllogismIssue {
    /// The corresponding taxonomy entry, where one exists.
    pub fn fallacy(&self) -> Option<FormalFallacy> {
        match self {
            SyllogismIssue::UndistributedMiddle(_) => Some(FormalFallacy::UndistributedMiddle),
            SyllogismIssue::IllicitDistribution { .. } => Some(FormalFallacy::IllicitDistribution),
            _ => None,
        }
    }
}

impl Syllogism {
    /// The middle term: the term shared by the premises and absent from
    /// the conclusion, if the syllogism is well-formed.
    pub fn middle_term(&self) -> Option<String> {
        let mut terms = Vec::new();
        for prop in [&self.major_premise, &self.minor_premise] {
            for term in [&prop.subject, &prop.predicate] {
                if !self.conclusion.mentions(term) {
                    terms.push(term.clone());
                }
            }
        }
        terms.dedup();
        if terms.len() == 2 && terms[0] == terms[1] {
            return Some(terms[0].clone());
        }
        if terms.len() == 1 {
            return Some(terms[0].clone());
        }
        // Both premise occurrences must be the same single term.
        let unique: std::collections::BTreeSet<_> = terms.iter().collect();
        if unique.len() == 1 {
            Some(terms[0].clone())
        } else {
            None
        }
    }

    /// Checks the classical rules; empty result = valid syllogism.
    pub fn check(&self) -> Vec<SyllogismIssue> {
        let mut issues = Vec::new();
        let major_term = self.conclusion.predicate.clone();
        let minor_term = self.conclusion.subject.clone();

        if !self.major_premise.mentions(&major_term) {
            issues.push(SyllogismIssue::MalformedTerms(format!(
                "major premise does not mention the conclusion's predicate `{major_term}`"
            )));
        }
        if !self.minor_premise.mentions(&minor_term) {
            issues.push(SyllogismIssue::MalformedTerms(format!(
                "minor premise does not mention the conclusion's subject `{minor_term}`"
            )));
        }
        let middle = match self.middle_term() {
            Some(m) => m,
            None => {
                issues.push(SyllogismIssue::MalformedTerms(
                    "no single middle term shared by both premises".into(),
                ));
                return issues;
            }
        };
        if !issues.is_empty() {
            return issues;
        }

        // Rule 1: middle distributed at least once.
        if !self.major_premise.distributes(&middle) && !self.minor_premise.distributes(&middle) {
            issues.push(SyllogismIssue::UndistributedMiddle(middle));
        }

        // Rule 2: end terms distributed in the conclusion must be
        // distributed in their premise.
        if self.conclusion.distributes(&major_term) && !self.major_premise.distributes(&major_term)
        {
            issues.push(SyllogismIssue::IllicitDistribution {
                term: major_term,
                major: true,
            });
        }
        if self.conclusion.distributes(&minor_term) && !self.minor_premise.distributes(&minor_term)
        {
            issues.push(SyllogismIssue::IllicitDistribution {
                term: minor_term,
                major: false,
            });
        }

        // Rule 3: no two negative premises.
        let negatives = usize::from(self.major_premise.form.is_negative())
            + usize::from(self.minor_premise.form.is_negative());
        if negatives == 2 {
            issues.push(SyllogismIssue::ExclusivePremises);
        }

        // Rule 4: conclusion negative iff exactly one premise negative.
        if negatives < 2 {
            let conclusion_negative = self.conclusion.form.is_negative();
            if conclusion_negative != (negatives == 1) {
                issues.push(SyllogismIssue::NegativityMismatch);
            }
        }

        // Rule 5 (modern reading): no particular conclusion from two
        // universal premises.
        if self.conclusion.form.is_particular()
            && !self.major_premise.form.is_particular()
            && !self.minor_premise.form.is_particular()
        {
            issues.push(SyllogismIssue::ExistentialFallacy);
        }

        issues
    }

    /// Whether the syllogism is valid under the modern rules.
    pub fn is_valid(&self) -> bool {
        self.check().is_empty()
    }
}

impl fmt::Display for Syllogism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}.", self.major_premise)?;
        writeln!(f, "{}.", self.minor_premise)?;
        write!(f, "Therefore, {}.", self.conclusion)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prop(form: Form, s: &str, p: &str) -> Proposition {
        Proposition::new(form, s, p)
    }

    /// Barbara: All M are P; All S are M; ∴ All S are P.
    fn barbara() -> Syllogism {
        Syllogism {
            major_premise: prop(Form::A, "men", "mortals"),
            minor_premise: prop(Form::A, "greeks", "men"),
            conclusion: prop(Form::A, "greeks", "mortals"),
        }
    }

    #[test]
    fn barbara_is_valid() {
        let s = barbara();
        assert!(s.is_valid(), "issues: {:?}", s.check());
        assert_eq!(s.middle_term(), Some("men".into()));
    }

    #[test]
    fn celarent_is_valid() {
        // No M are P; All S are M; ∴ No S are P.
        let s = Syllogism {
            major_premise: prop(Form::E, "reptiles", "warm_blooded"),
            minor_premise: prop(Form::A, "snakes", "reptiles"),
            conclusion: prop(Form::E, "snakes", "warm_blooded"),
        };
        assert!(s.is_valid(), "issues: {:?}", s.check());
    }

    #[test]
    fn undistributed_middle_detected() {
        // All P are M; All S are M; ∴ All S are P. (Classic.)
        let s = Syllogism {
            major_premise: prop(Form::A, "dogs", "animals"),
            minor_premise: prop(Form::A, "cats", "animals"),
            conclusion: prop(Form::A, "cats", "dogs"),
        };
        let issues = s.check();
        assert!(issues
            .iter()
            .any(|i| matches!(i, SyllogismIssue::UndistributedMiddle(t) if t == "animals")));
        assert_eq!(
            issues[0].fallacy(),
            Some(FormalFallacy::UndistributedMiddle)
        );
    }

    #[test]
    fn illicit_major_detected() {
        // All M are P; No S are M; ∴ No S are P.
        // P is distributed in the conclusion (E) but not in the A premise.
        let s = Syllogism {
            major_premise: prop(Form::A, "pilots", "trained"),
            minor_premise: prop(Form::E, "passengers", "pilots"),
            conclusion: prop(Form::E, "passengers", "trained"),
        };
        let issues = s.check();
        assert!(issues.iter().any(|i| matches!(
            i,
            SyllogismIssue::IllicitDistribution { term, major: true } if term == "trained"
        )));
    }

    #[test]
    fn illicit_minor_detected() {
        // All M are P; All M are S; ∴ All S are P.
        let s = Syllogism {
            major_premise: prop(Form::A, "tests", "passed"),
            minor_premise: prop(Form::A, "tests", "artifacts"),
            conclusion: prop(Form::A, "artifacts", "passed"),
        };
        let issues = s.check();
        assert!(issues
            .iter()
            .any(|i| matches!(i, SyllogismIssue::IllicitDistribution { major: false, .. })));
    }

    #[test]
    fn exclusive_premises_detected() {
        let s = Syllogism {
            major_premise: prop(Form::E, "m", "p"),
            minor_premise: prop(Form::E, "s", "m"),
            conclusion: prop(Form::E, "s", "p"),
        };
        assert!(s
            .check()
            .iter()
            .any(|i| matches!(i, SyllogismIssue::ExclusivePremises)));
    }

    #[test]
    fn negativity_mismatch_detected() {
        // Negative premise, affirmative conclusion.
        let s = Syllogism {
            major_premise: prop(Form::E, "m", "p"),
            minor_premise: prop(Form::A, "s", "m"),
            conclusion: prop(Form::A, "s", "p"),
        };
        assert!(s
            .check()
            .iter()
            .any(|i| matches!(i, SyllogismIssue::NegativityMismatch)));
    }

    #[test]
    fn existential_fallacy_detected() {
        // All M are P; All S are M; ∴ Some S are P (modern reading).
        let s = Syllogism {
            major_premise: prop(Form::A, "m", "p"),
            minor_premise: prop(Form::A, "s", "m"),
            conclusion: prop(Form::I, "s", "p"),
        };
        assert!(s
            .check()
            .iter()
            .any(|i| matches!(i, SyllogismIssue::ExistentialFallacy)));
    }

    #[test]
    fn darii_and_ferio_valid() {
        // Darii: All M are P; Some S are M; ∴ Some S are P.
        let s = Syllogism {
            major_premise: prop(Form::A, "m", "p"),
            minor_premise: prop(Form::I, "s", "m"),
            conclusion: prop(Form::I, "s", "p"),
        };
        assert!(s.is_valid(), "{:?}", s.check());
        // Ferio: No M are P; Some S are M; ∴ Some S are not P.
        let s = Syllogism {
            major_premise: prop(Form::E, "m", "p"),
            minor_premise: prop(Form::I, "s", "m"),
            conclusion: prop(Form::O, "s", "p"),
        };
        assert!(s.is_valid(), "{:?}", s.check());
    }

    #[test]
    fn malformed_four_terms_detected() {
        let s = Syllogism {
            major_premise: prop(Form::A, "a", "b"),
            minor_premise: prop(Form::A, "c", "d"),
            conclusion: prop(Form::A, "c", "b"),
        };
        assert!(s
            .check()
            .iter()
            .any(|i| matches!(i, SyllogismIssue::MalformedTerms(_))));
    }

    #[test]
    fn displays() {
        let s = barbara();
        let text = s.to_string();
        assert!(text.contains("All men are mortals."));
        assert!(text.contains("Therefore, All greeks are mortals."));
        assert_eq!(prop(Form::O, "s", "p").to_string(), "Some s are not p");
        assert_eq!(prop(Form::E, "s", "p").to_string(), "No s are p");
        assert_eq!(prop(Form::I, "s", "p").to_string(), "Some s are p");
    }

    #[test]
    fn distribution_table() {
        assert!(Form::A.distributes_subject() && !Form::A.distributes_predicate());
        assert!(Form::E.distributes_subject() && Form::E.distributes_predicate());
        assert!(!Form::I.distributes_subject() && !Form::I.distributes_predicate());
        assert!(!Form::O.distributes_subject() && Form::O.distributes_predicate());
    }

    #[test]
    fn issue_displays() {
        assert!(SyllogismIssue::UndistributedMiddle("m".into())
            .to_string()
            .contains("`m`"));
        assert!(SyllogismIssue::IllicitDistribution {
            term: "p".into(),
            major: true
        }
        .to_string()
        .contains("illicit major"));
    }
}
