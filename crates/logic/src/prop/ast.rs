//! Propositional formula abstract syntax.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// A propositional atom: a named proposition such as `on_grnd`.
///
/// Atoms are interned behind an [`Arc`] so that formulas sharing atoms are
/// cheap to clone.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Atom(Arc<str>);

impl Atom {
    /// Creates an atom with the given name.
    ///
    /// Names are free-form; the parser restricts them to
    /// `[A-Za-z_][A-Za-z0-9_']*` but programmatic construction does not.
    pub fn new(name: impl AsRef<str>) -> Self {
        Atom(Arc::from(name.as_ref()))
    }

    /// The atom's name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Atom {
    fn from(s: &str) -> Self {
        Atom::new(s)
    }
}

/// A propositional formula.
///
/// Connectives are the usual ones; `Implies` and `Iff` are primitive (rather
/// than derived) because natural-deduction rules refer to them directly.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Formula {
    /// The constant true, `T`.
    True,
    /// The constant false, `F`.
    False,
    /// An atomic proposition.
    Atom(Atom),
    /// Negation, `~p`.
    Not(Arc<Formula>),
    /// Conjunction, `p & q`.
    And(Arc<Formula>, Arc<Formula>),
    /// Disjunction, `p | q`.
    Or(Arc<Formula>, Arc<Formula>),
    /// Material implication, `p -> q`.
    Implies(Arc<Formula>, Arc<Formula>),
    /// Biconditional, `p <-> q`.
    Iff(Arc<Formula>, Arc<Formula>),
}

impl Formula {
    /// Shorthand for an atomic formula.
    pub fn atom(name: impl AsRef<str>) -> Self {
        Formula::Atom(Atom::new(name))
    }

    /// Negation of `self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        Formula::Not(Arc::new(self))
    }

    /// Conjunction `self & rhs`.
    pub fn and(self, rhs: Formula) -> Self {
        Formula::And(Arc::new(self), Arc::new(rhs))
    }

    /// Disjunction `self | rhs`.
    pub fn or(self, rhs: Formula) -> Self {
        Formula::Or(Arc::new(self), Arc::new(rhs))
    }

    /// Implication `self -> rhs`.
    pub fn implies(self, rhs: Formula) -> Self {
        Formula::Implies(Arc::new(self), Arc::new(rhs))
    }

    /// Biconditional `self <-> rhs`.
    pub fn iff(self, rhs: Formula) -> Self {
        Formula::Iff(Arc::new(self), Arc::new(rhs))
    }

    /// Conjunction of an iterator of formulas; `True` when empty.
    pub fn conj<I: IntoIterator<Item = Formula>>(items: I) -> Self {
        let mut iter = items.into_iter();
        match iter.next() {
            None => Formula::True,
            Some(first) => iter.fold(first, |acc, f| acc.and(f)),
        }
    }

    /// Disjunction of an iterator of formulas; `False` when empty.
    pub fn disj<I: IntoIterator<Item = Formula>>(items: I) -> Self {
        let mut iter = items.into_iter();
        match iter.next() {
            None => Formula::False,
            Some(first) => iter.fold(first, |acc, f| acc.or(f)),
        }
    }

    /// All atoms occurring in the formula, in sorted order.
    pub fn atoms(&self) -> BTreeSet<Atom> {
        let mut set = BTreeSet::new();
        self.collect_atoms(&mut set);
        set
    }

    fn collect_atoms(&self, out: &mut BTreeSet<Atom>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Atom(a) => {
                out.insert(a.clone());
            }
            Formula::Not(inner) => inner.collect_atoms(out),
            Formula::And(l, r)
            | Formula::Or(l, r)
            | Formula::Implies(l, r)
            | Formula::Iff(l, r) => {
                l.collect_atoms(out);
                r.collect_atoms(out);
            }
        }
    }

    /// The number of connective and atom nodes in the syntax tree.
    ///
    /// Used as a crude "formalisation effort" size metric by the
    /// experiments crate.
    pub fn size(&self) -> usize {
        match self {
            Formula::True | Formula::False | Formula::Atom(_) => 1,
            Formula::Not(inner) => 1 + inner.size(),
            Formula::And(l, r)
            | Formula::Or(l, r)
            | Formula::Implies(l, r)
            | Formula::Iff(l, r) => 1 + l.size() + r.size(),
        }
    }

    /// Structural depth of the syntax tree (an atom has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            Formula::True | Formula::False | Formula::Atom(_) => 1,
            Formula::Not(inner) => 1 + inner.depth(),
            Formula::And(l, r)
            | Formula::Or(l, r)
            | Formula::Implies(l, r)
            | Formula::Iff(l, r) => 1 + l.depth().max(r.depth()),
        }
    }

    /// True if this formula is syntactically the negation of `other`
    /// (in either direction): `p` vs `~p`.
    pub fn is_negation_of(&self, other: &Formula) -> bool {
        match (self, other) {
            (Formula::Not(inner), _) => inner.as_ref() == other,
            (_, Formula::Not(inner)) => inner.as_ref() == self,
            _ => false,
        }
    }

    fn precedence(&self) -> u8 {
        match self {
            Formula::True | Formula::False | Formula::Atom(_) => 5,
            Formula::Not(_) => 4,
            Formula::And(_, _) => 3,
            Formula::Or(_, _) => 2,
            Formula::Implies(_, _) => 1,
            Formula::Iff(_, _) => 0,
        }
    }

    fn fmt_prec(&self, f: &mut fmt::Formatter<'_>, parent: u8) -> fmt::Result {
        let mine = self.precedence();
        let needs_parens = mine < parent;
        if needs_parens {
            f.write_str("(")?;
        }
        match self {
            Formula::True => f.write_str("T")?,
            Formula::False => f.write_str("F")?,
            Formula::Atom(a) => write!(f, "{a}")?,
            Formula::Not(inner) => {
                f.write_str("~")?;
                inner.fmt_prec(f, 4)?;
            }
            Formula::And(l, r) => {
                // Left-associative: the left child may print at our level.
                l.fmt_prec(f, 3)?;
                f.write_str(" & ")?;
                r.fmt_prec(f, 4)?;
            }
            Formula::Or(l, r) => {
                l.fmt_prec(f, 2)?;
                f.write_str(" | ")?;
                r.fmt_prec(f, 3)?;
            }
            Formula::Implies(l, r) => {
                // Right-associative.
                l.fmt_prec(f, 2)?;
                f.write_str(" -> ")?;
                r.fmt_prec(f, 1)?;
            }
            Formula::Iff(l, r) => {
                // Left-associative, matching the parser.
                l.fmt_prec(f, 0)?;
                f.write_str(" <-> ")?;
                r.fmt_prec(f, 1)?;
            }
        }
        if needs_parens {
            f.write_str(")")?;
        }
        Ok(())
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_prec(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> Formula {
        Formula::atom("p")
    }
    fn q() -> Formula {
        Formula::atom("q")
    }
    fn r() -> Formula {
        Formula::atom("r")
    }

    #[test]
    fn display_respects_precedence() {
        let f = p().or(q()).and(r());
        assert_eq!(f.to_string(), "(p | q) & r");
        let g = p().or(q().and(r()));
        assert_eq!(g.to_string(), "p | q & r");
        let h = p().implies(q()).implies(r());
        assert_eq!(h.to_string(), "(p -> q) -> r");
        // Right-associativity means the inner implication needs no parens.
        let i = p().implies(q().implies(r()));
        assert_eq!(i.to_string(), "p -> q -> r");
    }

    #[test]
    fn display_negation() {
        assert_eq!(p().not().to_string(), "~p");
        assert_eq!(p().and(q()).not().to_string(), "~(p & q)");
        assert_eq!(p().not().and(q().not()).to_string(), "~p & ~q");
    }

    #[test]
    fn atoms_are_sorted_and_deduplicated() {
        let f = q().and(p()).or(q());
        let names: Vec<_> = f
            .atoms()
            .into_iter()
            .map(|a| a.name().to_string())
            .collect();
        assert_eq!(names, vec!["p", "q"]);
    }

    #[test]
    fn size_and_depth() {
        let f = p().and(q()).implies(r().not());
        assert_eq!(f.size(), 6);
        assert_eq!(f.depth(), 3);
        assert_eq!(Formula::True.size(), 1);
    }

    #[test]
    fn conj_and_disj_of_empty() {
        assert_eq!(Formula::conj([]), Formula::True);
        assert_eq!(Formula::disj([]), Formula::False);
        assert_eq!(Formula::conj([p()]), p());
        assert_eq!(Formula::disj([p(), q()]).to_string(), "p | q");
    }

    #[test]
    fn negation_detection_is_symmetric() {
        assert!(p().not().is_negation_of(&p()));
        assert!(p().is_negation_of(&p().not()));
        assert!(!p().is_negation_of(&q()));
        // Double negation is *not* syntactic negation of the negation's body.
        assert!(p().not().not().is_negation_of(&p().not()));
    }
}
