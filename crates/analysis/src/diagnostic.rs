//! The diagnostic substrate: stable lint codes, severities, configurable
//! levels, and the [`Diagnostic`] record every pass emits.
//!
//! Codes are *stable*: once published they never change meaning, so
//! tooling (CI gates, editor integrations, suppression lists) can key on
//! them. `CK0xx` codes are structural (graph-shape) lints, `CK1xx` are
//! logical (solver-backed) and fallacy lints, and `CK2xx` are syntax
//! diagnostics raised by the recovering DSL frontend. The registry
//! ([`LintCode::ALL`], [`LintCode::descriptor`]) is the single source of
//! truth for names, default levels, and pass classification — the README
//! lint table is generated from the same data the engine dispatches on.

use casekit_core::NodeId;
use casekit_logic::{LineIndex, Span};
use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

/// Configured reporting level for one lint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// Suppress the lint entirely.
    Allow,
    /// Report as a warning.
    Warn,
    /// Report as an error.
    Deny,
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Level::Allow => "allow",
            Level::Warn => "warn",
            Level::Deny => "deny",
        })
    }
}

impl FromStr for Level {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "allow" => Ok(Level::Allow),
            "warn" => Ok(Level::Warn),
            "deny" => Ok(Level::Deny),
            other => Err(format!("unknown lint level `{other}` (allow|warn|deny)")),
        }
    }
}

/// Severity of an emitted diagnostic (derived from the configured
/// [`Level`]: `Warn` emits warnings, `Deny` emits errors, `Allow` emits
/// nothing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Worth a look; does not fail a deny-level run by itself.
    Warning,
    /// Fails the run.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Which plane a lint runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PassKind {
    /// Source-plane diagnostics from the recovering DSL frontend.
    Syntax,
    /// O(V+E) graph-shape passes on the arena/CSR index plane.
    Structural,
    /// Solver-backed passes on a compiled [`casekit_core::semantics::ArgumentTheory`] session.
    Logical,
    /// Re-routed formal/informal fallacy detectors.
    Fallacy,
}

impl fmt::Display for PassKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PassKind::Syntax => "syntax",
            PassKind::Structural => "structural",
            PassKind::Logical => "logical",
            PassKind::Fallacy => "fallacy",
        })
    }
}

macro_rules! lint_codes {
    ($( $variant:ident = ($code:expr, $num:expr, $name:expr, $default:expr, $pass:expr, $summary:expr), )*) => {
        /// Stable lint codes. `CK0xx` structural, `CK1xx`
        /// logical/fallacy, `CK2xx` syntax.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub enum LintCode {
            $(
                #[doc = $summary]
                $variant,
            )*
        }

        impl LintCode {
            /// Every registered lint, in code order.
            pub const ALL: &'static [LintCode] = &[ $( LintCode::$variant, )* ];

            /// The stable code string, e.g. `"CK001"`.
            pub fn as_str(self) -> &'static str {
                match self { $( LintCode::$variant => $code, )* }
            }

            /// Numeric value of the code, for ordering.
            pub fn number(self) -> u16 {
                match self { $( LintCode::$variant => $num, )* }
            }

            /// The registry descriptor for this lint.
            pub fn descriptor(self) -> LintDescriptor {
                match self {
                    $( LintCode::$variant => LintDescriptor {
                        code: LintCode::$variant,
                        name: $name,
                        default_level: $default,
                        pass: $pass,
                        summary: $summary,
                    }, )*
                }
            }

            /// Parses a code (`"CK001"`) or kebab-case name
            /// (`"unreachable-node"`).
            pub fn parse(s: &str) -> Option<LintCode> {
                match s {
                    $( $code | $name => Some(LintCode::$variant), )*
                    _ => None,
                }
            }
        }
    };
}

lint_codes! {
    UnreachableNode = ("CK001", 1, "unreachable-node", Level::Warn, PassKind::Structural,
        "node is not reachable from any root of the argument"),
    SupportCycle = ("CK002", 2, "support-cycle", Level::Deny, PassKind::Structural,
        "the support relation contains a cycle"),
    UndevelopedGoal = ("CK003", 3, "undeveloped-goal", Level::Warn, PassKind::Structural,
        "goal or strategy has no support and is not marked undeveloped"),
    UndevelopedWithSupport = ("CK004", 4, "undeveloped-with-support", Level::Warn, PassKind::Structural,
        "node is marked undeveloped yet has supporting children"),
    DuplicateEvidence = ("CK005", 5, "duplicate-evidence", Level::Warn, PassKind::Structural,
        "two evidence nodes carry identical text"),
    ContextShadowing = ("CK006", 6, "context-shadowing", Level::Warn, PassKind::Structural,
        "context restates one already in force at an ancestor"),
    InconsistentPremises = ("CK101", 101, "inconsistent-premises", Level::Deny, PassKind::Logical,
        "the formal premises are jointly unsatisfiable"),
    TautologicalConclusion = ("CK102", 102, "tautological-conclusion", Level::Warn, PassKind::Logical,
        "the formal conclusion is a tautology (true regardless of the evidence)"),
    UnsatisfiableConclusion = ("CK103", 103, "unsatisfiable-conclusion", Level::Deny, PassKind::Logical,
        "the formal conclusion is unsatisfiable"),
    RedundantPremise = ("CK104", 104, "redundant-premise", Level::Warn, PassKind::Logical,
        "dropping this premise still leaves the conclusion entailed"),
    CircularStep = ("CK105", 105, "circular-step", Level::Warn, PassKind::Logical,
        "a support child is logically equivalent to the claim it supports"),
    NonDeductiveStep = ("CK106", 106, "non-deductive-step", Level::Warn, PassKind::Logical,
        "a formalised step's support does not entail its claim"),
    ConclusionNotEntailed = ("CK107", 107, "conclusion-not-entailed", Level::Deny, PassKind::Logical,
        "the formal premises do not entail the formal conclusion"),
    BeggingTheQuestion = ("CK110", 110, "begging-the-question", Level::Deny, PassKind::Fallacy,
        "a premise restates the conclusion"),
    IncompatiblePremises = ("CK111", 111, "incompatible-premises", Level::Deny, PassKind::Fallacy,
        "a localised subset of premises cannot all be true together"),
    PremiseConclusionContradiction = ("CK112", 112, "premise-conclusion-contradiction", Level::Deny, PassKind::Fallacy,
        "a premise contradicts the conclusion"),
    DenyingTheAntecedent = ("CK113", 113, "denying-the-antecedent", Level::Warn, PassKind::Fallacy,
        "concluding `~q` from `p -> q` and `~p`"),
    AffirmingTheConsequent = ("CK114", 114, "affirming-the-consequent", Level::Warn, PassKind::Fallacy,
        "concluding `p` from `p -> q` and `q`"),
    FalseConversion = ("CK115", 115, "false-conversion", Level::Warn, PassKind::Fallacy,
        "concluding `q -> p` from `p -> q`"),
    UndistributedMiddle = ("CK116", 116, "undistributed-middle", Level::Warn, PassKind::Fallacy,
        "categorical syllogism whose middle term is never distributed (reserved for syllogistic analyses)"),
    IllicitDistribution = ("CK117", 117, "illicit-distribution", Level::Warn, PassKind::Fallacy,
        "term distributed in the conclusion but not in its premise (reserved for syllogistic analyses)"),
    QuantifierMismatch = ("CK120", 120, "quantifier-mismatch", Level::Warn, PassKind::Fallacy,
        "a universal claim supported only by partial evidence (lexical cue)"),
    SyntaxGeneral = ("CK201", 201, "syntax-error", Level::Deny, PassKind::Syntax,
        "the source text could not be parsed at this point"),
    UnterminatedString = ("CK202", 202, "unterminated-string", Level::Deny, PassKind::Syntax,
        "a string literal runs to the end of the file without a closing quote"),
    UnknownKeyword = ("CK203", 203, "unknown-keyword", Level::Deny, PassKind::Syntax,
        "a word appears where a node kind was expected but names no known kind"),
    MalformedPayload = ("CK204", 204, "malformed-payload", Level::Deny, PassKind::Syntax,
        "a `formal` or `temporal` payload is not a well-formed formula"),
    InvalidStructure = ("CK205", 205, "invalid-structure", Level::Deny, PassKind::Syntax,
        "a declaration is syntactically fine but structurally ill-formed (duplicate id, bad `ref`, …)"),
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Registry entry for one lint: its stable code, human name, default
/// level, and which pass plane emits it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LintDescriptor {
    /// The stable code.
    pub code: LintCode,
    /// Kebab-case name, accepted anywhere a code is.
    pub name: &'static str,
    /// Level used when [`LintConfig`] carries no override.
    pub default_level: Level,
    /// Which pass plane emits this lint.
    pub pass: PassKind,
    /// One-line description.
    pub summary: &'static str,
}

/// Per-lint level configuration: registry defaults plus overrides.
///
/// ```
/// use casekit_analysis::{Level, LintCode, LintConfig};
/// let config = LintConfig::new().with_level(LintCode::RedundantPremise, Level::Deny);
/// assert_eq!(config.level(LintCode::RedundantPremise), Level::Deny);
/// assert_eq!(config.level(LintCode::UnreachableNode), Level::Warn);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintConfig {
    overrides: BTreeMap<LintCode, Level>,
}

impl LintConfig {
    /// Registry defaults, no overrides.
    pub fn new() -> Self {
        Self::default()
    }

    /// Every lint at [`Level::Deny`] — the configuration CI uses to hold
    /// an example corpus to zero diagnostics.
    pub fn deny_all() -> Self {
        let mut config = Self::new();
        for &code in LintCode::ALL {
            config.set(code, Level::Deny);
        }
        config
    }

    /// Every lint at [`Level::Allow`] — a base for opting in to a few.
    pub fn allow_all() -> Self {
        let mut config = Self::new();
        for &code in LintCode::ALL {
            config.set(code, Level::Allow);
        }
        config
    }

    /// Sets the level for one lint.
    pub fn set(&mut self, code: LintCode, level: Level) {
        self.overrides.insert(code, level);
    }

    /// Builder-style [`set`](Self::set).
    pub fn with_level(mut self, code: LintCode, level: Level) -> Self {
        self.set(code, level);
        self
    }

    /// The effective level for `code` (override, else registry default).
    pub fn level(&self, code: LintCode) -> Level {
        self.overrides
            .get(&code)
            .copied()
            .unwrap_or(code.descriptor().default_level)
    }
}

/// One finding: a stable code, a severity, the node it anchors to, any
/// related nodes, a human-readable message, and an optional fix-it hint.
///
/// `primary` is `None` only for findings with no node anchor (header
/// syntax errors, trailing input, …). Diagnostics raised from source
/// text — the `CK2xx` family, and graph lints routed through
/// [`crate::check_source`] — additionally carry a byte `span` into the
/// source they were raised from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The stable lint code.
    pub code: LintCode,
    /// Severity derived from the configured level.
    pub severity: Severity,
    /// The node the finding anchors to.
    pub primary: Option<NodeId>,
    /// Other nodes involved (cycle members, the shadowed context, …).
    pub related: Vec<NodeId>,
    /// What is wrong.
    pub message: String,
    /// How to fix it, when the pass can tell.
    pub hint: Option<String>,
    /// Byte span into the source text this finding was raised from.
    /// `None` when the diagnostic came from a pre-built [`Argument`]
    /// with no source attached.
    ///
    /// [`Argument`]: casekit_core::Argument
    pub span: Option<Span>,
}

impl Diagnostic {
    /// Canonical ordering key: code, then primary node id, then message
    /// — the deterministic order [`crate::lint_argument`] sorts into.
    pub(crate) fn sort_key(&self) -> (u16, &str, &str) {
        (
            self.code.number(),
            self.primary.as_ref().map_or("", |id| id.as_str()),
            &self.message,
        )
    }

    /// Renders this diagnostic with a `line:col` prefix resolved through
    /// a precomputed [`LineIndex`] over the source it was raised from.
    ///
    /// Diagnostics without a span fall back to the plain [`Display`]
    /// form.
    ///
    /// [`Display`]: fmt::Display
    ///
    /// ```
    /// use casekit_analysis::{check_source, LintConfig};
    /// use casekit_logic::LineIndex;
    /// let src = "argument \"a\" {\n  gaol g1 \"top\"\n}\n";
    /// let analysis = check_source(src, &LintConfig::new());
    /// let index = LineIndex::new(src);
    /// let first = analysis.diagnostics.first().unwrap();
    /// assert!(first.located(&index).starts_with("2:3: "));
    /// ```
    pub fn located(&self, index: &LineIndex) -> String {
        match self.span {
            Some(span) => {
                let (line, col) = index.line_col(span.start);
                format!("{line}:{col}: {self}")
            }
            None => self.to_string(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)?;
        if let Some(primary) = &self.primary {
            write!(f, " (at `{primary}`")?;
            if !self.related.is_empty() {
                write!(f, "; see")?;
                for id in &self.related {
                    write!(f, " `{id}`")?;
                }
            }
            write!(f, ")")?;
        }
        if let Some(hint) = &self.hint {
            write!(f, " help: {hint}")?;
        }
        Ok(())
    }
}

/// Collects diagnostics during a run, applying the configured levels.
#[derive(Debug)]
pub(crate) struct Sink<'c> {
    config: &'c LintConfig,
    out: Vec<Diagnostic>,
}

impl<'c> Sink<'c> {
    pub(crate) fn new(config: &'c LintConfig) -> Self {
        Sink {
            config,
            out: Vec::new(),
        }
    }

    /// Emits one diagnostic unless the lint is allowed away.
    pub(crate) fn emit(
        &mut self,
        code: LintCode,
        primary: Option<NodeId>,
        related: Vec<NodeId>,
        message: String,
        hint: Option<String>,
    ) {
        let severity = match self.config.level(code) {
            Level::Allow => return,
            Level::Warn => Severity::Warning,
            Level::Deny => Severity::Error,
        };
        self.out.push(Diagnostic {
            code,
            severity,
            primary,
            related,
            message,
            hint,
            span: None,
        });
    }

    /// Emits one diagnostic anchored to a source span, unless the lint
    /// is allowed away.
    pub(crate) fn emit_at(
        &mut self,
        code: LintCode,
        primary: Option<NodeId>,
        message: String,
        hint: Option<String>,
        span: Span,
    ) {
        let severity = match self.config.level(code) {
            Level::Allow => return,
            Level::Warn => Severity::Warning,
            Level::Deny => Severity::Error,
        };
        self.out.push(Diagnostic {
            code,
            severity,
            primary,
            related: Vec::new(),
            message,
            hint,
            span: Some(span),
        });
    }

    /// The collected diagnostics, in canonical order.
    pub(crate) fn finish(mut self) -> Vec<Diagnostic> {
        self.out.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_ordered() {
        assert_eq!(LintCode::UnreachableNode.as_str(), "CK001");
        assert_eq!(LintCode::QuantifierMismatch.as_str(), "CK120");
        assert_eq!(LintCode::SyntaxGeneral.as_str(), "CK201");
        assert_eq!(LintCode::InvalidStructure.as_str(), "CK205");
        let numbers: Vec<u16> = LintCode::ALL.iter().map(|c| c.number()).collect();
        let mut sorted = numbers.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(numbers, sorted, "codes are unique and ascending");
    }

    #[test]
    fn parse_accepts_code_and_name() {
        assert_eq!(LintCode::parse("CK104"), Some(LintCode::RedundantPremise));
        assert_eq!(
            LintCode::parse("redundant-premise"),
            Some(LintCode::RedundantPremise)
        );
        assert_eq!(LintCode::parse("CK999"), None);
    }

    #[test]
    fn config_levels_resolve_defaults_and_overrides() {
        let config = LintConfig::new();
        assert_eq!(config.level(LintCode::SupportCycle), Level::Deny);
        assert_eq!(config.level(LintCode::RedundantPremise), Level::Warn);
        let strict = LintConfig::deny_all();
        for &code in LintCode::ALL {
            assert_eq!(strict.level(code), Level::Deny);
        }
        let lax = LintConfig::allow_all().with_level(LintCode::SupportCycle, Level::Warn);
        assert_eq!(lax.level(LintCode::SupportCycle), Level::Warn);
        assert_eq!(lax.level(LintCode::UnreachableNode), Level::Allow);
    }

    #[test]
    fn allow_suppresses_and_deny_escalates() {
        let config = LintConfig::allow_all().with_level(LintCode::UnreachableNode, Level::Deny);
        let mut sink = Sink::new(&config);
        sink.emit(
            LintCode::UnreachableNode,
            Some(NodeId::new("g1")),
            vec![],
            "x".into(),
            None,
        );
        sink.emit(
            LintCode::SupportCycle,
            Some(NodeId::new("g2")),
            vec![],
            "y".into(),
            None,
        );
        let out = sink.finish();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].severity, Severity::Error);
    }

    #[test]
    fn diagnostics_render_with_anchor_and_hint() {
        let d = Diagnostic {
            code: LintCode::DuplicateEvidence,
            severity: Severity::Warning,
            primary: Some(NodeId::new("e1")),
            related: vec![NodeId::new("e2")],
            message: "duplicate".into(),
            hint: Some("merge them".into()),
            span: None,
        };
        let rendered = d.to_string();
        assert!(rendered.contains("warning[CK005]"));
        assert!(rendered.contains("`e1`"));
        assert!(rendered.contains("`e2`"));
        assert!(rendered.contains("help: merge them"));
    }

    #[test]
    fn level_round_trips_through_strings() {
        for level in [Level::Allow, Level::Warn, Level::Deny] {
            assert_eq!(level.to_string().parse::<Level>(), Ok(level));
        }
        assert!("loud".parse::<Level>().is_err());
    }

    #[test]
    fn descriptors_agree_with_registry() {
        for &code in LintCode::ALL {
            let d = code.descriptor();
            assert_eq!(d.code, code);
            assert_eq!(LintCode::parse(d.name), Some(code));
            assert!(!d.summary.is_empty());
        }
    }
}
