//! Hierarchical cases ("hicases"): collapsible views of arguments, after
//! Denney, Pai & Whiteside (Graydon §III-I).
//!
//! A [`View`] tracks which nodes are collapsed; rendering shows a collapsed
//! node as a summary line with the count of hidden descendants, letting a
//! reader "evaluat\[e\] a smaller, abstract argument structure … instead of
//! its larger concrete instantiation".

use crate::argument::{Argument, NodeIdx};
use crate::node::NodeId;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// A collapsible view over an argument.
///
/// Collapse state is tracked per [`NodeIdx`], so visibility sweeps and
/// rendering never hash or compare id strings.
#[derive(Debug, Clone)]
pub struct View<'a> {
    argument: &'a Argument,
    collapsed: BTreeSet<NodeIdx>,
}

impl<'a> View<'a> {
    /// A fully expanded view.
    pub fn new(argument: &'a Argument) -> Self {
        View {
            argument,
            collapsed: BTreeSet::new(),
        }
    }

    /// A view with every internal node collapsed (roots visible).
    pub fn fully_collapsed(argument: &'a Argument) -> Self {
        let mut view = View::new(argument);
        let roots: Vec<NodeIdx> = argument.roots_idx().collect();
        view.collapsed.extend(roots);
        view
    }

    /// The underlying argument.
    pub fn argument(&self) -> &Argument {
        self.argument
    }

    /// Collapses `id` (its descendants become hidden).
    ///
    /// Collapsing an unknown id is a no-op: views are UI state, not
    /// validators.
    pub fn collapse(&mut self, id: &NodeId) {
        if let Some(idx) = self.argument.node_idx(id) {
            self.collapsed.insert(idx);
        }
    }

    /// Expands `id`.
    pub fn expand(&mut self, id: &NodeId) {
        if let Some(idx) = self.argument.node_idx(id) {
            self.collapsed.remove(&idx);
        }
    }

    /// Expands every node.
    pub fn expand_all(&mut self) {
        self.collapsed.clear();
    }

    /// Whether `id` is collapsed.
    pub fn is_collapsed(&self, id: &NodeId) -> bool {
        self.argument
            .node_idx(id)
            .is_some_and(|idx| self.collapsed.contains(&idx))
    }

    /// Ids of nodes currently visible (roots, plus children of expanded
    /// visible nodes).
    pub fn visible(&self) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut seen = vec![false; self.argument.len()];
        let roots: Vec<NodeIdx> = self.argument.sorted_roots_idx().collect();
        for root in roots {
            self.visit(root, &mut out, &mut seen);
        }
        out
    }

    fn visit(&self, idx: NodeIdx, out: &mut Vec<NodeId>, seen: &mut [bool]) {
        if seen[idx.index()] {
            return;
        }
        seen[idx.index()] = true;
        out.push(self.argument.id_at(idx).clone());
        if self.collapsed.contains(&idx) {
            return;
        }
        let children: Vec<NodeIdx> = self.argument.all_children_idx(idx).collect();
        for child in children {
            self.visit(child, out, seen);
        }
    }

    /// Number of nodes hidden by the current collapse state.
    pub fn hidden_count(&self) -> usize {
        self.argument.len().saturating_sub(self.visible().len())
    }

    /// Renders the view as an ASCII tree; collapsed nodes show a
    /// `[+N hidden]` marker.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.argument.name());
        let mut seen = vec![false; self.argument.len()];
        let roots: Vec<NodeIdx> = self.argument.sorted_roots_idx().collect();
        for (i, &root) in roots.iter().enumerate() {
            self.render_node(root, "", i + 1 == roots.len(), &mut out, &mut seen);
        }
        out
    }

    fn render_node(
        &self,
        idx: NodeIdx,
        prefix: &str,
        last: bool,
        out: &mut String,
        seen: &mut [bool],
    ) {
        let node = self.argument.node_at(idx);
        let connector = if last { "`-- " } else { "|-- " };
        if seen[idx.index()] {
            let _ = writeln!(out, "{prefix}{connector}(see {})", node.id);
            return;
        }
        seen[idx.index()] = true;
        let mut label = format!("[{}] {}: {}", node.id, node.kind, node.text);
        if self.collapsed.contains(&idx) {
            let hidden = self.argument.reachable_from(idx).len();
            if hidden > 0 {
                let _ = write!(label, " [+{hidden} hidden]");
            }
            let _ = writeln!(out, "{prefix}{connector}{label}");
            return;
        }
        let _ = writeln!(out, "{prefix}{connector}{label}");
        let child_prefix = format!("{prefix}{}", if last { "    " } else { "|   " });
        let children: Vec<NodeIdx> = self.argument.all_children_idx(idx).collect();
        for (i, &child) in children.iter().enumerate() {
            self.render_node(child, &child_prefix, i + 1 == children.len(), out, seen);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::parse_argument;

    fn sample() -> Argument {
        parse_argument(
            r#"argument "hi" {
                goal g1 "Top" {
                  strategy s1 "Over hazards" {
                    goal g2 "H1" { solution e1 "ev1" }
                    goal g3 "H2" { solution e2 "ev2" }
                  }
                }
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn fully_expanded_shows_everything() {
        let a = sample();
        let v = View::new(&a);
        assert_eq!(v.visible().len(), a.len());
        assert_eq!(v.hidden_count(), 0);
        assert!(!v.is_collapsed(&"g1".into()));
        assert_eq!(v.argument().name(), "hi");
    }

    #[test]
    fn collapsing_hides_descendants() {
        let a = sample();
        let mut v = View::new(&a);
        v.collapse(&"s1".into());
        let visible = v.visible();
        assert_eq!(visible.len(), 2); // g1, s1
        assert_eq!(v.hidden_count(), 4);
        let r = v.render();
        assert!(r.contains("[+4 hidden]"));
        assert!(!r.contains("ev1"));
    }

    #[test]
    fn expand_restores() {
        let a = sample();
        let mut v = View::new(&a);
        v.collapse(&"s1".into());
        v.expand(&"s1".into());
        assert_eq!(v.hidden_count(), 0);
        v.collapse(&"g2".into());
        v.collapse(&"g3".into());
        assert_eq!(v.hidden_count(), 2);
        v.expand_all();
        assert_eq!(v.hidden_count(), 0);
    }

    #[test]
    fn fully_collapsed_shows_only_roots() {
        let a = sample();
        let v = View::fully_collapsed(&a);
        assert_eq!(v.visible().len(), 1);
        assert!(v.render().contains("[+5 hidden]"));
    }

    #[test]
    fn collapsing_unknown_id_is_noop() {
        let a = sample();
        let mut v = View::new(&a);
        v.collapse(&"zz".into());
        assert_eq!(v.hidden_count(), 0);
    }

    #[test]
    fn collapsed_leaf_shows_no_marker() {
        let a = sample();
        let mut v = View::new(&a);
        v.collapse(&"e1".into());
        let r = v.render();
        assert!(r.contains("[e1]"));
        assert!(!r.contains("+0 hidden"));
    }

    #[test]
    fn nested_collapse_inside_collapsed_region_is_moot() {
        let a = sample();
        let mut v = View::new(&a);
        v.collapse(&"g2".into());
        v.collapse(&"s1".into());
        // g2's collapse state is irrelevant while s1 is collapsed.
        assert_eq!(v.visible().len(), 2);
        v.expand(&"s1".into());
        // Now g2's collapse matters again.
        assert_eq!(v.visible().len(), 5); // g1 s1 g2 g3 e2
    }
}
