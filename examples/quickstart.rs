//! Quickstart: build a safety argument in the DSL, check its
//! well-formedness, formalise part of it, and see what mechanical
//! validation can — and cannot — tell you.
//!
//! Run with: `cargo run --example quickstart`

use casekit::core::{dsl, formality, gsn, render};
use casekit::fallacies::checker::check_argument;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Write the argument in the text DSL. One goal carries a formal
    //    payload (the thrust-reverser claim from Graydon §II-B2).
    let argument = dsl::parse_argument(
        r#"
        argument "thrust reverser safety" {
          goal g1 "Thrust reverser operation is acceptably safe" {
            context c1 "Commercial transport aircraft, revenue service"
            strategy s1 "Argue over inadvertent-deployment hazards" {
              justification j1 "Hazard list reviewed by the safety board"
              goal g2 "Reversers are inhibited when not on the ground"
                formal "~on_grnd -> ~threv_en" {
                solution e1 "Interlock logic test campaign"
              }
              goal g3 "Flight-deck indication of reverser state is correct" {
                solution e2 "Indicator validation report"
              }
            }
          }
        }
        "#,
    )?;

    // 2. Syntax-level checks (GSN Community Standard).
    let issues = gsn::check(&argument);
    println!("GSN well-formedness issues: {}", issues.len());

    // 3. Render it three ways.
    println!("\n--- ASCII tree ---\n{}", render::ascii_tree(&argument));
    println!("--- prose ---\n{}", render::prose(&argument));

    // 4. Formality profile: how far along the paper's three dimensions?
    let profile = formality::profile(&argument);
    println!(
        "formality: syntax {:.2}, symbolic {:.2}, deductive {:?}",
        profile.syntax, profile.symbolic, profile.deductive
    );

    // 5. Mechanical validation. The checker examines the formal skeleton
    //    only; it cannot judge whether the interlock tests really support
    //    g2 — that remains a human judgment (Graydon §IV-C).
    let report = check_argument(&argument);
    println!(
        "machine check: {} finding(s); formal nodes: {}",
        report.findings.len(),
        report.formal_nodes
    );
    for finding in &report.findings {
        println!("  - {finding}");
    }
    Ok(())
}
