//! Benchmarks of the five §VI studies at reduced scale (Criterion runs
//! each body many times; the default configs are for the `repro` binary).

// `criterion_group!`/`criterion_main!` expand to undocumented harness fns.
#![allow(missing_docs)]

use casekit_experiments::runtime::Runtime;
use casekit_experiments::{exp_a, exp_b, exp_c, exp_d, exp_e};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_exp_a(c: &mut Criterion) {
    let config = exp_a::Config {
        per_arm: 8,
        arguments: 2,
        hazards: 5,
        seed: 0xA,
    };
    c.bench_function("exp_a_review_study", |b| {
        b.iter(|| exp_a::run(black_box(&config)).unwrap());
    });
}

fn bench_exp_b(c: &mut Criterion) {
    let config = exp_b::Config {
        sizes: vec![10, 20],
        per_background: 4,
        seed: 0xB,
    };
    c.bench_function("exp_b_formalisation_effort", |b| {
        b.iter(|| exp_b::run(black_box(&config)).unwrap());
    });
}

fn bench_exp_c(c: &mut Criterion) {
    let config = exp_c::Config {
        per_cell: 8,
        words: 800,
        questions: 8,
        seed: 0xC,
    };
    c.bench_function("exp_c_reading_audience", |b| {
        b.iter(|| exp_c::run(black_box(&config)).unwrap());
    });
}

fn bench_exp_d(c: &mut Criterion) {
    let config = exp_d::Config {
        instantiations: 4,
        per_arm: 8,
        seed: 0xD,
    };
    c.bench_function("exp_d_pattern_instantiation", |b| {
        b.iter(|| exp_d::run(black_box(&config)).unwrap());
    });
}

fn bench_exp_e(c: &mut Criterion) {
    let config = exp_e::Config {
        per_arm: 6,
        leaves: 8,
        seed: 0xE,
    };
    c.bench_function("exp_e_sufficiency_judgments", |b| {
        b.iter(|| exp_e::run(black_box(&config)).unwrap());
    });
}

fn bench_exp_a_parallel_runtime(c: &mut Criterion) {
    let config = exp_a::Config {
        per_arm: 8,
        arguments: 2,
        hazards: 5,
        seed: 0xA,
    };
    let runtime = Runtime::default();
    c.bench_function("exp_a_review_study_parallel", |b| {
        b.iter(|| exp_a::run_with(black_box(&config), &runtime).unwrap());
    });
}

criterion_group!(
    benches,
    bench_exp_a,
    bench_exp_a_parallel_runtime,
    bench_exp_b,
    bench_exp_c,
    bench_exp_d,
    bench_exp_e
);
criterion_main!(benches);
