//! Parser for a Prolog-like surface syntax.
//!
//! ```text
//! program ::= clause*
//! clause  ::= term ( ":-" term ( "," term )* )? "."
//! term    ::= ident ( "(" term ( "," term )* ")" )?
//! ident   ::= [A-Za-z_][A-Za-z0-9_]*  |  [0-9]+
//! ```
//!
//! Identifiers beginning with an uppercase letter or `_` are variables;
//! others (including integers) are constants or functors. Line comments
//! start with `%`, as in Prolog.

use super::term::{Clause, Term};
use crate::error::{ParseError, Span};

struct Cursor<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(input: &'a str) -> Self {
        Cursor { input, pos: 0 }
    }

    fn skip_trivia(&mut self) {
        loop {
            let rest = &self.input[self.pos..];
            let trimmed = rest.trim_start();
            self.pos += rest.len() - trimmed.len();
            if self.input[self.pos..].starts_with('%') {
                match self.input[self.pos..].find('\n') {
                    Some(nl) => self.pos += nl + 1,
                    None => self.pos = self.input.len(),
                }
            } else {
                break;
            }
        }
    }

    fn at_end(&mut self) -> bool {
        self.skip_trivia();
        self.pos >= self.input.len()
    }

    fn eat(&mut self, expected: &str) -> Result<(), ParseError> {
        self.skip_trivia();
        if self.input[self.pos..].starts_with(expected) {
            self.pos += expected.len();
            Ok(())
        } else {
            Err(ParseError::new(
                format!("expected `{expected}`"),
                Span::point(self.pos),
            ))
        }
    }

    fn try_eat(&mut self, expected: &str) -> bool {
        self.skip_trivia();
        if self.input[self.pos..].starts_with(expected) {
            self.pos += expected.len();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<(String, Span), ParseError> {
        self.skip_trivia();
        let start = self.pos;
        let mut chars = self.input[self.pos..].char_indices();
        match chars.next() {
            Some((_, c)) if c.is_alphanumeric() || c == '_' => {}
            _ => {
                return Err(ParseError::new(
                    "expected an identifier",
                    Span::point(self.pos),
                ))
            }
        }
        let mut end = self.input.len();
        for (i, c) in self.input[self.pos..].char_indices() {
            if !(c.is_alphanumeric() || c == '_') {
                end = self.pos + i;
                break;
            }
        }
        let word = self.input[start..end].to_string();
        self.pos = end;
        Ok((word, Span::new(start, end)))
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        let (name, span) = self.ident()?;
        if self.try_eat("(") {
            let mut args = vec![self.term()?];
            while self.try_eat(",") {
                args.push(self.term()?);
            }
            self.eat(")")?;
            if is_variable_name(&name) {
                return Err(ParseError::new(
                    format!("variable `{name}` cannot be used as a functor"),
                    span,
                ));
            }
            Ok(Term::compound(name, args))
        } else if is_variable_name(&name) {
            Ok(Term::var(name))
        } else {
            Ok(Term::constant(name))
        }
    }

    fn clause(&mut self) -> Result<Clause, ParseError> {
        let head = self.term()?;
        let mut body = Vec::new();
        if self.try_eat(":-") {
            body.push(self.term()?);
            while self.try_eat(",") {
                body.push(self.term()?);
            }
        }
        self.eat(".")?;
        Ok(Clause { head, body })
    }
}

fn is_variable_name(name: &str) -> bool {
    name.chars()
        .next()
        .is_some_and(|c| c.is_uppercase() || c == '_')
}

/// Parses a whole program (sequence of clauses).
///
/// # Errors
///
/// Returns a [`ParseError`] locating the first syntax error.
pub fn parse_program(input: &str) -> Result<super::KnowledgeBase, ParseError> {
    let mut cursor = Cursor::new(input);
    let mut kb = super::KnowledgeBase::new();
    while !cursor.at_end() {
        kb.add(cursor.clause()?);
    }
    Ok(kb)
}

/// Parses a single query goal (a term, optionally ending with `.`).
///
/// # Errors
///
/// Returns a [`ParseError`] if the input is not a single well-formed term.
pub fn parse_query(input: &str) -> Result<Term, ParseError> {
    let mut cursor = Cursor::new(input);
    let term = cursor.term()?;
    cursor.try_eat(".");
    if !cursor.at_end() {
        return Err(ParseError::new(
            "unexpected trailing input",
            Span::point(cursor.pos),
        ));
    }
    Ok(term)
}

/// Parses a single term.
///
/// # Errors
///
/// Returns a [`ParseError`] if the input is not a single well-formed term.
pub fn parse_term(input: &str) -> Result<Term, ParseError> {
    parse_query(input)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_facts_and_rules() {
        let kb = parse_program(
            "is_a(desert_bank, bank).\n\
             adjacent(bank, river).\n\
             adjacent(X, Y) :- is_a(X, Z), adjacent(Z, Y).",
        )
        .unwrap();
        assert_eq!(kb.len(), 3);
        assert!(kb.clauses()[0].is_fact());
        assert!(!kb.clauses()[2].is_fact());
        assert_eq!(kb.clauses()[2].body.len(), 2);
    }

    #[test]
    fn variables_vs_constants() {
        let t = parse_term("p(X, x, _anon, Y2, y2)").unwrap();
        match t {
            Term::Compound(_, args) => {
                assert!(matches!(args[0], Term::Var(_)));
                assert!(matches!(args[1], Term::Const(_)));
                assert!(matches!(args[2], Term::Var(_)));
                assert!(matches!(args[3], Term::Var(_)));
                assert!(matches!(args[4], Term::Const(_)));
            }
            other => panic!("expected compound, got {other}"),
        }
    }

    #[test]
    fn nested_compounds() {
        let t = parse_term("treat(r, penicillin(dose(high)))").unwrap();
        assert_eq!(t.to_string(), "treat(r, penicillin(dose(high)))");
    }

    #[test]
    fn comments_ignored() {
        let kb = parse_program(
            "% the paper's example\n\
             f(a). % inline trailing\n\
             % another comment\n\
             g(b).",
        )
        .unwrap();
        assert_eq!(kb.len(), 2);
    }

    #[test]
    fn missing_dot_is_an_error() {
        let err = parse_program("f(a)").unwrap_err();
        assert!(err.message.contains('.'));
    }

    #[test]
    fn unclosed_paren_is_an_error() {
        assert!(parse_program("f(a.").is_err());
        assert!(parse_program("f(a,.").is_err());
    }

    #[test]
    fn variable_as_functor_rejected() {
        let err = parse_program("X(a).").unwrap_err();
        assert!(err.message.contains("functor"));
    }

    #[test]
    fn query_with_trailing_garbage_rejected() {
        assert!(parse_query("f(a) g").is_err());
        assert!(parse_query("f(a).").is_ok());
    }

    #[test]
    fn numeric_constants() {
        let t = parse_term("wcet(task_1, 250)").unwrap();
        assert_eq!(t.to_string(), "wcet(task_1, 250)");
        assert!(t.is_ground());
    }

    #[test]
    fn empty_program_is_empty_kb() {
        assert!(parse_program("").unwrap().is_empty());
        assert!(parse_program("  % only a comment\n").unwrap().is_empty());
    }
}
