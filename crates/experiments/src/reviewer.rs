//! The simulated human reviewer.
//!
//! A reviewer walks an argument looking for fallacies. Detection is
//! Bernoulli per seeded fallacy with probability
//! `base(kind) × diligence`, where formal-fallacy bases additionally scale
//! with the reviewer's formal-logic skill (§V-C: "it is the efficacy of
//! humans at spotting formal fallacies that is at issue … and this remains
//! unknown" — the base rates here are *model parameters*, stated in the
//! open, not empirical claims).
//!
//! Review time scales with argument size and reading speed; scanning for
//! formal fallacies on top of informal ones costs extra minutes per
//! formalised node.

use crate::generator::SeededFormal;
use crate::population::Subject;
use casekit_fallacies::informal::CaseStudy;
use casekit_fallacies::taxonomy::InformalFallacy;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// What a reviewer is asked to look for (§VI-A's two arms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReviewScope {
    /// Informal fallacies only (the machine handles formal ones).
    InformalOnly,
    /// Both informal and formal fallacies.
    InformalAndFormal,
}

/// The outcome of one review.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReviewOutcome {
    /// Indices into the case study's seeded informal fallacies that the
    /// reviewer found.
    pub informal_found: Vec<usize>,
    /// Indices into the seeded formal defects the reviewer found (empty
    /// when the scope excluded them).
    pub formal_found: Vec<usize>,
    /// Minutes spent.
    pub minutes: f64,
}

/// Base detection probability for an informal fallacy kind (model
/// parameters; see module docs).
pub fn informal_base_rate(kind: InformalFallacy) -> f64 {
    match kind {
        InformalFallacy::DrawingWrongConclusion => 0.55,
        InformalFallacy::FallaciousUseOfLanguage => 0.40,
        InformalFallacy::FallacyOfComposition => 0.35,
        InformalFallacy::HastyInductiveGeneralisation => 0.45,
        InformalFallacy::OmissionOfKeyEvidence => 0.30,
        InformalFallacy::RedHerring => 0.50,
        InformalFallacy::UsingWrongReasons => 0.50,
        InformalFallacy::Equivocation => 0.30,
        InformalFallacy::ArgumentFromIgnorance => 0.40,
    }
}

/// Base detection probability for a formal defect given logic skill:
/// unskilled reviewers rarely spot them; skilled ones usually do.
pub fn formal_base_rate(logic_skill: f64) -> f64 {
    0.15 + 0.70 * logic_skill
}

/// Minutes to review `nodes` argument nodes at `wpm` reading speed,
/// optionally also scanning `formal_nodes` formal payloads.
pub fn review_minutes(nodes: usize, formal_nodes: usize, wpm: f64, scope: ReviewScope) -> f64 {
    // ~40 words of prose per node.
    let base = nodes as f64 * 40.0 / wpm + nodes as f64 * 0.5;
    match scope {
        ReviewScope::InformalOnly => base,
        ReviewScope::InformalAndFormal => base + formal_nodes as f64 * 1.5,
    }
}

/// The counts a review produces, without the per-index vectors of
/// [`ReviewOutcome`] — what the aggregate experiments actually consume.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReviewCounts {
    /// Seeded informal fallacies the reviewer found.
    pub informal_found: usize,
    /// Seeded formal defects the reviewer found (0 when out of scope).
    pub formal_found: usize,
    /// Minutes spent.
    pub minutes: f64,
}

/// The allocation-free fast path of [`review`]: the *same* Bernoulli
/// draw sequence against the same RNG stream and the same timing
/// model, returning only counts. Population-scale simulations run
/// millions of reviews and only ever read `found.len()`; two `Vec`
/// allocations per review were the hottest line of the §VI harness.
/// A unit test pins this to [`review`] draw-for-draw.
pub fn review_counts(
    subject: &Subject,
    case: &CaseStudy,
    seeded_formal: &[SeededFormal],
    scope: ReviewScope,
    rng: &mut impl Rng,
) -> ReviewCounts {
    let mut informal_found = 0usize;
    for seeded in &case.seeded {
        let p = informal_base_rate(seeded.kind) * subject.diligence;
        if rng.gen_bool(p.clamp(0.0, 1.0)) {
            informal_found += 1;
        }
    }
    let mut formal_found = 0usize;
    if scope == ReviewScope::InformalAndFormal {
        let p = (formal_base_rate(subject.logic_skill) * subject.diligence).clamp(0.0, 1.0);
        for _ in seeded_formal {
            if rng.gen_bool(p) {
                formal_found += 1;
            }
        }
    }
    let minutes = review_minutes(
        case.argument.len(),
        case.argument.formalised_count(),
        subject.reading_wpm,
        scope,
    );
    ReviewCounts {
        informal_found,
        formal_found,
        minutes,
    }
}

/// Simulates one review.
pub fn review(
    subject: &Subject,
    case: &CaseStudy,
    seeded_formal: &[SeededFormal],
    scope: ReviewScope,
    rng: &mut impl Rng,
) -> ReviewOutcome {
    let mut informal_found = Vec::new();
    for (i, seeded) in case.seeded.iter().enumerate() {
        let p = informal_base_rate(seeded.kind) * subject.diligence;
        if rng.gen_bool(p.clamp(0.0, 1.0)) {
            informal_found.push(i);
        }
    }
    let mut formal_found = Vec::new();
    if scope == ReviewScope::InformalAndFormal {
        for (i, _) in seeded_formal.iter().enumerate() {
            let p = formal_base_rate(subject.logic_skill) * subject.diligence;
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                formal_found.push(i);
            }
        }
    }
    let formal_nodes = case.argument.formalised_count();
    let minutes = review_minutes(
        case.argument.len(),
        formal_nodes,
        subject.reading_wpm,
        scope,
    );
    ReviewOutcome {
        informal_found,
        formal_found,
        minutes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GeneratorConfig};
    use crate::population::{generate as gen_pool, PoolConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn case() -> (CaseStudy, Vec<SeededFormal>) {
        let g = generate(&GeneratorConfig {
            hazards: 6,
            formal: vec![SeededFormal::Begging, SeededFormal::Incompatible],
            informal: vec![
                InformalFallacy::RedHerring,
                InformalFallacy::Equivocation,
                InformalFallacy::UsingWrongReasons,
            ],
            seed: 11,
        })
        .unwrap();
        (g.case, g.formal)
    }

    #[test]
    fn scope_controls_formal_hunting() {
        let (case, formal) = case();
        let pool = gen_pool(&PoolConfig::default());
        let subject = &pool[0];
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let outcome = review(subject, &case, &formal, ReviewScope::InformalOnly, &mut rng);
        assert!(outcome.formal_found.is_empty());
        assert!(outcome.minutes > 0.0);
    }

    #[test]
    fn informal_and_formal_takes_longer() {
        let (case, formal) = case();
        let pool = gen_pool(&PoolConfig::default());
        let subject = &pool[0];
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let a = review(subject, &case, &formal, ReviewScope::InformalOnly, &mut rng);
        let b = review(
            subject,
            &case,
            &formal,
            ReviewScope::InformalAndFormal,
            &mut rng,
        );
        assert!(b.minutes > a.minutes);
    }

    #[test]
    fn skilled_reviewers_find_more_formal_fallacies() {
        let (case, formal) = case();
        let trials = 400usize;
        let skilled = Subject {
            id: 0,
            background: crate::population::Background::SoftwareEngineer,
            logic_skill: 0.95,
            reading_wpm: 220.0,
            diligence: 1.0,
        };
        let clueless = Subject {
            logic_skill: 0.05,
            ..skilled
        };
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let count = |s: &Subject, rng: &mut ChaCha8Rng| {
            (0..trials)
                .map(|_| {
                    review(s, &case, &formal, ReviewScope::InformalAndFormal, rng)
                        .formal_found
                        .len()
                })
                .sum::<usize>()
        };
        let hi = count(&skilled, &mut rng);
        let lo = count(&clueless, &mut rng);
        assert!(hi > lo * 2, "skilled {hi} vs clueless {lo}");
    }

    #[test]
    fn review_counts_matches_review_draw_for_draw() {
        // Same seed, same stream: the fast path must consume exactly
        // the draws `review` does and report the same counts, or
        // parallel reports would silently diverge from the PR-3 runs.
        let (case, formal) = case();
        let pool = gen_pool(&PoolConfig::default());
        for scope in [ReviewScope::InformalOnly, ReviewScope::InformalAndFormal] {
            for (i, subject) in pool.iter().take(8).enumerate() {
                let mut full_rng = ChaCha8Rng::seed_from_u64(31 + i as u64);
                let mut fast_rng = ChaCha8Rng::seed_from_u64(31 + i as u64);
                for round in 0..10 {
                    let full = review(subject, &case, &formal, scope, &mut full_rng);
                    let fast = review_counts(subject, &case, &formal, scope, &mut fast_rng);
                    assert_eq!(
                        fast.informal_found,
                        full.informal_found.len(),
                        "round {round}"
                    );
                    assert_eq!(fast.formal_found, full.formal_found.len(), "round {round}");
                    assert_eq!(fast.minutes, full.minutes, "round {round}");
                }
            }
        }
    }

    #[test]
    fn detection_rates_are_probability_like() {
        for kind in InformalFallacy::GREENWELL_KINDS {
            let p = informal_base_rate(kind);
            assert!((0.0..=1.0).contains(&p));
        }
        assert!(formal_base_rate(0.0) < formal_base_rate(1.0));
        assert!(formal_base_rate(1.0) <= 1.0);
    }

    #[test]
    fn review_minutes_scales_with_size() {
        let small = review_minutes(10, 5, 220.0, ReviewScope::InformalOnly);
        let large = review_minutes(40, 20, 220.0, ReviewScope::InformalOnly);
        assert!(large > small * 3.0);
        let slow = review_minutes(10, 5, 110.0, ReviewScope::InformalOnly);
        assert!(slow > small);
    }
}
