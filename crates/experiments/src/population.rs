//! Simulated subject populations.
//!
//! §VI-C: "Subjects should be selected from the backgrounds that might be
//! expected of an argument reader" — the stakeholder list of §II-A. Each
//! subject carries a formal-logic skill (the treatment-relevant trait),
//! reading speed, and diligence, drawn from per-background distributions.
//! All sampling is deterministic given the seed.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The reader backgrounds from Graydon §II-A/§VI-C.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Background {
    /// Software engineer (taught symbolic logic at university).
    SoftwareEngineer,
    /// Safety engineer / assessor.
    SafetyAssessor,
    /// Certification authority staff.
    Certifier,
    /// Engineering manager.
    Manager,
    /// Mechanical engineer.
    MechanicalEngineer,
    /// System operator.
    Operator,
}

impl Background {
    /// All backgrounds.
    pub const ALL: [Background; 6] = [
        Background::SoftwareEngineer,
        Background::SafetyAssessor,
        Background::Certifier,
        Background::Manager,
        Background::MechanicalEngineer,
        Background::Operator,
    ];

    /// Mean formal-logic skill in [0, 1] for the background. The ordering
    /// encodes the paper's premise: "software engineers learn symbolic,
    /// deductive logics at university, this is not necessarily true of
    /// managers, mechanical engineers, or safety assessors".
    pub fn mean_logic_skill(self) -> f64 {
        match self {
            Background::SoftwareEngineer => 0.80,
            Background::SafetyAssessor => 0.45,
            Background::Certifier => 0.40,
            Background::MechanicalEngineer => 0.35,
            Background::Manager => 0.20,
            Background::Operator => 0.15,
        }
    }
}

impl fmt::Display for Background {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Background::SoftwareEngineer => "software engineer",
            Background::SafetyAssessor => "safety assessor",
            Background::Certifier => "certifier",
            Background::Manager => "manager",
            Background::MechanicalEngineer => "mechanical engineer",
            Background::Operator => "operator",
        };
        f.write_str(name)
    }
}

/// One simulated subject.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Subject {
    /// Stable id within the pool.
    pub id: usize,
    /// Background.
    pub background: Background,
    /// Formal-logic skill in [0, 1].
    pub logic_skill: f64,
    /// Reading speed in words per minute (plain prose).
    pub reading_wpm: f64,
    /// Diligence in [0, 1]: scales detection probabilities.
    pub diligence: f64,
}

/// Pool-generation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoolConfig {
    /// Subjects per background.
    pub per_background: usize,
    /// Skill standard deviation around the background mean.
    pub skill_sd: f64,
    /// Mean reading speed (wpm) and its sd.
    pub wpm_mean: f64,
    /// Reading-speed standard deviation.
    pub wpm_sd: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            per_background: 20,
            skill_sd: 0.10,
            wpm_mean: 220.0,
            wpm_sd: 40.0,
            seed: 0xCA5E,
        }
    }
}

/// Samples a standard normal via Box–Muller.
pub fn standard_normal(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Generates a subject pool, deterministic in the seed.
pub fn generate(config: &PoolConfig) -> Vec<Subject> {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut out = Vec::new();
    let mut id = 0usize;
    for background in Background::ALL {
        for _ in 0..config.per_background {
            let skill = (background.mean_logic_skill()
                + config.skill_sd * standard_normal(&mut rng))
            .clamp(0.0, 1.0);
            let wpm = (config.wpm_mean + config.wpm_sd * standard_normal(&mut rng)).max(60.0);
            let diligence = (0.75 + 0.15 * standard_normal(&mut rng)).clamp(0.3, 1.0);
            out.push(Subject {
                id,
                background,
                logic_skill: skill,
                reading_wpm: wpm,
                diligence,
            });
            id += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_size_and_determinism() {
        let config = PoolConfig::default();
        let a = generate(&config);
        let b = generate(&config);
        assert_eq!(a.len(), 6 * 20);
        assert_eq!(a, b, "same seed must reproduce the pool");
        let other = generate(&PoolConfig { seed: 99, ..config });
        assert_ne!(a, other, "different seed should differ");
    }

    #[test]
    fn skills_reflect_background_ordering() {
        let pool = generate(&PoolConfig {
            per_background: 200,
            ..PoolConfig::default()
        });
        let mean = |bg: Background| {
            let xs: Vec<f64> = pool
                .iter()
                .filter(|s| s.background == bg)
                .map(|s| s.logic_skill)
                .collect();
            xs.iter().sum::<f64>() / xs.len() as f64
        };
        assert!(mean(Background::SoftwareEngineer) > mean(Background::SafetyAssessor));
        assert!(mean(Background::SafetyAssessor) > mean(Background::Manager));
        assert!(mean(Background::Manager) > mean(Background::Operator) - 0.1);
    }

    #[test]
    fn values_within_bounds() {
        for s in generate(&PoolConfig::default()) {
            assert!((0.0..=1.0).contains(&s.logic_skill));
            assert!(s.reading_wpm >= 60.0);
            assert!((0.3..=1.0).contains(&s.diligence));
        }
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let xs: Vec<f64> = (0..20_000).map(|_| standard_normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn background_display() {
        assert_eq!(Background::Manager.to_string(), "manager");
        assert_eq!(Background::ALL.len(), 6);
    }
}
