//! The paper's three dimensions of argument "formality" (Graydon §II-B).
//!
//! Formality is not one property: an argument may have (1) formally
//! specified *syntax*, (2) *symbolic* rather than natural-language content,
//! and (3) *deductive* rather than inductive inference — independently.
//! [`profile`] classifies an [`Argument`] along all three.

use crate::argument::Argument;
use crate::node::{EdgeKind, NodeKind};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One dimension of formality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Dimension {
    /// The argument's syntax conforms to a machine-checkable grammar
    /// (here: GSN or CAE well-formedness).
    SyntaxSpecified,
    /// Claims are expressed as symbols connected by operators.
    Symbolic,
    /// Support steps are deductive (child claims entail the parent).
    Deductive,
}

impl fmt::Display for Dimension {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Dimension::SyntaxSpecified => "syntax-specified",
            Dimension::Symbolic => "symbolic",
            Dimension::Deductive => "deductive",
        };
        f.write_str(name)
    }
}

/// How far an argument goes along each dimension.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Profile {
    /// Fraction of syntax rules satisfied: 1.0 means fully well-formed
    /// under the best-fitting notation (GSN or CAE).
    pub syntax: f64,
    /// Fraction of propositional nodes carrying symbolic payloads.
    pub symbolic: f64,
    /// Fraction of goal-support steps that are deductively valid (checked
    /// on formalised nodes only; `None` when nothing is checkable).
    pub deductive: Option<f64>,
}

impl Profile {
    /// The dimensions this argument can reasonably be said to have
    /// (thresholds: syntax = 1.0, symbolic ≥ 0.5, deductive = 1.0).
    pub fn dimensions(&self) -> Vec<Dimension> {
        let mut out = Vec::new();
        if self.syntax >= 1.0 {
            out.push(Dimension::SyntaxSpecified);
        }
        if self.symbolic >= 0.5 {
            out.push(Dimension::Symbolic);
        }
        if self.deductive == Some(1.0) {
            out.push(Dimension::Deductive);
        }
        out
    }

    /// True for a purely informal argument (no dimension reached).
    pub fn is_informal(&self) -> bool {
        self.dimensions().is_empty()
    }
}

/// Classifies `argument` along the three formality dimensions.
///
/// * `syntax`: 1.0 if GSN or CAE well-formedness finds no issues, else
///   `1 - issues/nodes` (floored at 0) for the better-fitting notation;
/// * `symbolic`: formalised propositional nodes / propositional nodes;
/// * `deductive`: over goals whose formal payload and whose supporting
///   goals' payloads are all propositional, the fraction where the
///   children's conjunction entails the parent.
pub fn profile(argument: &Argument) -> Profile {
    let n = argument.len().max(1) as f64;
    let gsn_issues = crate::gsn::check(argument).len() as f64;
    let cae_issues = crate::cae::check(argument).len() as f64;
    let syntax = (1.0 - gsn_issues.min(cae_issues) / n).max(0.0);

    let propositional: Vec<_> = argument
        .nodes()
        .filter(|node| node.kind.is_propositional())
        .collect();
    let symbolic = if propositional.is_empty() {
        0.0
    } else {
        propositional
            .iter()
            .filter(|node| node.is_formalised())
            .count() as f64
            / propositional.len() as f64
    };

    // One theory compilation for the whole profile; each step check is
    // an assumption round against it.
    let mut theory = crate::semantics::ArgumentTheory::compile(argument);
    let mut checkable = 0usize;
    let mut valid = 0usize;
    for node in &propositional {
        let idx = argument.node_idx(&node.id).expect("node is in the arena");
        if let Some(result) = theory.step_is_deductive(idx) {
            checkable += 1;
            if result {
                valid += 1;
            }
        }
    }
    let deductive = if checkable == 0 {
        None
    } else {
        Some(valid as f64 / checkable as f64)
    };

    Profile {
        syntax,
        symbolic,
        deductive,
    }
}

/// Counts, for reporting, how many nodes of each formality-relevant class
/// an argument has: (propositional nodes, formalised nodes, support edges).
pub fn formality_counts(argument: &Argument) -> (usize, usize, usize) {
    // Arena-order scans: no id hashing or sorting, one pass each.
    let propositional = argument
        .arena()
        .iter()
        .filter(|n| n.kind.is_propositional())
        .count();
    let formalised = argument.formalised_count();
    let support_edges = argument
        .edges_idx()
        .filter(|(_, _, kind)| *kind == EdgeKind::SupportedBy)
        .count();
    (propositional, formalised, support_edges)
}

/// Convenience: whether every goal in the argument is formalised — the
/// full-formalisation end state Rushby's proposal drives toward.
pub fn fully_symbolic(argument: &Argument) -> bool {
    argument
        .arena()
        .iter()
        .filter(|n| n.kind == NodeKind::Goal)
        .all(|n| n.is_formalised())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{FormalPayload, Node};
    use casekit_logic::prop::parse;

    fn informal() -> Argument {
        Argument::builder("informal")
            .add("g1", NodeKind::Goal, "Safe")
            .add("e1", NodeKind::Solution, "Tests")
            .supported_by("g1", "e1")
            .build()
            .unwrap()
    }

    fn symbolic_deductive() -> Argument {
        Argument::builder("formal")
            .node(
                Node::new("g1", NodeKind::Goal, "q holds")
                    .with_formal(FormalPayload::Prop(parse("q").unwrap())),
            )
            .node(
                Node::new("g2", NodeKind::Goal, "p and p->q")
                    .with_formal(FormalPayload::Prop(parse("p & (p -> q)").unwrap())),
            )
            .add("e1", NodeKind::Solution, "evidence for p and the rule")
            .supported_by("g1", "g2")
            .supported_by("g2", "e1")
            .build()
            .unwrap()
    }

    #[test]
    fn informal_argument_profile() {
        let p = profile(&informal());
        assert_eq!(p.syntax, 1.0); // well-formed GSN
        assert_eq!(p.symbolic, 0.0);
        assert_eq!(p.deductive, None);
        assert_eq!(p.dimensions(), vec![Dimension::SyntaxSpecified]);
        assert!(!p.is_informal()); // it *is* syntax-specified
    }

    #[test]
    fn symbolic_deductive_profile() {
        let p = profile(&symbolic_deductive());
        assert_eq!(p.syntax, 1.0);
        assert_eq!(p.symbolic, 1.0);
        assert_eq!(p.deductive, Some(1.0));
        let dims = p.dimensions();
        assert!(dims.contains(&Dimension::Symbolic));
        assert!(dims.contains(&Dimension::Deductive));
    }

    #[test]
    fn non_deductive_step_lowers_deductive_fraction() {
        let a = Argument::builder("weak")
            .node(
                Node::new("g1", NodeKind::Goal, "q holds")
                    .with_formal(FormalPayload::Prop(parse("q").unwrap())),
            )
            .node(
                Node::new("g2", NodeKind::Goal, "p holds")
                    .with_formal(FormalPayload::Prop(parse("p").unwrap())),
            )
            .add("e1", NodeKind::Solution, "evidence")
            .supported_by("g1", "g2") // p does not entail q
            .supported_by("g2", "e1")
            .build()
            .unwrap();
        let p = profile(&a);
        assert_eq!(p.deductive, Some(0.0));
        assert!(!p.dimensions().contains(&Dimension::Deductive));
    }

    #[test]
    fn ill_formed_argument_lowers_syntax_score() {
        let a = Argument::builder("bad")
            .add("e1", NodeKind::Solution, "E")
            .add("e2", NodeKind::Solution, "E2")
            .supported_by("e1", "e2")
            .build()
            .unwrap();
        let p = profile(&a);
        assert!(p.syntax < 1.0);
    }

    #[test]
    fn malformed_beyond_node_count_floors_at_zero() {
        // Single misplaced node can't push score below zero.
        let a = Argument::builder("tiny-bad")
            .add("e1", NodeKind::Solution, "floating")
            .build()
            .unwrap();
        let p = profile(&a);
        assert!(p.syntax >= 0.0);
    }

    #[test]
    fn counts_and_fully_symbolic() {
        let a = symbolic_deductive();
        let (prop_nodes, formalised, support) = formality_counts(&a);
        assert_eq!(prop_nodes, 2);
        assert_eq!(formalised, 2);
        assert_eq!(support, 2);
        assert!(fully_symbolic(&a));
        assert!(!fully_symbolic(&informal()));
    }

    #[test]
    fn dimension_display() {
        assert_eq!(Dimension::SyntaxSpecified.to_string(), "syntax-specified");
        assert_eq!(Dimension::Symbolic.to_string(), "symbolic");
        assert_eq!(Dimension::Deductive.to_string(), "deductive");
    }
}
