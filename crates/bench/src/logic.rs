//! Logic-core benchmark harness: seeded populations of formalised
//! arguments, the pre-interned per-query entailment path, and the
//! batch solver-session path that replaced it.
//!
//! The seed decided every entailment question by rebuilding a `Formula`
//! (cloning premises into a conjunction), Tseitin-converting it into
//! `BTreeSet` clauses keyed by string atoms, and recursively solving
//! with `BTreeMap` valuations — once per step check, once for the root,
//! and once per premise probed. [`LegacyEntailment`] reproduces that
//! access pattern faithfully against the preserved
//! [`legacy`] solver, so the speedup stays
//! measurable after the hot path moved on. [`interned_sweep`] is the
//! replacement: one [`ArgumentTheory`] compilation per argument, every
//! question an assume/check/retract round. [`bench_logic_json`] emits
//! the comparison as `BENCH_logic.json` (via `repro logic`), with both
//! engines' verdicts checked identical.

use casekit_core::semantics::{formal_conclusion, formal_premises, ArgumentTheory};
use casekit_core::{Argument, EdgeKind, FormalPayload, NodeIdx, NodeKind};
use casekit_experiments::generator::{generate, GeneratorConfig, SeededFormal};
use casekit_logic::prop::{
    legacy, Atom, Clause, ClauseSet, DpllSolver, Formula, Literal, SatResult, Solver, Var,
};
use serde::Serialize;

/// Generates a deterministic population of hazard-breakdown arguments
/// with formal payloads: a mix of clean, non-entailed (missing
/// support), and question-begging skeletons across a range of sizes.
pub fn seeded_population(count: usize, seed: u64) -> Vec<Argument> {
    (0..count)
        .map(|i| {
            let mut formal = Vec::new();
            if i % 3 == 1 {
                formal.push(SeededFormal::MissingSupport);
            }
            if i % 5 == 2 {
                formal.push(SeededFormal::Begging);
            }
            let config = GeneratorConfig {
                hazards: 8 + (i * 7) % 25,
                formal,
                informal: Vec::new(),
                seed: seed ^ (i as u64).wrapping_mul(0x9E37_79B9),
            };
            generate(&config)
                .expect("seeded population configs are valid")
                .case
                .argument
        })
        .collect()
}

/// Every entailment verdict a sweep produces for one argument. Both
/// engines must return exactly this, bit for bit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct SweepVerdict {
    /// Per checkable support step, in arena order: is it deductive?
    pub steps: Vec<bool>,
    /// Do the formal premises entail the formal conclusion?
    pub root_entailed: Option<bool>,
    /// Per formal premise, in sorted order: is it critical to the
    /// conclusion? (Empty unless the root is entailed.)
    pub critical: Vec<bool>,
}

/// The pre-refactor entailment path, kept as a measurable baseline:
/// formula cloning + Tseitin to `BTreeSet` clauses + recursive DPLL,
/// one full rebuild per query.
pub struct LegacyEntailment;

impl LegacyEntailment {
    /// `premises ⊢ conclusion` the old way: clone everything into one
    /// conjunction and solve from scratch.
    fn entails(premises: &[Formula], conclusion: &Formula) -> bool {
        let theory = Formula::conj(premises.iter().cloned()).and(conclusion.clone().not());
        matches!(legacy::dpll(&theory), SatResult::Unsat)
    }

    /// Formalised children supporting `idx`, transitively skipping
    /// unformalised strategies — the seed's traversal, replicated so the
    /// baseline discovers exactly the steps the compiled theory checks.
    fn formalised_support_children(argument: &Argument, idx: NodeIdx) -> Vec<NodeIdx> {
        let mut out = Vec::new();
        for child_idx in argument.children_idx(idx, EdgeKind::SupportedBy) {
            let child = argument.node_at(child_idx);
            if child.is_formalised() {
                out.push(child_idx);
            } else if child.kind == NodeKind::Strategy {
                out.extend(Self::formalised_support_children(argument, child_idx));
            }
        }
        out
    }

    /// The full per-argument sweep at the pre-refactor cost: every step
    /// check, the root entailment, and every premise probe rebuilds and
    /// re-solves its own formula.
    pub fn sweep(argument: &Argument) -> SweepVerdict {
        let prop_payload = |idx: NodeIdx| match &argument.node_at(idx).formal {
            Some(FormalPayload::Prop(f)) => Some(f),
            _ => None,
        };

        let mut steps = Vec::new();
        for idx in argument.node_indices() {
            let Some(target) = prop_payload(idx) else {
                continue;
            };
            let children = Self::formalised_support_children(argument, idx);
            if children.is_empty() {
                continue;
            }
            let premises: Vec<Formula> = children
                .iter()
                .filter_map(|&c| prop_payload(c).cloned())
                .collect();
            if premises.is_empty() {
                continue;
            }
            steps.push(Self::entails(&premises, target));
        }

        let premises: Vec<Formula> = formal_premises(argument).into_iter().cloned().collect();
        let conclusion = formal_conclusion(argument).cloned();
        let root_entailed = match (&conclusion, premises.is_empty()) {
            (Some(c), false) => Some(Self::entails(&premises, c)),
            _ => None,
        };

        let critical = if root_entailed == Some(true) {
            let conclusion = conclusion.expect("entailed implies a conclusion");
            (0..premises.len())
                .map(|skip| {
                    let kept: Vec<Formula> = premises
                        .iter()
                        .enumerate()
                        .filter(|(j, _)| *j != skip)
                        .map(|(_, p)| p.clone())
                        .collect();
                    !Self::entails(&kept, &conclusion)
                })
                .collect()
        } else {
            Vec::new()
        };

        SweepVerdict {
            steps,
            root_entailed,
            critical,
        }
    }
}

/// The same sweep through the interned solver core: one theory
/// compilation, every question an assumption round.
pub fn interned_sweep(argument: &Argument) -> SweepVerdict {
    let mut theory = ArgumentTheory::compile(argument);
    let steps = theory
        .step_indices()
        .into_iter()
        .map(|idx| {
            theory
                .step_is_deductive(idx)
                .expect("step_indices are checkable")
        })
        .collect();
    let root_entailed = theory.root_entailed();
    let critical = if root_entailed == Some(true) {
        let report = theory.probe().expect("entailed implies a conclusion");
        report.impacts.iter().map(|i| i.is_critical()).collect()
    } else {
        Vec::new()
    };
    SweepVerdict {
        steps,
        root_entailed,
        critical,
    }
}

// ---------------------------------------------------------------------------
// Hard instances: where chronological backtracking visibly degrades.
// ---------------------------------------------------------------------------

/// One synthetic hard instance in CNF over dense variable indices
/// (`(variable, positive)` literals).
#[derive(Debug, Clone)]
pub struct HardInstance {
    /// Display name, e.g. `chain12+php5into4`.
    pub name: String,
    /// Number of variables (chain + pigeonhole block).
    pub num_vars: usize,
    /// The clauses.
    pub clauses: Vec<Vec<(usize, bool)>>,
    /// Ground-truth satisfiability (by construction).
    pub expected_sat: bool,
}

/// Builds one hard instance: a *deep support chain* of `chain_depth`
/// padding variables in front of a *pigeonhole contradiction seed*.
///
/// The chain clauses (`~c_i | c_{i+1} | c_{i+2}` and friends) are
/// engineered so that (a) every chain variable occurs more often than
/// any pigeonhole variable — so an occurrence-ordered chronological
/// solver decides the irrelevant chain first — and (b) deciding the
/// chain all-positive satisfies no clause into a unit, so each chain
/// variable costs a real decision. The pigeonhole block (`pigeons`
/// into `pigeons - 1` holes when `sat` is false) is unsatisfiable
/// independently of the chain, which is the trap: chronological
/// backtracking re-refutes the pigeonhole block under every one of the
/// ~2^depth chain assignments, while conflict-driven learning refutes
/// it once, learns clauses mentioning only pigeonhole variables, and
/// backjumps over the chain entirely.
pub fn hard_instance(chain_depth: usize, pigeons: usize, sat: bool) -> HardInstance {
    assert!(chain_depth >= 4 && pigeons >= 2);
    let holes = if sat { pigeons } else { pigeons - 1 };
    let k = chain_depth;
    let mut clauses: Vec<Vec<(usize, bool)>> = Vec::new();
    // Two overlapping ternary families keep every chain variable mixed-
    // polarity (defeating pure-literal elimination) and frequent.
    for i in 0..k.saturating_sub(2) {
        clauses.push(vec![(i, false), (i + 1, true), (i + 2, true)]);
    }
    for i in 0..k.saturating_sub(3) {
        clauses.push(vec![(i, false), (i + 1, true), (i + 3, true)]);
    }
    // Caps: give the tail variables a negative occurrence too.
    for j in k.saturating_sub(3)..k {
        clauses.push(vec![(j, false), (0, true), (1, true)]);
    }
    // Pigeonhole block over fresh variables.
    let var = |p: usize, h: usize| k + p * holes + h;
    for p in 0..pigeons {
        clauses.push((0..holes).map(|h| (var(p, h), true)).collect());
    }
    for a in 0..pigeons {
        for b in a + 1..pigeons {
            for h in 0..holes {
                clauses.push(vec![(var(a, h), false), (var(b, h), false)]);
            }
        }
    }
    HardInstance {
        name: format!("chain{k}+php{pigeons}into{holes}"),
        num_vars: k + pigeons * holes,
        clauses,
        expected_sat: sat,
    }
}

/// The full-scale hard population for `repro logic`.
pub fn hard_population_full() -> Vec<HardInstance> {
    vec![
        hard_instance(13, 4, false),
        hard_instance(14, 4, false),
        hard_instance(15, 4, false),
        hard_instance(16, 4, false),
        hard_instance(17, 4, false),
        hard_instance(18, 4, false),
        hard_instance(13, 5, false),
        hard_instance(14, 5, false),
        hard_instance(15, 5, false),
        hard_instance(12, 4, true),
        hard_instance(14, 5, true),
    ]
}

/// The scaled-down population for the CI smoke gate (`--smoke`).
pub fn hard_population_smoke() -> Vec<HardInstance> {
    vec![
        hard_instance(10, 4, false),
        hard_instance(11, 4, false),
        hard_instance(12, 4, false),
        hard_instance(11, 5, false),
        hard_instance(10, 4, true),
    ]
}

/// Solves with the CDCL core; returns the verdict plus conflict and
/// learned-clause counts.
pub fn solve_hard_cdcl(inst: &HardInstance) -> (bool, u64, u64) {
    let mut s = Solver::new();
    let vars: Vec<Var> = (0..inst.num_vars).map(|_| s.new_var()).collect();
    let mut buf = Vec::new();
    for clause in &inst.clauses {
        buf.clear();
        buf.extend(clause.iter().map(|&(v, pos)| vars[v].lit(pos)));
        s.add_clause(&buf);
    }
    let sat = s.check();
    (sat, s.stats().conflicts, s.stats().learned)
}

/// Solves with the chronological watched-literal DPLL baseline.
pub fn solve_hard_dpll(inst: &HardInstance) -> (bool, u64) {
    let mut s = DpllSolver::new();
    let vars: Vec<Var> = (0..inst.num_vars).map(|_| s.new_var()).collect();
    let mut buf = Vec::new();
    for clause in &inst.clauses {
        buf.clear();
        buf.extend(clause.iter().map(|&(v, pos)| vars[v].lit(pos)));
        s.add_clause(&buf);
    }
    let sat = s.check();
    (sat, s.decisions())
}

/// Solves with the seed's recursive solver over string-keyed clauses.
pub fn solve_hard_legacy(inst: &HardInstance) -> bool {
    let mut cs = ClauseSet::new();
    let name = |v: usize| Atom::new(format!("v{v:04}"));
    for clause in &inst.clauses {
        cs.insert(Clause::from_literals(clause.iter().map(|&(v, pos)| {
            if pos {
                Literal::pos(name(v))
            } else {
                Literal::neg(name(v))
            }
        })));
    }
    legacy::dpll_clauses(&cs).is_sat()
}

/// The hard-instance comparison: CDCL vs chronological DPLL vs the
/// legacy recursive solver on the same population, verdicts verified
/// against each other *and* against the constructions' ground truth.
#[derive(Debug, Clone, Serialize)]
pub struct HardBenchReport {
    /// Instances in the population.
    pub instances: usize,
    /// How many are unsatisfiable by construction.
    pub unsat_instances: usize,
    /// Total clauses across the population.
    pub clauses: usize,
    /// Legacy recursive solver, milliseconds (best of 3, like every
    /// other arm).
    pub legacy_ms: f64,
    /// Chronological watched-literal DPLL, milliseconds (best of 3).
    pub dpll_ms: f64,
    /// CDCL core, milliseconds (best of 3).
    pub cdcl_ms: f64,
    /// Decisions the chronological DPLL needed.
    pub dpll_decisions: u64,
    /// Conflicts the CDCL core analyzed.
    pub cdcl_conflicts: u64,
    /// Clauses the CDCL core learned.
    pub cdcl_learned: u64,
    /// dpll / cdcl — the win of conflict-driven learning.
    pub dpll_over_cdcl: f64,
    /// legacy / cdcl.
    pub legacy_over_cdcl: f64,
    /// All three engines agree with each other and with ground truth
    /// on every instance.
    pub verdicts_agree: bool,
}

/// Runs the three-engine comparison over `population`.
pub fn run_hard_bench(population: &[HardInstance]) -> HardBenchReport {
    let (legacy_ms, legacy_verdicts) = crate::best_of_ms(3, || {
        population
            .iter()
            .map(solve_hard_legacy)
            .collect::<Vec<bool>>()
    });
    let (dpll_ms, dpll_verdicts) = crate::best_of_ms(3, || {
        population
            .iter()
            .map(solve_hard_dpll)
            .collect::<Vec<(bool, u64)>>()
    });
    let (cdcl_ms, cdcl_verdicts) = crate::best_of_ms(3, || {
        population
            .iter()
            .map(solve_hard_cdcl)
            .collect::<Vec<(bool, u64, u64)>>()
    });

    let verdicts_agree = population.iter().enumerate().all(|(i, inst)| {
        cdcl_verdicts[i].0 == inst.expected_sat
            && dpll_verdicts[i].0 == inst.expected_sat
            && legacy_verdicts[i] == inst.expected_sat
    });

    HardBenchReport {
        instances: population.len(),
        unsat_instances: population.iter().filter(|i| !i.expected_sat).count(),
        clauses: population.iter().map(|i| i.clauses.len()).sum(),
        legacy_ms,
        dpll_ms,
        cdcl_ms,
        dpll_decisions: dpll_verdicts.iter().map(|v| v.1).sum(),
        cdcl_conflicts: cdcl_verdicts.iter().map(|v| v.1).sum(),
        cdcl_learned: cdcl_verdicts.iter().map(|v| v.2).sum(),
        dpll_over_cdcl: dpll_ms / cdcl_ms.max(1e-9),
        legacy_over_cdcl: legacy_ms / cdcl_ms.max(1e-9),
        verdicts_agree,
    }
}

/// The measured comparison, serialized into `BENCH_logic.json`.
#[derive(Debug, Clone, Serialize)]
pub struct LogicBenchReport {
    /// Arguments in the seeded population.
    pub population: usize,
    /// Total entailment queries answered per engine (steps + roots +
    /// probes).
    pub queries: usize,
    /// Full legacy sweep (per-query clone + Tseitin + recursive DPLL),
    /// milliseconds (best of 3, like every other arm).
    pub legacy_ms: f64,
    /// Full batch sweep (one compilation per argument, CDCL sessions),
    /// milliseconds (best of 3).
    pub interned_ms: f64,
    /// legacy / interned.
    pub speedup: f64,
    /// Sanity: both engines returned identical verdicts on every
    /// argument.
    pub verdicts_agree: bool,
    /// The hard-instance CDCL-vs-DPLL-vs-legacy comparison.
    pub hard: HardBenchReport,
}

/// Runs the comparison over a seeded population of `count` arguments
/// plus the given hard-instance population.
pub fn run_logic_bench(count: usize, hard_population: &[HardInstance]) -> LogicBenchReport {
    let population = seeded_population(count, 0x10C1C);

    let (legacy_ms, legacy_verdicts) = crate::best_of_ms(3, || {
        population
            .iter()
            .map(LegacyEntailment::sweep)
            .collect::<Vec<SweepVerdict>>()
    });
    let (interned_ms, interned_verdicts) = crate::best_of_ms(3, || {
        population
            .iter()
            .map(interned_sweep)
            .collect::<Vec<SweepVerdict>>()
    });

    let queries = interned_verdicts
        .iter()
        .map(|v| v.steps.len() + usize::from(v.root_entailed.is_some()) + v.critical.len())
        .sum();

    LogicBenchReport {
        population: population.len(),
        queries,
        legacy_ms,
        interned_ms,
        speedup: legacy_ms / interned_ms.max(1e-9),
        verdicts_agree: legacy_verdicts == interned_verdicts,
        hard: run_hard_bench(hard_population),
    }
}

/// Renders the report as JSON (the `BENCH_logic.json` artifact).
pub fn bench_logic_json(report: &LogicBenchReport) -> String {
    serde_json::to_string_pretty(report).expect("report serializes")
}

/// Human-readable summary for the repro binary.
pub fn render_report(report: &LogicBenchReport) -> String {
    format!(
        "logic core batch entailment sweep over {} seeded theories / {} queries\n\
           legacy per-query (clone + Tseitin + recursive DPLL): {:>10.3} ms\n\
           interned batch (compile once + CDCL sessions):       {:>10.3} ms\n\
           speedup: {:.1}x   verdicts agree: {}\n\
         hard instances (deep chains + pigeonhole seeds), {} instances / {} clauses\n\
           legacy recursive:                {:>10.3} ms\n\
           chronological DPLL ({} decisions): {:>10.3} ms\n\
           CDCL ({} conflicts, {} learned):   {:>10.3} ms\n\
           CDCL over DPLL: {:.1}x   over legacy: {:.1}x   verdicts agree: {}\n",
        report.population,
        report.queries,
        report.legacy_ms,
        report.interned_ms,
        report.speedup,
        report.verdicts_agree,
        report.hard.instances,
        report.hard.clauses,
        report.hard.legacy_ms,
        report.hard.dpll_decisions,
        report.hard.dpll_ms,
        report.hard.cdcl_conflicts,
        report.hard.cdcl_learned,
        report.hard.cdcl_ms,
        report.hard.dpll_over_cdcl,
        report.hard.legacy_over_cdcl,
        report.hard.verdicts_agree
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_is_deterministic_and_mixed() {
        let a = seeded_population(12, 7);
        let b = seeded_population(12, 7);
        assert_eq!(a.len(), 12);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x, y);
        }
        // The defect mix yields both entailed and non-entailed roots.
        let verdicts: Vec<SweepVerdict> = a.iter().map(interned_sweep).collect();
        assert!(verdicts.iter().any(|v| v.root_entailed == Some(true)));
        assert!(verdicts.iter().any(|v| v.root_entailed == Some(false)));
    }

    #[test]
    fn engines_agree_verdict_for_verdict() {
        for argument in seeded_population(9, 42) {
            assert_eq!(
                LegacyEntailment::sweep(&argument),
                interned_sweep(&argument),
                "engine disagreement on {}",
                argument.name()
            );
        }
    }

    #[test]
    fn report_is_sane_at_small_scale() {
        // The acceptance-criteria 100+-theory run lives in the repro
        // binary; here we only check the harness plumbing.
        let tiny_hard = vec![hard_instance(5, 3, false), hard_instance(5, 3, true)];
        let report = run_logic_bench(6, &tiny_hard);
        assert!(report.verdicts_agree);
        assert!(report.hard.verdicts_agree);
        assert_eq!(report.population, 6);
        assert!(report.queries > report.population);
        let json = bench_logic_json(&report);
        assert!(json.contains("\"speedup\""));
        assert!(json.contains("\"dpll_over_cdcl\""));
        assert!(render_report(&report).contains("verdicts agree: true"));
    }

    #[test]
    fn hard_instances_have_the_constructed_verdicts_on_all_engines() {
        for inst in [
            hard_instance(6, 3, false),
            hard_instance(6, 3, true),
            hard_instance(7, 4, false),
            hard_instance(7, 4, true),
        ] {
            assert_eq!(
                solve_hard_cdcl(&inst).0,
                inst.expected_sat,
                "cdcl on {}",
                inst.name
            );
            assert_eq!(
                solve_hard_dpll(&inst).0,
                inst.expected_sat,
                "dpll on {}",
                inst.name
            );
            assert_eq!(
                solve_hard_legacy(&inst),
                inst.expected_sat,
                "legacy on {}",
                inst.name
            );
        }
    }

    #[test]
    fn chain_padding_defeats_chronological_but_not_cdcl_search() {
        // The structural claim behind the benchmark: on the unsat
        // instances, deepening the chain multiplies the chronological
        // solver's decisions but barely moves CDCL's conflict count.
        let shallow = hard_instance(6, 4, false);
        let deep = hard_instance(10, 4, false);
        let (_, d_shallow) = solve_hard_dpll(&shallow);
        let (_, d_deep) = solve_hard_dpll(&deep);
        assert!(
            d_deep > d_shallow * 4,
            "4 extra chain levels should multiply DPLL decisions \
             ({d_shallow} -> {d_deep})"
        );
        let (_, c_shallow, _) = solve_hard_cdcl(&shallow);
        let (_, c_deep, _) = solve_hard_cdcl(&deep);
        assert!(
            c_deep < c_shallow.max(1) * 4,
            "CDCL conflicts should stay core-bound ({c_shallow} -> {c_deep})"
        );
    }

    #[test]
    fn smoke_and_full_hard_populations_are_well_formed() {
        for pop in [hard_population_smoke(), hard_population_full()] {
            assert!(pop.iter().any(|i| i.expected_sat));
            assert!(pop.iter().any(|i| !i.expected_sat));
            for inst in &pop {
                assert!(inst.clauses.iter().all(|c| !c.is_empty()));
                let max_var = inst
                    .clauses
                    .iter()
                    .flatten()
                    .map(|&(v, _)| v)
                    .max()
                    .unwrap();
                assert!(max_var < inst.num_vars, "{}", inst.name);
            }
        }
    }
}
