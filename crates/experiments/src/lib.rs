//! # casekit-experiments
//!
//! Simulated versions of the five experimental studies Graydon sketches in
//! §VI of *Formal Assurance Arguments: A Solution In Search of a Problem?*
//! (DSN 2015), plus the statistics substrate needed to analyse them.
//!
//! **Substitution note** (DESIGN.md §5): the paper calls for studies with
//! human volunteers; none were run. Here, *simulated subjects* with
//! parameterised skill/background/speed distributions stand in, so that
//! the entire experimental pipeline — treatment assignment, measurement,
//! significance testing, agreement analysis — is executable and the
//! hypothesised effect *shapes* can be demonstrated and stress-tested.
//! Every run is deterministic given its seed.
//!
//! * [`stats`] — descriptives, Welch's t-test, Mann–Whitney U, Cohen's
//!   kappa and d.
//! * [`population`] — simulated subject pools.
//! * [`generator`] — synthetic GSN arguments with seeded formal and
//!   informal fallacies, including reconstructions of the three Greenwell
//!   case-study arguments with the published fallacy counts.
//! * [`reviewer`] — the simulated human reviewer model.
//! * [`runtime`] — the parallel experiment executor.
//! * [`exp_a`]–[`exp_e`] — the five studies.
//!
//! # Architecture: the experiment runtime
//!
//! Every study follows the same three-phase shape, and the [`runtime`]
//! module is the executor for the middle one:
//!
//! 1. **Materials** (serial) — subject pools, generated arguments, and
//!    their compiled theories are built once. Arguments that will be
//!    machine-checked are swept through
//!    [`runtime::machine_check_sweep`], which compiles and checks each
//!    propositional skeleton exactly once and memoises the
//!    deterministic findings, so no review ever recompiles a theory
//!    (re-asking callers share compilations through an immutable
//!    [`casekit_core::semantics::TheoryCache`]).
//! 2. **Measurement** (parallel) — the subject population is sharded
//!    across scoped worker threads by [`runtime::Runtime::map`]. Each
//!    subject draws from its own [`runtime::stream_rng`] stream derived
//!    from `(master seed, lane, subject index)`, which makes the worker
//!    count unobservable: `workers = k` produces byte-identical reports
//!    for every `k`, and `workers = 1` is exactly the old serial loop.
//! 3. **Analysis** (serial) — the ordered per-subject measurements are
//!    reduced through [`stats`], whose functions return
//!    [`stats::StatsError`] instead of panicking on degenerate samples.
//!
//! Each study exposes `run(&Config)` (serial) and
//! `run_with(&Config, &Runtime)`; both return `Result<Report, Error>`,
//! with [`Error`] folding together the statistics, generator, and
//! configuration failure modes.

#![forbid(unsafe_code)]

pub mod exp_a;
pub mod exp_b;
pub mod exp_c;
pub mod exp_d;
pub mod exp_e;
pub mod generator;
pub mod population;
pub mod reviewer;
pub mod runtime;
pub mod stats;

use std::fmt;

/// Why an experiment run failed.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A statistic could not be computed from the measured samples.
    Stats(stats::StatsError),
    /// The argument generator rejected its configuration.
    Generator(generator::GeneratorError),
    /// The experiment configuration is self-inconsistent (e.g. an odd
    /// evidence-leaf count where the design needs a critical/idle
    /// split).
    InvalidConfig(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Stats(e) => write!(f, "statistics error: {e}"),
            Error::Generator(e) => write!(f, "generator error: {e}"),
            Error::InvalidConfig(msg) => write!(f, "invalid experiment config: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Stats(e) => Some(e),
            Error::Generator(e) => Some(e),
            Error::InvalidConfig(_) => None,
        }
    }
}

impl From<stats::StatsError> for Error {
    fn from(e: stats::StatsError) -> Self {
        Error::Stats(e)
    }
}

impl From<generator::GeneratorError> for Error {
    fn from(e: generator::GeneratorError) -> Self {
        Error::Generator(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_wraps_and_renders_its_sources() {
        use std::error::Error as _;
        let stats_err: Error = stats::StatsError::EmptySample.into();
        assert!(stats_err.to_string().contains("statistics"));
        let gen_err: Error = generator::GeneratorError::TooFewHazards {
            hazards: 1,
            required: 2,
        }
        .into();
        assert!(gen_err.to_string().contains("generator"));
        let cfg_err = Error::InvalidConfig("odd leaves".into());
        assert!(cfg_err.to_string().contains("odd leaves"));
        assert!(stats_err.source().is_some());
        assert!(cfg_err.source().is_none());
    }
}
