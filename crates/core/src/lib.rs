//! # casekit-core
//!
//! The assurance-argument model: nodes, edges, notations, a text DSL,
//! renderers, hierarchical views, and bridges to formal logic.
//!
//! An *assurance case* comprises evidence and a structured argument
//! explaining how that evidence supports an assurance claim (Graydon §I).
//! This crate models the argument part in the notations the paper surveys:
//!
//! * [`Argument`] — the common graph model (GSN node kinds plus CAE's),
//!   built with [`ArgumentBuilder`] or parsed from the [`dsl`];
//! * [`gsn`] — well-formedness rules from the GSN Community Standard, and
//!   the stricter (deviating) Denney–Pai formalised variant;
//! * [`cae`] — Claims-Argument-Evidence rules;
//! * [`toulmin`] — Toulmin's model, including the extended textual form
//!   used for Haley et al.'s "inner" arguments;
//! * [`formality`] — the paper's three dimensions of argument formality;
//! * [`render`] — ASCII-tree, GraphViz DOT, and prose renderers;
//! * [`hicase`] — hierarchical (collapsible) views after Denney, Pai &
//!   Whiteside;
//! * [`semantics`] — compiling formal node payloads into a logical theory
//!   and checking deductive support relations;
//! * [`confidence`] — simple quantitative confidence propagation (the
//!   BBN-style modelling the paper's ref \[34\] discusses).
//!
//! # Architecture: the indexed arena graph core
//!
//! [`Argument`] stores its nodes in a dense arena (`Vec<Node>` addressed
//! by [`NodeIdx`], a `u32` newtype), an interner mapping each textual
//! [`NodeId`] to its arena index, and CSR (compressed sparse row)
//! outgoing/incoming adjacency tables built once at
//! [`ArgumentBuilder::build`]. Traversal is therefore O(degree) per node
//! and O(V+E) per whole-graph pass — never a scan of the full edge list.
//!
//! Callers choose between two planes:
//!
//! * the stable **`NodeId` plane** (`children`, `parents`,
//!   `descendants`, `roots`, …) — string-keyed, allocation-friendly,
//!   unchanged from the original `BTreeMap`-backed API; and
//! * the **`NodeIdx` plane** (`children_idx`, `parents_idx`,
//!   `edges_idx`, `reachable_from`, `sorted_indices`, …) — hash-free
//!   fast paths used internally by [`gsn`], [`cae`], [`render`],
//!   [`hicase`], [`semantics`], [`confidence`], [`autogen`], and the
//!   downstream query/experiment crates.
//!
//! See the [`argument`] module docs for the full layout and contracts.
//!
//! ```
//! use casekit_core::dsl::parse_argument;
//!
//! let arg = parse_argument(r#"
//!     argument "thrust reverser" {
//!       goal g1 "Thrust reversers are safe" {
//!         context c1 "Aircraft operating context"
//!         strategy s1 "Argue over interlock conditions" {
//!           goal g2 "Reversers inhibited in flight" formal "~on_grnd -> ~threv_en" {
//!             solution e1 "Interlock test results"
//!           }
//!         }
//!       }
//!     }
//! "#).unwrap();
//! assert_eq!(arg.len(), 5);
//! assert!(casekit_core::gsn::check(&arg).is_empty());
//! ```

#![forbid(unsafe_code)]

pub mod autogen;
pub mod cae;
pub mod confidence;
pub mod dsl;
pub mod formality;
pub mod gsn;
pub mod hicase;
pub mod render;
pub mod semantics;
pub mod toulmin;

pub mod argument;
mod node;

pub use argument::{Argument, ArgumentBuilder, ArgumentError, Edge, NodeIdx};
pub use node::{EdgeKind, FormalPayload, Node, NodeId, NodeKind};
