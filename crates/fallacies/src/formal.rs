//! Mechanical detectors for the propositional formal fallacies.
//!
//! Each detector works on a list of premises and a conclusion. Detectors
//! for the two syllogistic fallacies live in [`crate::syllogism`] because
//! they need term structure.
//!
//! Pattern-based fallacies (denying the antecedent, affirming the
//! consequent, false conversion) are reported only when the conclusion is
//! *not* independently entailed by the premises: citing `p → q, ¬p ∴ ¬q`
//! is harmless if some other premise legitimately yields `¬q` (the step is
//! redundant, not fallacious).
//!
//! All semantic questions (entailment, consistency, equivalence) run
//! against one compiled [`Theory`] session per entry point: premises and
//! conclusion are Tseitin-compiled once, and every question is an
//! `assume`/`check`/`retract` round. [`detect_all`] shares a single
//! session across all six detectors. Premises are accepted as anything
//! borrowable as a [`Formula`], so callers holding `Vec<&Formula>` (the
//! allocation-free path out of `casekit-core::semantics`) and callers
//! holding `Vec<Formula>` both work.

use crate::taxonomy::FormalFallacy;
use casekit_logic::prop::{Formula, Lit, Theory};
use serde::{Deserialize, Serialize};
use std::borrow::Borrow;
use std::fmt;

/// A formal-fallacy finding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Finding {
    /// Which fallacy.
    pub fallacy: FormalFallacy,
    /// Premise indices involved (empty when the finding is global).
    pub premises: Vec<usize>,
    /// Human-readable explanation.
    pub detail: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.fallacy, self.detail)
    }
}

/// Answers the detectors' satisfiability questions. The contract is
/// exact [`Theory::check_under`] semantics — implementations may only
/// change *how* the answer is computed (e.g. CaseLint's witness pool
/// answers SAT questions from cached models), never *what* it is, so
/// findings are identical under every oracle.
pub trait SatOracle {
    /// `Theory::check_under(assumptions)`, possibly short-circuited.
    fn sat_check(&mut self, theory: &mut Theory, assumptions: &[Lit]) -> bool;
}

/// The default oracle: every question is a real solver call.
pub struct SolverOracle;

impl SatOracle for SolverOracle {
    fn sat_check(&mut self, theory: &mut Theory, assumptions: &[Lit]) -> bool {
        theory.check_under(assumptions.iter().copied())
    }
}

/// One compiled premises/conclusion theory, shared by every detector.
struct Session<'t, 'o> {
    theory: &'t mut Theory,
    oracle: &'o mut dyn SatOracle,
    premise_lits: Vec<Lit>,
    conclusion_lit: Lit,
}

impl<'t, 'o> Session<'t, 'o> {
    /// Compiles the premises and conclusion into `theory`.
    fn compile<B: Borrow<Formula>>(
        theory: &'t mut Theory,
        oracle: &'o mut dyn SatOracle,
        premises: &[B],
        conclusion: &Formula,
    ) -> Self {
        let premise_lits = premises
            .iter()
            .map(|p| theory.formula_lit(p.borrow()))
            .collect();
        let conclusion_lit = theory.formula_lit(conclusion);
        Session {
            theory,
            oracle,
            premise_lits,
            conclusion_lit,
        }
    }

    /// Wraps literals already compiled elsewhere (e.g. by
    /// `casekit-core::semantics::ArgumentTheory`) — no recompilation.
    fn from_parts(
        theory: &'t mut Theory,
        oracle: &'o mut dyn SatOracle,
        premise_lits: Vec<Lit>,
        conclusion_lit: Lit,
    ) -> Self {
        Session {
            theory,
            oracle,
            premise_lits,
            conclusion_lit,
        }
    }

    /// Satisfiability of an assumption set, with automatic retraction.
    fn sat(&mut self, assumptions: &[Lit]) -> bool {
        self.oracle.sat_check(self.theory, assumptions)
    }

    /// Whether the full premise set entails the conclusion.
    fn entailed(&mut self) -> bool {
        let mut assumptions = self.premise_lits.clone();
        assumptions.push(!self.conclusion_lit);
        !self.sat(&assumptions)
    }

    /// Whether the premises are jointly satisfiable.
    fn premises_consistent(&mut self) -> bool {
        let assumptions = self.premise_lits.clone();
        self.sat(&assumptions)
    }

    /// Whether premises `0..=upto` are jointly unsatisfiable.
    fn prefix_inconsistent(&mut self, upto: usize) -> bool {
        let assumptions: Vec<Lit> = self.premise_lits[..=upto].to_vec();
        !self.sat(&assumptions)
    }

    /// Whether premise `i` and the conclusion contradict.
    fn premise_contradicts_conclusion(&mut self, i: usize) -> bool {
        !self.sat(&[self.premise_lits[i], self.conclusion_lit])
    }

    /// Whether premise `i` is logically equivalent to the conclusion.
    fn premise_equivalent_to_conclusion(&mut self, i: usize) -> bool {
        let p = self.premise_lits[i];
        let c = self.conclusion_lit;
        !self.sat(&[p, !c]) && !self.sat(&[c, !p])
    }
}

/// Runs every propositional detector over one shared solver session.
pub fn detect_all<B: Borrow<Formula>>(premises: &[B], conclusion: &Formula) -> Vec<Finding> {
    let mut theory = Theory::new();
    let mut oracle = SolverOracle;
    let session = Session::compile(&mut theory, &mut oracle, premises, conclusion);
    detect_all_session(session, premises, conclusion)
}

/// [`detect_all`] against formulas *already compiled* into `theory`:
/// `premise_lits`/`conclusion_lit` must be the compiled equivalents of
/// `premises`/`conclusion` (in the same order). Used by the machine
/// checker to reuse the one-per-argument `ArgumentTheory` compilation
/// instead of Tseitin-compiling every payload a second time.
pub fn detect_all_compiled<B: Borrow<Formula>>(
    theory: &mut Theory,
    premise_lits: Vec<Lit>,
    conclusion_lit: Lit,
    premises: &[B],
    conclusion: &Formula,
) -> Vec<Finding> {
    detect_all_compiled_with(
        theory,
        &mut SolverOracle,
        premise_lits,
        conclusion_lit,
        premises,
        conclusion,
    )
}

/// [`detect_all_compiled`] with an explicit [`SatOracle`], for callers
/// (CaseLint) that carry satisfiability caches across many questions
/// on the same session. Findings are identical for every conforming
/// oracle.
pub fn detect_all_compiled_with<B: Borrow<Formula>>(
    theory: &mut Theory,
    oracle: &mut dyn SatOracle,
    premise_lits: Vec<Lit>,
    conclusion_lit: Lit,
    premises: &[B],
    conclusion: &Formula,
) -> Vec<Finding> {
    let session = Session::from_parts(theory, oracle, premise_lits, conclusion_lit);
    detect_all_session(session, premises, conclusion)
}

fn detect_all_session<B: Borrow<Formula>>(
    mut session: Session<'_, '_>,
    premises: &[B],
    conclusion: &Formula,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    findings.extend(begging_in(&mut session, premises, conclusion));
    findings.extend(incompatible_in(&mut session, premises));
    findings.extend(contradiction_in(&mut session, premises, conclusion));
    let entailed = session.entailed();
    findings.extend(denying_in(premises, conclusion, entailed));
    findings.extend(affirming_in(premises, conclusion, entailed));
    findings.extend(conversion_in(premises, conclusion, entailed));
    findings
}

/// The conclusion appears among the premises (syntactically, or as a
/// logical equivalent — asserting `~~C` to prove `C` still begs).
pub fn begging_the_question<B: Borrow<Formula>>(
    premises: &[B],
    conclusion: &Formula,
) -> Vec<Finding> {
    let mut theory = Theory::new();
    let mut oracle = SolverOracle;
    let mut session = Session::compile(&mut theory, &mut oracle, premises, conclusion);
    begging_in(&mut session, premises, conclusion)
}

fn begging_in<B: Borrow<Formula>>(
    session: &mut Session,
    premises: &[B],
    conclusion: &Formula,
) -> Vec<Finding> {
    premises
        .iter()
        .map(Borrow::borrow)
        .enumerate()
        .filter(|(i, p)| *p == conclusion || session.premise_equivalent_to_conclusion(*i))
        .map(|(i, p)| Finding {
            fallacy: FormalFallacy::BeggingTheQuestion,
            premises: vec![i],
            detail: format!("premise {} (`{p}`) restates the conclusion", i + 1),
        })
        .collect()
}

/// The premises are jointly unsatisfiable.
pub fn incompatible_premises<B: Borrow<Formula>>(premises: &[B]) -> Vec<Finding> {
    if premises.is_empty() {
        return Vec::new();
    }
    let mut theory = Theory::new();
    let mut oracle = SolverOracle;
    let mut session = Session::compile(&mut theory, &mut oracle, premises, &Formula::True);
    incompatible_in(&mut session, premises)
}

fn incompatible_in<B: Borrow<Formula>>(session: &mut Session, premises: &[B]) -> Vec<Finding> {
    if premises.is_empty() || session.premises_consistent() {
        return Vec::new();
    }
    // Localise: find a minimal prefix set that is already contradictory
    // to help the reader (not necessarily minimal overall).
    for i in 0..premises.len() {
        if session.prefix_inconsistent(i) {
            return vec![Finding {
                fallacy: FormalFallacy::IncompatiblePremises,
                premises: (0..=i).collect(),
                detail: "the premises cannot all be true together".into(),
            }];
        }
    }
    // The full conjunction is contradictory, so the final prefix probe
    // must have fired above; if an oracle ever answers inconsistently,
    // implicate every premise rather than panic.
    vec![Finding {
        fallacy: FormalFallacy::IncompatiblePremises,
        premises: (0..premises.len()).collect(),
        detail: "the premises cannot all be true together".into(),
    }]
}

/// Some premise contradicts the conclusion (while the premises themselves
/// are consistent — otherwise `incompatible_premises` already fires).
pub fn premise_conclusion_contradiction<B: Borrow<Formula>>(
    premises: &[B],
    conclusion: &Formula,
) -> Vec<Finding> {
    let mut theory = Theory::new();
    let mut oracle = SolverOracle;
    let mut session = Session::compile(&mut theory, &mut oracle, premises, conclusion);
    contradiction_in(&mut session, premises, conclusion)
}

fn contradiction_in<B: Borrow<Formula>>(
    session: &mut Session,
    premises: &[B],
    _conclusion: &Formula,
) -> Vec<Finding> {
    if premises.is_empty() || !session.premises_consistent() {
        return Vec::new();
    }
    premises
        .iter()
        .map(Borrow::borrow)
        .enumerate()
        .filter(|(i, _)| session.premise_contradicts_conclusion(*i))
        .map(|(i, p)| Finding {
            fallacy: FormalFallacy::PremiseConclusionContradiction,
            premises: vec![i],
            detail: format!(
                "premise {} (`{p}`) cannot be true together with the conclusion",
                i + 1
            ),
        })
        .collect()
}

/// From `p → q` and `¬p`, concluding `¬q`.
pub fn denying_the_antecedent<B: Borrow<Formula>>(
    premises: &[B],
    conclusion: &Formula,
) -> Vec<Finding> {
    denying_in(premises, conclusion, entailed_fresh(premises, conclusion))
}

/// One-off entailment check for the standalone detector entry points.
fn entailed_fresh<B: Borrow<Formula>>(premises: &[B], conclusion: &Formula) -> bool {
    let mut theory = Theory::new();
    let mut oracle = SolverOracle;
    Session::compile(&mut theory, &mut oracle, premises, conclusion).entailed()
}

fn denying_in<B: Borrow<Formula>>(
    premises: &[B],
    conclusion: &Formula,
    entailed: bool,
) -> Vec<Finding> {
    pattern_fallacy(
        premises,
        conclusion,
        FormalFallacy::DenyingTheAntecedent,
        entailed,
        |antecedent, consequent, other, conclusion| {
            other.is_negation_of(antecedent) && conclusion.is_negation_of(consequent)
        },
    )
}

/// From `p → q` and `q`, concluding `p`.
pub fn affirming_the_consequent<B: Borrow<Formula>>(
    premises: &[B],
    conclusion: &Formula,
) -> Vec<Finding> {
    affirming_in(premises, conclusion, entailed_fresh(premises, conclusion))
}

fn affirming_in<B: Borrow<Formula>>(
    premises: &[B],
    conclusion: &Formula,
    entailed: bool,
) -> Vec<Finding> {
    pattern_fallacy(
        premises,
        conclusion,
        FormalFallacy::AffirmingTheConsequent,
        entailed,
        |antecedent, consequent, other, conclusion| other == consequent && conclusion == antecedent,
    )
}

/// Shared scaffolding: find an implication premise `a → c` and a second
/// premise `other` such that `matcher(a, c, other, conclusion)` holds, and
/// the conclusion is not independently entailed.
fn pattern_fallacy<B: Borrow<Formula>>(
    premises: &[B],
    conclusion: &Formula,
    fallacy: FormalFallacy,
    entailed: bool,
    matcher: impl Fn(&Formula, &Formula, &Formula, &Formula) -> bool,
) -> Vec<Finding> {
    let mut out = Vec::new();
    if entailed {
        return out;
    }
    for (i, p) in premises.iter().map(Borrow::borrow).enumerate() {
        let (a, c) = match p {
            Formula::Implies(a, c) => (a.as_ref(), c.as_ref()),
            _ => continue,
        };
        for (j, other) in premises.iter().map(Borrow::borrow).enumerate() {
            if i == j {
                continue;
            }
            if matcher(a, c, other, conclusion) {
                out.push(Finding {
                    fallacy,
                    premises: vec![i, j],
                    detail: format!(
                        "premises {} (`{p}`) and {} (`{other}`) do not license `{conclusion}`",
                        i + 1,
                        j + 1
                    ),
                });
            }
        }
    }
    out
}

/// From `p → q`, concluding `q → p`.
pub fn false_conversion<B: Borrow<Formula>>(premises: &[B], conclusion: &Formula) -> Vec<Finding> {
    conversion_in(premises, conclusion, entailed_fresh(premises, conclusion))
}

fn conversion_in<B: Borrow<Formula>>(
    premises: &[B],
    conclusion: &Formula,
    entailed: bool,
) -> Vec<Finding> {
    if entailed {
        return Vec::new();
    }
    let (ca, cc) = match conclusion {
        Formula::Implies(a, c) => (a.as_ref(), c.as_ref()),
        _ => return Vec::new(),
    };
    premises
        .iter()
        .map(Borrow::borrow)
        .enumerate()
        .filter(|(_, p)| match p {
            Formula::Implies(a, c) => a.as_ref() == cc && c.as_ref() == ca,
            _ => false,
        })
        .map(|(i, p)| Finding {
            fallacy: FormalFallacy::FalseConversion,
            premises: vec![i],
            detail: format!("`{conclusion}` merely converts premise {} (`{p}`)", i + 1),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use casekit_logic::prop::parse;

    fn f(s: &str) -> Formula {
        parse(s).unwrap()
    }

    #[test]
    fn begging_detected_syntactic_and_equivalent() {
        let premises = vec![f("safe"), f("tests_pass")];
        let found = begging_the_question(&premises, &f("safe"));
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].premises, vec![0]);
        // Equivalent form also begs.
        let premises = vec![f("~~safe")];
        assert_eq!(begging_the_question(&premises, &f("safe")).len(), 1);
        // Unrelated premises don't.
        assert!(begging_the_question(&[f("p")], &f("q")).is_empty());
    }

    #[test]
    fn incompatible_premises_detected_and_localised() {
        let premises = vec![f("p"), f("q"), f("~p")];
        let found = incompatible_premises(&premises);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].premises, vec![0, 1, 2]);
        assert!(incompatible_premises(&[f("p"), f("q")]).is_empty());
        assert!(incompatible_premises::<Formula>(&[]).is_empty());
    }

    #[test]
    fn premise_conclusion_contradiction_detected() {
        let premises = vec![f("task_runs_forever"), f("cpu_ok")];
        let found = premise_conclusion_contradiction(&premises, &f("~task_runs_forever"));
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].premises, vec![0]);
        // Not reported when premises are already jointly inconsistent.
        let premises = vec![f("p"), f("~p")];
        assert!(premise_conclusion_contradiction(&premises, &f("q")).is_empty());
    }

    #[test]
    fn denying_the_antecedent_detected() {
        let premises = vec![f("on_grnd -> threv_ok"), f("~on_grnd")];
        let found = denying_the_antecedent(&premises, &f("~threv_ok"));
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].premises, vec![0, 1]);
    }

    #[test]
    fn denying_the_antecedent_not_reported_when_entailed() {
        // Extra premise legitimately yields the conclusion: no fallacy.
        let premises = vec![f("p -> q"), f("~p"), f("~q")];
        assert!(denying_the_antecedent(&premises, &f("~q")).is_empty());
    }

    #[test]
    fn affirming_the_consequent_detected() {
        let premises = vec![f("fault -> alarm"), f("alarm")];
        let found = affirming_the_consequent(&premises, &f("fault"));
        assert_eq!(found.len(), 1);
        // Valid modus ponens is not flagged.
        let premises = vec![f("fault -> alarm"), f("fault")];
        assert!(affirming_the_consequent(&premises, &f("alarm")).is_empty());
    }

    #[test]
    fn false_conversion_detected() {
        let premises = vec![f("verified -> safe")];
        let found = false_conversion(&premises, &f("safe -> verified"));
        assert_eq!(found.len(), 1);
        // A biconditional premise legitimises the conversion.
        let premises = vec![f("verified -> safe"), f("verified <-> safe")];
        assert!(false_conversion(&premises, &f("safe -> verified")).is_empty());
    }

    #[test]
    fn detect_all_aggregates() {
        let premises = vec![f("p -> q"), f("~p"), f("r"), f("~r")];
        let findings = detect_all(&premises, &f("~q"));
        let kinds: Vec<_> = findings.iter().map(|x| x.fallacy).collect();
        assert!(kinds.contains(&FormalFallacy::IncompatiblePremises));
        // Denying-the-antecedent is masked here: inconsistent premises
        // entail everything, so the conclusion is "entailed".
        assert!(!kinds.contains(&FormalFallacy::DenyingTheAntecedent));
    }

    #[test]
    fn detect_all_over_borrowed_premises() {
        // The allocation-free path: Vec<&Formula> straight out of
        // semantics::formal_premises.
        let owned = [f("p -> q"), f("p")];
        let borrowed: Vec<&Formula> = owned.iter().collect();
        assert!(detect_all(&borrowed, &f("q")).is_empty());
        let begging: Vec<&Formula> = owned.iter().take(1).collect();
        assert_eq!(begging_the_question(&begging, &f("p -> q")).len(), 1);
    }

    #[test]
    fn clean_deduction_yields_no_findings() {
        let premises = vec![f("p -> q"), f("p")];
        assert!(detect_all(&premises, &f("q")).is_empty());
        // The Haley proof premises against its conclusion.
        let premises = vec![f("I -> V"), f("C -> H"), f("Y -> V & C"), f("D -> Y")];
        assert!(detect_all(&premises, &f("D -> H")).is_empty());
    }

    #[test]
    fn finding_display() {
        let premises = vec![f("p")];
        let found = begging_the_question(&premises, &f("p"));
        assert!(found[0].to_string().contains("begging the question"));
    }
}
