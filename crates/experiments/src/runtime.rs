//! The parallel experiment runtime: scoped-thread fan-out over subject
//! populations with deterministic per-subject RNG streams.
//!
//! The §VI studies simulate hundreds to thousands of independent
//! subjects. Each subject's measurements are a pure function of (the
//! subject, the shared immutable study materials, a per-subject RNG
//! stream), so the population shards cleanly across worker threads.
//! Three design rules keep parallel runs *byte-identical* to serial
//! ones:
//!
//! 1. **Per-subject streams** — [`stream_rng`] derives an independent
//!    ChaCha stream from `(master seed, lane, subject index)`, so a
//!    subject's draws never depend on which worker ran it or on how
//!    many subjects ran before it. Sweeps over one `(seed, lane)` pair
//!    amortize the mixing through a [`StreamLane`].
//! 2. **Order-preserving fan-out** — [`Runtime::map`] shards the
//!    population into contiguous per-worker chunks and reassembles
//!    results in input order; reductions then run serially over that
//!    stable order.
//! 3. **Shared immutable materials** — generated arguments, their
//!    machine-check findings, and (for callers that keep asking) their
//!    compiled theories are built once and only read inside workers.
//!    [`machine_check_sweep`] compiles and checks each argument exactly
//!    once across the whole run, so a review never recompiles a theory;
//!    [`machine_check_sweep_cached`] serves the re-asking case by
//!    cloning per-question solver sessions out of an immutable
//!    [`TheoryCache`].
//!
//! The executor itself lives in the bottom-layer `casekit-runtime`
//! crate (re-exported here as [`Runtime`]), where the AF engine's
//! SCC-decomposed solver shares it: see that crate's docs for the
//! chunk-granularity clamp that keeps tiny populations inline and the
//! `RUNTIME_WORKERS` environment contract. `Runtime { workers: 1 }`
//! runs everything on the calling thread — exactly the serial loops
//! the experiments had before this module existed. The `workers: k`
//! reports for any `k` are asserted identical in the crate's
//! determinism tests and measured in `repro experiments`
//! (`BENCH_experiments.json`).

use casekit_core::semantics::{ArgumentTheory, TheoryCache};
use casekit_core::Argument;
use casekit_fallacies::checker::{check_compiled, MachineReport};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::borrow::Borrow;

pub use casekit_runtime::{Runtime, MIN_CHUNK};

/// One `(master seed, lane)` pair with its seed-and-lane mixing
/// pre-applied, so a sweep over a population derives each subject's
/// stream with one multiply and one finalizer instead of re-mixing the
/// lane constants per subject. [`stream_rng`] is the one-shot wrapper.
#[derive(Debug, Clone, Copy)]
pub struct StreamLane {
    mixed: u64,
}

impl StreamLane {
    /// Fixes the `(seed, lane)` part of the stream derivation.
    pub fn new(seed: u64, lane: u64) -> Self {
        StreamLane {
            mixed: seed ^ lane.wrapping_mul(0xA076_1D64_78BD_642F),
        }
    }

    /// The RNG stream for subject `index` within this lane. Identical
    /// to [`stream_rng`] with the same `(seed, lane, index)` triple.
    pub fn rng(&self, index: u64) -> ChaCha8Rng {
        let mut x = self.mixed ^ index.wrapping_mul(0xE703_7ED1_A0B4_28DB);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        ChaCha8Rng::seed_from_u64(x)
    }
}

/// The RNG stream for one unit of simulated work.
///
/// `seed` is the experiment's master seed, `lane` separates phases that
/// reuse subject indices (e.g. the argument sizes of experiment B), and
/// `index` is the subject's position. The three are mixed through a
/// SplitMix64 finalizer so neighbouring indices land in unrelated
/// ChaCha streams. Worker count and execution order never enter the
/// derivation — the heart of the serial/parallel equivalence.
pub fn stream_rng(seed: u64, lane: u64, index: u64) -> ChaCha8Rng {
    StreamLane::new(seed, lane).rng(index)
}

/// Machine-checks a population of arguments: one theory compilation and
/// one [`check_compiled`] pass per argument, fanned across the runtime's
/// workers.
///
/// This is the §VI-A machine arm at population scale — the reports are
/// deterministic, so experiment code calls this once and shares the
/// findings across every simulated review of the same argument instead
/// of recompiling per review. Each freshly compiled theory is checked
/// in place inside its worker (a sweep asks exactly one question set
/// per argument, so nothing is cached); callers that keep re-asking
/// about the same arguments should compile into a [`TheoryCache`] and
/// clone per-question sessions out of it instead.
pub fn machine_check_sweep<A>(arguments: &[A], runtime: &Runtime) -> Vec<MachineReport>
where
    A: Borrow<Argument> + Sync,
{
    runtime.map(arguments, |_, a| {
        let mut theory = ArgumentTheory::compile(a.borrow());
        check_compiled(a.borrow(), &mut theory)
    })
}

/// [`machine_check_sweep`] against theories already compiled into a
/// shared [`TheoryCache`]: every worker clones a private session out of
/// the immutable cache instead of recompiling the argument's payloads.
///
/// Use this when the cache outlives the sweep (the compilations are
/// about to serve further probes or what-if rounds); for a one-shot
/// sweep, [`machine_check_sweep`] avoids the per-argument session
/// clone.
///
/// # Panics
///
/// Panics if `cache` holds fewer theories than `arguments` (they must
/// be built from the same slice).
pub fn machine_check_sweep_cached<A>(
    arguments: &[A],
    cache: &TheoryCache,
    runtime: &Runtime,
) -> Vec<MachineReport>
where
    A: Borrow<Argument> + Sync,
{
    runtime.map(arguments, |i, a| {
        let mut session = cache.session(i);
        check_compiled(a.borrow(), &mut session)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GeneratorConfig, SeededFormal};
    use casekit_fallacies::checker::check_argument;
    use rand::Rng;

    #[test]
    fn map_preserves_input_order_for_every_worker_count() {
        let items: Vec<usize> = (0..103).collect();
        let serial = Runtime::serial().map(&items, |i, &x| (i, x * 2));
        for workers in [2, 3, 4, 8, 64, 1000] {
            let parallel = Runtime::with_workers(workers).map(&items, |i, &x| (i, x * 2));
            assert_eq!(serial, parallel, "workers = {workers}");
        }
    }

    #[test]
    fn stream_rng_is_per_index_deterministic_and_lane_separated() {
        let draws = |lane: u64, index: u64| -> Vec<f64> {
            let mut rng = stream_rng(0xFEED, lane, index);
            (0..4).map(|_| rng.gen::<f64>()).collect()
        };
        assert_eq!(draws(0, 5), draws(0, 5));
        assert_ne!(draws(0, 5), draws(0, 6));
        assert_ne!(draws(0, 5), draws(1, 5));
    }

    #[test]
    fn stream_lane_matches_the_one_shot_derivation() {
        // The amortized lane must produce byte-identical streams — the
        // derivation is part of the reports' determinism contract.
        let lane = StreamLane::new(0x5CA1E, 3);
        for index in [0u64, 1, 7, 1000, u64::MAX] {
            let mut a = lane.rng(index);
            let mut b = stream_rng(0x5CA1E, 3, index);
            let da: Vec<u64> = (0..4).map(|_| a.gen::<u64>()).collect();
            let db: Vec<u64> = (0..4).map(|_| b.gen::<u64>()).collect();
            assert_eq!(da, db, "index {index}");
        }
    }

    #[test]
    fn env_configured_runtime_matches_serial_results() {
        let items: Vec<usize> = (0..57).collect();
        let serial = Runtime::serial().map(&items, |i, &x| (i, x.wrapping_mul(31)));
        let from_env = Runtime::from_env().map(&items, |i, &x| (i, x.wrapping_mul(31)));
        assert_eq!(serial, from_env);
    }

    #[test]
    fn machine_check_sweep_matches_per_argument_checks() {
        let arguments: Vec<Argument> = (0..6)
            .map(|i| {
                let formal = match i % 3 {
                    0 => vec![],
                    1 => vec![SeededFormal::Begging],
                    _ => vec![SeededFormal::MissingSupport],
                };
                generate(&GeneratorConfig {
                    hazards: 4 + i,
                    formal,
                    informal: Vec::new(),
                    seed: 0x5EED + i as u64,
                })
                .unwrap()
                .case
                .argument
            })
            .collect();
        let expected: Vec<MachineReport> = arguments.iter().map(check_argument).collect();
        for workers in [1, 2, 4] {
            let swept = machine_check_sweep(&arguments, &Runtime::with_workers(workers));
            assert_eq!(swept, expected, "workers = {workers}");
            // The cached variant (shared compilations, cloned sessions)
            // returns the same reports.
            let cache = TheoryCache::compile(arguments.iter());
            let cached =
                machine_check_sweep_cached(&arguments, &cache, &Runtime::with_workers(workers));
            assert_eq!(cached, expected, "cached, workers = {workers}");
        }
    }
}
