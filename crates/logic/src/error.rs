//! Shared error types for the logic substrates.

use std::fmt;

/// A half-open byte range into a source string, used to locate parse errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character of the offending region.
    pub start: usize,
    /// Byte offset one past the last character of the offending region.
    pub end: usize,
}

impl Span {
    /// Creates a span covering `start..end`.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// A zero-width span at `pos`, used for end-of-input errors.
    pub fn point(pos: usize) -> Self {
        Span {
            start: pos,
            end: pos,
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// An error produced while parsing a formula, term, proof, or program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// Where in the input the problem was detected.
    pub span: Span,
}

impl ParseError {
    /// Creates a parse error with the given message and location.
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        ParseError {
            message: message.into(),
            span,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Errors produced by logic-engine operations other than parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogicError {
    /// A proof step referenced a line that does not exist (or is not yet
    /// available at that point in the proof).
    BadLineReference {
        /// The proof line making the reference.
        at_line: usize,
        /// The referenced line number.
        referenced: usize,
    },
    /// A proof step's cited rule does not justify its formula.
    InvalidStep {
        /// The offending proof line (1-based, as printed).
        line: usize,
        /// Why the step is not justified.
        reason: String,
    },
    /// The resolution/SLD engine exceeded its depth or work budget.
    BudgetExhausted {
        /// The budget that was exceeded, in engine-specific units.
        budget: usize,
    },
    /// A symbol was used in a way inconsistent with its declared sort.
    SortViolation {
        /// The offending symbol.
        symbol: String,
        /// Description of the clash.
        detail: String,
    },
    /// A name was referenced but never declared.
    Undeclared {
        /// The undeclared name.
        name: String,
    },
    /// An enumeration-based procedure (truth table, model listing) was
    /// asked to cover more atoms than it can enumerate.
    TooManyAtoms {
        /// How many atoms the formula has.
        atoms: usize,
        /// The procedure's limit.
        limit: usize,
    },
    /// An argumentation-framework operation referenced an argument id
    /// that the framework never allocated.
    UnknownArgument {
        /// The out-of-range argument id.
        id: usize,
        /// How many arguments the framework holds (valid ids are
        /// `0..arguments`).
        arguments: usize,
    },
    /// A Kripke-structure operation referenced a state id that the
    /// structure never allocated.
    UnknownState {
        /// The out-of-range state id.
        id: usize,
        /// How many states the structure holds (valid ids are
        /// `0..states`).
        states: usize,
    },
    /// A model-checking run was asked for on a Kripke structure with no
    /// initial states, so there is nothing to check.
    NoInitialState,
    /// An operation that requires a ground (variable-free) term was
    /// given a term containing variables.
    NonGroundTerm {
        /// Rendering of the offending term.
        term: String,
    },
    /// An axiom's conclusion mentions a variable that its trigger does
    /// not bind, so applying the axiom could produce non-ground facts.
    UnguardedVariable {
        /// The unbound variable name.
        variable: String,
        /// Rendering of the offending axiom.
        axiom: String,
    },
}

impl fmt::Display for LogicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogicError::BadLineReference {
                at_line,
                referenced,
            } => {
                write!(
                    f,
                    "line {at_line} references line {referenced}, which is not available"
                )
            }
            LogicError::InvalidStep { line, reason } => {
                write!(f, "invalid step at line {line}: {reason}")
            }
            LogicError::BudgetExhausted { budget } => {
                write!(f, "inference budget of {budget} exhausted")
            }
            LogicError::SortViolation { symbol, detail } => {
                write!(f, "sort violation on `{symbol}`: {detail}")
            }
            LogicError::Undeclared { name } => write!(f, "`{name}` was not declared"),
            LogicError::TooManyAtoms { atoms, limit } => {
                write!(
                    f,
                    "{atoms} atoms exceed the enumeration limit of {limit}; \
                     use the solver for deciding"
                )
            }
            LogicError::UnknownArgument { id, arguments } => {
                write!(
                    f,
                    "argument id {id} is out of range for a framework of \
                     {arguments} argument(s)"
                )
            }
            LogicError::UnknownState { id, states } => {
                write!(
                    f,
                    "state id {id} is out of range for a structure of \
                     {states} state(s)"
                )
            }
            LogicError::NoInitialState => {
                write!(f, "the Kripke structure has no initial states")
            }
            LogicError::NonGroundTerm { term } => {
                write!(
                    f,
                    "`{term}` contains variables where a ground term is required"
                )
            }
            LogicError::UnguardedVariable { variable, axiom } => {
                write!(
                    f,
                    "variable `{variable}` in `{axiom}` is not bound by the \
                     axiom's trigger"
                )
            }
        }
    }
}

impl std::error::Error for LogicError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_display() {
        assert_eq!(Span::new(3, 7).to_string(), "3..7");
        assert_eq!(Span::point(5).to_string(), "5..5");
    }

    #[test]
    fn parse_error_display_mentions_span_and_message() {
        let e = ParseError::new("unexpected token", Span::new(1, 2));
        let s = e.to_string();
        assert!(s.contains("1..2"));
        assert!(s.contains("unexpected token"));
    }

    #[test]
    fn logic_error_display() {
        let e = LogicError::InvalidStep {
            line: 4,
            reason: "Detach needs an implication".into(),
        };
        assert!(e.to_string().contains("line 4"));
        let e = LogicError::BudgetExhausted { budget: 100 };
        assert!(e.to_string().contains("100"));
        let e = LogicError::SortViolation {
            symbol: "bank".into(),
            detail: "used as both Institution and Landform".into(),
        };
        assert!(e.to_string().contains("bank"));
        let e = LogicError::Undeclared { name: "x".into() };
        assert!(e.to_string().contains("x"));
        let e = LogicError::BadLineReference {
            at_line: 6,
            referenced: 9,
        };
        assert!(e.to_string().contains('9'));
        let e = LogicError::TooManyAtoms {
            atoms: 30,
            limit: 24,
        };
        assert!(e.to_string().contains("30"));
        assert!(e.to_string().contains("24"));
        let e = LogicError::UnknownArgument {
            id: 17,
            arguments: 4,
        };
        assert!(e.to_string().contains("17"));
        assert!(e.to_string().contains('4'));
        let e = LogicError::UnknownState { id: 9, states: 3 };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('3'));
        let e = LogicError::NoInitialState;
        assert!(e.to_string().contains("initial"));
        let e = LogicError::NonGroundTerm {
            term: "tap(X, bob)".into(),
        };
        assert!(e.to_string().contains("tap(X, bob)"));
        let e = LogicError::UnguardedVariable {
            variable: "W".into(),
            axiom: "tap(U) initiates seen(W)".into(),
        };
        assert!(e.to_string().contains('W'));
        assert!(e.to_string().contains("seen(W)"));
    }
}
