//! LTL formula syntax.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// A linear temporal logic formula.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Ltl {
    /// Constant true.
    True,
    /// Constant false.
    False,
    /// An atomic proposition.
    Prop(Arc<str>),
    /// Negation.
    Not(Arc<Ltl>),
    /// Conjunction.
    And(Arc<Ltl>, Arc<Ltl>),
    /// Disjunction.
    Or(Arc<Ltl>, Arc<Ltl>),
    /// Implication.
    Implies(Arc<Ltl>, Arc<Ltl>),
    /// Next: `X p` holds iff `p` holds at the next step.
    Next(Arc<Ltl>),
    /// Finally (eventually): `F p`.
    Finally(Arc<Ltl>),
    /// Globally (always): `G p`.
    Globally(Arc<Ltl>),
    /// Until: `p U q` — `q` eventually holds, and `p` holds until then.
    Until(Arc<Ltl>, Arc<Ltl>),
    /// Release: `p R q` — `q` holds up to and including the step where `p`
    /// first holds; if `p` never holds, `q` holds forever.
    Release(Arc<Ltl>, Arc<Ltl>),
}

impl Ltl {
    /// An atomic proposition.
    pub fn prop(name: impl AsRef<str>) -> Ltl {
        Ltl::Prop(Arc::from(name.as_ref()))
    }

    /// Negation of `self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Ltl {
        Ltl::Not(Arc::new(self))
    }

    /// `self & rhs`.
    pub fn and(self, rhs: Ltl) -> Ltl {
        Ltl::And(Arc::new(self), Arc::new(rhs))
    }

    /// `self | rhs`.
    pub fn or(self, rhs: Ltl) -> Ltl {
        Ltl::Or(Arc::new(self), Arc::new(rhs))
    }

    /// `self -> rhs`.
    pub fn implies(self, rhs: Ltl) -> Ltl {
        Ltl::Implies(Arc::new(self), Arc::new(rhs))
    }

    /// `X self`.
    pub fn next(self) -> Ltl {
        Ltl::Next(Arc::new(self))
    }

    /// `F self`.
    pub fn finally(self) -> Ltl {
        Ltl::Finally(Arc::new(self))
    }

    /// `G self`.
    pub fn globally(self) -> Ltl {
        Ltl::Globally(Arc::new(self))
    }

    /// `self U rhs`.
    pub fn until(self, rhs: Ltl) -> Ltl {
        Ltl::Until(Arc::new(self), Arc::new(rhs))
    }

    /// `self R rhs`.
    pub fn release(self, rhs: Ltl) -> Ltl {
        Ltl::Release(Arc::new(self), Arc::new(rhs))
    }

    /// All atomic propositions in the formula.
    pub fn props(&self) -> BTreeSet<Arc<str>> {
        let mut out = BTreeSet::new();
        self.collect_props(&mut out);
        out
    }

    fn collect_props(&self, out: &mut BTreeSet<Arc<str>>) {
        match self {
            Ltl::True | Ltl::False => {}
            Ltl::Prop(p) => {
                out.insert(p.clone());
            }
            Ltl::Not(a) | Ltl::Next(a) | Ltl::Finally(a) | Ltl::Globally(a) => a.collect_props(out),
            Ltl::And(a, b)
            | Ltl::Or(a, b)
            | Ltl::Implies(a, b)
            | Ltl::Until(a, b)
            | Ltl::Release(a, b) => {
                a.collect_props(out);
                b.collect_props(out);
            }
        }
    }

    /// Number of syntax-tree nodes.
    pub fn size(&self) -> usize {
        match self {
            Ltl::True | Ltl::False | Ltl::Prop(_) => 1,
            Ltl::Not(a) | Ltl::Next(a) | Ltl::Finally(a) | Ltl::Globally(a) => 1 + a.size(),
            Ltl::And(a, b)
            | Ltl::Or(a, b)
            | Ltl::Implies(a, b)
            | Ltl::Until(a, b)
            | Ltl::Release(a, b) => 1 + a.size() + b.size(),
        }
    }

    fn precedence(&self) -> u8 {
        match self {
            Ltl::True | Ltl::False | Ltl::Prop(_) => 6,
            Ltl::Not(_) | Ltl::Next(_) | Ltl::Finally(_) | Ltl::Globally(_) => 5,
            Ltl::Until(_, _) | Ltl::Release(_, _) => 4,
            Ltl::And(_, _) => 3,
            Ltl::Or(_, _) => 2,
            Ltl::Implies(_, _) => 1,
        }
    }

    fn fmt_prec(&self, f: &mut fmt::Formatter<'_>, parent: u8) -> fmt::Result {
        let mine = self.precedence();
        let parens = mine < parent;
        if parens {
            f.write_str("(")?;
        }
        match self {
            Ltl::True => f.write_str("true")?,
            Ltl::False => f.write_str("false")?,
            Ltl::Prop(p) => f.write_str(p)?,
            Ltl::Not(a) => {
                f.write_str("~")?;
                a.fmt_prec(f, 6)?;
            }
            Ltl::Next(a) => {
                f.write_str("X ")?;
                a.fmt_prec(f, 6)?;
            }
            Ltl::Finally(a) => {
                f.write_str("F ")?;
                a.fmt_prec(f, 6)?;
            }
            Ltl::Globally(a) => {
                f.write_str("G ")?;
                a.fmt_prec(f, 6)?;
            }
            Ltl::Until(a, b) => {
                a.fmt_prec(f, 5)?;
                f.write_str(" U ")?;
                b.fmt_prec(f, 5)?;
            }
            Ltl::Release(a, b) => {
                a.fmt_prec(f, 5)?;
                f.write_str(" R ")?;
                b.fmt_prec(f, 5)?;
            }
            Ltl::And(a, b) => {
                a.fmt_prec(f, 3)?;
                f.write_str(" & ")?;
                b.fmt_prec(f, 4)?;
            }
            Ltl::Or(a, b) => {
                a.fmt_prec(f, 2)?;
                f.write_str(" | ")?;
                b.fmt_prec(f, 3)?;
            }
            Ltl::Implies(a, b) => {
                a.fmt_prec(f, 2)?;
                f.write_str(" -> ")?;
                b.fmt_prec(f, 1)?;
            }
        }
        if parens {
            f.write_str(")")?;
        }
        Ok(())
    }
}

impl fmt::Display for Ltl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_prec(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_temporal_operators() {
        let f = Ltl::prop("p").until(Ltl::prop("q")).globally();
        assert_eq!(f.to_string(), "G (p U q)");
        let f = Ltl::prop("request")
            .implies(Ltl::prop("grant").finally())
            .globally();
        assert_eq!(f.to_string(), "G (request -> F grant)");
    }

    #[test]
    fn props_collected() {
        let f = Ltl::prop("a")
            .until(Ltl::prop("b"))
            .and(Ltl::prop("a").next());
        let names: Vec<_> = f.props().into_iter().map(|p| p.to_string()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn size_counts_nodes() {
        let f = Ltl::prop("p").not().finally();
        assert_eq!(f.size(), 3);
        assert_eq!(Ltl::True.size(), 1);
    }
}
