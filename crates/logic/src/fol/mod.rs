//! First-order Horn-clause logic: terms, unification, knowledge bases, and
//! SLD resolution — a mini-Prolog.
//!
//! This substrate reproduces Figure 1 of Graydon (DSN 2015): the *desert
//! bank* knowledge base whose query `adjacent(desert_bank, river)` succeeds
//! under formal validation even though the argument equivocates on `bank`.
//!
//! ```
//! use casekit_logic::fol::{KnowledgeBase, parse_program, parse_query};
//!
//! let kb: KnowledgeBase = parse_program(
//!     "is_a(desert_bank, bank).
//!      adjacent(bank, river).
//!      adjacent(X, Y) :- is_a(X, Z), adjacent(Z, Y).",
//! ).unwrap();
//! let goal = parse_query("adjacent(desert_bank, river)").unwrap();
//! assert!(kb.proves(&goal));
//! ```
//!
//! # Architecture: two planes, one oracle
//!
//! Like `prop` and `af`, the FOL substrate is split into a *name plane*
//! and an *index plane*:
//!
//! * The name plane (`term`, [`unify`], `parser`) is the readable
//!   surface: [`Term`] trees over `Arc<str>` names, map-backed
//!   [`Substitution`]s, and the recursive seed engine reachable through
//!   [`KnowledgeBase::solve_seed_with`]. It is kept as the differential
//!   oracle the fast plane is checked against.
//! * The index plane (`interned`) compiles a [`KnowledgeBase`] into an
//!   [`InternedKb`]: symbols intern to `u32` ids, terms hash-cons into a
//!   flat arena ([`TermId`] nodes with argument slices in one shared
//!   pool), clauses index by predicate and first-argument functor, and
//!   queries run on an iterative SLD machine with a bindings-slot array,
//!   a trail, and path compression instead of clone-per-apply maps.
//!
//! [`KnowledgeBase::solve`] and [`KnowledgeBase::solve_with`] route
//! through the index plane by default; `solve_seed`/`solve_seed_with`
//! expose the seed engine for cross-checks and benchmarks
//! (`crates/bench/src/fol.rs`, `repro fol`).

mod engine;
mod interned;
mod parser;
mod term;
mod unify;

pub use engine::{KnowledgeBase, Solution, SolveConfig, SolveOutcome};
pub use interned::{InternedKb, SymbolId, SymbolTable, TermArena, TermId};
pub use parser::{parse_program, parse_query, parse_term};
pub use term::{Clause, Term};
pub use unify::{unify, Substitution};

/// Builds the exact knowledge base of the paper's Figure 1.
pub fn desert_bank_kb() -> KnowledgeBase {
    parse_program(
        "is_a(desert_bank, bank).\n\
         adjacent(bank, river).\n\
         adjacent(X, Y) :- is_a(X, Z), adjacent(Z, Y).",
    )
    .expect("static program")
}
