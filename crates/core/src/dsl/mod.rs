//! A text DSL for writing assurance arguments.
//!
//! The grammar (comments run `//` or `#` to end of line):
//!
//! ```text
//! argument ::= "argument" STRING "{" node* "}"
//! node     ::= KIND IDENT STRING modifier* ( "{" child* "}" )?
//! child    ::= node | "ref" IDENT
//! modifier ::= "formal" STRING          -- propositional payload
//!            | "temporal" STRING        -- LTL payload
//!            | "undeveloped"
//! KIND     ::= "goal" | "strategy" | "solution" | "context"
//!            | "assumption" | "justification"
//!            | "claim" | "argnode" | "evidence"
//! ```
//!
//! Nesting encodes edges: contexts, assumptions, and justifications attach
//! to their parent with `InContextOf`; all other kinds with `SupportedBy`.
//! `ref` adds an edge to an already-declared node, allowing DAGs.
//!
//! # The recovering frontend
//!
//! The production entry point is [`parse_argument_recovering`]: an
//! error-tolerant lexer feeds a recover-and-continue parser
//! that synchronizes on `}` / the next kind keyword after
//! each error, so one bad node costs that node, not the file. It returns
//! a [`ParseOutcome`]: a best-effort [`Argument`] (when the header
//! parsed and something structurally valid survived), a [`SourceMap`]
//! recording the byte span of every declaration, and a span-sorted
//! stream of [`DslError`]s — embedded `formal`/`temporal` payload errors
//! are anchored *inside* the offending quoted string and tagged with the
//! owning node's id.
//!
//! [`parse_argument`] is the strict wrapper (first diagnostic becomes
//! the `Err`), and [`parse_argument_seed`] is the retained
//! abort-on-first-error seed parser, kept as a differential oracle and
//! bench baseline.
//!
//! ```
//! use casekit_core::dsl::parse_argument;
//! let arg = parse_argument(r#"
//!   argument "demo" {
//!     goal g1 "Top" {
//!       solution e1 "Evidence"
//!     }
//!   }
//! "#).unwrap();
//! assert_eq!(arg.len(), 2);
//! ```
//!
//! Recovery keeps the rest of a damaged file:
//!
//! ```
//! use casekit_core::dsl::parse_argument_recovering;
//! let out = parse_argument_recovering(r#"
//!   argument "demo" {
//!     gaol g1 "typo kind"
//!     goal g2 "fine" { solution e1 "kept" }
//!   }
//! "#);
//! assert_eq!(out.errors.len(), 1);
//! assert_eq!(out.argument.unwrap().len(), 2); // g2 and e1 survive
//! ```

mod lexer;
mod parser;
mod seed;
mod source_map;

pub use seed::parse_argument_seed;
pub use source_map::{NodeSpans, SourceMap};

use crate::argument::Argument;
use crate::node::{EdgeKind, FormalPayload, NodeId, NodeKind};
use casekit_logic::ParseError;

/// The node-kind keyword mapping shared by both parsers.
pub(crate) fn kind_of(word: &str) -> Option<NodeKind> {
    match word {
        "goal" => Some(NodeKind::Goal),
        "strategy" => Some(NodeKind::Strategy),
        "solution" => Some(NodeKind::Solution),
        "context" => Some(NodeKind::Context),
        "assumption" => Some(NodeKind::Assumption),
        "justification" => Some(NodeKind::Justification),
        "claim" => Some(NodeKind::Claim),
        "argnode" => Some(NodeKind::ArgumentNode),
        "evidence" => Some(NodeKind::Evidence),
        _ => None,
    }
}

/// How a nested child of `kind` attaches to its parent.
pub(crate) fn edge_kind_for(kind: NodeKind) -> EdgeKind {
    match kind {
        NodeKind::Context | NodeKind::Assumption | NodeKind::Justification => EdgeKind::InContextOf,
        _ => EdgeKind::SupportedBy,
    }
}

/// One diagnostic from the recovering parser: the underlying
/// [`ParseError`] plus the node it concerns, when the parser can tell
/// (payload errors, duplicate ids, bad edges).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DslError {
    /// The typed syntax error, with a span into the parsed source.
    pub error: ParseError,
    /// The node this error is about, when one is identifiable.
    pub node: Option<NodeId>,
}

/// Everything the recovering parser produced for one source file.
#[derive(Debug, Clone)]
pub struct ParseOutcome {
    /// The best-effort argument: `Some` whenever the `argument "name"`
    /// header parsed (structurally invalid pieces are dropped with
    /// diagnostics rather than failing the build).
    pub argument: Option<Argument>,
    /// Byte spans for the argument name and every recorded node.
    pub source_map: SourceMap,
    /// All diagnostics, sorted by `(span.start, span.end, message)` —
    /// deterministic for identical input, independent of recovery path.
    pub errors: Vec<DslError>,
}

impl ParseOutcome {
    /// Whether the parse produced no diagnostics.
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }
}

/// Parses an argument from the DSL, recovering at every error.
///
/// Never fails and never panics: arbitrary input yields a
/// [`ParseOutcome`] whose diagnostic stream is deterministic and
/// span-sorted. See the module docs for the recovery strategy.
pub fn parse_argument_recovering(input: &str) -> ParseOutcome {
    parser::parse(input)
}

/// Parses an argument from the DSL.
///
/// This is the strict entry point: it runs the recovering parser and
/// fails on the first (span-earliest) diagnostic.
///
/// # Errors
///
/// Returns a [`ParseError`] for syntax errors (with a span into `input`)
/// or for structural errors (duplicate ids, dangling `ref`s), located at
/// the offending text.
pub fn parse_argument(input: &str) -> Result<Argument, ParseError> {
    let outcome = parse_argument_recovering(input);
    match outcome.errors.into_iter().next() {
        Some(first) => Err(first.error),
        None => Ok(outcome
            .argument
            .expect("a clean parse always yields an argument")),
    }
}

/// Renders an argument back into DSL text (single-parent tree shape only:
/// extra edges are emitted as `ref` children).
pub fn render_dsl(argument: &Argument) -> String {
    let mut out = format!("argument \"{}\" {{\n", escape(argument.name()));
    let mut emitted = vec![false; argument.len()];
    let roots: Vec<crate::argument::NodeIdx> = argument.sorted_roots_idx().collect();
    for root in roots {
        render_node(argument, root, 1, &mut out, &mut emitted);
    }
    out.push_str("}\n");
    out
}

fn keyword(kind: NodeKind) -> &'static str {
    match kind {
        NodeKind::Goal => "goal",
        NodeKind::Strategy => "strategy",
        NodeKind::Solution => "solution",
        NodeKind::Context => "context",
        NodeKind::Assumption => "assumption",
        NodeKind::Justification => "justification",
        NodeKind::Claim => "claim",
        NodeKind::ArgumentNode => "argnode",
        NodeKind::Evidence => "evidence",
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn render_node(
    argument: &Argument,
    idx: crate::argument::NodeIdx,
    indent: usize,
    out: &mut String,
    emitted: &mut [bool],
) {
    let node = argument.node_at(idx);
    let pad = "  ".repeat(indent);
    if emitted[idx.index()] {
        out.push_str(&format!("{pad}ref {}\n", node.id));
        return;
    }
    emitted[idx.index()] = true;
    out.push_str(&format!(
        "{pad}{} {} \"{}\"",
        keyword(node.kind),
        node.id,
        escape(&node.text)
    ));
    match &node.formal {
        Some(FormalPayload::Prop(f)) => out.push_str(&format!(" formal \"{f}\"")),
        Some(FormalPayload::Temporal(f)) => out.push_str(&format!(" temporal \"{f}\"")),
        None => {}
    }
    if node.undeveloped {
        out.push_str(" undeveloped");
    }
    let children: Vec<crate::argument::NodeIdx> = argument.all_children_idx(idx).collect();
    if children.is_empty() {
        out.push('\n');
        return;
    }
    out.push_str(" {\n");
    for child in children {
        render_node(argument, child, indent + 1, out, emitted);
    }
    out.push_str(&format!("{pad}}}\n"));
}

#[cfg(test)]
mod tests {
    use super::*;
    use casekit_logic::SyntaxErrorKind;

    const SAMPLE: &str = r#"
        // A small UAV argument.
        argument "uav" {
          goal g1 "UAV operations are acceptably safe" {
            context c1 "Segregated airspace ops"
            assumption a1 "Ground crew follows procedures"
            strategy s1 "Argue over identified hazards" {
              justification j1 "Hazard log reviewed by panel"
              goal g2 "Mid-air collision risk mitigated"
                formal "below_min -> avoiding" {
                solution e1 "Detect-and-avoid test campaign"
              }
              goal g3 "Loss-of-link handled" undeveloped
            }
          }
        }
    "#;

    #[test]
    fn parses_sample() {
        let a = parse_argument(SAMPLE).unwrap();
        assert_eq!(a.name(), "uav");
        assert_eq!(a.len(), 8);
        assert_eq!(a.edges().len(), 7);
        assert!(crate::gsn::check(&a).is_empty());
        let g2 = a.node(&"g2".into()).unwrap();
        assert!(g2.is_formalised());
        let g3 = a.node(&"g3".into()).unwrap();
        assert!(g3.undeveloped);
    }

    #[test]
    fn nesting_chooses_edge_kinds() {
        use crate::node::EdgeKind;
        let a = parse_argument(SAMPLE).unwrap();
        let g1 = NodeId::new("g1");
        assert_eq!(a.children(&g1, EdgeKind::InContextOf).len(), 2);
        assert_eq!(a.children(&g1, EdgeKind::SupportedBy).len(), 1);
    }

    #[test]
    fn temporal_payload() {
        let a = parse_argument(
            r#"argument "t" {
                goal g1 "always ok" temporal "G (req -> F grant)" {
                  solution e1 "model checking log"
                }
            }"#,
        )
        .unwrap();
        let g1 = a.node(&"g1".into()).unwrap();
        assert!(matches!(g1.formal, Some(FormalPayload::Temporal(_))));
    }

    #[test]
    fn ref_creates_dag() {
        let a = parse_argument(
            r#"argument "dag" {
                goal g1 "top" {
                  goal g2 "shared" {
                    solution e1 "shared evidence"
                  }
                  strategy s1 "also uses shared" {
                    ref g2
                  }
                }
            }"#,
        )
        .unwrap();
        assert_eq!(a.parents(&"g2".into()).len(), 2);
    }

    #[test]
    fn bad_formula_error_carries_node_id() {
        let err =
            parse_argument(r#"argument "x" { goal g1 "t" formal "p ->" { solution e "s" } }"#)
                .unwrap_err();
        assert!(err.message.contains("g1"));
        assert_eq!(err.kind, SyntaxErrorKind::BadPayload);
    }

    #[test]
    fn syntax_errors_located() {
        assert!(parse_argument("").is_err());
        assert!(parse_argument(r#"argument "x" {"#).is_err());
        assert!(parse_argument(r#"argument "x" { widget w "t" }"#)
            .unwrap_err()
            .message
            .contains("widget"));
        assert!(parse_argument(r#"argument "x" { goal "missing id" }"#).is_err());
        let err = parse_argument(r#"argument "x" { goal g1 }"#).unwrap_err();
        assert!(err.message.contains("text"));
    }

    #[test]
    fn unterminated_string_reported() {
        let err = parse_argument(r#"argument "x" { goal g1 "unterminated }"#).unwrap_err();
        assert!(err.message.contains("unterminated") || err.message.contains("expected"));
    }

    #[test]
    fn duplicate_id_surfaces_as_parse_error() {
        let err = parse_argument(
            r#"argument "x" {
                goal g1 "a" { solution e1 "s" }
                goal g1 "b" { solution e2 "s" }
            }"#,
        )
        .unwrap_err();
        assert!(err.message.contains("duplicate"));
    }

    #[test]
    fn ref_at_top_level_rejected() {
        let err = parse_argument(r#"argument "x" { ref g9 }"#).unwrap_err();
        assert!(err.message.contains("ref"));
    }

    #[test]
    fn escaped_quotes_in_strings() {
        let a =
            parse_argument(r#"argument "q" { goal g1 "the \"safe\" state" { solution e1 "s" } }"#)
                .unwrap();
        assert_eq!(a.node(&"g1".into()).unwrap().text, "the \"safe\" state");
    }

    #[test]
    fn round_trip_through_render() {
        let a = parse_argument(SAMPLE).unwrap();
        let rendered = render_dsl(&a);
        let b = parse_argument(&rendered).unwrap();
        assert_eq!(a.len(), b.len());
        assert_eq!(a.edges().len(), b.edges().len());
        for node in a.nodes() {
            let other = b.node(&node.id).expect("node survives round trip");
            assert_eq!(node.text, other.text);
            assert_eq!(node.kind, other.kind);
            assert_eq!(node.undeveloped, other.undeveloped);
        }
    }

    #[test]
    fn comments_and_hash_comments_skipped() {
        let a = parse_argument(
            "argument \"c\" {\n# hash comment\ngoal g1 \"t\" { // slash comment\n solution e1 \"s\" }\n}",
        )
        .unwrap();
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn trailing_garbage_rejected() {
        let err = parse_argument(r#"argument "x" { goal g1 "t" undeveloped } extra"#).unwrap_err();
        assert!(err.message.contains("trailing"));
        assert_eq!(err.kind, SyntaxErrorKind::TrailingInput);
    }

    // ---- recovery behavior ----

    /// The recovering parser and the seed parser must agree exactly on
    /// valid input.
    fn assert_matches_seed(src: &str) {
        let seed = parse_argument_seed(src).expect("seed accepts");
        let out = parse_argument_recovering(src);
        assert!(out.is_clean(), "unexpected diagnostics: {:?}", out.errors);
        let arg = out.argument.expect("clean parse yields an argument");
        assert_eq!(arg, seed);
    }

    #[test]
    fn recovering_parser_matches_seed_on_valid_files() {
        assert_matches_seed(SAMPLE);
        assert_matches_seed(r#"argument "empty" { }"#);
        assert_matches_seed(
            r#"argument "dag" {
                goal g1 "top" {
                  goal g2 "shared" { solution e1 "s" }
                  strategy s1 "reuses" { ref g2 }
                }
            }"#,
        );
    }

    #[test]
    fn bad_node_does_not_kill_the_file() {
        let out = parse_argument_recovering(
            r#"argument "x" {
                goal g1 "ok" { solution e1 "fine" }
                widget w1 "dropped"
                goal g2 "also ok"
            }"#,
        );
        assert_eq!(out.errors.len(), 1);
        assert_eq!(out.errors[0].error.kind, SyntaxErrorKind::UnknownKeyword);
        let a = out.argument.unwrap();
        assert_eq!(a.len(), 3); // g1, e1, g2 — w1 dropped
        assert!(a.node(&"g2".into()).is_some());
    }

    #[test]
    fn typoed_kind_gets_a_suggestion() {
        let out = parse_argument_recovering(r#"argument "x" { gaol g1 "t" }"#);
        assert_eq!(out.errors.len(), 1);
        assert!(out.errors[0]
            .error
            .hint
            .as_deref()
            .unwrap()
            .contains("goal"));
    }

    #[test]
    fn bad_payload_is_node_anchored_and_recoverable() {
        let src = r#"argument "x" { goal g1 "t" formal "p &&& q" { solution e1 "s" } }"#;
        let out = parse_argument_recovering(src);
        assert_eq!(out.errors.len(), 1);
        let err = &out.errors[0];
        assert_eq!(err.node, Some("g1".into()));
        assert_eq!(err.error.kind, SyntaxErrorKind::BadPayload);
        // The span points inside the quoted payload.
        let payload = src.find("\"p &&& q\"").unwrap();
        assert!(err.error.span.start > payload);
        assert!(err.error.span.end <= payload + "\"p &&& q\"".len());
        // The node survives, without the payload; the file still builds.
        let a = out.argument.unwrap();
        assert_eq!(a.len(), 2);
        assert!(a.node(&"g1".into()).unwrap().formal.is_none());
    }

    #[test]
    fn duplicate_children_attach_to_original() {
        let out = parse_argument_recovering(
            r#"argument "x" {
                goal g1 "first" { solution e1 "a" }
                goal g1 "second" { solution e2 "b" }
            }"#,
        );
        assert_eq!(out.errors.len(), 1);
        assert!(out.errors[0].error.message.contains("duplicate node id"));
        let a = out.argument.unwrap();
        // g1 (first declaration), e1, and e2 all exist; e2's edge attaches
        // to the original g1.
        assert_eq!(a.len(), 3);
        assert_eq!(a.node(&"g1".into()).unwrap().text, "first");
        assert_eq!(a.parents(&"e2".into()).len(), 1);
    }

    #[test]
    fn bad_edges_are_dropped_with_diagnostics() {
        let out = parse_argument_recovering(
            r#"argument "x" {
                goal g1 "top" {
                  ref g1
                  ref nowhere
                  solution e1 "s"
                  ref e1
                  ref e1
                }
            }"#,
        );
        let messages: Vec<&str> = out
            .errors
            .iter()
            .map(|e| e.error.message.as_str())
            .collect();
        assert!(messages.iter().any(|m| m.contains("self-loop on `g1`")));
        assert!(messages
            .iter()
            .any(|m| m.contains("unknown node `nowhere`")));
        // Both `ref e1`s duplicate the nesting edge g1 -> e1 (same kind),
        // exactly as the seed builder would have judged them.
        assert_eq!(
            messages
                .iter()
                .filter(|m| m.contains("duplicate edge `g1` -> `e1`"))
                .count(),
            2
        );
        assert_eq!(out.errors.len(), 4);
        let a = out.argument.unwrap();
        assert_eq!(a.len(), 2);
        assert_eq!(a.edges().len(), 1); // just the nesting edge
    }

    #[test]
    fn source_map_locates_declarations() {
        let src = r#"argument "m" { goal g1 "top" formal "p" { solution e1 "s" } }"#;
        let out = parse_argument_recovering(src);
        assert!(out.is_clean());
        assert_eq!(out.source_map.len(), 2);
        let name = out.source_map.name.unwrap();
        assert_eq!(&src[name.start..name.end], "\"m\"");
        let g1 = out.source_map.node(&"g1".into()).unwrap();
        assert_eq!(&src[g1.keyword.start..g1.keyword.end], "goal");
        assert_eq!(&src[g1.id.start..g1.id.end], "g1");
        assert_eq!(&src[g1.text.start..g1.text.end], "\"top\"");
        let payload = g1.payload.unwrap();
        assert_eq!(&src[payload.start..payload.end], "\"p\"");
        assert_eq!(
            &src[g1.header.start..g1.header.end],
            "goal g1 \"top\" formal \"p\""
        );
        let e1 = out.source_map.node(&"e1".into()).unwrap();
        assert_eq!(&src[e1.id.start..e1.id.end], "e1");
    }

    #[test]
    fn missing_header_means_no_argument_but_diagnostics_continue() {
        let out = parse_argument_recovering(r#"{ goal g1 "t" gaol g2 "u" }"#);
        assert!(out.argument.is_none());
        assert!(out
            .errors
            .iter()
            .any(|e| e.error.message.contains("argument")));
        assert!(out
            .errors
            .iter()
            .any(|e| e.error.message.contains("unknown node kind `gaol`")));
    }

    #[test]
    fn diagnostics_are_span_sorted_and_deterministic() {
        let src = r#"argument "x" {
            goal g1 "a" formal "p ->"
            widget w "b"
            goal g1 "dup"
        }"#;
        let a = parse_argument_recovering(src);
        let b = parse_argument_recovering(src);
        assert_eq!(a.errors, b.errors);
        let starts: Vec<usize> = a.errors.iter().map(|e| e.error.span.start).collect();
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        assert_eq!(starts, sorted);
        assert_eq!(a.errors.len(), 3);
    }

    #[test]
    fn seed_first_error_appears_in_recovering_stream() {
        // The roundtrip property the bench gate checks, in miniature.
        for src in [
            r#"argument "x" { goal g1 }"#,
            r#"argument "x" { widget w "t" }"#,
            r#"argument "x" { goal g1 "unterminated }"#,
            r#"argument "x" { ref g9 }"#,
            r#"argument "x" { goal g1 "t" } trailing"#,
            r#"argument "x" { goal g1 "t" formal "p ->" }"#,
            r#"argument "x" { goal g1 "a" goal g1 "b" }"#,
            r#"argument "x" { goal g1 "a" $ }"#,
            "",
        ] {
            let seed_err = parse_argument_seed(src).unwrap_err();
            let out = parse_argument_recovering(src);
            assert!(
                out.errors
                    .iter()
                    .any(|e| e.error.message.contains(&seed_err.message)),
                "seed error {:?} missing from {:?}",
                seed_err.message,
                out.errors
            );
        }
    }
}
